/// \file function_ref.hpp
/// A non-owning, trivially copyable callable reference.
///
/// FunctionRef<R(Args...)> is two words: a context pointer and a plain
/// function pointer. Invoking it is one indirect call — no allocation, no
/// virtual dispatch, no std::function small-buffer machinery. It does NOT
/// own the referenced callable, so the callable must outlive every use of
/// the ref; binding a temporary is a dangling reference. This is the
/// callback type of the per-packet NIC paths (TxRing's on-transmit hook,
/// shared with the experiment harness's latency-histogram recorder), where
/// a std::function's type-erased call and potential allocation are
/// measurable per-packet overhead.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace metro::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// A null ref; invoking it is undefined. Test with operator bool first.
  constexpr FunctionRef() noexcept = default;

  /// Bind an lvalue callable. Lvalue-only on purpose: a FunctionRef never
  /// extends a lifetime, so binding a temporary would dangle immediately.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F& fn) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(fn)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
        }) {}

  /// Bind a free function directly.
  FunctionRef(R (*fn)(Args...)) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(reinterpret_cast<void*>(fn)), call_([](void* obj, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(obj)(std::forward<Args>(args)...);
        }) {
    if (fn == nullptr) call_ = nullptr;
  }

  /// True when a callable is bound.
  constexpr explicit operator bool() const noexcept { return call_ != nullptr; }

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace metro::util
