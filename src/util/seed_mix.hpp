/// \file seed_mix.hpp
/// Deterministic seed derivation for shards, flows and repeated runs.
///
/// Everything in the simulator is a pure function of configuration and
/// seed, so *how* per-shard / per-run seeds are derived matters: the
/// ad-hoc `seed + i` idiom produces overlapping xoshiro seed sequences
/// (run i's stream is run i+1's shifted by one splitmix step) and makes
/// collisions trivial when two call sites pick adjacent bases. This
/// header provides the one blessed derivation: a SplitMix64 finalising
/// mixer, whose outputs are uncorrelated for any pattern of inputs.
#pragma once

#include <cstdint>

namespace metro::util {

/// One SplitMix64 step (Steele, Lea & Flood; the same finaliser
/// sim::Rng::reseed uses internally): a bijective avalanche mix of a
/// 64-bit value. Adjacent inputs produce statistically unrelated outputs.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive the seed of stream `stream` from `base`: mix the base, fold the
/// stream index in, and mix again so neither argument survives linearly.
/// Use this instead of `base + i` wherever a family of seeds is needed
/// (sweep shards, per-seed figure repetitions, randomized test cases).
constexpr std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  return splitmix64(splitmix64(base) ^ stream);
}

}  // namespace metro::util
