/// \file metronome.hpp
/// The Metronome runtime (paper §III-B, §IV, Listing 2).
//
// M threads cooperatively service the N Rx queues of a port. Each thread
// loops forever:
//
//   wake -> trylock(queue) ->
//     success: drain the queue until empty (busy period), release, update
//              the queue's EWMA load estimate rho and its adaptive short
//              timeout TS (eq. 13 / eq. 14), sleep(TS)   [primary]
//     failure: count a busy try, pick the next queue at random,
//              sleep(TL)                                  [backup]
//
// All strategy choices the paper motivates are config knobs so the benches
// can ablate them: the primary/backup timeout diversity (§IV-A), the
// adaptive TS rule vs a fixed timeout, and the sticky-primary / random-
// backup queue selection of §IV-E.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ewma.hpp"
#include "core/model.hpp"
#include "core/queue_lock.hpp"
#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/sleep_service.hpp"
#include "stats/histogram.hpp"
#include "stats/metric_set.hpp"
#include "stats/summary.hpp"

namespace metro::core {

/// All tunables of the Metronome runtime. Paper defaults; every strategy
/// choice the paper motivates is a knob so the benches can ablate it.
struct MetronomeConfig {
  /// M: number of Metronome threads (paper default for 1 queue: 3).
  int n_threads = 3;
  /// Target mean vacation period, V-bar (paper default 10 us; 15 us on
  /// the 40 GbE multi-queue runs).
  sim::Time target_vacation = 10 * sim::kMicrosecond;
  /// TL: backup (long) timeout (paper default 500 us).
  sim::Time long_timeout = 500 * sim::kMicrosecond;
  /// EWMA weight for the rho estimator, eq. (11).
  double alpha = 0.05;
  /// Per-packet retrieval+processing cost of the hosted application.
  sim::Time per_packet_cost = sim::calib::kL3fwdPerPacketCost;
  int burst = sim::calib::kBurstSize;
  /// Optional real per-packet work run for every drained descriptor after
  /// its cost is charged (wall-clock only — simulated time and telemetry
  /// are unaffected). Unset by default; the fig16 --crypto=live bench mode
  /// points it at the real ESP gateway.
  nic::PacketWork packet_work{};
  /// Sleep service used by every thread (hr_sleep by default).
  sim::SleepServiceConfig sleep{};

  // --- strategy knobs (ablation switches; paper defaults below) --------
  /// Adaptive TS via eq. 13/14. When false, TS = fixed_ts always.
  bool adaptive = true;
  sim::Time fixed_ts = 50 * sim::kMicrosecond;
  /// Primary/backup diversity (§IV-A). When false, the thread sleeps its
  /// short timeout even after a failed trylock — the "equal timeouts"
  /// strategy the paper rejects.
  bool primary_backup = true;
  /// §IV-E: a primary re-contends the same queue at its next wake-up...
  bool sticky_primary = true;
  /// ...while a backup picks its next queue uniformly at random.
  bool random_backup = true;
};

/// Per-queue shared state + statistics.
struct QueueState {
  QueueLock lock;
  sim::Time last_release = -1;  // end of the previous busy period
  Ewma rho{0.05};
  sim::Time ts;  // current adaptive short timeout for this queue

  // Counters (resettable by the experiment harness).
  std::uint64_t total_tries = 0;
  std::uint64_t busy_tries = 0;  // failed trylocks
  std::uint64_t lock_successes = 0;
  std::uint64_t packets = 0;
  std::uint64_t empty_polls = 0;  // busy periods that drained nothing
  std::uint64_t slept_ns = 0;     // total sim time threads slept on this queue
  stats::Summary vacation_us;
  stats::Summary busy_us;
  stats::Summary nv;  // packets found queued at busy-period start
  stats::Summary sleep_us;    // per-sleep duration distribution (actual, incl. overshoot)
  stats::Summary burst_fill;  // packets per pop_burst (batch occupancy)
  /// Optional full vacation-period distribution (Fig. 4); caller-owned.
  stats::Histogram* vacation_hist = nullptr;

  double busy_try_fraction() const {
    return total_tries ? static_cast<double>(busy_tries) / static_cast<double>(total_tries) : 0.0;
  }
};

/// The Metronome runtime: spawns M sleep/wake threads that cooperatively
/// drain the port's Rx queues (see the file comment for the loop), owns
/// the per-queue shared state, and aggregates the statistics the figure
/// benches read.
///
/// \tparam Sim the kernel instantiation (any backend). The heap alias
///   `Metronome` preserves the original spelling; member definitions live
///   in metronome.cpp with explicit instantiations for both backends.
template <typename Sim = sim::Simulation>
class BasicMetronome {
 public:
  /// Threads are placed round-robin on `cores` (thread i on
  /// cores[i % cores.size()]); the port's queue count defines N.
  BasicMetronome(Sim& sim, nic::BasicPort<Sim>& port, std::vector<sim::BasicCore<Sim>*> cores,
                 MetronomeConfig cfg);

  /// Spawn all M threads. Each starts with a small random stagger so wake
  /// times decorrelate from t = 0 (they would anyway after a few cycles).
  void start();

  int n_threads() const noexcept { return cfg_.n_threads; }
  int n_queues() const noexcept { return port_.n_rx_queues(); }
  const MetronomeConfig& config() const noexcept { return cfg_; }

  QueueState& queue_state(int q) { return *queues_[static_cast<std::size_t>(q)]; }
  const QueueState& queue_state(int q) const { return *queues_[static_cast<std::size_t>(q)]; }

  /// Total packets processed across queues.
  std::uint64_t packets_processed() const;
  /// Total wake-ups (lock attempts) across queues.
  std::uint64_t total_tries() const;
  std::uint64_t busy_tries() const;

  /// Aggregate busy-try fraction over all queues.
  double busy_try_fraction() const;
  /// Mean rho over queues (instantaneous EWMA values).
  double mean_rho() const;
  /// Mean of the queues' current TS values, in microseconds.
  double mean_ts_us() const;

  /// Clear counters and summaries after warm-up (keeps rho estimates).
  /// The experiment harness no longer needs this — it windows the
  /// registered metrics instead — but standalone users still can.
  void reset_stats();

  /// Attach every per-queue observable to `set`: `<prefix>.qN.total_tries`
  /// / `.busy_tries` / `.lock_successes` / `.packets` / `.empty_polls` /
  /// `.slept_ns` counters and the `.vacation_us` / `.busy_us` / `.nv` /
  /// `.sleep_us` / `.burst_fill` summaries. Setup only; the thread loop
  /// keeps its plain increments.
  void register_metrics(stats::MetricSet& set, const std::string& prefix);

  /// (core, entity) of every thread, for CPU-usage accounting.
  struct ThreadRef {
    sim::BasicCore<Sim>* core;
    typename sim::BasicCore<Sim>::EntityId entity;
  };
  const std::vector<ThreadRef>& threads() const noexcept { return threads_; }

 private:
  sim::Task thread_task(int thread_id);
  sim::Time compute_ts(const QueueState& q) const;

  /// Account one completed sleep on `q` (duration metrics + optional
  /// kMetSleep trace span). Called by the thread loop right after resume —
  /// plain function, so no RAII span has to live across a co_await.
  void note_sleep(QueueState& q, int thread_id, int queue, sim::Time t0, sim::Time armed);

  Sim& sim_;
  nic::BasicPort<Sim>& port_;
  std::vector<sim::BasicCore<Sim>*> cores_;
  MetronomeConfig cfg_;
  std::vector<std::unique_ptr<QueueState>> queues_;
  std::vector<ThreadRef> threads_;
  std::vector<std::unique_ptr<sim::BasicSleepService<Sim>>> sleepers_;  // one per thread
  bool started_ = false;
};

/// Heap-kernel alias (the original spelling).
using Metronome = BasicMetronome<sim::Simulation>;

}  // namespace metro::core
