// Deployment planner: closed-form predictions from the §IV model.
//
// Given a Metronome configuration and an expected load, predict the
// steady-state operating point — rho, TS, mean vacation, wake-up rate, CPU
// usage and a worst-case buffering bound — without running anything. The
// simulator cross-validates these predictions (tests/test_planner.cpp), and
// operators can use them to size M / V-bar for a deployment the same way
// §IV-D reasons about the trade-off.
#pragma once

#include <cmath>
#include <string>

#include "core/model.hpp"
#include "sim/calibration.hpp"
#include "sim/time.hpp"
#include "stats/metric_set.hpp"

namespace metro::core {

struct PlannerInput {
  int n_threads = 3;        // M
  int n_queues = 1;         // N
  double target_vacation_us = 10.0;
  double long_timeout_us = 500.0;
  double rate_pps = 14.88e6;           // offered load (aggregate)
  double service_rate_pps = 1e9 / static_cast<double>(sim::calib::kL3fwdPerPacketCost);
  /// Fixed CPU cost charged per wake-up (sleep syscall, trylock, poll).
  double wakeup_overhead_us =
      sim::to_micros(sim::calib::kWakeupOverheadCost + sim::calib::kTrylockCost +
                     sim::calib::kEmptyPollCost);
  /// Mean sleep-service overhead added to every timeout (Fig. 1).
  double sleep_overhead_us = 3.5;
};

struct PlannerOutput {
  double rho = 0.0;            // per-queue load
  double ts_us = 0.0;          // adaptive short timeout, eq. 13/14
  double mean_vacation_us = 0.0;
  double mean_busy_us = 0.0;   // eq. 3
  double nv = 0.0;             // packets per vacation (Little)
  double wakeups_per_sec = 0.0;
  double cpu_percent = 0.0;    // all threads, 100 = one core
  /// Worst-case buffering delay for a packet arriving right after a
  /// release: one full vacation plus the time to drain the backlog ahead
  /// of it (§IV-D's worst-case argument), ignoring scheduling tails.
  double worst_case_delay_us = 0.0;

  /// Attach every predicted observable as a gauge under `prefix`, so a
  /// plan can be snapshotted, fingerprinted and reported through the same
  /// telemetry path as the measured sets it predicts. (Don't *merge*
  /// plan snapshots: gauges add under merge, and predictions like rho or
  /// cpu_percent are intensive — sum is meaningless for them.)
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_gauge(prefix + ".rho", rho);
    set.attach_gauge(prefix + ".ts_us", ts_us);
    set.attach_gauge(prefix + ".mean_vacation_us", mean_vacation_us);
    set.attach_gauge(prefix + ".mean_busy_us", mean_busy_us);
    set.attach_gauge(prefix + ".nv", nv);
    set.attach_gauge(prefix + ".wakeups_per_sec", wakeups_per_sec);
    set.attach_gauge(prefix + ".cpu_percent", cpu_percent);
    set.attach_gauge(prefix + ".worst_case_delay_us", worst_case_delay_us);
  }
};

inline PlannerOutput plan(const PlannerInput& in) {
  PlannerOutput out;
  const double per_queue_rate = in.rate_pps / in.n_queues;
  out.rho = per_queue_rate / in.service_rate_pps;
  if (out.rho >= 1.0) {
    // Saturated: one thread per queue drains continuously.
    out.rho = 1.0;
    out.cpu_percent = 100.0 * in.n_queues;
    out.ts_us = in.target_vacation_us;
    return out;
  }

  out.ts_us = model::ts_for_target_multiqueue(in.target_vacation_us, out.rho, in.n_threads,
                                              in.n_queues);
  const double ts_eff_us = out.ts_us + in.sleep_overhead_us;  // what threads really sleep

  // Effective number of co-primaries per queue. The §IV-C model assumes a
  // thread is primary with probability 1 - rho; in practice a non-anchor
  // primary *drops out* to the backup role whenever one of its wake-ups
  // lands in a busy period (probability rho per wake) and only returns
  // after ~TL/(1 - rho). Its duty cycle as a primary is therefore
  //   f = (TS_eff/rho) / (TS_eff/rho + TL/(1 - rho)),
  // which converges to the model's 1 - rho behaviour at rho -> 0 and to a
  // single anchor primary at high load.
  const double threads_per_queue = static_cast<double>(in.n_threads) / in.n_queues;
  double primary_duty = 1.0;
  if (out.rho > 1e-9) {
    const double t_primary = ts_eff_us / out.rho;
    const double t_backup = in.long_timeout_us / std::max(1e-9, 1.0 - out.rho);
    primary_duty = t_primary / (t_primary + t_backup);
  }
  const double co_primaries = 1.0 + std::max(0.0, threads_per_queue - 1.0) * primary_duty;

  out.mean_vacation_us = ts_eff_us / co_primaries;
  out.mean_busy_us = model::busy_given_vacation(out.mean_vacation_us, out.rho);
  out.nv = per_queue_rate / 1e6 * out.mean_vacation_us;  // lambda * E[V]

  // Wake-up rate: co-primaries cycle on TS_eff (plus their busy time);
  // the remaining threads cycle on TL.
  const double cycle_us = ts_eff_us + out.mean_busy_us * co_primaries / threads_per_queue;
  const double primary_wakes = co_primaries * in.n_queues * 1e6 / cycle_us;
  const double backups = std::max(0.0, threads_per_queue - co_primaries) * in.n_queues;
  const double backup_wakes = backups * 1e6 / in.long_timeout_us;
  out.wakeups_per_sec = primary_wakes + backup_wakes;

  // CPU: packet work + per-wake overhead.
  const double drain_fraction = in.rate_pps / in.service_rate_pps;
  out.cpu_percent =
      100.0 * (drain_fraction + out.wakeups_per_sec * in.wakeup_overhead_us / 1e6);

  // Worst case: a full vacation, then the backlog NV ahead of the packet.
  out.worst_case_delay_us =
      out.mean_vacation_us + out.nv / (in.service_rate_pps / 1e6) + in.sleep_overhead_us;
  return out;
}

}  // namespace metro::core
