#include "core/metronome.hpp"

#include <string>

namespace metro::core {

using sim::Time;
namespace calib = sim::calib;

template <typename Sim>
BasicMetronome<Sim>::BasicMetronome(Sim& sim, nic::BasicPort<Sim>& port,
                                    std::vector<sim::BasicCore<Sim>*> cores, MetronomeConfig cfg)
    : sim_(sim), port_(port), cores_(std::move(cores)), cfg_(cfg) {
  const int n = port_.n_rx_queues();
  queues_.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    auto state = std::make_unique<QueueState>();
    state->rho = Ewma(cfg_.alpha);
    // Initial TS: no load observed yet, so the low-load setting M/N * V-bar.
    state->ts = compute_ts(*state);
    queues_.push_back(std::move(state));
  }
}

template <typename Sim>
Time BasicMetronome<Sim>::compute_ts(const QueueState& q) const {
  if (!cfg_.adaptive) return cfg_.fixed_ts;
  const double target_us = sim::to_micros(cfg_.target_vacation);
  const double ts_us = model::ts_for_target_multiqueue(target_us, q.rho.value(), cfg_.n_threads,
                                                       port_.n_rx_queues());
  return sim::from_micros(ts_us);
}

template <typename Sim>
void BasicMetronome<Sim>::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(static_cast<std::size_t>(cfg_.n_threads));
  for (int t = 0; t < cfg_.n_threads; ++t) {
    sim::BasicCore<Sim>* core = cores_[static_cast<std::size_t>(t) % cores_.size()];
    const auto ent = core->add_entity("metronome-" + std::to_string(t), -20);
    threads_.push_back(ThreadRef{core, ent});
    sleepers_.push_back(std::make_unique<sim::BasicSleepService<Sim>>(sim_, cfg_.sleep, core));
    sim_.spawn(thread_task(t));
  }
}

template <typename Sim>
sim::Task BasicMetronome<Sim>::thread_task(int thread_id) {
  sim::BasicCore<Sim>& core = *threads_[static_cast<std::size_t>(thread_id)].core;
  const auto ent = threads_[static_cast<std::size_t>(thread_id)].entity;
  sim::BasicSleepService<Sim>& sleeper = *sleepers_[static_cast<std::size_t>(thread_id)];
  const int n_queues = port_.n_rx_queues();
  std::vector<nic::PacketDesc> burst(static_cast<std::size_t>(cfg_.burst));

  // Start staggered so wake-up times are decorrelated from the outset.
  int curr = thread_id % n_queues;
  co_await sim_.sleep_for(static_cast<Time>(
      sim_.rng().uniform(0.0, static_cast<double>(cfg_.long_timeout))));

  for (;;) {
    // Cost of waking up: timer bookkeeping, syscall return, cache refill,
    // and the trylock CMPXCHG itself.
    co_await core.run_for(ent, calib::kWakeupOverheadCost + calib::kTrylockCost);

    QueueState& q = *queues_[static_cast<std::size_t>(curr)];
    ++q.total_tries;

    if (!q.lock.try_lock(thread_id)) {
      // Busy try: another thread is already unloading this queue.
      ++q.busy_tries;
      const int tried = curr;  // the sleep is attributed to the queue whose timeout armed it
      if (cfg_.primary_backup) {
        if (cfg_.random_backup && n_queues > 1) {
          curr = static_cast<int>(sim_.rng().uniform_u64(static_cast<std::uint64_t>(n_queues)));
        }
        const Time sleep_t0 = sim_.now();
        co_await sleeper.sleep(cfg_.long_timeout);
        note_sleep(q, thread_id, tried, sleep_t0, cfg_.long_timeout);
      } else {
        // Equal-timeouts ablation: no backup role, sleep the short timer.
        const Time armed = q.ts;
        const Time sleep_t0 = sim_.now();
        co_await sleeper.sleep(armed);
        note_sleep(q, thread_id, tried, sleep_t0, armed);
      }
      continue;
    }

    // --- busy period ----------------------------------------------------
    ++q.lock_successes;
    const Time acquire = sim_.now();
    const Time vacation = q.last_release >= 0 ? acquire - q.last_release : -1;
    nic::BasicRxRing<Sim>& ring = port_.rx_queue(curr);
    const auto nv = static_cast<double>(ring.size());
    std::uint64_t drained = 0;

    int n;
    while ((n = ring.pop_burst(burst.data(), cfg_.burst)) > 0) {
      drained += static_cast<std::uint64_t>(n);
      q.burst_fill.add(static_cast<double>(n));
      co_await core.run_for(ent, static_cast<Time>(n) * cfg_.per_packet_cost);
      if (cfg_.packet_work) {
        for (int i = 0; i < n; ++i) cfg_.packet_work(burst[static_cast<std::size_t>(i)]);
      }
      for (int i = 0; i < n; ++i) port_.tx().send(burst[static_cast<std::size_t>(i)]);
      q.packets += static_cast<std::uint64_t>(n);
    }
    // The final poll that finds the queue empty ends the busy period.
    co_await core.run_for(ent, calib::kEmptyPollCost);
    if (drained == 0) ++q.empty_polls;

    const Time release = sim_.now();
    q.last_release = release;
    q.lock.unlock(thread_id);
    if (trace::Tracer* t = sim_.tracer(); t != nullptr) [[unlikely]] {
      t->span(trace::id::kMetDrain, acquire, release - acquire, drained,
              static_cast<std::uint32_t>(thread_id), static_cast<std::uint32_t>(curr));
    }

    if (vacation >= 0) {
      const Time busy = release - acquire;
      q.vacation_us.add(sim::to_micros(vacation));
      if (q.vacation_hist != nullptr) q.vacation_hist->add(sim::to_micros(vacation));
      q.busy_us.add(sim::to_micros(busy));
      q.nv.add(nv);
      // Eq. (11): EWMA of the per-cycle load sample B / (V + B), eq. (4).
      q.rho.update(model::rho_estimate(static_cast<double>(busy), static_cast<double>(vacation)));
    }
    q.ts = compute_ts(q);

    // Primary role: re-arm the short timeout; by default contend for the
    // same queue again (it is likely to win there, §IV-E). A primary whose
    // busy period drained nothing moves on at random instead — stickiness
    // has no value on an idle queue, and without this amendment a
    // deployment with M < N could leave queues permanently unvisited
    // (trylocks never fail there, so backup hopping never kicks in).
    const bool stay = cfg_.sticky_primary && drained > 0;
    const int drained_queue = curr;
    if (!stay && n_queues > 1) {
      curr = static_cast<int>(sim_.rng().uniform_u64(static_cast<std::uint64_t>(n_queues)));
    }
    const Time armed = q.ts;
    const Time sleep_t0 = sim_.now();
    co_await sleeper.sleep(armed);
    note_sleep(q, thread_id, drained_queue, sleep_t0, armed);
  }
}

template <typename Sim>
void BasicMetronome<Sim>::note_sleep(QueueState& q, int thread_id, int queue, Time t0,
                                     Time armed) {
  const Time slept = sim_.now() - t0;
  q.slept_ns += static_cast<std::uint64_t>(slept);
  q.sleep_us.add(sim::to_micros(slept));
  if (trace::Tracer* t = sim_.tracer(); t != nullptr) [[unlikely]] {
    t->span(trace::id::kMetSleep, t0, slept, static_cast<std::uint64_t>(armed),
            static_cast<std::uint32_t>(thread_id), static_cast<std::uint32_t>(queue));
  }
}

template <typename Sim>
std::uint64_t BasicMetronome<Sim>::packets_processed() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->packets;
  return total;
}

template <typename Sim>
std::uint64_t BasicMetronome<Sim>::total_tries() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->total_tries;
  return total;
}

template <typename Sim>
std::uint64_t BasicMetronome<Sim>::busy_tries() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->busy_tries;
  return total;
}

template <typename Sim>
double BasicMetronome<Sim>::busy_try_fraction() const {
  const auto tries = total_tries();
  return tries ? static_cast<double>(busy_tries()) / static_cast<double>(tries) : 0.0;
}

template <typename Sim>
double BasicMetronome<Sim>::mean_rho() const {
  double sum = 0.0;
  for (const auto& q : queues_) sum += q->rho.value();
  return sum / static_cast<double>(queues_.size());
}

template <typename Sim>
double BasicMetronome<Sim>::mean_ts_us() const {
  double sum = 0.0;
  for (const auto& q : queues_) sum += sim::to_micros(q->ts);
  return sum / static_cast<double>(queues_.size());
}

template <typename Sim>
void BasicMetronome<Sim>::register_metrics(stats::MetricSet& set, const std::string& prefix) {
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    const std::string base = prefix + ".q" + std::to_string(q);
    QueueState& qs = *queues_[q];
    set.attach_counter(base + ".total_tries", qs.total_tries);
    set.attach_counter(base + ".busy_tries", qs.busy_tries);
    set.attach_counter(base + ".lock_successes", qs.lock_successes);
    set.attach_counter(base + ".packets", qs.packets);
    set.attach_counter(base + ".empty_polls", qs.empty_polls);
    set.attach_counter(base + ".slept_ns", qs.slept_ns);
    set.attach_summary(base + ".vacation_us", qs.vacation_us);
    set.attach_summary(base + ".busy_us", qs.busy_us);
    set.attach_summary(base + ".nv", qs.nv);
    set.attach_summary(base + ".sleep_us", qs.sleep_us);
    set.attach_summary(base + ".burst_fill", qs.burst_fill);
  }
}

template <typename Sim>
void BasicMetronome<Sim>::reset_stats() {
  for (auto& q : queues_) {
    q->total_tries = 0;
    q->busy_tries = 0;
    q->lock_successes = 0;
    q->packets = 0;
    q->empty_polls = 0;
    q->slept_ns = 0;
    q->vacation_us.reset();
    q->busy_us.reset();
    q->nv.reset();
    q->sleep_us.reset();
    q->burst_fill.reset();
  }
}

template class BasicMetronome<sim::Simulation>;
template class BasicMetronome<sim::LadderSimulation>;
template class BasicMetronome<sim::WheelSimulation>;

}  // namespace metro::core
