// Exponentially weighted moving average — the paper's eq. (11) load
// estimator: rho(i) = (1 - alpha) rho(i-1) + alpha * B(i)/(V(i) + B(i)).
#pragma once

namespace metro::core {

class Ewma {
 public:
  explicit Ewma(double alpha, double initial = 0.0) : alpha_(alpha), value_(initial) {}

  double update(double sample) {
    if (!primed_) {
      value_ = sample;  // avoid a long warm-up from an arbitrary initial
      primed_ = true;
    } else {
      value_ = (1.0 - alpha_) * value_ + alpha_ * sample;
    }
    return value_;
  }

  double value() const noexcept { return value_; }
  double alpha() const noexcept { return alpha_; }
  void reset(double value = 0.0) {
    value_ = value;
    primed_ = false;
  }

 private:
  double alpha_;
  double value_;
  bool primed_ = false;
};

}  // namespace metro::core
