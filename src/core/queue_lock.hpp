// The per-queue trylock (paper §III-B).
//
// On real hardware this is a single CMPXCHG on a cache line dedicated to
// the queue — see rt/trylock.hpp for the std::atomic implementation the
// real-thread runtime uses. Inside the (single-threaded) discrete-event
// simulator the race is resolved by event ordering, so the lock reduces to
// an owner flag; the calibrated CMPXCHG cost is charged by the Metronome
// loop via calib::kTrylockCost.
#pragma once

#include <cassert>
#include <cstdint>

namespace metro::core {

class QueueLock {
 public:
  /// Returns true and takes ownership if the lock was free.
  bool try_lock(int thread_id) noexcept {
    if (owner_ >= 0) return false;
    owner_ = thread_id;
    return true;
  }

  void unlock(int thread_id) noexcept {
    assert(owner_ == thread_id && "unlock by non-owner");
    (void)thread_id;
    owner_ = -1;
  }

  bool locked() const noexcept { return owner_ >= 0; }
  int owner() const noexcept { return owner_; }

 private:
  int owner_ = -1;
};

}  // namespace metro::core
