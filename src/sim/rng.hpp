// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** (Blackman & Vigna) — fast, high quality, and fully
// reproducible across platforms, unlike std::mt19937 + distribution objects
// whose output is implementation-defined for some distributions. All
// distribution sampling here is implemented from first principles so a given
// seed yields the same experiment on any toolchain.
#pragma once

#include <cmath>
#include <cstdint>

namespace metro::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Normal via Box–Muller (one value per call; simple and reproducible).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * radius * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace metro::sim
