// Coroutine-based simulation processes.
//
// A simulated thread (a Metronome worker, a static-polling lcore, a traffic
// source, ...) is written as a C++20 coroutine returning `Task`. The body
// reads like the paper's pseudo-code: `co_await sim.sleep_for(ts)` suspends
// the process and the event queue resumes it at the right virtual time.
//
// Lifetime model: a Task starts suspended. `Simulation::spawn()` takes
// ownership of the coroutine frame, schedules its first resume at the
// current virtual time, and destroys all outstanding frames when the
// Simulation is destroyed. Processes are expected to run until they complete
// or until the simulation ends; there is no join — completion is
// communicated through shared state owned by the experiment harness.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace metro::sim {

class [[nodiscard]] Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Stay suspended at the end so the owning Simulation can safely
    // destroy the frame (handles are never destroyed mid-execution).
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Release ownership of the coroutine frame (used by Simulation::spawn).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

  bool valid() const noexcept { return handle_ != nullptr; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace metro::sim
