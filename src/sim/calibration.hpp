// Calibration constants for the simulated testbed.
//
// The paper's testbed is an isolated NUMA node of an Intel Xeon Silver
// @ 2.1 GHz (Linux 5.4), Intel X520 10 GbE and XL710 40 GbE NICs, MoonGen as
// the traffic source. We have no such hardware, so every timing/power
// constant the models consume is gathered here, next to the paper
// observation it was fitted against. Changing a constant re-shapes the whole
// experimental campaign consistently.
#pragma once

#include "sim/time.hpp"

namespace metro::sim::calib {

// --- CPU / DVFS -------------------------------------------------------

/// Xeon Silver 4110: nominal 2.1 GHz, min P-state 0.8 GHz.
inline constexpr double kNominalGhz = 2.1;
inline constexpr double kMinFreqRatio = 0.8 / 2.1;

/// Linux ondemand governor defaults: 10 ms sampling, 95% up-threshold.
inline constexpr Time kOndemandSamplingPeriod = 10_ms;
inline constexpr double kOndemandUpThreshold = 0.95;

// --- Power (RAPL-style package model) ----------------------------------
//
// Fitted to Fig. 11: package power spans ~12..30 W across {static,
// Metronome} x {ondemand, performance} x {0..10 Gbps}; static polling on
// one core with `performance` sits near the upper range, idle Metronome
// with `ondemand` near the lower.

/// Constant package base (uncore, DRAM controller, fabric), W.
inline constexpr double kPackageBaseWatts = 11.0;
/// Static (leakage + clocking) power of an active core at nominal f, W.
inline constexpr double kCoreStaticWatts = 1.1;
/// Dynamic power of a fully-busy core at nominal f (scales ~f^3), W.
inline constexpr double kCoreDynamicWatts = 3.9;
/// Power of an idle core parked in a shallow C-state, W.
inline constexpr double kCoreIdleWatts = 0.35;

// --- Sleep services -----------------------------------------------------
//
// Fig. 1 reports wall-clock sleep latency for requested timeouts of
// 1/10/100 us: hr_sleep ~ {3.85, 13.46, 108.45} us, nanosleep (slack = 1 us)
// ~ {3.88, 13.48, 108.52} us, with slightly wider spread for nanosleep.
// We model actual = requested + overhead(requested), with overhead sampled
// from a Normal whose mean/sd are log-interpolated between the anchors.

struct SleepAnchor {
  Time requested;
  double overhead_mean_us;
  double overhead_sd_us;
};

inline constexpr SleepAnchor kHrSleepAnchors[] = {
    {1_us, 2.85, 0.020},
    {10_us, 3.46, 0.022},
    {100_us, 8.45, 0.045},
};
inline constexpr SleepAnchor kNanosleepAnchors[] = {
    {1_us, 2.88, 0.035},
    {10_us, 3.48, 0.038},
    {100_us, 8.52, 0.075},
};

/// Default timer slack applied to nanosleep when the thread does not set
/// PR_SET_TIMERSLACK (Linux default: 50 us). hr_sleep ignores slack.
inline constexpr Time kDefaultTimerSlack = 50_us;

// --- OS scheduling jitter ------------------------------------------------
//
// After a sleep timer fires the thread must still be dispatched. On an
// otherwise idle core this costs a sub-microsecond context switch; on a
// contended core the waker may wait for the running task to be preempted.
// Rarely, kernel housekeeping delays dispatch by tens of microseconds —
// Fig. 4 shows wake-ups landing beyond TL for M = 2. kDispatchTail* model
// that heavy tail.

inline constexpr Time kDispatchBase = 400_ns;
/// Extra mean dispatch delay (exponential) when the core is contended.
inline constexpr Time kDispatchContendedMean = 2_us;
/// Probability of a heavy-tail dispatch event (kernel daemon interference;
/// rare on the paper's isolated NUMA node, but visible in Fig. 4 as
/// wake-ups beyond TL).
inline constexpr double kDispatchTailProb = 2e-5;
inline constexpr Time kDispatchTailMin = 20_us;
inline constexpr Time kDispatchTailMax = 100_us;

// --- DPDK-side costs -----------------------------------------------------
//
// Per-packet retrieval+processing cost for l3fwd (LPM route, MAC rewrite,
// TTL/checksum update) on the Xeon Silver. Chosen so a single busy thread
// drains ~23.5 Mpps >= the 14.88 Mpps 10 GbE line rate, matching the
// paper's observation that one Metronome thread sustains line rate and
// rho ~= 0.6+ under 64 B line-rate traffic.
inline constexpr Time kL3fwdPerPacketCost = 38_ns;
/// IPsec gateway (ESP encap, AES-CBC offloaded to the NIC, software
/// encap/decap): the paper's static app tops out at 5.61 Mpps. This is the
/// cost the timing path charges in the default `--crypto=calibrated` bench
/// mode; `--crypto=live` (fig16 / kernel bench) additionally executes the
/// real software gateway per packet via nic::PacketWork to measure the
/// crypto substrate without perturbing simulated results.
inline constexpr Time kIpsecPerPacketCost = 178_ns;
/// FloWatcher run-to-completion (per-packet + per-flow statistics).
inline constexpr Time kFlowatcherPerPacketCost = 55_ns;

/// Cost of one empty poll of an Rx queue (read head/tail pointers).
inline constexpr Time kEmptyPollCost = 35_ns;
/// User-space trylock (CMPXCHG) cost: success / failure.
inline constexpr Time kTrylockCost = 12_ns;
/// Fixed per-wakeup bookkeeping in the Metronome loop (timer re-arm,
/// entering the sleep syscall, cache refill after wake). Fitted to the
/// low-rate CPU floor the paper reports (~18.6% at 0.5 Gbps, M = 3).
inline constexpr Time kWakeupOverheadCost = 1600_ns;

/// Fixed path latency outside the software's control: NIC DMA + PCIe on
/// both directions plus the MoonGen timestamping offset. Fitted to the
/// paper's minimum observed latency (static DPDK: 6.83 us end to end).
inline constexpr Time kFixedPathLatency = 3400_ns;

// --- XDP model ------------------------------------------------------------
//
// Interrupt-driven in-kernel path: per-IRQ overhead covers the hardirq,
// softirq scheduling and NAPI housekeeping; per-packet cost is higher than
// DPDK's (no user-space bypass amortisation; xdp_router_ipv4 route lookup).
// Fitted to Fig. 10: ~4 cores needed near 10 GbE line rate, CPU ~200+%,
// latency above Metronome at line rate, comparable at low rates.
inline constexpr Time kXdpIrqOverhead = 2600_ns;
inline constexpr Time kXdpPerPacketCost = 230_ns;
inline constexpr int kXdpNapiBudget = 64;
/// Interrupt mitigation (rx-usecs): the NIC delays the IRQ to batch packets.
inline constexpr Time kXdpIrqMitigation = 8_us;
/// Softirq dispatch latency from hardirq to NAPI poll start.
inline constexpr Time kXdpSoftirqLatency = 3_us;

// --- NICs -----------------------------------------------------------------

/// Intel X520 (82599) 10 GbE: line rate 14.88 Mpps @ 64 B frames.
inline constexpr double kX520LineRateMpps = 14.88;
inline constexpr int kX520DefaultRingSize = 512;

/// Intel XL710 40 GbE: processing-rate cap of ~37 Mpps (spec update #13).
inline constexpr double kXl710MaxMpps = 37.0;
/// 40 GbE deployments provision deep rings (DPDK i40e supports up to 4096
/// descriptors) to ride out scheduling hiccups at these rates.
inline constexpr int kXl710DefaultRingSize = 4096;

/// DPDK default Rx/Tx burst size used throughout the paper.
inline constexpr int kBurstSize = 32;
/// Default Tx batch threshold (descriptors held back until the batch
/// fills); §V-C studies reducing it to 1.
inline constexpr int kTxBatchDefault = 32;

}  // namespace metro::sim::calib
