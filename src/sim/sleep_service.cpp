#include "sim/sleep_service.hpp"

#include <algorithm>
#include <cmath>
#include <span>

namespace metro::sim {

namespace {

/// Log-interpolate the overhead distribution between calibrated anchors.
struct Overhead {
  double mean_us;
  double sd_us;
};

Overhead interpolate(std::span<const calib::SleepAnchor> anchors, Time requested) {
  if (requested <= anchors.front().requested) {
    return {anchors.front().overhead_mean_us, anchors.front().overhead_sd_us};
  }
  if (requested >= anchors.back().requested) {
    return {anchors.back().overhead_mean_us, anchors.back().overhead_sd_us};
  }
  for (std::size_t i = 0; i + 1 < anchors.size(); ++i) {
    if (requested <= anchors[i + 1].requested) {
      const double x0 = std::log10(static_cast<double>(anchors[i].requested));
      const double x1 = std::log10(static_cast<double>(anchors[i + 1].requested));
      const double x = std::log10(static_cast<double>(requested));
      const double t = (x - x0) / (x1 - x0);
      return {anchors[i].overhead_mean_us +
                  t * (anchors[i + 1].overhead_mean_us - anchors[i].overhead_mean_us),
              anchors[i].overhead_sd_us +
                  t * (anchors[i + 1].overhead_sd_us - anchors[i].overhead_sd_us)};
    }
  }
  return {anchors.back().overhead_mean_us, anchors.back().overhead_sd_us};
}

}  // namespace

template <typename Sim>
Time BasicSleepService<Sim>::sample_timer_latency(Time requested) {
  Rng& rng = sim_.rng();
  if (cfg_.kind == SleepKind::kHrSleep && cfg_.sub_us_fast_return && requested < 1_us) {
    // Patched fast path: bare syscall entry/exit, no timer programmed.
    return 150_ns + static_cast<Time>(rng.normal(0.0, 15.0));
  }
  const auto anchors = (cfg_.kind == SleepKind::kHrSleep)
                           ? std::span<const calib::SleepAnchor>(calib::kHrSleepAnchors)
                           : std::span<const calib::SleepAnchor>(calib::kNanosleepAnchors);
  const Overhead oh = interpolate(anchors, std::max<Time>(requested, 1));
  double latency_us = to_micros(requested) + rng.normal(oh.mean_us, oh.sd_us);
  if (cfg_.kind == SleepKind::kNanosleep && cfg_.timer_slack > 0) {
    // Timer coalescing: firing skews late within the slack window.
    latency_us += rng.uniform(0.3 * to_micros(cfg_.timer_slack), to_micros(cfg_.timer_slack));
  }
  const Time latency = from_micros(latency_us);
  return std::max<Time>(latency, 1);
}

template <typename Sim>
Time BasicSleepService<Sim>::sample_dispatch_latency() {
  Rng& rng = sim_.rng();
  Time d = calib::kDispatchBase;
  if (core_ != nullptr && core_->runnable_count() > 0) {
    d += static_cast<Time>(rng.exponential(static_cast<double>(calib::kDispatchContendedMean)));
  }
  if (cfg_.dispatch_tail && rng.chance(calib::kDispatchTailProb)) {
    d += static_cast<Time>(rng.uniform(static_cast<double>(calib::kDispatchTailMin),
                                       static_cast<double>(calib::kDispatchTailMax)));
  }
  return d;
}

template class BasicSleepService<Simulation>;
template class BasicSleepService<LadderSimulation>;
template class BasicSleepService<WheelSimulation>;

}  // namespace metro::sim
