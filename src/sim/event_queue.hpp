/// \file event_queue.hpp
/// Pluggable pending-event stores for the discrete-event kernel.
///
/// The kernel in simulation.hpp is templated over an *event-queue backend*:
/// the data structure that holds every future-timestamped event. Three
/// backends are provided:
///
///   * BinaryHeapBackend — the default. A binary min-heap of 32-byte POD
///     entries with Floyd pops and positional O(log n) erase. Best up to a
///     few thousand pending events; its pop cost grows as log n.
///   * LadderQueueBackend — a ladder/calendar queue (Tang et al. style):
///     far-future events sit unsorted in "top", are spilled into rungs of
///     ever-finer buckets on demand, and only the imminent bucket is ever
///     sorted ("bottom"). Amortised O(1) per event, independent of the
///     pending count — built for the >10k-pending-event regime of the
///     fig13/14 multiqueue and fig15 rate-sweep scenarios.
///   * TimingWheelBackend — a hierarchical timing wheel (the structure OS
///     timer subsystems use): fixed power-of-two slot grids per level,
///     each level covering its parent slot at finer granularity, with a
///     per-level cascade on consumption and an unsorted overflow pool for
///     events beyond the top level's horizon. O(1) insert, and each event
///     cascades at most once per level — built for the 1M+ concurrently
///     pending per-flow timers of the fig13_fullstack_1m scenario.
///
/// ## Backend concept and invariant contract
///
/// A backend `B` must satisfy `EventQueueBackend<B>` (checked against
/// NullQueueContext below). Operations taking a `ctx` receive a *queue
/// context* from the owning simulation providing:
///
///   * `ctx.moved(slot, pos)`  — position-tracking hook: must be invoked
///     whenever a kCallback entry comes to rest at a new position, *iff*
///     the backend declares `kPositionalCancel == true`. The simulation
///     uses the recorded position for O(log n) `erase_at` cancellation.
///   * `ctx.dead(entry)` — liveness query: true when a kCallback entry has
///     been cancelled (tombstoned). Backends with
///     `kPositionalCancel == false` never see a cancelled entry removed
///     eagerly; they must use this hook to drop tombstones lazily and must
///     never surface a dead entry from peek()/pop_min().
///
/// Every backend, regardless of cancellation style, must uphold the
/// kernel's three invariants:
///
///   1. **Total order.** peek()/pop_min() yield live entries in strictly
///      increasing (at, seq) order — the pair is unique, so the order is a
///      total one and runs are bit-for-bit reproducible across backends.
///   2. **Allocation freedom in steady state.** Internal storage may grow
///      while warming up but must be recycled, never released, so that a
///      periodic steady-state workload performs zero heap allocations
///      (enforced by tests/test_alloc_free.cpp for both backends).
///   3. **Exact live accounting.** size() counts live (non-cancelled)
///      entries only and empty() == (size() == 0), even while tombstones
///      still occupy internal storage.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "stats/trace.hpp"

namespace metro::sim {

/// Discriminates the two event payload flavours carried by EventEntry.
enum class EventKind : std::uint32_t {
  kCoroutine,  ///< payload is a raw coroutine frame address (hot path)
  kCallback    ///< slot indexes the simulation's pooled callback table
};

/// 32-byte POD event record; comparisons and moves stay inside contiguous
/// backend storage. For kCoroutine entries `payload` is the frame address;
/// for kCallback entries it carries the slot *generation* at scheduling
/// time, which is how tombstoning backends detect cancellation (a
/// cancelled slot's generation has been bumped).
struct EventEntry {
  Time at;            ///< absolute virtual timestamp, ns
  std::uint64_t seq;  ///< global insertion sequence; ties broken by it
  void* payload;      ///< coroutine frame, or encoded generation
  std::uint32_t slot; ///< kCallback: index into the callback slot pool
  EventKind kind;     ///< payload discriminator
};
static_assert(sizeof(EventEntry) == 32);
static_assert(std::is_trivially_copyable_v<EventEntry>);

/// Strict weak (in fact total) order: earlier time first, then earlier
/// insertion. (at, seq) pairs are unique, so this is the total execution
/// order shared by every backend and the now-FIFO.
inline bool event_precedes(const EventEntry& a, const EventEntry& b) noexcept {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

/// Branch-free event_precedes as 0/1. The heap descent picks a child by a
/// data-dependent 50/50 choice; as a conditional branch that is a
/// mispredict every other level and dominates pop cost, so the pick is
/// computed with flag arithmetic instead.
inline std::uint32_t event_precedes_u(const EventEntry& a, const EventEntry& b) noexcept {
  return static_cast<std::uint32_t>(
      static_cast<unsigned>(a.at < b.at) |
      (static_cast<unsigned>(a.at == b.at) & static_cast<unsigned>(a.seq < b.seq)));
}

/// Inert queue context used to type-check backends against the concept;
/// also handy for backend unit tests that never cancel.
struct NullQueueContext {
  void moved(std::uint32_t, std::uint32_t) const noexcept {}
  bool dead(const EventEntry&) const noexcept { return false; }
};

/// The backend policy concept (see the file comment for the full invariant
/// contract). `peek`/`pop_min` have the precondition `!empty()`.
///
/// One cancellation-path member is additionally required depending on
/// `kPositionalCancel` (it cannot be expressed in one concept because only
/// one of the two is ever instantiated):
///   * true  -> `erase_at(pos, slot, ctx)` removes the entry whose
///     position was last reported via ctx.moved() for `slot`;
///   * false -> `on_cancelled()` notes that one stored entry was
///     tombstoned (ctx.dead() will flag it from now on).
template <typename B>
concept EventQueueBackend =
    std::is_default_constructible_v<B> &&
    requires(B b, const B cb, const EventEntry& e, NullQueueContext ctx) {
      { B::kPositionalCancel } -> std::convertible_to<bool>;
      { b.push(e, ctx) };
      { b.peek(ctx) } -> std::convertible_to<const EventEntry&>;
      { b.pop_min(ctx) };
      { cb.size() } -> std::convertible_to<std::size_t>;
      { cb.empty() } -> std::convertible_to<bool>;
      { cb.for_each([](const EventEntry&) {}) };
      { b.clear() };
    };

// ---------------------------------------------------------------------------
// Binary heap backend (default)
// ---------------------------------------------------------------------------

/// Binary min-heap over (at, seq) with Floyd pops, a branch-free descent
/// and positional erase. Cancellation is *eager*: the simulation records
/// each kCallback entry's heap position via ctx.moved() and calls
/// erase_at(), so no tombstones ever exist (ctx.dead() is never consulted).
class BinaryHeapBackend {
 public:
  /// Eager positional cancellation: the owner tracks positions from
  /// ctx.moved() and erases in O(log n).
  static constexpr bool kPositionalCancel = true;

  /// Insert an entry; O(log n).
  template <typename Ctx>
  void push(const EventEntry& e, Ctx ctx) {
    heap_.push_back(e);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1), e, ctx);
  }

  /// The live minimum. Precondition: !empty().
  template <typename Ctx>
  const EventEntry& peek(Ctx) const noexcept {
    return heap_[0];
  }

  /// Remove the minimum (Floyd's optimisation): percolate the hole to the
  /// bottom choosing the smaller child — one compare per level instead of
  /// two — then bubble the displaced last element up. In an event queue
  /// the last element is almost always late, so the bubble-up is O(1).
  template <typename Ctx>
  void pop_min(Ctx ctx) {
    const EventEntry last = heap_.back();
    heap_.pop_back();
    const auto n = static_cast<std::uint32_t>(heap_.size());
    if (n == 0) return;
    std::uint32_t pos = 0;
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      // Branch-free smaller-child pick; when there is no right child this
      // compares the left child against itself (false), which is safe.
      const auto has_right = static_cast<std::uint32_t>(child + 1 < n);
      child += has_right & event_precedes_u(heap_[child + has_right], heap_[child]);
      place(pos, heap_[child], ctx);
      pos = child;
    }
    sift_up(pos, last, ctx);
  }

  /// Remove the entry at heap position `pos` (as last reported through
  /// ctx.moved() for `slot`); O(log n).
  template <typename Ctx>
  void erase_at(std::uint32_t pos, std::uint32_t slot, Ctx ctx) {
    assert(pos < heap_.size() && heap_[pos].slot == slot &&
           heap_[pos].kind == EventKind::kCallback &&
           "stale position: a ctx.moved() update was missed");
    (void)slot;
    const EventEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;
    if (pos > 0 && event_precedes(last, heap_[(pos - 1) / 2])) {
      sift_up(pos, last, ctx);
    } else {
      sift_down(pos, last, ctx);
    }
  }

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  /// Visit every stored entry (pending-event cleanup on destruction).
  template <typename F>
  void for_each(F f) const {
    for (const EventEntry& e : heap_) f(e);
  }

  void clear() { heap_.clear(); }

 private:
  template <typename Ctx>
  void place(std::uint32_t pos, const EventEntry& e, Ctx ctx) {
    heap_[pos] = e;
    if (e.kind == EventKind::kCallback) ctx.moved(e.slot, pos);
  }

  /// Move `e` up from the hole at `pos` to its final position.
  template <typename Ctx>
  void sift_up(std::uint32_t pos, const EventEntry& e, Ctx ctx) {
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 2;
      if (!event_precedes(e, heap_[parent])) break;
      place(pos, heap_[parent], ctx);
      pos = parent;
    }
    place(pos, e, ctx);
  }

  /// Move `e` down from the hole at `pos` to its final position.
  template <typename Ctx>
  void sift_down(std::uint32_t pos, const EventEntry& e, Ctx ctx) {
    const auto n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && event_precedes(heap_[child + 1], heap_[child])) ++child;
      if (!event_precedes(heap_[child], e)) break;
      place(pos, heap_[child], ctx);
      pos = child;
    }
    place(pos, e, ctx);
  }

  std::vector<EventEntry> heap_;
};

static_assert(EventQueueBackend<BinaryHeapBackend>);

// ---------------------------------------------------------------------------
// Ladder queue backend
// ---------------------------------------------------------------------------

/// Geometry/tuning knobs of the LadderQueueBackend. The defaults are the
/// constants the queue shipped with (32 buckets per rung, 32-entry sort
/// threshold, 64-entry bottom spill) and every existing behaviour is
/// preserved under them; the full-stack benches can sweep these to find
/// the best geometry for a given pending-population profile.
struct LadderConfig {
  /// Buckets per rung; also the spill fan-out (width shrink factor).
  std::uint32_t buckets = 32;
  /// A dequeued bucket with at most this many entries is sorted straight
  /// into bottom instead of spawning a child rung.
  std::size_t sort_threshold = 32;
  /// Bottom size at which an insert spills bottom into a fresh rung
  /// (keeps the sorted-insert cost bounded).
  std::size_t bottom_spill = 64;
};

/// Ladder/calendar queue tuned for very large pending-event populations.
///
/// Structure (earliest at the bottom):
///
///     top     — unsorted vector for events at/after `top_floor_`
///     rungs   — a stack of rungs, each LadderConfig::buckets buckets of
///               equal width; inner rungs subdivide a parent bucket
///     bottom  — the imminent range, kept sorted by (at, seq)
///
/// An insert is O(1) into top or a rung bucket, or a bounded sorted insert
/// into bottom (bottom spills into a fresh rung past a small threshold).
/// A dequeue pops bottom's front; when bottom drains, the next non-empty
/// bucket of the innermost rung is either sorted into bottom (small
/// buckets) or subdivided into a child rung (large ones), and when rungs
/// are exhausted, top is spilled into a fresh epoch of rung 0. Each event
/// therefore takes amortised O(1) structural moves regardless of how many
/// are pending — compared with the heap's log n — at the price of less
/// predictable per-operation latency.
///
/// Cancellation is *lazy* (kPositionalCancel == false): the owner
/// tombstones the slot (bumping its generation) and tells the backend via
/// on_cancelled(); dead entries are dropped whenever ctx.dead() flags them
/// during spills, sorts or peeks. size() always reports live entries only.
///
/// Steady-state allocation freedom: rungs are pooled and reused, bucket /
/// bottom / top vectors are cleared but never shrunk, so a periodic
/// workload stops allocating once every container has seen its peak.
class LadderQueueBackend {
 public:
  /// Lazy tombstone cancellation (see class comment).
  static constexpr bool kPositionalCancel = false;

  /// Default geometry (LadderConfig defaults).
  LadderQueueBackend() = default;
  /// Custom geometry — rung/spill knobs for the bench sweeps. Degenerate
  /// geometry (buckets < 2 would divide by zero in the width computation,
  /// bottom_spill < 1 would spill on every insert) is rejected loudly in
  /// every build type: sweeps run Release, where an assert would vanish.
  explicit LadderQueueBackend(const LadderConfig& cfg) : cfg_(cfg) {
    if (cfg.buckets < 2 || cfg.bottom_spill < 1) {
      throw std::invalid_argument("LadderConfig: need buckets >= 2 and bottom_spill >= 1");
    }
  }

  /// The geometry this instance runs with.
  const LadderConfig& config() const noexcept { return cfg_; }

  /// Insert an entry: O(1) into top or a rung bucket, bounded sorted
  /// insert into bottom.
  template <typename Ctx>
  void push(const EventEntry& e, Ctx ctx) {
    ++live_;
    if (e.at >= top_floor_) {
      if (top_.empty() || e.at < top_min_) top_min_ = e.at;
      if (top_.empty() || e.at > top_max_) top_max_ = e.at;
      top_.push_back(e);
      return;
    }
    if (e.at < boundary()) {
      insert_bottom(e, ctx);
      return;
    }
    // Walk rungs innermost -> outermost; the first rung whose range covers
    // e.at owns it. The rung-chaining invariant (rung k's end == the start
    // of rung k-1's next unconsumed bucket, and exhausted rungs are popped
    // eagerly) guarantees the bucket index is never below the rung's
    // consumption point.
    for (std::uint32_t r = n_rungs_; r-- > 0;) {
      Rung& rung = rungs_[r];
      if (e.at >= rung.end) continue;
      const std::uint32_t idx = rung.bucket_index(e.at);
      assert(idx >= rung.cur);
      rung.buckets[idx].push_back(e);
      ++rung.count;
      return;
    }
    // Unreachable while the routing invariants hold: [boundary, top_floor)
    // is exactly the union of the active rungs' unconsumed ranges.
    assert(false && "ladder routing gap");
    insert_bottom(e, ctx);
  }

  /// The live minimum. Precondition: !empty().
  template <typename Ctx>
  const EventEntry& peek(Ctx ctx) {
    ensure_bottom(ctx);
    return bottom_[bottom_head_];
  }

  /// Remove the live minimum. Precondition: !empty().
  template <typename Ctx>
  void pop_min(Ctx ctx) {
    ensure_bottom(ctx);
    --live_;
    if (++bottom_head_ == bottom_.size()) {
      bottom_.clear();  // recycle capacity, never shrink
      bottom_head_ = 0;
    }
  }

  /// Tombstone notification: one pending entry was cancelled by the owner
  /// (its slot generation is already bumped, so ctx.dead() now flags it).
  void on_cancelled() noexcept {
    assert(live_ > 0);
    --live_;
  }

  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// Visit every stored entry, tombstones included (the owner re-checks
  /// liveness; pending-event cleanup on destruction).
  template <typename F>
  void for_each(F f) const {
    for (std::size_t i = bottom_head_; i < bottom_.size(); ++i) f(bottom_[i]);
    for (std::uint32_t r = 0; r < n_rungs_; ++r) {
      for (const auto& bucket : rungs_[r].buckets) {
        for (const EventEntry& e : bucket) f(e);
      }
    }
    for (const EventEntry& e : top_) f(e);
  }

  void clear() {
    bottom_.clear();
    bottom_head_ = 0;
    for (std::uint32_t r = 0; r < n_rungs_; ++r) rungs_[r].reset();
    n_rungs_ = 0;
    top_.clear();
    top_floor_ = 0;
    live_ = 0;
  }

  /// Active rung count (observability for tests and the bench).
  std::uint32_t rungs_in_use() const noexcept { return n_rungs_; }
  /// Start of the current epoch's far-future region (top threshold).
  Time top_floor() const noexcept { return top_floor_; }

  /// Attach a trace recorder for structural events (spill, epoch open).
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

 private:
  /// start + n * width, saturated at the Time maximum (events may carry
  /// arbitrary int64 timestamps; rung geometry must not overflow).
  static Time sat_offset(Time start, std::uint64_t n, Time width) noexcept {
    const auto off = n * static_cast<std::uint64_t>(width);
    const auto room = static_cast<std::uint64_t>(INT64_MAX - start);
    return off > room ? INT64_MAX : start + static_cast<Time>(off);
  }

  /// One rung: cfg.buckets buckets of `width` ns covering [start, end).
  /// The last bucket is an *overflow* bucket absorbing [start + (n-1) *
  /// width, end) — `end` may exceed start + n * width when a bottom-spill
  /// rung is stretched up to the outer boundary so that no time range is
  /// left uncovered between rungs. The bucket vector is sized once per
  /// pooled rung (acquire_rung) and reused thereafter.
  struct Rung {
    Time start = 0;  ///< time of bucket 0's left edge
    Time width = 1;  ///< bucket width, ns (>= 1)
    Time end = 0;    ///< exclusive upper edge of the rung's range
    std::uint32_t cur = 0;     ///< next unconsumed bucket index
    std::size_t count = 0;     ///< stored entries (tombstones included)
    std::vector<std::vector<EventEntry>> buckets;

    std::uint32_t n_buckets() const noexcept {
      return static_cast<std::uint32_t>(buckets.size());
    }

    std::uint32_t bucket_index(Time at) const noexcept {
      const auto idx = static_cast<std::uint64_t>((at - start) / width);
      return idx < n_buckets() - 1 ? static_cast<std::uint32_t>(idx) : n_buckets() - 1;
    }

    /// Exclusive right edge of bucket `idx` (the overflow bucket ends at
    /// the rung's own end).
    Time bucket_end(std::uint32_t idx) const noexcept {
      if (idx == n_buckets() - 1) return end;
      return std::min(end, sat_offset(start, idx + 1, width));
    }

    void reset() {
      for (auto& b : buckets) b.clear();  // keep capacities
      cur = 0;
      count = 0;
    }
  };

  /// Left edge of the first unconsumed region: everything strictly below
  /// it belongs to bottom.
  Time boundary() const noexcept {
    if (n_rungs_ == 0) return top_floor_;
    const Rung& r = rungs_[n_rungs_ - 1];
    return std::min(r.end, sat_offset(r.start, r.cur, r.width));
  }

  template <typename Ctx>
  void insert_bottom(const EventEntry& e, Ctx ctx) {
    const auto first = bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_);
    const auto pos = std::upper_bound(first, bottom_.end(), e,
                                      [](const EventEntry& a, const EventEntry& b) {
                                        return event_precedes(a, b);
                                      });
    bottom_.insert(pos, e);
    if (bottom_.size() - bottom_head_ > cfg_.bottom_spill) spill_bottom(ctx);
  }

  /// Move an oversized bottom into a fresh innermost rung. The rung is
  /// stretched to end exactly at the current boundary, so the union of
  /// bottom + rungs + top still tiles the whole time axis with no gap or
  /// overlap (the overflow bucket absorbs the stretch).
  template <typename Ctx>
  void spill_bottom(Ctx ctx) {
    const Time lo = bottom_[bottom_head_].at;
    const Time hi = bottom_.back().at;
    if (lo == hi) return;  // single timestamp: appends are already O(1)
    const Time cap = boundary();
    assert(cap > hi);
    Rung& rung = acquire_rung();
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    rung.start = lo;
    rung.width = static_cast<Time>((span + cfg_.buckets - 1) / cfg_.buckets);
    rung.end = cap;
    for (std::size_t i = bottom_head_; i < bottom_.size(); ++i) {
      const EventEntry& e = bottom_[i];
      if (ctx.dead(e)) continue;
      rung.buckets[rung.bucket_index(e.at)].push_back(e);
      ++rung.count;
    }
    bottom_.clear();
    bottom_head_ = 0;
  }

  /// Pop every exhausted rung off the top of the stack. Keeping exhausted
  /// rungs out of the stack is what lets push() assume the innermost
  /// rung's consumption point is a valid routing boundary.
  void pop_exhausted_rungs() {
    while (n_rungs_ > 0 && rungs_[n_rungs_ - 1].count == 0) {
      rungs_[--n_rungs_].reset();
    }
  }

  /// Refill bottom until its front is the global live minimum, dropping
  /// tombstones on the way. Precondition: live_ > 0.
  template <typename Ctx>
  void ensure_bottom(Ctx ctx) {
    for (;;) {
      // Drop dead entries surfacing at the front.
      while (bottom_head_ < bottom_.size() && ctx.dead(bottom_[bottom_head_])) {
        if (++bottom_head_ == bottom_.size()) {
          bottom_.clear();
          bottom_head_ = 0;
        }
      }
      if (bottom_head_ < bottom_.size()) return;  // front is the live min
      pop_exhausted_rungs();
      if (n_rungs_ > 0) {
        const std::uint32_t ri = n_rungs_ - 1;
        Rung& rung = rungs_[ri];
        while (rung.buckets[rung.cur].empty()) {
          ++rung.cur;
          assert(rung.cur < rung.n_buckets());
        }
        const std::uint32_t bi = rung.cur;
        auto& bucket = rung.buckets[bi];
        const Time bucket_lo = sat_offset(rung.start, bi, rung.width);
        const Time bucket_hi = rung.bucket_end(bi);
        ++rung.cur;  // boundary() advances past this bucket
        rung.count -= bucket.size();
        if (bucket.size() <= cfg_.sort_threshold || bucket_hi - bucket_lo <= 1) {
          sort_into_bottom(bucket, ctx);
          bucket.clear();
        } else {
          // Detach the bucket before acquire_rung(): growing the rung pool
          // may reallocate and invalidate every reference into it. The
          // swap-back afterwards pins the grown capacity to its bucket so
          // steady-state workloads stop allocating once warm.
          scratch_.swap(bucket);
          spawn_child(bucket_lo, bucket_hi, ctx);
          scratch_.clear();
          rungs_[ri].buckets[bi].swap(scratch_);
        }
        pop_exhausted_rungs();
        continue;
      }
      // Rungs exhausted: start a new epoch from top.
      assert(!top_.empty() && "live_ > 0 but no entries stored");
      spawn_from_top(ctx);
    }
  }

  /// Move one dequeued bucket into bottom, sorted by the total (at, seq)
  /// order, dropping tombstones.
  template <typename Ctx>
  void sort_into_bottom(std::vector<EventEntry>& bucket, Ctx ctx) {
    assert(bottom_.empty() && bottom_head_ == 0);
    for (const EventEntry& e : bucket) {
      if (!ctx.dead(e)) bottom_.push_back(e);
    }
    std::sort(bottom_.begin(), bottom_.end(),
              [](const EventEntry& a, const EventEntry& b) { return event_precedes(a, b); });
  }

  /// Subdivide one oversized bucket (detached into scratch_) into a child
  /// rung covering exactly [bstart, bend) — no overlap with the parent's
  /// remainder.
  template <typename Ctx>
  void spawn_child(Time bstart, Time bend, Ctx ctx) {
    if (tracer_ != nullptr) [[unlikely]] {
      tracer_->instant(trace::id::kLadderSpill, bstart, scratch_.size());
    }
    Rung& child = acquire_rung();
    child.start = bstart;
    child.width = static_cast<Time>(
        (static_cast<std::uint64_t>(bend - bstart) + cfg_.buckets - 1) / cfg_.buckets);
    child.end = bend;
    for (const EventEntry& e : scratch_) {
      if (ctx.dead(e)) continue;
      child.buckets[child.bucket_index(e.at)].push_back(e);
      ++child.count;
    }
  }

  /// Spill the whole of top into a fresh rung 0, opening a new epoch: the
  /// rung covers [top_min, top_min + kBuckets * width) and top_floor_
  /// advances to its end (later far-future inserts start the next epoch).
  template <typename Ctx>
  void spawn_from_top(Ctx ctx) {
    assert(n_rungs_ == 0);
    if (tracer_ != nullptr) [[unlikely]] {
      tracer_->instant(trace::id::kLadderEpoch, top_min_, top_.size());
    }
    Rung& rung = acquire_rung();
    const auto span = static_cast<std::uint64_t>(top_max_ - top_min_) + 1;
    rung.start = top_min_;
    rung.width = static_cast<Time>((span + cfg_.buckets - 1) / cfg_.buckets);
    rung.end = sat_offset(rung.start, cfg_.buckets, rung.width);
    top_floor_ = rung.end;
    for (const EventEntry& e : top_) {
      if (ctx.dead(e)) continue;
      rung.buckets[rung.bucket_index(e.at)].push_back(e);
      ++rung.count;
    }
    top_.clear();  // recycle capacity
    top_min_ = top_max_ = 0;
  }

  Rung& acquire_rung() {
    if (n_rungs_ == rungs_.size()) {
      rungs_.emplace_back();  // warm-up only
      rungs_.back().buckets.resize(cfg_.buckets);
    }
    Rung& r = rungs_[n_rungs_++];
    assert(r.count == 0 && r.cur == 0);
    return r;
  }

  LadderConfig cfg_{};
  std::vector<EventEntry> bottom_;  // sorted; consumed from bottom_head_
  std::size_t bottom_head_ = 0;
  std::vector<EventEntry> scratch_;  // detached bucket during a spawn
  std::vector<Rung> rungs_;  // pooled; [0, n_rungs_) active, outermost first
  std::uint32_t n_rungs_ = 0;
  std::vector<EventEntry> top_;  // unsorted far-future pool
  Time top_min_ = 0;
  Time top_max_ = 0;
  Time top_floor_ = 0;  // entries at/after this go to top
  std::size_t live_ = 0;
  trace::Tracer* tracer_ = nullptr;
};

static_assert(EventQueueBackend<LadderQueueBackend>);

// ---------------------------------------------------------------------------
// Hierarchical timing-wheel backend
// ---------------------------------------------------------------------------

/// Geometry of the TimingWheelBackend. The defaults give five levels of
/// 256 slots over a 1.024 us base tick — a ~13-day horizon before the
/// overflow pool kicks in, with per-slot resolution fine enough that a
/// level-0 slot holds only a handful of events even at 40 Mpps.
struct WheelConfig {
  /// log2(slots per level); every level has `1 << slot_bits` slots.
  std::uint32_t slot_bits = 8;
  /// log2(level-0 slot width in ns): the wheel's base tick.
  std::uint32_t tick_shift = 10;
  /// Hierarchy depth; level k slots are `1 << (tick_shift + k*slot_bits)`
  /// ns wide. Events beyond level `levels - 1`'s horizon go to overflow.
  std::uint32_t levels = 5;

  /// Measured per-population default geometry for the per-flow-source
  /// regime (one armed timer per flow, re-arm gaps that grow linearly
  /// with the population at a fixed aggregate rate).
  ///
  /// The numbers come from the `wheel_geometry_sweep` block of
  /// bench_kernel_throughput (slot_bits x tick_shift grid over the
  /// fig13_fullstack_1m/4m/16m scenarios, median wall time over repeated
  /// trials; the fingerprint-identity gate proves geometry is a pure
  /// speed knob, so the pick can never change results). The trend the
  /// sweep shows: what matters is the level-0 horizon
  /// `2^(slot_bits + tick_shift)` ns against the mean re-arm gap — once
  /// the horizon covers the gap, re-arms land in level 0 directly and
  /// are touched once instead of cascading down level by level. Hence
  /// the horizon grows with the population while finer resolution (and
  /// depth, bounded by `tick_shift + levels*slot_bits <= 62`) is traded
  /// away.
  ///
  /// Guarantees (pinned in tests/test_timing_wheel.cpp): the returned
  /// geometry is always constructible, the pick is a pure function of
  /// `pending`, and the level-0 horizon is non-decreasing in the
  /// population.
  static constexpr WheelConfig for_population(std::size_t pending) noexcept {
    if (pending < (std::size_t{1} << 21)) return WheelConfig{};     // <= ~1M: 8/10/5
    if (pending < (std::size_t{1} << 23)) return WheelConfig{8, 16, 5};   // ~4M
    return WheelConfig{12, 16, 3};  // >= ~8M: the win flattens at the
                                    // memory-bandwidth wall; widest horizon
  }
};

/// Hierarchical timing wheel tuned for very large pending populations of
/// mostly near-future timers (the per-flow-source regime).
///
/// Structure (coarsest at the top):
///
///     overflow — unsorted pool for events at/after `overflow_floor_`
///                (beyond the top level's horizon this epoch)
///     levels   — `cfg.levels` wheels of `1 << cfg.slot_bits` slots each;
///                level k slots are `1 << (tick_shift + k*slot_bits)` ns
///                wide and one level-(k+1) slot covers a whole level-k wheel
///     bottom   — the already-consumed-slot range, kept sorted by (at, seq)
///
/// An insert hashes the timestamp into the lowest level whose window still
/// covers it — O(1), no comparisons. Consumption advances a per-level
/// cursor of *absolute* slot indices: the next non-empty level-0 slot
/// (found through per-level occupancy bitmaps) is sorted into bottom;
/// when level 0 is exhausted up to a level-1 slot boundary, that level-1
/// slot *cascades* — its entries are redistributed one level down — and so
/// on up the hierarchy. Each event is therefore touched at most once per
/// level plus one bounded sort, independent of how many are pending.
///
/// The overflow pool opens a new *epoch* when the wheels drain: cursors
/// re-base at the overflow minimum and the pool is repartitioned, exactly
/// like the ladder's top spill. `overflow_floor_` is latched per epoch so
/// every stored wheel entry is strictly earlier than every overflow entry
/// — that is what makes the (at, seq) order total across the split. All
/// horizon arithmetic saturates at the Time maximum, so timestamps near
/// INT64_MAX roll through overflow epochs instead of overflowing.
///
/// Cancellation is *lazy* (kPositionalCancel == false), identical to the
/// ladder: the owner bumps the slot generation and calls on_cancelled();
/// dead entries are dropped whenever ctx.dead() flags them during
/// cascades, sorts or peeks. size() always reports live entries only.
///
/// Steady-state allocation freedom: slot vectors are pooled per (level,
/// slot) — cleared on consumption, never shrunk — and bottom/overflow/
/// scratch recycle their capacity, so a periodic workload stops
/// allocating once every container has seen its peak.
class TimingWheelBackend {
 public:
  /// Lazy tombstone cancellation (see class comment).
  static constexpr bool kPositionalCancel = false;

  /// Default geometry (WheelConfig defaults).
  TimingWheelBackend() : TimingWheelBackend(WheelConfig{}) {}
  /// Custom geometry. Degenerate or overflowing grids are rejected loudly
  /// in every build type (benches sweep geometry in Release, where an
  /// assert would vanish): the top level's slot width must still fit in
  /// the non-negative Time range.
  explicit TimingWheelBackend(const WheelConfig& cfg) : cfg_(cfg) {
    if (cfg.slot_bits < 1 || cfg.slot_bits > 20 || cfg.levels < 1 || cfg.levels > 16 ||
        cfg.tick_shift + cfg.levels * cfg.slot_bits > 62) {
      throw std::invalid_argument(
          "WheelConfig: need 1 <= slot_bits <= 20, 1 <= levels <= 16 and "
          "tick_shift + levels*slot_bits <= 62");
    }
    slots_per_level_ = 1u << cfg.slot_bits;
    mask_ = slots_per_level_ - 1;
    words_per_level_ = (slots_per_level_ + 63) / 64;
    slots_.resize(static_cast<std::size_t>(cfg.levels) * slots_per_level_);
    bits_.assign(static_cast<std::size_t>(cfg.levels) * words_per_level_, 0);
    cur_.assign(cfg.levels, 0);
    overflow_floor_ = sat_shl(slots_per_level_, shift(cfg.levels - 1));
  }

  /// The geometry this instance runs with.
  const WheelConfig& config() const noexcept { return cfg_; }

  /// Insert an entry: O(1) slot hash, or a bounded sorted insert into
  /// bottom for timestamps behind the consumption floor.
  template <typename Ctx>
  void push(const EventEntry& e, Ctx ctx) {
    ++live_;
    if (e.at >= overflow_floor_) {
      overflow_.push_back(e);
      return;
    }
    if (e.at < floor_) {
      insert_bottom(e, ctx);
      return;
    }
    place_in_wheel(e);
  }

  /// The live minimum. Precondition: !empty().
  template <typename Ctx>
  const EventEntry& peek(Ctx ctx) {
    ensure_bottom(ctx);
    return bottom_[bottom_head_];
  }

  /// Remove the live minimum. Precondition: !empty().
  template <typename Ctx>
  void pop_min(Ctx ctx) {
    ensure_bottom(ctx);
    --live_;
    if (++bottom_head_ == bottom_.size()) {
      bottom_.clear();  // recycle capacity, never shrink
      bottom_head_ = 0;
    }
  }

  /// Tombstone notification: one pending entry was cancelled by the owner
  /// (its slot generation is already bumped, so ctx.dead() now flags it).
  void on_cancelled() noexcept {
    assert(live_ > 0);
    --live_;
  }

  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// Visit every stored entry, tombstones included (the owner re-checks
  /// liveness; pending-event cleanup on destruction).
  template <typename F>
  void for_each(F f) const {
    for (std::size_t i = bottom_head_; i < bottom_.size(); ++i) f(bottom_[i]);
    for (const auto& slot : slots_) {
      for (const EventEntry& e : slot) f(e);
    }
    for (const EventEntry& e : overflow_) f(e);
  }

  void clear() {
    bottom_.clear();
    bottom_head_ = 0;
    for (auto& slot : slots_) slot.clear();  // keep capacities
    std::fill(bits_.begin(), bits_.end(), 0);
    std::fill(cur_.begin(), cur_.end(), std::int64_t{0});
    floor_ = 0;
    overflow_.clear();
    overflow_floor_ = sat_shl(slots_per_level_, shift(cfg_.levels - 1));
    live_ = 0;
  }

  // --- observability (tests and the bench probe these) --------------------

  /// Non-empty slots at `level` (tombstones included).
  std::uint32_t occupancy(std::uint32_t level) const noexcept {
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < words_per_level_; ++w) {
      n += static_cast<std::uint32_t>(std::popcount(bits_[level * words_per_level_ + w]));
    }
    return n;
  }
  /// Everything stored strictly below this time sits sorted in bottom.
  Time wheel_floor() const noexcept { return floor_; }
  /// Start of this epoch's overflow region (beyond the top horizon).
  Time overflow_floor() const noexcept { return overflow_floor_; }
  /// Entries in the overflow pool, tombstones included.
  std::size_t overflow_stored() const noexcept { return overflow_.size(); }

  /// Attach a trace recorder for structural events (cascade, epoch rebase).
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

 private:
  /// v << s, saturated at the Time maximum (epoch arithmetic near
  /// INT64_MAX must clamp, not overflow). v is a non-negative slot index.
  static Time sat_shl(std::int64_t v, std::uint32_t s) noexcept {
    return v > (INT64_MAX >> s) ? INT64_MAX : (v << s);
  }

  std::uint32_t shift(std::uint32_t level) const noexcept {
    return cfg_.tick_shift + level * cfg_.slot_bits;
  }
  /// Absolute (non-wrapped) slot index of `at` on `level`.
  std::int64_t slot_of(Time at, std::uint32_t level) const noexcept {
    return at >> shift(level);
  }
  std::vector<EventEntry>& slot_ref(std::uint32_t level, std::int64_t abs_slot) noexcept {
    return slots_[static_cast<std::size_t>(level) * slots_per_level_ +
                  (static_cast<std::uint64_t>(abs_slot) & mask_)];
  }
  void set_bit(std::uint32_t level, std::int64_t abs_slot) noexcept {
    const auto p = static_cast<std::uint32_t>(static_cast<std::uint64_t>(abs_slot) & mask_);
    bits_[level * words_per_level_ + (p >> 6)] |= std::uint64_t{1} << (p & 63);
  }
  void clear_bit(std::uint32_t level, std::int64_t abs_slot) noexcept {
    const auto p = static_cast<std::uint32_t>(static_cast<std::uint64_t>(abs_slot) & mask_);
    bits_[level * words_per_level_ + (p >> 6)] &= ~(std::uint64_t{1} << (p & 63));
  }

  /// Drop an entry into the lowest level whose current window covers it.
  /// Levels are windows of `slots_per_level_` *absolute* slot indices
  /// starting at the level cursor, so the hash is wrap-free: one physical
  /// slot maps to exactly one absolute slot of the window. Returns false
  /// when no window fits (only possible at/above the overflow floor).
  bool try_place(const EventEntry& e) {
    for (std::uint32_t k = 0; k < cfg_.levels; ++k) {
      const std::int64_t s = slot_of(e.at, k);
      if (static_cast<std::uint64_t>(s - cur_[k]) < slots_per_level_) {
        slot_ref(k, s).push_back(e);
        set_bit(k, s);
        return true;
      }
    }
    return false;
  }

  void place_in_wheel(const EventEntry& e) {
    if (try_place(e)) return;
    // Unreachable while the routing invariants hold: every at below
    // overflow_floor_ lands in the top level's window at the latest.
    assert(false && "timing-wheel routing gap");
    overflow_.push_back(e);
  }

  template <typename Ctx>
  void insert_bottom(const EventEntry& e, Ctx ctx) {
    (void)ctx;
    const auto first = bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_);
    const auto pos = std::upper_bound(first, bottom_.end(), e,
                                      [](const EventEntry& a, const EventEntry& b) {
                                        return event_precedes(a, b);
                                      });
    bottom_.insert(pos, e);
  }

  /// First non-empty absolute slot of `level` in [from, to), or -1. The
  /// range never exceeds one wheel revolution, so physical slots in it are
  /// alias-free; the occupancy bitmap turns the scan into a handful of
  /// word tests.
  std::int64_t find_slot(std::uint32_t level, std::int64_t from, std::int64_t to) const
      noexcept {
    std::int64_t a = from;
    while (a < to) {
      const auto p = static_cast<std::uint32_t>(static_cast<std::uint64_t>(a) & mask_);
      const std::uint64_t word = bits_[level * words_per_level_ + (p >> 6)] >> (p & 63);
      // Clamp each step at the word boundary *and* the physical ring end:
      // for geometries narrower than one word the ring wraps mid-word, and
      // bits past `slots_per_level_` are dead — stepping over them would
      // skip the wrapped slots entirely.
      const std::int64_t span =
          std::min({std::int64_t{64} - (p & 63), to - a,
                    static_cast<std::int64_t>(slots_per_level_ - p)});
      if (word != 0) {
        const int tz = std::countr_zero(word);
        if (tz < span) return a + tz;
      }
      a += span;
    }
    return -1;
  }

  /// Refill bottom until its front is the global live minimum, dropping
  /// tombstones on the way. Precondition: live_ > 0.
  template <typename Ctx>
  void ensure_bottom(Ctx ctx) {
    for (;;) {
      // Drop dead entries surfacing at the front.
      while (bottom_head_ < bottom_.size() && ctx.dead(bottom_[bottom_head_])) {
        if (++bottom_head_ == bottom_.size()) {
          bottom_.clear();
          bottom_head_ = 0;
        }
      }
      if (bottom_head_ < bottom_.size()) return;  // front is the live min
      refill_bottom(ctx);
    }
  }

  /// Consume the next non-empty level-0 slot into bottom, cascading
  /// higher levels (and re-basing from overflow) as needed. Each pass
  /// either consumes a level-0 slot, cascades one coarse slot a level
  /// down, or drains overflow, so progress is guaranteed while live_ > 0.
  template <typename Ctx>
  void refill_bottom(Ctx ctx) {
    for (;;) {
      // Top-down pass: level k searches [cur_[k], cap). The cap is the
      // first non-empty slot of the level above scaled down — content
      // under an *empty* parent slot needs no cascade, so the scan may
      // run past the parent cursor — and is additionally clamped to one
      // revolution: stored entries always sit within `slots_per_level_`
      // of their cursor, so clamped ranges are alias-free in the
      // physical slot array. The lowest level that finds a slot wins.
      std::int64_t limit = cur_[cfg_.levels - 1] + slots_per_level_;
      std::uint32_t clevel = 0;
      std::int64_t cslot = -1;
      for (std::uint32_t k = cfg_.levels; k-- > 1;) {
        const std::int64_t cap =
            std::min<std::int64_t>(limit, cur_[k] + slots_per_level_);
        const std::int64_t s = find_slot(k, cur_[k], cap);
        if (s >= 0) {
          clevel = k;
          cslot = s;
          limit = s;
        }
        limit = sat_shl(limit, cfg_.slot_bits);
      }
      const std::int64_t cap0 =
          std::min<std::int64_t>(limit, cur_[0] + slots_per_level_);
      const std::int64_t s0 = find_slot(0, cur_[0], cap0);
      if (s0 >= 0) {
        // s0 fires before every coarse slot found above: consume it.
        auto& slot = slot_ref(0, s0);
        sort_into_bottom(slot, ctx);
        slot.clear();  // recycle capacity
        clear_bit(0, s0);
        floor_ = sat_shl(s0 + 1, cfg_.tick_shift);
        // Pull every cursor up to the new floor so push windows track
        // time; slots strictly below the floor are empty at every level.
        for (std::uint32_t k = 0; k < cfg_.levels; ++k) {
          cur_[k] = std::max(cur_[k], slot_of(floor_, k));
        }
        return;  // bottom may still be empty (all-tombstone slot): caller loops
      }
      if (cslot >= 0) {
        // No level-0 slot fires before the lowest found coarse slot:
        // cascade it one level down and rescan. Lower cursors jump to
        // the slot's left edge (never backward) — the skipped range was
        // just verified empty at every level below.
        for (std::uint32_t j = 0; j < clevel; ++j) {
          cur_[j] = std::max(cur_[j], sat_shl(cslot, (clevel - j) * cfg_.slot_bits));
        }
        floor_ = std::max(floor_, sat_shl(cur_[0], cfg_.tick_shift));
        auto& slot = slot_ref(clevel, cslot);
        if (tracer_ != nullptr) [[unlikely]] {
          tracer_->instant(trace::id::kWheelCascade, sat_shl(cslot, shift(clevel)),
                           slot.size(), 0, clevel);
        }
        for (const EventEntry& e : slot) {
          if (ctx.dead(e)) continue;
          const std::int64_t down = slot_of(e.at, clevel - 1);
          assert(static_cast<std::uint64_t>(down - cur_[clevel - 1]) < slots_per_level_);
          slot_ref(clevel - 1, down).push_back(e);
          set_bit(clevel - 1, down);
        }
        slot.clear();  // recycle capacity
        clear_bit(clevel, cslot);
        cur_[clevel] = cslot + 1;
        continue;
      }
      // Wheels fully drained: open the next epoch from overflow.
      assert(!overflow_.empty() && "live_ > 0 but no entries stored");
      rebase_from_overflow(ctx);
    }
  }

  /// Move one consumed level-0 slot into bottom, sorted by the total
  /// (at, seq) order, dropping tombstones.
  template <typename Ctx>
  void sort_into_bottom(std::vector<EventEntry>& slot, Ctx ctx) {
    assert(bottom_.empty() && bottom_head_ == 0);
    for (const EventEntry& e : slot) {
      if (!ctx.dead(e)) bottom_.push_back(e);
    }
    std::sort(bottom_.begin(), bottom_.end(),
              [](const EventEntry& a, const EventEntry& b) { return event_precedes(a, b); });
  }

  /// Open a new epoch at the overflow minimum: re-base every cursor,
  /// re-latch overflow_floor_ to the new top horizon and repartition the
  /// pool — entries inside the horizon drop into the wheels, the rest
  /// stay in overflow. Precondition: bottom and all wheels are empty.
  template <typename Ctx>
  void rebase_from_overflow(Ctx ctx) {
    Time lo = INT64_MAX;
    for (const EventEntry& e : overflow_) {
      if (!ctx.dead(e) && e.at < lo) lo = e.at;
    }
    // All-tombstone pool with live_ > 0 elsewhere is impossible here
    // (wheels are empty); lo == INT64_MAX then simply re-bases at the top.
    if (tracer_ != nullptr) [[unlikely]] {
      tracer_->instant(trace::id::kWheelEpoch, lo, overflow_.size());
    }
    for (std::uint32_t k = 0; k < cfg_.levels; ++k) cur_[k] = slot_of(lo, k);
    floor_ = sat_shl(cur_[0], cfg_.tick_shift);
    overflow_floor_ = sat_shl(cur_[cfg_.levels - 1] + slots_per_level_,
                              shift(cfg_.levels - 1));
    scratch_.swap(overflow_);
    overflow_.clear();
    // Partition by fit rather than by the floor compare: when the new
    // horizon saturates at the Time maximum, entries *at* the maximum
    // must enter the wheels (they fit the re-based windows) or the pool
    // would cycle forever.
    for (const EventEntry& e : scratch_) {
      if (ctx.dead(e)) continue;
      if (!try_place(e)) overflow_.push_back(e);
    }
    scratch_.clear();  // recycle capacity
  }

  WheelConfig cfg_{};
  std::uint32_t slots_per_level_ = 0;
  std::uint32_t mask_ = 0;
  std::uint32_t words_per_level_ = 0;
  std::vector<std::vector<EventEntry>> slots_;  // pooled, levels * slots flat
  std::vector<std::uint64_t> bits_;             // per-level occupancy bitmaps
  std::vector<std::int64_t> cur_;  // per-level absolute slot cursors
  Time floor_ = 0;                 // bottom/wheel split: below it -> bottom
  std::vector<EventEntry> bottom_;  // sorted; consumed from bottom_head_
  std::size_t bottom_head_ = 0;
  std::vector<EventEntry> overflow_;  // unsorted beyond-horizon pool
  Time overflow_floor_ = 0;  // latched per epoch; entries at/after it -> overflow
  std::vector<EventEntry> scratch_;  // detached pool during a rebase
  std::size_t live_ = 0;
  trace::Tracer* tracer_ = nullptr;
};

static_assert(EventQueueBackend<TimingWheelBackend>);

}  // namespace metro::sim
