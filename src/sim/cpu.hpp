// CPU core model: processor sharing, CFS-like weights, DVFS governors and a
// RAPL-style power model.
//
// Why processor sharing: the paper's §V-E experiments put Metronome threads,
// a static-polling DPDK thread and a CPU-bound `ferret` task on the same
// cores and observe (i) throughput collapse for the single-core static
// poller, (ii) a ~3x stretch of ferret next to a poller vs ~10% next to
// Metronome. A weighted processor-sharing core — each runnable entity
// receives CPU in proportion to its CFS weight — reproduces exactly these
// effects in a discrete-event setting without simulating CFS tick by tick.
//
// Entities:
//   * a *job* is a finite amount of work (ns at nominal frequency) submitted
//     by a coroutine via `co_await core.run_for(id, work)`; the coroutine
//     resumes when the work completes (its wall-clock duration depends on
//     competition and on the current frequency);
//   * a *spinning* entity is always runnable and never completes — this is a
//     busy-poll loop. It consumes CPU share (slowing everyone else) and
//     accrues on-CPU time, but needs no events while nothing changes.
//
// Frequency scaling: `performance` pins the core at nominal frequency;
// `ondemand` samples utilization periodically and picks
// freq = max(load, min_ratio), jumping to max above the up-threshold —
// the classic Linux ondemand policy. Work rates scale with frequency.
//
// Power: RAPL-like package accounting is split into a package base plus a
// per-core term: active cores burn static + dynamic (~f^3) power, idle cores
// sit in a shallow C-state. Constants live in calibration.hpp.
//
// Like the rest of the app stack, the layer is templated over the kernel
// instantiation (`BasicCore<Sim>` where Sim is a BasicSimulation<Backend>),
// so full-stack scenarios run unchanged on any event-queue backend. The
// heap-bound aliases `Core` / `Machine` preserve the original spellings;
// member definitions live in cpu.cpp with explicit instantiations for the
// two shipped backends.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/calibration.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace metro::sim {

/// Linux CFS nice-to-weight mapping (kernel/sched/core.c, sched_prio_to_weight).
int nice_to_weight(int nice);

enum class Governor {
  kPerformance,
  kOndemand,
  /// No kernel policy: frequency is whatever software last requested via
  /// Core::request_freq() (the `userspace` governor; DPDK's power library
  /// drives it from the application, cf. the paper's refs [22][23]).
  kUserspace,
};

struct CoreConfig {
  Governor governor = Governor::kPerformance;
  double min_freq_ratio = calib::kMinFreqRatio;  // lowest P-state / nominal
  Time ondemand_sampling = calib::kOndemandSamplingPeriod;
  double ondemand_up_threshold = calib::kOndemandUpThreshold;
};

/// One simulated CPU core, bound to kernel instantiation `Sim`.
template <typename Sim = Simulation>
class BasicCore {
 public:
  using EntityId = int;

  BasicCore(Sim& sim, int core_id, CoreConfig cfg = {});

  int id() const noexcept { return core_id_; }

  /// Register a schedulable entity (thread) with the given niceness.
  EntityId add_entity(std::string name, int nice = 0);

  /// Mark an entity as busy-polling (always runnable) or not.
  void set_spinning(EntityId id, bool spinning);

  /// Awaitable: consume `work` ns of CPU time at nominal frequency.
  /// Resumes once the work has been served under processor sharing.
  auto run_for(EntityId id, Time work) {
    struct Awaiter {
      BasicCore& core;
      EntityId ent;
      Time work;
      bool await_ready() const noexcept { return work <= 0; }
      void await_suspend(std::coroutine_handle<> h) { core.submit_job(ent, work, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, id, work};
  }

  /// True if any entity is currently runnable on this core.
  bool busy() const noexcept { return !active_.empty(); }

  /// Number of currently runnable entities (jobs + spinners).
  int runnable_count() const noexcept { return static_cast<int>(active_.size()); }

  /// Current frequency as a fraction of nominal.
  double freq_ratio() const noexcept { return freq_ratio_; }

  /// Userspace-governor frequency request (clamped to [min_ratio, 1]).
  /// Ignored unless the core runs the kUserspace governor.
  void request_freq(double ratio);

  // --- accounting -----------------------------------------------------

  /// Total on-CPU time accrued by an entity since creation.
  Time on_cpu_time(EntityId id) const;

  /// Total busy time of the core since t = 0.
  Time busy_time() const;

  /// Joules consumed by this core since t = 0 (excluding package base).
  double energy_joules() const;

  /// Utilization and average power over [from, to], using snapshots.
  /// Callers snapshot at window edges via the *_at helpers below.
  struct Snapshot {
    Time at = 0;
    Time busy = 0;
    double joules = 0.0;
  };
  Snapshot snapshot();

 private:
  struct Entity {
    std::string name;
    int weight = 1024;
    bool spinning = false;
    bool has_job = false;
    double remaining = 0.0;  // ns of work at nominal frequency
    std::coroutine_handle<> waiter;
    Time on_cpu = 0;       // accrued on-CPU wall time
    int active_pos = -1;   // index into active_, -1 when not runnable
  };

  void submit_job(EntityId id, Time work, std::coroutine_handle<> h);
  /// O(1) active-set maintenance (swap-remove; total weight kept in sync).
  void activate(EntityId id);
  void deactivate(EntityId id);
  /// Distribute CPU time since last_update_ across active entities.
  void settle();
  /// (Re)compute and schedule the next job-completion event.
  void reschedule_completion();
  void on_completion_event();
  void governor_tick();
  void set_freq(double ratio);

  Sim& sim_;
  int core_id_;
  CoreConfig cfg_;

  std::vector<Entity> entities_;
  std::vector<EntityId> active_;  // runnable entities (spinning or has_job)
  std::int64_t active_weight_ = 0;  // sum of active entities' weights (exact)

  Time last_update_ = 0;
  Time busy_time_ = 0;
  double energy_j_ = 0.0;
  double freq_ratio_ = 1.0;
  /// Pending completion timer; cancelled and re-armed on every state
  /// change instead of being left to fire as a stale no-op.
  typename Sim::EventId completion_event_ = Sim::kInvalidEvent;

  // ondemand sampling state
  Time last_sample_at_ = 0;
  Time busy_at_last_sample_ = 0;
};

/// A set of cores sharing one package, with aggregated power accounting.
template <typename Sim = Simulation>
class BasicMachine {
 public:
  using Core = BasicCore<Sim>;

  BasicMachine(Sim& sim, int n_cores, CoreConfig cfg = {});

  Core& core(int i) { return *cores_[static_cast<std::size_t>(i)]; }
  const Core& core(int i) const { return *cores_[static_cast<std::size_t>(i)]; }
  int n_cores() const noexcept { return static_cast<int>(cores_.size()); }

  /// Package power averaged over [from, to], W. Uses per-core energy
  /// deltas plus the constant package base power.
  struct WindowStats {
    double avg_package_watts = 0.0;
    double total_cpu_usage_percent = 0.0;  // sum over cores, 100 = one full core
  };
  /// Snapshot all cores (call at window start and end).
  std::vector<typename Core::Snapshot> snapshot_all();
  WindowStats window_stats(const std::vector<typename Core::Snapshot>& start,
                           const std::vector<typename Core::Snapshot>& end) const;

 private:
  Sim& sim_;
  std::vector<std::unique_ptr<Core>> cores_;
};

/// Heap-kernel aliases (the original spellings; every existing call site
/// keeps compiling unchanged).
using Core = BasicCore<Simulation>;
using Machine = BasicMachine<Simulation>;

}  // namespace metro::sim
