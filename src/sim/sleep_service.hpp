/// \file sleep_service.hpp
/// Fine-grain thread sleep services (paper §III-A).
//
// The paper relies on microsecond-precision sleeps and compares two
// services: Linux `nanosleep()` (subject to the per-thread timer slack,
// minimum 1 us when configured via prctl(), 50 us by default) and the
// authors' `hr_sleep()` kernel service, which bypasses the TCB slack
// handling entirely. Fig. 1 shows both wake up a few microseconds *after*
// the requested timeout, with hr_sleep slightly tighter in mean and
// variance.
//
// Model: actual latency = requested + overhead + slack_extra + dispatch,
//   * overhead ~ Normal(mean(req), sd(req)) log-interpolated between the
//     calibrated anchors (calibration.hpp) — the cost of entering the
//     kernel, programming the hrtimer and being woken;
//   * slack_extra ~ U[0.3 s, s] for nanosleep with timer slack s (timer
//     coalescing makes late-in-window firing more likely); hr_sleep has no
//     slack;
//   * dispatch = OS run-queue latency after the timer fires: a small base,
//     an exponential extra when the target core is contended, and a rare
//     heavy tail (kernel housekeeping) — this produces the beyond-TL
//     wake-ups visible in Fig. 4.
//
// §V-C's "patched" hr_sleep returns immediately for sub-microsecond
// requests; enable via `sub_us_fast_return`.
#pragma once

#include <coroutine>

#include "sim/calibration.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace metro::sim {

/// Which OS sleep primitive the service models.
enum class SleepKind {
  kHrSleep,   ///< the paper's hr_sleep() kernel service (no timer slack)
  kNanosleep  ///< Linux nanosleep(), subject to per-thread timer slack
};

/// Tunables of the modelled sleep service.
struct SleepServiceConfig {
  /// The modelled primitive (hr_sleep by default).
  SleepKind kind = SleepKind::kHrSleep;
  /// Timer slack (nanosleep only). 1 us = prctl(PR_SET_TIMERSLACK, 1);
  /// kDefaultTimerSlack models an unconfigured thread.
  Time timer_slack = 1_us;
  /// Patched hr_sleep: requests < 1 us return after a bare syscall.
  bool sub_us_fast_return = false;
  /// Disable the rare heavy-tail dispatch events (for model-validation
  /// tests that need the pure analytical distribution).
  bool dispatch_tail = true;
};

/// Calibrated model of a microsecond-precision OS sleep: the awaitable
/// sleep() wakes the calling process after requested + overhead +
/// slack + dispatch virtual nanoseconds (see the file comment for the
/// model). One instance per simulated thread; all randomness is drawn
/// from the owning Simulation's RNG, so runs stay deterministic.
///
/// \tparam Sim the owning kernel instantiation (any backend). The heap
///   alias `SleepService` preserves the original spelling.
template <typename Sim = Simulation>
class BasicSleepService {
 public:
  /// `core`, when given, is consulted at wake time for contention-dependent
  /// dispatch latency. Pass nullptr for an isolated core.
  BasicSleepService(Sim& sim, SleepServiceConfig cfg = {}, BasicCore<Sim>* core = nullptr)
      : sim_(sim), cfg_(cfg), core_(core) {}

  const SleepServiceConfig& config() const noexcept { return cfg_; }

  /// Sample the in-kernel part of the latency (timer programming +
  /// overhead + slack), excluding dispatch jitter. Deterministic given the
  /// simulation RNG state; also used directly by the Fig. 1 bench.
  Time sample_timer_latency(Time requested);

  /// Sample the dispatch (run-queue) latency applied after the timer fires.
  Time sample_dispatch_latency();

  /// Awaitable: suspend the calling process for ~`requested` ns, waking
  /// after the modelled service latency. Resumes strictly later than now.
  auto sleep(Time requested) {
    struct Awaiter {
      BasicSleepService& svc;
      Time requested;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        BasicSleepService* service = &svc;
        const Time timer = service->sample_timer_latency(requested);
        // Two-phase: fire the timer, then apply dispatch latency sampled at
        // wake time (contention is evaluated when the timer fires, not when
        // the sleep starts). The timer callback is 16 bytes and trivially
        // copyable, so it rides inline in the event slot; the final resume
        // is a raw-handle event — neither phase allocates.
        service->sim_.schedule_after(timer, [service, h] {
          const Time dispatch = service->sample_dispatch_latency();
          service->sim_.schedule_handle_after(dispatch, h);
        });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, requested};
  }

 private:
  Sim& sim_;
  SleepServiceConfig cfg_;
  BasicCore<Sim>* core_;
};

/// The default sleep service, bound to the default (heap) kernel.
using SleepService = BasicSleepService<Simulation>;

}  // namespace metro::sim
