#include "sim/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

namespace metro::sim {

namespace {
// kernel/sched/core.c sched_prio_to_weight[], indexed by nice + 20.
constexpr int kNiceToWeight[40] = {
    88761, 71755, 56483, 46273, 36291,  // -20 .. -16
    29154, 23254, 18705, 14949, 11916,  // -15 .. -11
    9548,  7620,  6100,  4904,  3906,   // -10 .. -6
    3121,  2501,  1991,  1586,  1277,   // -5 .. -1
    1024,  820,   655,   526,   423,    //  0 .. 4
    335,   272,   215,   172,   137,    //  5 .. 9
    110,   87,    70,    56,    45,     // 10 .. 14
    36,    29,    23,    18,    15,     // 15 .. 19
};

constexpr double kWorkEpsilon = 0.5;  // ns: below this a job counts as done
}  // namespace

int nice_to_weight(int nice) {
  nice = std::clamp(nice, -20, 19);
  return kNiceToWeight[nice + 20];
}

template <typename Sim>
BasicCore<Sim>::BasicCore(Sim& sim, int core_id, CoreConfig cfg)
    : sim_(sim), core_id_(core_id), cfg_(cfg) {
  if (cfg_.governor == Governor::kOndemand) {
    freq_ratio_ = cfg_.min_freq_ratio;  // starts relaxed; ramps with load
    sim_.schedule_after(cfg_.ondemand_sampling, [this] { governor_tick(); });
  }
  last_update_ = sim_.now();
  last_sample_at_ = sim_.now();
}

template <typename Sim>
typename BasicCore<Sim>::EntityId BasicCore<Sim>::add_entity(std::string name, int nice) {
  settle();
  Entity e;
  e.name = std::move(name);
  e.weight = nice_to_weight(nice);
  entities_.push_back(std::move(e));
  return static_cast<EntityId>(entities_.size() - 1);
}

template <typename Sim>
void BasicCore<Sim>::set_spinning(EntityId id, bool spinning) {
  settle();
  Entity& e = entities_[static_cast<std::size_t>(id)];
  if (e.spinning == spinning) return;
  e.spinning = spinning;
  if (spinning) {
    if (!e.has_job) activate(id);
  } else if (!e.has_job) {
    deactivate(id);
  }
  reschedule_completion();
}

template <typename Sim>
void BasicCore<Sim>::activate(EntityId id) {
  Entity& e = entities_[static_cast<std::size_t>(id)];
  assert(e.active_pos < 0);
  e.active_pos = static_cast<int>(active_.size());
  active_.push_back(id);
  active_weight_ += e.weight;
}

template <typename Sim>
void BasicCore<Sim>::deactivate(EntityId id) {
  Entity& e = entities_[static_cast<std::size_t>(id)];
  assert(e.active_pos >= 0);
  const EntityId last = active_.back();
  active_[static_cast<std::size_t>(e.active_pos)] = last;
  entities_[static_cast<std::size_t>(last)].active_pos = e.active_pos;
  active_.pop_back();
  e.active_pos = -1;
  active_weight_ -= e.weight;
}

template <typename Sim>
void BasicCore<Sim>::submit_job(EntityId id, Time work, std::coroutine_handle<> h) {
  settle();
  Entity& e = entities_[static_cast<std::size_t>(id)];
  assert(!e.has_job && "entity already has an outstanding job");
  e.has_job = true;
  e.remaining = static_cast<double>(work);
  e.waiter = h;
  if (!e.spinning) activate(id);  // spinners are already active
  reschedule_completion();
}

template <typename Sim>
void BasicCore<Sim>::settle() {
  const Time now = sim_.now();
  const Time dt = now - last_update_;
  if (dt <= 0) return;
  last_update_ = now;

  if (active_.empty()) {
    energy_j_ += to_seconds(dt) * calib::kCoreIdleWatts;
    return;
  }

  busy_time_ += dt;
  const double f = freq_ratio_;
  energy_j_ += to_seconds(dt) *
               (calib::kCoreStaticWatts * f + calib::kCoreDynamicWatts * f * f * f);

  const double total_weight = static_cast<double>(active_weight_);
  for (EntityId id : active_) {
    Entity& e = entities_[static_cast<std::size_t>(id)];
    const double share = e.weight / total_weight;
    const double cpu_ns = static_cast<double>(dt) * share;
    e.on_cpu += static_cast<Time>(cpu_ns + 0.5);
    if (e.has_job) e.remaining -= cpu_ns * f;
  }
}

template <typename Sim>
void BasicCore<Sim>::reschedule_completion() {
  // First retire any jobs that completed at the current instant.
  bool retired = true;
  while (retired) {
    retired = false;
    for (EntityId id : active_) {
      Entity& e = entities_[static_cast<std::size_t>(id)];
      if (e.has_job && e.remaining <= kWorkEpsilon) {
        e.has_job = false;
        e.remaining = 0.0;
        auto h = e.waiter;
        e.waiter = nullptr;
        if (!e.spinning) deactivate(id);
        if (h) sim_.schedule_handle_after(0, h);
        retired = true;
        break;  // active_ mutated; restart scan
      }
    }
  }

  if (completion_event_ != Sim::kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = Sim::kInvalidEvent;
  }
  // Find the earliest completion among remaining jobs.
  const double total_weight = static_cast<double>(active_weight_);
  double best_eta = -1.0;
  for (EntityId id : active_) {
    const Entity& e = entities_[static_cast<std::size_t>(id)];
    if (!e.has_job) continue;
    const double share = e.weight / total_weight;
    const double eta = e.remaining / (share * freq_ratio_);
    if (best_eta < 0.0 || eta < best_eta) best_eta = eta;
  }
  if (best_eta >= 0.0) {
    completion_event_ = sim_.schedule_after(static_cast<Time>(std::ceil(best_eta)),
                                            [this] { on_completion_event(); });
  }
}

template <typename Sim>
void BasicCore<Sim>::on_completion_event() {
  completion_event_ = Sim::kInvalidEvent;  // this event just fired
  settle();
  reschedule_completion();
}

template <typename Sim>
void BasicCore<Sim>::governor_tick() {
  settle();
  const Time now = sim_.now();
  const Time window = now - last_sample_at_;
  if (window > 0) {
    const double load =
        static_cast<double>(busy_time_ - busy_at_last_sample_) / static_cast<double>(window);
    double target;
    if (load > cfg_.ondemand_up_threshold) {
      target = 1.0;
    } else {
      target = std::max(cfg_.min_freq_ratio, load);
    }
    set_freq(target);
  }
  last_sample_at_ = now;
  busy_at_last_sample_ = busy_time_;
  sim_.schedule_after(cfg_.ondemand_sampling, [this] { governor_tick(); });
}

template <typename Sim>
void BasicCore<Sim>::request_freq(double ratio) {
  if (cfg_.governor != Governor::kUserspace) return;
  set_freq(std::clamp(ratio, cfg_.min_freq_ratio, 1.0));
}

template <typename Sim>
void BasicCore<Sim>::set_freq(double ratio) {
  if (ratio == freq_ratio_) return;
  settle();
  freq_ratio_ = ratio;
  reschedule_completion();
}

template <typename Sim>
Time BasicCore<Sim>::on_cpu_time(EntityId id) const {
  // settle() is non-const bookkeeping; expose the value as of last settle
  // plus the in-flight share (callers snapshot at event boundaries, where
  // settle() has just run, so this is exact in practice).
  return entities_[static_cast<std::size_t>(id)].on_cpu;
}

template <typename Sim>
Time BasicCore<Sim>::busy_time() const { return busy_time_; }

template <typename Sim>
double BasicCore<Sim>::energy_joules() const { return energy_j_; }

template <typename Sim>
typename BasicCore<Sim>::Snapshot BasicCore<Sim>::snapshot() {
  settle();
  return Snapshot{sim_.now(), busy_time_, energy_j_};
}

template <typename Sim>
BasicMachine<Sim>::BasicMachine(Sim& sim, int n_cores, CoreConfig cfg) : sim_(sim) {
  cores_.reserve(static_cast<std::size_t>(n_cores));
  for (int i = 0; i < n_cores; ++i) {
    cores_.push_back(std::make_unique<BasicCore<Sim>>(sim, i, cfg));
  }
}

template <typename Sim>
std::vector<typename BasicCore<Sim>::Snapshot> BasicMachine<Sim>::snapshot_all() {
  std::vector<typename BasicCore<Sim>::Snapshot> snaps;
  snaps.reserve(cores_.size());
  for (auto& c : cores_) snaps.push_back(c->snapshot());
  return snaps;
}

template <typename Sim>
typename BasicMachine<Sim>::WindowStats BasicMachine<Sim>::window_stats(
    const std::vector<typename Core::Snapshot>& start,
    const std::vector<typename Core::Snapshot>& end) const {
  WindowStats ws;
  if (start.empty() || start.size() != end.size()) return ws;
  const Time window = end[0].at - start[0].at;
  if (window <= 0) return ws;
  double joules = calib::kPackageBaseWatts * to_seconds(window);
  double busy_sum = 0.0;
  for (std::size_t i = 0; i < start.size(); ++i) {
    joules += end[i].joules - start[i].joules;
    busy_sum += static_cast<double>(end[i].busy - start[i].busy);
  }
  ws.avg_package_watts = joules / to_seconds(window);
  ws.total_cpu_usage_percent = 100.0 * busy_sum / static_cast<double>(window);
  return ws;
}

// The app stack is generic over the event-queue backend but the backend set
// is closed (heap + ladder + wheel); instantiating all of them here keeps
// definitions out of the header and every other TU's compile fast.
template class BasicCore<Simulation>;
template class BasicCore<LadderSimulation>;
template class BasicCore<WheelSimulation>;
template class BasicMachine<Simulation>;
template class BasicMachine<LadderSimulation>;
template class BasicMachine<WheelSimulation>;

}  // namespace metro::sim
