// The discrete-event simulation kernel.
//
// A Simulation owns:
//   * the virtual clock (nanoseconds, see time.hpp),
//   * a binary min-heap of timestamped events,
//   * the coroutine frames of all spawned processes,
//   * a deterministic RNG shared by models that need randomness.
//
// Events inserted at equal timestamps run in insertion order (a strictly
// increasing sequence number breaks ties), which keeps runs bit-for-bit
// reproducible.
//
// The event path is allocation-free in steady state and built for
// throughput:
//   * a heap entry is a 32-byte POD {time, seq, payload} compared and
//     moved contiguously — no type erasure on the hot path;
//   * the overwhelmingly common event is "resume this coroutine"
//     (sleep_for, SleepService wake-ups, Core job completions, Signal
//     resumes): the raw handle rides inside the heap entry itself, with
//     zero side-table bookkeeping;
//   * callback events (governor ticks, timers, test fixtures) live in a
//     pooled slot with a small-buffer-optimised callable and a stable
//     EventId, so pending timers can be *cancelled in O(log n)* instead of
//     being left to fire as stale no-ops. Callables that are trivially
//     copyable and fit kInlineCallbackSize bytes never touch the heap
//     allocator.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace metro::sim {

class Simulation {
 public:
  /// Stable identifier of a pending *callback* event: {slot generation,
  /// slot index}. Ids are invalidated the moment the event fires or is
  /// cancelled; a stale id can never alias a newer event (the generation
  /// is bumped on every slot reuse). 0 is never a valid id.
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Callables at most this size (and trivially copyable/destructible) are
  /// stored inline in the pooled slot — no heap traffic.
  static constexpr std::size_t kInlineCallbackSize = 24;

  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    // Drop pending events first so no event can refer to a destroyed frame,
    // then destroy all frames (they are suspended, so destroy() is legal).
    for (const HeapEntry& e : heap_) {
      if (e.kind == Kind::kCallback) slots_[e.slot].cb.destroy();
    }
    heap_.clear();
    slots_.clear();
    for (auto h : processes_) {
      if (h) h.destroy();
    }
  }

  Time now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedule a callback at absolute virtual time `t` (>= now()).
  /// Returns an id usable with cancel() while the event is pending.
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].cb.emplace(std::forward<F>(fn));
    HeapEntry e;
    e.at = t < now_ ? now_ : t;
    e.seq = next_seq_++;
    e.payload = nullptr;
    e.slot = slot;
    e.kind = Kind::kCallback;
    push_entry(e);
    return make_id(slot);
  }

  /// Schedule a callback `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_after(Time delay, F&& fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  /// Schedule a coroutine resume at absolute virtual time `t`. This is the
  /// hot path: the raw handle rides in the heap entry, nothing is erased,
  /// nothing can be cancelled (no user needs to revoke a bare resume; a
  /// cancellable timer is a callback event). Resumes landing at the
  /// current instant (Signal notifies, spawns, job completions) bypass the
  /// heap entirely: they run at now() in insertion order, which is exactly
  /// the now-FIFO — O(1) instead of O(log n).
  void schedule_handle_at(Time t, std::coroutine_handle<> h) {
    HeapEntry e;
    e.at = t < now_ ? now_ : t;
    e.seq = next_seq_++;
    e.payload = h.address();
    e.slot = 0;
    e.kind = Kind::kCoroutine;
    if (e.at == now_) {
      fifo_.push_back(e);
    } else {
      push_entry(e);
    }
  }

  void schedule_handle_after(Time delay, std::coroutine_handle<> h) {
    schedule_handle_at(now_ + (delay < 0 ? 0 : delay), h);
  }

  /// Remove a pending callback event in O(log n). Returns false when the
  /// id is stale (already fired, already cancelled, or never valid).
  bool cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (id == kInvalidEvent || slot >= slots_.size()) return false;
    CallbackSlot& s = slots_[slot];
    if (s.generation != gen) return false;
    const std::uint32_t pos = s.heap_pos;
    assert(pos < heap_.size() && heap_[pos].slot == slot &&
           heap_[pos].kind == Kind::kCallback);
    remove_at(pos);
    s.cb.destroy();
    release_slot(slot);
    return true;
  }

  /// Start a simulation process. The first resume happens "now".
  void spawn(Task task) {
    auto handle = task.release();
    processes_.push_back(handle);
    schedule_handle_after(0, handle);
  }

  /// Run until the event queue drains or the clock passes `end`.
  /// Events at exactly `end` are executed. Returns the final clock value.
  Time run_until(Time end) {
    while (step_if(end)) {
    }
    if (now_ < end) now_ = end;
    return now_;
  }

  /// Run until no events remain (all processes finished or are blocked).
  Time run() {
    while (step_if(kTimeMax)) {
    }
    return now_;
  }

  bool idle() const noexcept { return heap_.empty() && fifo_empty(); }
  std::size_t pending_events() const noexcept {
    return heap_.size() + (fifo_.size() - fifo_head_);
  }
  /// Total events executed since construction (throughput accounting).
  std::uint64_t events_processed() const noexcept { return processed_; }

  // --- awaitables -----------------------------------------------------

  /// co_await sim.sleep_for(d): suspend the calling process for `d` ns of
  /// virtual time. This is *exact* virtual sleeping — OS-level inaccuracy
  /// is modelled separately by SleepService.
  auto sleep_for(Time d) {
    struct Awaiter {
      Simulation& sim;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_handle_after(delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  auto sleep_until(Time t) { return sleep_for(t - now_); }

 private:
  enum class Kind : std::uint32_t { kCoroutine, kCallback };

  /// Type-erased callable with small-buffer optimisation. Trivially
  /// copyable callables up to kInlineCallbackSize live in `storage`
  /// directly; larger or non-trivial ones are heap-allocated and only the
  /// pointer lives inline. Either way the wrapper itself is trivially
  /// movable.
  struct SmallCallback {
    alignas(void*) unsigned char storage[kInlineCallbackSize];
    void (*invoke)(void* self) = nullptr;
    void (*destroy_fn)(void* self) = nullptr;  // set only for heap fallback

    template <typename F>
    void emplace(F&& fn) {
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineCallbackSize &&
                    alignof(Fn) <= alignof(void*) &&
                    std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>) {
        ::new (static_cast<void*>(storage)) Fn(std::forward<F>(fn));
        invoke = [](void* self) { (*static_cast<Fn*>(self))(); };
        destroy_fn = nullptr;
      } else {
        auto* heap = new Fn(std::forward<F>(fn));
        std::memcpy(storage, &heap, sizeof(heap));
        invoke = [](void* self) {
          Fn* p;
          std::memcpy(&p, self, sizeof(p));
          (*p)();
        };
        destroy_fn = [](void* self) {
          Fn* p;
          std::memcpy(&p, self, sizeof(p));
          delete p;
        };
      }
    }

    void operator()() { invoke(storage); }
    void destroy() {
      if (destroy_fn != nullptr) {
        destroy_fn(storage);
        destroy_fn = nullptr;
      }
      invoke = nullptr;
    }
  };

  /// 32-byte POD heap entry; comparisons and sift moves stay inside the
  /// contiguous heap array.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    void* payload;       // kCoroutine: raw coroutine frame address
    std::uint32_t slot;  // kCallback: index into slots_
    Kind kind;
  };
  static_assert(sizeof(HeapEntry) == 32);
  static_assert(std::is_trivially_copyable_v<HeapEntry>);

  /// Pooled storage for callback events (the cancellable minority).
  struct CallbackSlot {
    SmallCallback cb;            // 40 bytes
    std::uint32_t generation = 1;
    std::uint32_t heap_pos = 0;  // doubles as the free-list link when free
  };

  static bool precedes(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Branch-free (at, seq) comparison. The heap descent picks a child by
  /// a data-dependent 50/50 choice; as a conditional branch that is a
  /// mispredict every other level and dominates pop cost, so the pick is
  /// computed with flag arithmetic instead.
  static std::uint32_t precedes_u(const HeapEntry& a, const HeapEntry& b) noexcept {
    return static_cast<std::uint32_t>(
        static_cast<unsigned>(a.at < b.at) |
        (static_cast<unsigned>(a.at == b.at) & static_cast<unsigned>(a.seq < b.seq)));
  }

  std::uint32_t acquire_slot() {
    std::uint32_t slot;
    if (free_head_ != kNilSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].heap_pos;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    return slot;
  }

  void release_slot(std::uint32_t slot) {
    CallbackSlot& s = slots_[slot];
    ++s.generation;
    s.heap_pos = free_head_;
    free_head_ = slot;
  }

  EventId make_id(std::uint32_t slot) const noexcept {
    return (static_cast<EventId>(slots_[slot].generation) << 32) | slot;
  }

  void place(std::uint32_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    if (e.kind == Kind::kCallback) slots_[e.slot].heap_pos = pos;
  }

  void push_entry(const HeapEntry& e) {
    heap_.push_back(e);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1), e);
  }

  /// Move `e` up from the hole at `pos` to its final position.
  void sift_up(std::uint32_t pos, const HeapEntry& e) {
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 2;
      if (!precedes(e, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, e);
  }

  /// Move `e` down from the hole at `pos` to its final position.
  void sift_down(std::uint32_t pos, const HeapEntry& e) {
    const auto n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && precedes(heap_[child + 1], heap_[child])) ++child;
      if (!precedes(heap_[child], e)) break;
      place(pos, heap_[child]);
      pos = child;
    }
    place(pos, e);
  }

  /// Remove the entry at heap position `pos`.
  void remove_at(std::uint32_t pos) {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;
    if (pos > 0 && precedes(last, heap_[(pos - 1) / 2])) {
      sift_up(pos, last);
    } else {
      sift_down(pos, last);
    }
  }

  /// Remove the minimum (Floyd's optimisation): percolate the hole to the
  /// bottom choosing the smaller child — one compare per level instead of
  /// two — then bubble the displaced last element up. In an event queue
  /// the last element is almost always late, so the bubble-up is O(1).
  void pop_min() {
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const auto n = static_cast<std::uint32_t>(heap_.size());
    if (n == 0) return;
    std::uint32_t pos = 0;
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      // Branch-free smaller-child pick; when there is no right child this
      // compares the left child against itself (false), which is safe.
      const auto has_right = static_cast<std::uint32_t>(child + 1 < n);
      child += has_right & precedes_u(heap_[child + has_right], heap_[child]);
      place(pos, heap_[child]);
      pos = child;
    }
    sift_up(pos, last);
  }

  bool fifo_empty() const noexcept { return fifo_head_ == fifo_.size(); }

  void fifo_pop() {
    if (++fifo_head_ == fifo_.size()) {
      // The FIFO fully drains before the clock can advance, so the buffer
      // is recycled (not freed) between instants — allocation-free once
      // warm.
      fifo_.clear();
      fifo_head_ = 0;
    }
  }

  void dispatch(const HeapEntry& top) {
    now_ = top.at;
    ++processed_;
    if (top.kind == Kind::kCoroutine) {
      const auto h = std::coroutine_handle<>::from_address(top.payload);
      if (!h.done()) h.resume();
    } else {
      // Detach the callable before invoking: the handler may schedule new
      // events that reuse this slot, and the popped id is stale from here.
      SmallCallback cb = slots_[top.slot].cb;  // trivial copy; takes ownership
      release_slot(top.slot);
      cb();
      cb.destroy();
    }
  }

  /// Pop and execute the earliest event with at <= end, false when none.
  bool step_if(Time end) {
    if (fifo_empty()) {
      if (heap_.empty() || heap_[0].at > end) return false;
      const HeapEntry top = heap_[0];
      // Start pulling the coroutine frame in while the heap descent runs;
      // resume() needs it a few dozen cycles from now.
      if (top.kind == Kind::kCoroutine) __builtin_prefetch(top.payload);
      pop_min();
      dispatch(top);
      return true;
    }
    // The FIFO front is its minimum (entries are appended in seq order at
    // a single instant); merge it with the heap top by (at, seq).
    if (heap_.empty() || precedes(fifo_[fifo_head_], heap_[0])) {
      const HeapEntry top = fifo_[fifo_head_];
      if (top.at > end) return false;
      fifo_pop();
      dispatch(top);
    } else {
      const HeapEntry top = heap_[0];
      if (top.at > end) return false;
      pop_min();
      dispatch(top);
    }
    return true;
  }

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr Time kTimeMax = INT64_MAX;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<HeapEntry> fifo_;  // coroutine resumes at the current instant
  std::size_t fifo_head_ = 0;
  std::vector<CallbackSlot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<std::coroutine_handle<Task::promise_type>> processes_;
  Rng rng_;
};

/// A one-to-many wake-up signal. Processes co_await the signal (optionally
/// with a timeout); notify_all() resumes every waiter at the current
/// virtual time. Used e.g. by a busy-polling driver fast-forwarding an idle
/// stretch: the poller is logically spinning (and is accounted as busy),
/// but the simulator skips straight to the next packet arrival.
///
/// Waiters form an intrusive doubly-linked FIFO over a pooled token array —
/// a wait costs no allocation in steady state. A timed wait arms a
/// cancellable kernel timer; notification cancels the timer (and vice
/// versa the timer detaches the waiter), so notify racing timeout can
/// never double-resume.
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Cancel every armed timeout on destruction: the timer callbacks hold a
  /// raw pointer back to this Signal and must never fire after it is gone.
  /// Still-queued waiters simply never resume; their frames are reclaimed
  /// by the owning Simulation.
  ~Signal() {
    for (std::uint32_t i = head_; i != kNil; i = pool_[i].next) {
      if (pool_[i].timeout_event != Simulation::kInvalidEvent) {
        sim_.cancel(pool_[i].timeout_event);
      }
    }
  }

  /// co_await sig.wait(): suspend until the next notify_all().
  auto wait() { return WaitAwaiter{*this, -1, kNil}; }

  /// co_await sig.wait_for(t): suspend until notify_all() or `t` elapses,
  /// whichever comes first. Resumes with true if notified.
  auto wait_for(Time timeout) { return WaitAwaiter{*this, timeout, kNil}; }

  /// Wake all current waiters (they resume via the event queue, at now(),
  /// in wait order).
  void notify_all() {
    std::uint32_t i = head_;
    head_ = tail_ = kNil;
    while (i != kNil) {
      Token& t = pool_[i];
      const std::uint32_t next = t.next;
      t.next = t.prev = kNil;
      t.waiting = false;
      t.notified = true;
      if (t.timeout_event != Simulation::kInvalidEvent) {
        sim_.cancel(t.timeout_event);
        t.timeout_event = Simulation::kInvalidEvent;
      }
      sim_.schedule_handle_after(0, t.handle);
      i = next;
    }
  }

  bool has_waiters() const noexcept { return head_ != kNil; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Token {
    std::coroutine_handle<> handle;
    Simulation::EventId timeout_event = Simulation::kInvalidEvent;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t generation = 0;
    bool waiting = false;
    bool notified = false;
  };

  /// Fired by the kernel when a timed wait expires un-notified.
  struct TimeoutFire {
    Signal* sig;
    std::uint32_t token;
    std::uint32_t generation;
    void operator()() const {
      Token& t = sig->pool_[token];
      if (t.generation != generation || !t.waiting) return;  // stale
      sig->detach(token);
      t.waiting = false;
      t.notified = false;
      t.timeout_event = Simulation::kInvalidEvent;
      if (!t.handle.done()) t.handle.resume();
    }
  };

  struct WaitAwaiter {
    Signal& sig;
    Time timeout;  // < 0: wait forever
    std::uint32_t token;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      token = sig.acquire_token();
      Token& t = sig.pool_[token];
      t.handle = h;
      t.waiting = true;
      t.notified = false;
      sig.append(token);
      if (timeout >= 0) {
        t.timeout_event =
            sig.sim_.schedule_after(timeout, TimeoutFire{&sig, token, t.generation});
      }
    }
    bool await_resume() noexcept {
      const bool notified = sig.pool_[token].notified;
      sig.release_token(token);
      return notified;
    }
  };

  std::uint32_t acquire_token() {
    std::uint32_t i;
    if (free_head_ != kNil) {
      i = free_head_;
      free_head_ = pool_[i].next;
    } else {
      i = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    pool_[i].next = pool_[i].prev = kNil;
    return i;
  }

  void release_token(std::uint32_t i) {
    Token& t = pool_[i];
    assert(!t.waiting && "token released while still queued");
    ++t.generation;
    t.handle = nullptr;
    t.next = free_head_;
    free_head_ = i;
  }

  void append(std::uint32_t i) {
    Token& t = pool_[i];
    t.prev = tail_;
    t.next = kNil;
    if (tail_ != kNil) {
      pool_[tail_].next = i;
    } else {
      head_ = i;
    }
    tail_ = i;
  }

  void detach(std::uint32_t i) {
    Token& t = pool_[i];
    if (t.prev != kNil) {
      pool_[t.prev].next = t.next;
    } else {
      head_ = t.next;
    }
    if (t.next != kNil) {
      pool_[t.next].prev = t.prev;
    } else {
      tail_ = t.prev;
    }
    t.next = t.prev = kNil;
  }

  Simulation& sim_;
  std::vector<Token> pool_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint32_t free_head_ = kNil;
};

}  // namespace metro::sim
