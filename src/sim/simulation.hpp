// The discrete-event simulation kernel.
//
// A Simulation owns:
//   * the virtual clock (nanoseconds, see time.hpp),
//   * a priority queue of timestamped events,
//   * the coroutine frames of all spawned processes,
//   * a deterministic RNG shared by models that need randomness.
//
// Events inserted at equal timestamps run in insertion order (a strictly
// increasing sequence number breaks ties), which keeps runs bit-for-bit
// reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace metro::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    // Drop pending events first so no event can refer to a destroyed frame,
    // then destroy all frames (they are suspended, so destroy() is legal).
    events_ = {};
    for (auto h : processes_) {
      if (h) h.destroy();
    }
  }

  Time now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedule a callback at absolute virtual time `t` (>= now()).
  void schedule_at(Time t, std::function<void()> fn) {
    events_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
  }

  /// Schedule a callback `delay` nanoseconds from now.
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Start a simulation process. The first resume happens "now".
  void spawn(Task task) {
    auto handle = task.release();
    processes_.push_back(handle);
    schedule_after(0, [handle] {
      if (!handle.done()) handle.resume();
    });
  }

  /// Run until the event queue drains or the clock passes `end`.
  /// Events at exactly `end` are executed. Returns the final clock value.
  Time run_until(Time end) {
    while (!events_.empty() && events_.top().at <= end) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.at;
      ev.fn();
    }
    if (now_ < end) now_ = end;
    return now_;
  }

  /// Run until no events remain (all processes finished or are blocked).
  Time run() {
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.at;
      ev.fn();
    }
    return now_;
  }

  bool idle() const noexcept { return events_.empty(); }
  std::size_t pending_events() const noexcept { return events_.size(); }

  // --- awaitables -----------------------------------------------------

  /// co_await sim.sleep_for(d): suspend the calling process for `d` ns of
  /// virtual time. This is *exact* virtual sleeping — OS-level inaccuracy
  /// is modelled separately by SleepService.
  auto sleep_for(Time d) {
    struct Awaiter {
      Simulation& sim;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(delay, [h] {
          if (!h.done()) h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  auto sleep_until(Time t) { return sleep_for(t - now_); }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::coroutine_handle<Task::promise_type>> processes_;
  Rng rng_;
};

/// A one-to-many wake-up signal. Processes co_await the signal (optionally
/// with a timeout); notify_all() resumes every waiter at the current
/// virtual time. Used e.g. by a busy-polling driver fast-forwarding an idle
/// stretch: the poller is logically spinning (and is accounted as busy),
/// but the simulator skips straight to the next packet arrival.
///
/// Each wait allocates a one-shot token so a timed wait can be raced by
/// both the notification and its timeout without double-resume.
class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}

  /// co_await sig.wait(): suspend until the next notify_all().
  auto wait() { return WaitAwaiter{*this, -1, nullptr}; }

  /// co_await sig.wait_for(t): suspend until notify_all() or `t` elapses,
  /// whichever comes first. Resumes with true if notified.
  auto wait_for(Time timeout) { return WaitAwaiter{*this, timeout, nullptr}; }

  /// Wake all current waiters (they resume via the event queue, at now()).
  void notify_all() {
    if (waiters_.empty()) return;
    auto woken = std::move(waiters_);
    waiters_.clear();
    for (auto& t : woken) {
      if (!t->armed) continue;  // already resumed via timeout
      t->armed = false;
      t->notified = true;
      auto h = t->handle;
      sim_.schedule_after(0, [h] {
        if (!h.done()) h.resume();
      });
    }
  }

  bool has_waiters() const noexcept { return !waiters_.empty(); }

 private:
  struct Token {
    std::coroutine_handle<> handle;
    bool armed = true;
    bool notified = false;
  };

  struct WaitAwaiter {
    Signal& sig;
    Time timeout;  // < 0: wait forever
    std::shared_ptr<Token> token;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      token = std::make_shared<Token>();
      token->handle = h;
      sig.waiters_.push_back(token);
      if (timeout >= 0) {
        auto t = token;
        sig.sim_.schedule_after(timeout, [t] {
          if (!t->armed) return;
          t->armed = false;
          t->notified = false;
          if (!t->handle.done()) t->handle.resume();
        });
      }
    }
    bool await_resume() const noexcept { return token && token->notified; }
  };

  Simulation& sim_;
  std::vector<std::shared_ptr<Token>> waiters_;
};

}  // namespace metro::sim
