/// \file simulation.hpp
/// The discrete-event simulation kernel.
///
/// A BasicSimulation owns:
///   * the virtual clock (nanoseconds, see time.hpp),
///   * a pluggable pending-event store (see event_queue.hpp) holding
///     timestamped events — a binary min-heap by default, or a ladder
///     queue for very large pending populations,
///   * the coroutine frames of all spawned processes,
///   * a deterministic RNG shared by models that need randomness.
///
/// Events inserted at equal timestamps run in insertion order (a strictly
/// increasing sequence number breaks ties, merged across the backend and
/// the now-FIFO), which keeps runs bit-for-bit reproducible — on every
/// backend.
///
/// The event path is allocation-free in steady state and built for
/// throughput:
///   * an event record is a 32-byte POD {time, seq, payload} compared and
///     moved contiguously — no type erasure on the hot path;
///   * the overwhelmingly common event is "resume this coroutine"
///     (sleep_for, SleepService wake-ups, Core job completions, Signal
///     resumes): the raw handle rides inside the event record itself, with
///     zero side-table bookkeeping, and same-instant resumes bypass the
///     backend entirely through a FIFO that is already in execution order;
///   * callback events (governor ticks, timers, test fixtures) live in a
///     pooled slot with a small-buffer-optimised callable and a stable
///     EventId, so pending timers can be *cancelled* instead of being left
///     to fire as stale no-ops. Callables that are trivially copyable and
///     fit kInlineCallbackSize bytes never touch the heap allocator.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace metro::sim {

/// The discrete-event kernel, templated over the pending-event store.
///
/// \tparam Backend an EventQueueBackend (event_queue.hpp). The default
///   BinaryHeapBackend cancels eagerly in O(log n); LadderQueueBackend
///   trades that for amortised O(1) scheduling at >10k pending events,
///   cancelling by tombstone. Both uphold the same observable contract:
///   identical execution order, stable EventIds, steady-state allocation
///   freedom.
template <EventQueueBackend Backend = BinaryHeapBackend>
class BasicSimulation {
 public:
  /// Stable identifier of a pending *callback* event: {slot generation,
  /// slot index}. Ids are invalidated the moment the event fires or is
  /// cancelled; a stale id can never alias a newer event (the generation
  /// is bumped on every slot reuse). 0 is never a valid id.
  using EventId = std::uint64_t;
  /// The never-valid EventId.
  static constexpr EventId kInvalidEvent = 0;

  /// Callables at most this size (and trivially copyable/destructible) are
  /// stored inline in the pooled slot — no heap traffic.
  static constexpr std::size_t kInlineCallbackSize = 24;

  /// Construct an idle simulation whose RNG is seeded with `seed`.
  explicit BasicSimulation(std::uint64_t seed = 1) : rng_(seed) {}

  /// Construct with a pre-configured backend instance (e.g. a
  /// LadderQueueBackend with non-default LadderConfig geometry).
  BasicSimulation(std::uint64_t seed, Backend backend)
      : queue_(std::move(backend)), rng_(seed) {}

  BasicSimulation(const BasicSimulation&) = delete;
  BasicSimulation& operator=(const BasicSimulation&) = delete;

  ~BasicSimulation() {
    // Drop pending events first so no event can refer to a destroyed frame,
    // then destroy all frames (they are suspended, so destroy() is legal).
    queue_.for_each([this](const EventEntry& e) {
      if (e.kind == EventKind::kCallback && !ctx().dead(e)) {
        slots_[e.slot].cb.destroy();
      }
    });
    queue_.clear();
    slots_.clear();
    for (auto h : processes_) {
      if (h) h.destroy();
    }
  }

  /// Current virtual time, ns.
  Time now() const noexcept { return now_; }
  /// The simulation-owned deterministic RNG.
  Rng& rng() noexcept { return rng_; }
  /// The event-store backend (observability for tests and benches).
  const Backend& backend() const noexcept { return queue_; }

  /// Schedule a callback at absolute virtual time `t` (>= now()).
  /// Returns an id usable with cancel() while the event is pending.
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].cb.emplace(std::forward<F>(fn));
    EventEntry e;
    e.at = t < now_ ? now_ : t;
    e.seq = next_seq_++;
    e.payload = encode_generation(slots_[slot].generation);
    e.slot = slot;
    e.kind = EventKind::kCallback;
    queue_.push(e, ctx());
    return make_id(slot);
  }

  /// Schedule a callback `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_after(Time delay, F&& fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }

  /// Schedule a coroutine resume at absolute virtual time `t`. This is the
  /// hot path: the raw handle rides in the event record, nothing is erased,
  /// nothing can be cancelled (no user needs to revoke a bare resume; a
  /// cancellable timer is a callback event). Resumes landing at the
  /// current instant (Signal notifies, spawns, job completions) bypass the
  /// backend entirely: they run at now() in insertion order, which is
  /// exactly the now-FIFO — O(1) instead of a backend insert.
  void schedule_handle_at(Time t, std::coroutine_handle<> h) {
    EventEntry e;
    e.at = t < now_ ? now_ : t;
    e.seq = next_seq_++;
    e.payload = h.address();
    e.slot = 0;
    e.kind = EventKind::kCoroutine;
    if (e.at == now_) {
      fifo_.push_back(e);
    } else {
      queue_.push(e, ctx());
    }
  }

  /// Schedule a coroutine resume `delay` nanoseconds from now.
  void schedule_handle_after(Time delay, std::coroutine_handle<> h) {
    schedule_handle_at(now_ + (delay < 0 ? 0 : delay), h);
  }

  /// Remove a pending callback event (O(log n) positional erase on the
  /// heap backend, O(1) tombstone on the ladder). Returns false when the
  /// id is stale (already fired, already cancelled, or never valid).
  bool cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (id == kInvalidEvent || slot >= slots_.size()) return false;
    CallbackSlot& s = slots_[slot];
    if (s.generation != gen) return false;
    if constexpr (Backend::kPositionalCancel) {
      queue_.erase_at(s.heap_pos, slot, ctx());
    } else {
      // Tombstone: the entry stays queued; bumping the slot generation in
      // release_slot() is what makes ctx().dead() flag it for lazy drop.
      queue_.on_cancelled();
    }
    s.cb.destroy();
    release_slot(slot);
    return true;
  }

  /// Start a simulation process. The first resume happens "now".
  void spawn(Task task) {
    auto handle = task.release();
    processes_.push_back(handle);
    schedule_handle_after(0, handle);
  }

  /// Run until the event queue drains or the clock passes `end`.
  /// Events at exactly `end` are executed. Returns the final clock value.
  Time run_until(Time end) {
    while (step_if(end)) {
    }
    if (now_ < end) now_ = end;
    return now_;
  }

  /// Run until no events remain (all processes finished or are blocked).
  Time run() {
    while (step_if(kTimeMax)) {
    }
    return now_;
  }

  /// True when no live event is pending.
  bool idle() const noexcept { return queue_.empty() && fifo_empty(); }
  /// Number of live pending events (backend + now-FIFO).
  std::size_t pending_events() const noexcept {
    return queue_.size() + (fifo_.size() - fifo_head_);
  }
  /// Total events executed since construction (throughput accounting).
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Attach (or detach, with nullptr) a trace recorder. Default-off: the
  /// only hot-path cost while detached is one predictable null test per
  /// dispatched event. Backends that emit structural events (ladder
  /// spill/epoch, wheel cascade/rebase) receive the tracer too. Tracing
  /// only *observes* — it never changes what the run computes, so
  /// telemetry fingerprints are bit-identical either way (test-enforced).
  void set_tracer(trace::Tracer* t) noexcept {
    tracer_ = t;
    if constexpr (requires { queue_.set_tracer(t); }) queue_.set_tracer(t);
  }
  /// The attached trace recorder, or nullptr.
  trace::Tracer* tracer() const noexcept { return tracer_; }

  // --- awaitables -----------------------------------------------------

  /// co_await sim.sleep_for(d): suspend the calling process for `d` ns of
  /// virtual time. This is *exact* virtual sleeping — OS-level inaccuracy
  /// is modelled separately by SleepService.
  auto sleep_for(Time d) {
    struct Awaiter {
      BasicSimulation& sim;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_handle_after(delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// co_await sim.sleep_until(t): suspend until absolute virtual time `t`.
  auto sleep_until(Time t) { return sleep_for(t - now_); }

 private:
  /// Type-erased callable with small-buffer optimisation. Trivially
  /// copyable callables up to kInlineCallbackSize live in `storage`
  /// directly; larger or non-trivial ones are heap-allocated and only the
  /// pointer lives inline. Either way the wrapper itself is trivially
  /// movable.
  struct SmallCallback {
    alignas(void*) unsigned char storage[kInlineCallbackSize];
    void (*invoke)(void* self) = nullptr;
    void (*destroy_fn)(void* self) = nullptr;  // set only for heap fallback

    template <typename F>
    void emplace(F&& fn) {
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineCallbackSize &&
                    alignof(Fn) <= alignof(void*) &&
                    std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>) {
        ::new (static_cast<void*>(storage)) Fn(std::forward<F>(fn));
        invoke = [](void* self) { (*static_cast<Fn*>(self))(); };
        destroy_fn = nullptr;
      } else {
        auto* heap = new Fn(std::forward<F>(fn));
        std::memcpy(storage, &heap, sizeof(heap));
        invoke = [](void* self) {
          Fn* p;
          std::memcpy(&p, self, sizeof(p));
          (*p)();
        };
        destroy_fn = [](void* self) {
          Fn* p;
          std::memcpy(&p, self, sizeof(p));
          delete p;
        };
      }
    }

    void operator()() { invoke(storage); }
    void destroy() {
      if (destroy_fn != nullptr) {
        destroy_fn(storage);
        destroy_fn = nullptr;
      }
      invoke = nullptr;
    }
  };

  /// Pooled storage for callback events (the cancellable minority).
  struct CallbackSlot {
    SmallCallback cb;            // 40 bytes
    std::uint32_t generation = 1;
    std::uint32_t heap_pos = 0;  // backend position / free-list link
  };

  /// The queue context handed to the backend: position tracking for
  /// eager-cancel backends, liveness queries for tombstoning ones (see the
  /// contract in event_queue.hpp).
  struct QueueCtx {
    BasicSimulation* sim;
    void moved(std::uint32_t slot, std::uint32_t pos) const noexcept {
      sim->slots_[slot].heap_pos = pos;
    }
    bool dead(const EventEntry& e) const noexcept {
      return e.kind == EventKind::kCallback &&
             sim->slots_[e.slot].generation != decode_generation(e.payload);
    }
  };
  QueueCtx ctx() noexcept { return QueueCtx{this}; }

  static void* encode_generation(std::uint32_t gen) noexcept {
    return reinterpret_cast<void*>(static_cast<std::uintptr_t>(gen));
  }
  static std::uint32_t decode_generation(void* payload) noexcept {
    return static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(payload));
  }

  std::uint32_t acquire_slot() {
    std::uint32_t slot;
    if (free_head_ != kNilSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].heap_pos;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    return slot;
  }

  void release_slot(std::uint32_t slot) {
    CallbackSlot& s = slots_[slot];
    ++s.generation;
    s.heap_pos = free_head_;
    free_head_ = slot;
  }

  EventId make_id(std::uint32_t slot) const noexcept {
    return (static_cast<EventId>(slots_[slot].generation) << 32) | slot;
  }

  bool fifo_empty() const noexcept { return fifo_head_ == fifo_.size(); }

  void fifo_pop() {
    if (++fifo_head_ == fifo_.size()) {
      // The FIFO fully drains before the clock can advance, so the buffer
      // is recycled (not freed) between instants — allocation-free once
      // warm.
      fifo_.clear();
      fifo_head_ = 0;
    }
  }

  void dispatch(const EventEntry& top) {
    now_ = top.at;
    ++processed_;
    if (tracer_ != nullptr) [[unlikely]] {
      // 1-in-256 deterministic sampling: a full-rate fire instant per
      // event would saturate the ring in microseconds of sim time.
      if ((processed_ & 0xff) == 0) {
        tracer_->instant(trace::id::kKernelFire, top.at, processed_);
      }
    }
    if (top.kind == EventKind::kCoroutine) {
      const auto h = std::coroutine_handle<>::from_address(top.payload);
      if (!h.done()) h.resume();
    } else {
      // Detach the callable before invoking: the handler may schedule new
      // events that reuse this slot, and the popped id is stale from here.
      SmallCallback cb = slots_[top.slot].cb;  // trivial copy; takes ownership
      release_slot(top.slot);
      cb();
      cb.destroy();
    }
  }

  /// Pop and execute the earliest event with at <= end, false when none.
  bool step_if(Time end) {
    if (fifo_empty()) {
      if (queue_.empty()) return false;
      const EventEntry top = queue_.peek(ctx());
      if (top.at > end) return false;
      // Start pulling the coroutine frame in while the pop runs; resume()
      // needs it a few dozen cycles from now.
      if (top.kind == EventKind::kCoroutine) __builtin_prefetch(top.payload);
      queue_.pop_min(ctx());
      dispatch(top);
      return true;
    }
    // The FIFO front is its minimum (entries are appended in seq order at
    // a single instant); merge it with the backend's minimum by (at, seq).
    if (queue_.empty() || event_precedes(fifo_[fifo_head_], queue_.peek(ctx()))) {
      const EventEntry top = fifo_[fifo_head_];
      if (top.at > end) return false;
      fifo_pop();
      dispatch(top);
    } else {
      const EventEntry top = queue_.peek(ctx());
      if (top.at > end) return false;
      queue_.pop_min(ctx());
      dispatch(top);
    }
    return true;
  }

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr Time kTimeMax = INT64_MAX;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  Backend queue_;
  std::vector<EventEntry> fifo_;  // coroutine resumes at the current instant
  std::size_t fifo_head_ = 0;
  std::vector<CallbackSlot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<std::coroutine_handle<Task::promise_type>> processes_;
  Rng rng_;
  trace::Tracer* tracer_ = nullptr;
};

/// The default kernel: binary-heap event store. The production layers
/// (Core, SleepService, Metronome, Port, Testbed, ...) are generic over
/// the kernel instantiation; their unsuffixed aliases bind to this type.
using Simulation = BasicSimulation<BinaryHeapBackend>;
/// The large-pending-population kernel variant. The whole app stack also
/// instantiates over this (BasicTestbed<LadderSimulation> etc.).
using LadderSimulation = BasicSimulation<LadderQueueBackend>;
/// The million-timer kernel variant: hierarchical timing-wheel event
/// store. Instantiated across the app stack like the other two.
using WheelSimulation = BasicSimulation<TimingWheelBackend>;

/// A one-to-many wake-up signal. Processes co_await the signal (optionally
/// with a timeout); notify_all() resumes every waiter at the current
/// virtual time. Used e.g. by a busy-polling driver fast-forwarding an idle
/// stretch: the poller is logically spinning (and is accounted as busy),
/// but the simulator skips straight to the next packet arrival.
///
/// Waiters form an intrusive doubly-linked FIFO over a pooled token array —
/// a wait costs no allocation in steady state. A timed wait arms a
/// cancellable kernel timer; notification cancels the timer (and vice
/// versa the timer detaches the waiter), so notify racing timeout can
/// never double-resume.
///
/// \tparam Sim the owning kernel instantiation (any backend).
template <typename Sim = Simulation>
class BasicSignal {
 public:
  /// Bind the signal to its owning simulation.
  explicit BasicSignal(Sim& sim) : sim_(sim) {}

  BasicSignal(const BasicSignal&) = delete;
  BasicSignal& operator=(const BasicSignal&) = delete;

  /// Cancel every armed timeout on destruction: the timer callbacks hold a
  /// raw pointer back to this Signal and must never fire after it is gone.
  /// Still-queued waiters simply never resume; their frames are reclaimed
  /// by the owning Simulation.
  ~BasicSignal() {
    for (std::uint32_t i = head_; i != kNil; i = pool_[i].next) {
      if (pool_[i].timeout_event != Sim::kInvalidEvent) {
        sim_.cancel(pool_[i].timeout_event);
      }
    }
  }

  /// co_await sig.wait(): suspend until the next notify_all().
  auto wait() { return WaitAwaiter{*this, -1, kNil}; }

  /// co_await sig.wait_for(t): suspend until notify_all() or `t` elapses,
  /// whichever comes first. Resumes with true if notified.
  auto wait_for(Time timeout) { return WaitAwaiter{*this, timeout, kNil}; }

  /// Wake all current waiters (they resume via the event queue, at now(),
  /// in wait order).
  void notify_all() {
    std::uint32_t i = head_;
    head_ = tail_ = kNil;
    while (i != kNil) {
      Token& t = pool_[i];
      const std::uint32_t next = t.next;
      t.next = t.prev = kNil;
      t.waiting = false;
      t.notified = true;
      if (t.timeout_event != Sim::kInvalidEvent) {
        sim_.cancel(t.timeout_event);
        t.timeout_event = Sim::kInvalidEvent;
      }
      sim_.schedule_handle_after(0, t.handle);
      i = next;
    }
  }

  /// True while at least one process is blocked on the signal.
  bool has_waiters() const noexcept { return head_ != kNil; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Token {
    std::coroutine_handle<> handle;
    typename Sim::EventId timeout_event = Sim::kInvalidEvent;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t generation = 0;
    bool waiting = false;
    bool notified = false;
  };

  /// Fired by the kernel when a timed wait expires un-notified.
  struct TimeoutFire {
    BasicSignal* sig;
    std::uint32_t token;
    std::uint32_t generation;
    void operator()() const {
      Token& t = sig->pool_[token];
      if (t.generation != generation || !t.waiting) return;  // stale
      sig->detach(token);
      t.waiting = false;
      t.notified = false;
      t.timeout_event = Sim::kInvalidEvent;
      if (!t.handle.done()) t.handle.resume();
    }
  };

  struct WaitAwaiter {
    BasicSignal& sig;
    Time timeout;  // < 0: wait forever
    std::uint32_t token;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      token = sig.acquire_token();
      Token& t = sig.pool_[token];
      t.handle = h;
      t.waiting = true;
      t.notified = false;
      sig.append(token);
      if (timeout >= 0) {
        t.timeout_event =
            sig.sim_.schedule_after(timeout, TimeoutFire{&sig, token, t.generation});
      }
    }
    bool await_resume() noexcept {
      const bool notified = sig.pool_[token].notified;
      sig.release_token(token);
      return notified;
    }
  };

  std::uint32_t acquire_token() {
    std::uint32_t i;
    if (free_head_ != kNil) {
      i = free_head_;
      free_head_ = pool_[i].next;
    } else {
      i = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    pool_[i].next = pool_[i].prev = kNil;
    return i;
  }

  void release_token(std::uint32_t i) {
    Token& t = pool_[i];
    assert(!t.waiting && "token released while still queued");
    ++t.generation;
    t.handle = nullptr;
    t.next = free_head_;
    free_head_ = i;
  }

  void append(std::uint32_t i) {
    Token& t = pool_[i];
    t.prev = tail_;
    t.next = kNil;
    if (tail_ != kNil) {
      pool_[tail_].next = i;
    } else {
      head_ = i;
    }
    tail_ = i;
  }

  void detach(std::uint32_t i) {
    Token& t = pool_[i];
    if (t.prev != kNil) {
      pool_[t.prev].next = t.next;
    } else {
      head_ = t.next;
    }
    if (t.next != kNil) {
      pool_[t.next].prev = t.prev;
    } else {
      tail_ = t.prev;
    }
    t.next = t.prev = kNil;
  }

  Sim& sim_;
  std::vector<Token> pool_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint32_t free_head_ = kNil;
};

/// The default signal, bound to the default kernel.
using Signal = BasicSignal<Simulation>;

}  // namespace metro::sim
