// Virtual time for the discrete-event simulator.
//
// All simulated time is kept as signed 64-bit nanoseconds. 2^63 ns is
// roughly 292 years, which comfortably covers any experiment in the paper
// (the longest run is a 60 s MoonGen ramp). Signed arithmetic keeps
// interval subtraction safe.
#pragma once

#include <cstdint>

namespace metro::sim {

/// Nanoseconds of virtual time (also used for CPU-work amounts).
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Convenience literals: 10_us, 500_ms, ...
constexpr Time operator""_ns(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v) * kMicrosecond; }
constexpr Time operator""_ms(unsigned long long v) { return static_cast<Time>(v) * kMillisecond; }
constexpr Time operator""_s(unsigned long long v) { return static_cast<Time>(v) * kSecond; }

/// Seconds as double -> Time, rounding to the nearest nanosecond.
constexpr Time from_seconds(double s) { return static_cast<Time>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)); }
constexpr Time from_micros(double us) { return static_cast<Time>(us * 1e3 + (us >= 0 ? 0.5 : -0.5)); }

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_micros(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_millis(Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace metro::sim
