#include "fault/fault.hpp"

namespace metro::fault {

namespace {

/// Stateless flap window: with period `every + down`, time t is "down"
/// during the trailing `down` of its period. Returns the window index
/// (t / period) through `window` so callers can account each witnessed
/// down-window exactly once.
bool in_down_window(sim::Time t, sim::Time every, sim::Time down, std::int64_t& window) {
  if (every <= 0 || down <= 0 || t < 0) return false;
  const sim::Time period = every + down;
  window = t / period;
  return (t % period) >= every;
}

}  // namespace

bool FaultInjector::link_down(sim::Time t) {
  std::int64_t window = -1;
  if (!in_down_window(t, spec_.link_down_every, spec_.link_down_for, window)) return false;
  if (window != last_down_window_) {
    last_down_window_ = window;
    counters_.link_down_ns += static_cast<std::uint64_t>(spec_.link_down_for);
  }
  return true;
}

bool FaultInjector::rx_stalled(sim::Time t) {
  std::int64_t window = -1;
  if (!in_down_window(t, spec_.stall_every, spec_.stall_for, window)) return false;
  if (window != last_stall_window_) {
    last_stall_window_ = window;
    counters_.stall_ns += static_cast<std::uint64_t>(spec_.stall_for);
    if (tracer_ != nullptr) [[unlikely]] {
      tracer_->instant(trace::id::kFaultStall, t, static_cast<std::uint64_t>(spec_.stall_for));
    }
  }
  return true;
}

void FaultInjector::corrupt(nic::PacketDesc& pkt) {
  // Header-field corruption on the descriptor path: one flipped bit in the
  // RSS hash (the packet may land on the wrong queue — exactly what a
  // corrupted 5-tuple does to real RSS) and one in the low bits of the
  // wire size (keeping it inside the 11-bit MTU range so the descriptor
  // stays representable; a zero size clamps to 1 byte).
  pkt.rss_hash ^= std::uint32_t{1} << rng_.uniform_u64(32);
  pkt.wire_size = static_cast<std::uint16_t>(pkt.wire_size ^ (std::uint16_t{1} << rng_.uniform_u64(11)));
  if (pkt.wire_size == 0) pkt.wire_size = 1;
}

void FaultInjector::flip_bits(std::uint8_t* data, std::size_t len, int n_bits) {
  if (len == 0) return;
  for (int i = 0; i < n_bits; ++i) {
    const std::uint64_t bit = rng_.uniform_u64(static_cast<std::uint64_t>(len) * 8);
    data[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
  }
}

void FaultInjector::register_metrics(stats::MetricSet& set, const std::string& prefix) {
  set.attach_counter(prefix + ".dropped", counters_.dropped);
  set.attach_counter(prefix + ".corrupted", counters_.corrupted);
  set.attach_counter(prefix + ".dup", counters_.dup);
  set.attach_counter(prefix + ".reordered", counters_.reordered);
  set.attach_counter(prefix + ".link_down_ns", counters_.link_down_ns);
  set.attach_counter(prefix + ".stall_ns", counters_.stall_ns);
}

}  // namespace metro::fault
