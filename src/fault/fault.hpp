// Deterministic fault-injection plane.
//
// The paper's premise is that intermittent packet retrieval must stay
// correct and bounded under adverse timing — so the reproduction needs a
// way to *express* adversity: lossy links, bit-flipped headers,
// duplicated and reordered deliveries, link flaps and NIC rx-ring stalls.
// This header defines the whole plane:
//
//   * `FaultSpec` — a declarative, per-scenario description carried in
//     `WorkloadConfig` (and therefore `ScenarioSpec`). A default spec is
//     inert: every hook short-circuits and the healthy data path is
//     byte-for-byte what it was before this subsystem existed.
//   * `FaultInjector` — the runtime: one xoshiro256** stream seeded via
//     `derive_seed(shard_seed)` (SplitMix64-mixed on a dedicated stream
//     tag, so fault randomness never aliases workload randomness). The
//     injector is driven exclusively by packet arrival timestamps and the
//     arrival *order* at the port — both already bit-identical across
//     backends, geometries and `--jobs` — so fault sequences inherit the
//     determinism contract and `fingerprint()` gates extend to faulty
//     runs unchanged.
//   * Counters (`fault.dropped`, `fault.corrupted`, `fault.dup`,
//     `fault.reordered`, `fault.link_down_ns`, `fault.stall_ns`)
//     registered in `stats::MetricSet` like every other layer's.
//
// Hook points: `BasicPort::rx`/`rx_burst` route each descriptor through
// `ingress()` (drop / corrupt / duplicate / reorder / link-down), and
// `BasicRxRing::push` consults `rx_stalled()` (a stalled ring tail-drops
// as if full — DMA writes that land during a stall are lost, which is
// what a wedged descriptor ring does to real hardware).
//
// Link-down and stall windows are *stateless* functions of the sim clock:
// with period `every + for`, the link is down during the trailing `for`
// of each period. No events, no timers — a packet's own timestamp decides
// its fate, so the windows cost nothing when no packet arrives and are
// trivially identical across event orderings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "nic/sim_packet.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "stats/metric_set.hpp"
#include "stats/trace.hpp"
#include "util/seed_mix.hpp"

namespace metro::fault {

/// Declarative fault description, carried per scenario. All probabilities
/// are per-packet in [0, 1]; all windows are sim-clock nanoseconds. The
/// default-constructed spec is inert (`any()` is false) and costs nothing.
struct FaultSpec {
  double drop_prob = 0.0;     ///< silently lose the packet
  double corrupt_prob = 0.0;  ///< flip header bits (rss_hash / wire_size)
  double dup_prob = 0.0;      ///< deliver the packet twice
  double reorder_prob = 0.0;  ///< hold the packet behind its successor

  /// Link flap: up for `link_down_every`, then down for `link_down_for`,
  /// repeating. Packets arriving in a down window are lost. Both must be
  /// > 0 for the flap to be active.
  sim::Time link_down_every = 0;
  sim::Time link_down_for = 0;

  /// Rx-ring stall: every `stall_every` the ring wedges for `stall_for`;
  /// pushes during the stall tail-drop (counted in the ring's own
  /// `dropped` counter). Both must be > 0 to be active.
  sim::Time stall_every = 0;
  sim::Time stall_for = 0;

  bool any() const noexcept {
    return drop_prob > 0.0 || corrupt_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0 ||
           (link_down_every > 0 && link_down_for > 0) || (stall_every > 0 && stall_for > 0);
  }
};

/// The six plane-level observables (registration via register_metrics;
/// the hooks keep plain increments, per the repo's telemetry discipline).
struct FaultCounters {
  std::uint64_t dropped = 0;       ///< lost to drop_prob or a down link
  std::uint64_t corrupted = 0;     ///< headers bit-flipped
  std::uint64_t dup = 0;           ///< extra copies delivered
  std::uint64_t reordered = 0;     ///< packets held behind a successor
  std::uint64_t link_down_ns = 0;  ///< down-time actually witnessed by packets
  std::uint64_t stall_ns = 0;      ///< stall-time actually witnessed by pushes
};

class FaultInjector {
 public:
  /// Stream tag folded into the shard seed so the fault stream never
  /// collides with the workload stream (`mix_seed(cfg.seed, 1)`) or any
  /// other derived seed family.
  static constexpr std::uint64_t kFaultSeedStream = 0xFA01'7B1A'DE5EULL;

  static constexpr std::uint64_t derive_seed(std::uint64_t shard_seed) noexcept {
    return util::mix_seed(shard_seed, kFaultSeedStream);
  }

  FaultInjector(const FaultSpec& spec, std::uint64_t seed) : spec_(spec), rng_(seed) {}

  const FaultSpec& spec() const noexcept { return spec_; }
  const FaultCounters& counters() const noexcept { return counters_; }

  /// Run one descriptor through the ingress pipeline, invoking
  /// `deliver(const nic::PacketDesc&)` zero, one or two times:
  ///   link-down? -> lost.  drop? -> lost.  corrupt? -> flip bits.
  ///   reorder? -> hold until the next delivered packet goes first.
  ///   deliver; dup? -> deliver again; then release any held packet.
  /// RNG draws are guarded by spec probabilities, so a given spec + seed
  /// always consumes the stream identically for the same packet sequence.
  template <typename Deliver>
  void ingress(nic::PacketDesc pkt, Deliver&& deliver) {
    if (link_down(pkt.arrival)) {
      ++counters_.dropped;
      if (tracer_ != nullptr) [[unlikely]] {
        tracer_->instant(trace::id::kFaultLinkDown, pkt.arrival, pkt.flow_id);
      }
      return;
    }
    if (spec_.drop_prob > 0.0 && rng_.chance(spec_.drop_prob)) {
      ++counters_.dropped;
      if (tracer_ != nullptr) [[unlikely]] {
        tracer_->instant(trace::id::kFaultDrop, pkt.arrival, pkt.flow_id);
      }
      return;
    }
    if (spec_.corrupt_prob > 0.0 && rng_.chance(spec_.corrupt_prob)) {
      corrupt(pkt);
      ++counters_.corrupted;
    }
    if (spec_.reorder_prob > 0.0 && !held_.has_value() && rng_.chance(spec_.reorder_prob)) {
      held_ = pkt;
      ++counters_.reordered;
      if (tracer_ != nullptr) [[unlikely]] {
        tracer_->instant(trace::id::kFaultReorder, pkt.arrival, pkt.flow_id);
      }
      return;
    }
    deliver(static_cast<const nic::PacketDesc&>(pkt));
    if (spec_.dup_prob > 0.0 && rng_.chance(spec_.dup_prob)) {
      ++counters_.dup;
      deliver(static_cast<const nic::PacketDesc&>(pkt));
    }
    if (held_.has_value()) {
      const nic::PacketDesc late = *held_;
      held_.reset();
      deliver(late);  // behind its successor: the reordering is now real
    }
  }

  /// True while the rx ring is wedged at sim time `t`. Called from
  /// BasicRxRing::push; no RNG (stateless in the clock), but accounts
  /// witnessed stall time lazily (once per stall window a push lands in).
  bool rx_stalled(sim::Time t);

  /// Flip `n_bits` randomly-chosen bits of `data` (functional-path
  /// corruption for the byte-level apps: l3fwd / FloWatcher / IPsec
  /// harnesses feed packets through this before parsing).
  void flip_bits(std::uint8_t* data, std::size_t len, int n_bits);

  /// Attach the six plane counters to `set` as `<prefix>.dropped`,
  /// `.corrupted`, `.dup`, `.reordered`, `.link_down_ns`, `.stall_ns`.
  void register_metrics(stats::MetricSet& set, const std::string& prefix);

  /// Attach (or detach, with nullptr) a trace recorder: drop / reorder /
  /// link-down / stall decisions then emit instants. Read-only observer —
  /// fault sequences and counters are identical with or without it.
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

 private:
  bool link_down(sim::Time t);
  void corrupt(nic::PacketDesc& pkt);

  FaultSpec spec_;
  sim::Rng rng_;
  FaultCounters counters_;
  trace::Tracer* tracer_ = nullptr;  // borrowed; nullptr = no tracing
  std::optional<nic::PacketDesc> held_;
  std::int64_t last_down_window_ = -1;
  std::int64_t last_stall_window_ = -1;
};

}  // namespace metro::fault
