#include "dpdk/freq_scaling.hpp"

#include <string>
#include <vector>

namespace metro::dpdk {

namespace {

template <typename Sim>
sim::Task freq_scaling_task(Sim& sim, nic::BasicPort<Sim>& port, int queue,
                            sim::BasicCore<Sim>& core,
                            typename sim::BasicCore<Sim>::EntityId ent, FreqScalingConfig cfg,
                            FreqScalingStats& stats) {
  nic::BasicRxRing<Sim>& ring = port.rx_queue(queue);
  nic::BasicTxRing<Sim>& tx = port.tx();
  std::vector<nic::PacketDesc> burst(static_cast<std::size_t>(cfg.burst));
  sim::Time last_tx_flush = sim.now();
  int idle_streak = 0;
  double freq = 1.0;
  core.request_freq(freq);

  core.set_spinning(ent, true);  // still a busy-wait loop: 100% CPU
  for (;;) {
    const int n = ring.pop_burst(burst.data(), cfg.burst);
    if (n > 0) {
      idle_streak = 0;
      // Burst pressure: jump straight to max, as l3fwd-power does.
      if (static_cast<int>(ring.size()) >= cfg.busy_bursts_for_max * cfg.burst && freq < 1.0) {
        freq = 1.0;
        core.request_freq(freq);
        ++stats.freq_jumps_up;
      }
      co_await core.run_for(ent, static_cast<sim::Time>(n) * cfg.per_packet_cost);
      for (int i = 0; i < n; ++i) tx.send(burst[static_cast<std::size_t>(i)]);
      stats.packets_processed += static_cast<std::uint64_t>(n);
      if (tx.pending() == 0) last_tx_flush = sim.now();
      continue;
    }

    if (++idle_streak >= cfg.idle_polls_per_step_down) {
      idle_streak = 0;
      const double next = freq - cfg.freq_step;
      if (next >= 0.0) {
        freq = next;
        core.request_freq(freq);  // clamps at the floor P-state
        ++stats.freq_steps_down;
      }
    }

    // Same idle fast-forward + Tx drain discipline as the plain poller.
    // A skipped idle stretch stands for (stretch / empty-poll cost) spins
    // of the real loop, so credit it to the empty-poll counter — that is
    // what drives l3fwd-power's step-down hysteresis.
    const sim::Time idle_from = sim.now();
    if (tx.pending() > 0) {
      const sim::Time due = last_tx_flush + cfg.tx_drain_interval;
      const sim::Time wait = due - sim.now();
      if (wait <= 0) {
        tx.flush();
        last_tx_flush = sim.now();
        continue;
      }
      const bool notified = co_await ring.arrival_signal().wait_for(wait);
      if (!notified) {
        tx.flush();
        last_tx_flush = sim.now();
      }
    } else {
      co_await ring.arrival_signal().wait_for(sim::kMillisecond);
    }
    const auto equivalent_polls =
        static_cast<int>((sim.now() - idle_from) / sim::calib::kEmptyPollCost);
    idle_streak += equivalent_polls;
    while (idle_streak >= cfg.idle_polls_per_step_down) {
      idle_streak -= cfg.idle_polls_per_step_down;
      const double next = freq - cfg.freq_step;
      if (next < 0.0) {
        idle_streak = 0;
        break;
      }
      freq = next;
      core.request_freq(freq);
      ++stats.freq_steps_down;
    }
  }
}

}  // namespace

template <typename Sim>
typename sim::BasicCore<Sim>::EntityId spawn_freq_scaling_lcore(Sim& sim,
                                                                nic::BasicPort<Sim>& port,
                                                                int queue,
                                                                sim::BasicCore<Sim>& core,
                                                                const FreqScalingConfig& cfg,
                                                                FreqScalingStats& stats) {
  const auto ent = core.add_entity("l3fwd-power-q" + std::to_string(queue), 0);
  sim.spawn(freq_scaling_task(sim, port, queue, core, ent, cfg, stats));
  return ent;
}

template sim::BasicCore<sim::Simulation>::EntityId spawn_freq_scaling_lcore<sim::Simulation>(
    sim::Simulation&, nic::BasicPort<sim::Simulation>&, int, sim::BasicCore<sim::Simulation>&,
    const FreqScalingConfig&, FreqScalingStats&);
template sim::BasicCore<sim::LadderSimulation>::EntityId
spawn_freq_scaling_lcore<sim::LadderSimulation>(sim::LadderSimulation&,
                                                nic::BasicPort<sim::LadderSimulation>&, int,
                                                sim::BasicCore<sim::LadderSimulation>&,
                                                const FreqScalingConfig&, FreqScalingStats&);
template sim::BasicCore<sim::WheelSimulation>::EntityId
spawn_freq_scaling_lcore<sim::WheelSimulation>(sim::WheelSimulation&,
                                               nic::BasicPort<sim::WheelSimulation>&, int,
                                               sim::BasicCore<sim::WheelSimulation>&,
                                               const FreqScalingConfig&, FreqScalingStats&);

}  // namespace metro::dpdk
