// Frequency-scaling static poller — the related-work baseline ([22], [23]).
//
// Intel's l3fwd-power approach: keep the busy-wait loop, but monitor how
// often polls come back empty and drive the core's P-state through the
// `userspace` governor — step the frequency down after a run of empty
// polls, jump back up when bursts arrive (queue occupancy above a
// threshold). This saves power at low load but — the paper's core
// criticism — the core still reads as 100% busy and cannot be shared with
// other work. The ablation bench puts this next to Metronome to reproduce
// that argument quantitatively.
#pragma once

#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace metro::dpdk {

struct FreqScalingConfig {
  sim::Time per_packet_cost = sim::calib::kL3fwdPerPacketCost;
  int burst = sim::calib::kBurstSize;
  sim::Time tx_drain_interval = 100 * sim::kMicrosecond;
  /// Consecutive empty polls before stepping the frequency down one notch
  /// (l3fwd-power uses a similar hysteresis).
  int idle_polls_per_step_down = 256;
  /// Queue occupancy (in bursts) that triggers an immediate jump to max.
  int busy_bursts_for_max = 2;
  /// Frequency step as a fraction of nominal.
  double freq_step = 0.125;
};

struct FreqScalingStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t freq_steps_down = 0;
  std::uint64_t freq_jumps_up = 0;
};

/// Spawn the frequency-scaling lcore for `queue` on `core`. The core should
/// be configured with Governor::kUserspace. Generic over the kernel
/// instantiation; defined in freq_scaling.cpp and instantiated for both
/// shipped backends.
template <typename Sim>
typename sim::BasicCore<Sim>::EntityId spawn_freq_scaling_lcore(Sim& sim,
                                                                nic::BasicPort<Sim>& port,
                                                                int queue,
                                                                sim::BasicCore<Sim>& core,
                                                                const FreqScalingConfig& cfg,
                                                                FreqScalingStats& stats);

}  // namespace metro::dpdk
