// XDP driver model (§V-D comparison).
//
// XDP processes packets in the kernel, interrupt-driven with NAPI:
//   * the NIC raises an IRQ after an interrupt-mitigation window,
//   * the hardirq schedules a softirq, which runs the NAPI poll loop with
//     a 64-packet budget; while polling, the IRQ stays masked and the loop
//     re-polls until the ring drains, then re-enables the interrupt.
//
// Each Rx queue is bound 1:1 to a CPU core (XDP cannot share queues across
// cores, which is why the paper needs 4 cores to approach 10 GbE line rate
// with xdp_router_ipv4 on ixgbe). Costs are calibrated so the model
// reproduces Fig. 10's qualitative results: zero CPU at idle, CPU well
// above Metronome under load (per-interrupt housekeeping), latency
// comparable at low rate and worse at line rate.
#pragma once

#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace metro::dpdk {

struct XdpConfig {
  sim::Time irq_overhead = sim::calib::kXdpIrqOverhead;
  sim::Time per_packet_cost = sim::calib::kXdpPerPacketCost;
  int napi_budget = sim::calib::kXdpNapiBudget;
  sim::Time irq_mitigation = sim::calib::kXdpIrqMitigation;
  sim::Time softirq_latency = sim::calib::kXdpSoftirqLatency;
};

struct XdpStats {
  std::uint64_t interrupts = 0;
  std::uint64_t napi_polls = 0;
  std::uint64_t packets_processed = 0;

  /// Attach all counters to `set` under `prefix` (setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".interrupts", interrupts);
    set.attach_counter(prefix + ".napi_polls", napi_polls);
    set.attach_counter(prefix + ".packets", packets_processed);
  }
};

/// Spawn the IRQ+NAPI handler for `queue` of `port` on `core`. Generic
/// over the kernel instantiation; defined in xdp_model.cpp and
/// instantiated for both shipped backends.
template <typename Sim>
typename sim::BasicCore<Sim>::EntityId spawn_xdp_queue(Sim& sim, nic::BasicPort<Sim>& port,
                                                       int queue, sim::BasicCore<Sim>& core,
                                                       const XdpConfig& cfg, XdpStats& stats);

}  // namespace metro::dpdk
