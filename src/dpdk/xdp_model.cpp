#include "dpdk/xdp_model.hpp"

#include <vector>

namespace metro::dpdk {

namespace {

sim::Task xdp_queue_task(sim::Simulation& sim, nic::Port& port, int queue, sim::Core& core,
                         sim::Core::EntityId ent, XdpConfig cfg, XdpStats& stats) {
  nic::RxRing& ring = port.rx_queue(queue);
  nic::TxRing& tx = port.tx();
  std::vector<nic::PacketDesc> burst(static_cast<std::size_t>(cfg.napi_budget));

  for (;;) {
    // IRQ enabled, core idle: wait for traffic. No CPU is consumed here —
    // this is XDP's key advantage at zero load.
    if (ring.empty()) co_await ring.arrival_signal().wait();

    // Interrupt mitigation: the NIC coalesces before raising the IRQ.
    co_await sim.sleep_for(cfg.irq_mitigation);

    // Hardirq + softirq dispatch.
    ++stats.interrupts;
    co_await core.run_for(ent, cfg.irq_overhead);
    co_await sim.sleep_for(cfg.softirq_latency);

    // NAPI poll loop: budgeted polls with the IRQ masked until drained.
    for (;;) {
      const int n = ring.pop_burst(burst.data(), cfg.napi_budget);
      if (n == 0) break;  // drained: re-enable IRQ
      ++stats.napi_polls;
      co_await core.run_for(ent, static_cast<sim::Time>(n) * cfg.per_packet_cost);
      for (int i = 0; i < n; ++i) tx.send(burst[static_cast<std::size_t>(i)]);
      stats.packets_processed += static_cast<std::uint64_t>(n);
    }
    tx.flush();  // XDP transmits per NAPI cycle; nothing lingers
  }
}

}  // namespace

sim::Core::EntityId spawn_xdp_queue(sim::Simulation& sim, nic::Port& port, int queue,
                                    sim::Core& core, const XdpConfig& cfg, XdpStats& stats) {
  const auto ent = core.add_entity("xdp-q" + std::to_string(queue), 0);
  sim.spawn(xdp_queue_task(sim, port, queue, core, ent, cfg, stats));
  return ent;
}

}  // namespace metro::dpdk
