#include "dpdk/xdp_model.hpp"

#include <string>
#include <vector>

namespace metro::dpdk {

namespace {

template <typename Sim>
sim::Task xdp_queue_task(Sim& sim, nic::BasicPort<Sim>& port, int queue,
                         sim::BasicCore<Sim>& core,
                         typename sim::BasicCore<Sim>::EntityId ent, XdpConfig cfg,
                         XdpStats& stats) {
  nic::BasicRxRing<Sim>& ring = port.rx_queue(queue);
  nic::BasicTxRing<Sim>& tx = port.tx();
  std::vector<nic::PacketDesc> burst(static_cast<std::size_t>(cfg.napi_budget));

  for (;;) {
    // IRQ enabled, core idle: wait for traffic. No CPU is consumed here —
    // this is XDP's key advantage at zero load.
    if (ring.empty()) co_await ring.arrival_signal().wait();

    // Interrupt mitigation: the NIC coalesces before raising the IRQ.
    co_await sim.sleep_for(cfg.irq_mitigation);

    // Hardirq + softirq dispatch.
    ++stats.interrupts;
    co_await core.run_for(ent, cfg.irq_overhead);
    co_await sim.sleep_for(cfg.softirq_latency);

    // NAPI poll loop: budgeted polls with the IRQ masked until drained.
    for (;;) {
      const int n = ring.pop_burst(burst.data(), cfg.napi_budget);
      if (n == 0) break;  // drained: re-enable IRQ
      ++stats.napi_polls;
      co_await core.run_for(ent, static_cast<sim::Time>(n) * cfg.per_packet_cost);
      for (int i = 0; i < n; ++i) tx.send(burst[static_cast<std::size_t>(i)]);
      stats.packets_processed += static_cast<std::uint64_t>(n);
    }
    tx.flush();  // XDP transmits per NAPI cycle; nothing lingers
  }
}

}  // namespace

template <typename Sim>
typename sim::BasicCore<Sim>::EntityId spawn_xdp_queue(Sim& sim, nic::BasicPort<Sim>& port,
                                                       int queue, sim::BasicCore<Sim>& core,
                                                       const XdpConfig& cfg, XdpStats& stats) {
  const auto ent = core.add_entity("xdp-q" + std::to_string(queue), 0);
  sim.spawn(xdp_queue_task(sim, port, queue, core, ent, cfg, stats));
  return ent;
}

template sim::BasicCore<sim::Simulation>::EntityId spawn_xdp_queue<sim::Simulation>(
    sim::Simulation&, nic::BasicPort<sim::Simulation>&, int, sim::BasicCore<sim::Simulation>&,
    const XdpConfig&, XdpStats&);
template sim::BasicCore<sim::LadderSimulation>::EntityId spawn_xdp_queue<sim::LadderSimulation>(
    sim::LadderSimulation&, nic::BasicPort<sim::LadderSimulation>&, int,
    sim::BasicCore<sim::LadderSimulation>&, const XdpConfig&, XdpStats&);
template sim::BasicCore<sim::WheelSimulation>::EntityId spawn_xdp_queue<sim::WheelSimulation>(
    sim::WheelSimulation&, nic::BasicPort<sim::WheelSimulation>&, int,
    sim::BasicCore<sim::WheelSimulation>&, const XdpConfig&, XdpStats&);

}  // namespace metro::dpdk
