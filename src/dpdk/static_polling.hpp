// The classical DPDK lcore loop (paper Listing 1 / §III-B).
//
// One thread exclusively owns one Rx queue and polls it in an infinite
// while(1): retrieve a burst, process it, poll again — regardless of
// whether traffic is flowing. The thread therefore occupies 100% of its
// core at all times; this is the baseline Metronome is measured against.
//
// In the simulator the thread is a *spinning* entity on its core (always
// runnable, so it contends with any co-scheduled task exactly like a real
// busy-wait loop) and its packet work is charged on top. Idle stretches
// are fast-forwarded to the next arrival event — the accounting is
// identical to polling every few tens of nanoseconds, without the events.
//
// Like DPDK's l3fwd, the loop also drains the Tx buffer if packets have
// been pending longer than BURST_TX_DRAIN_US (100 us), which bounds the
// Tx-batching latency at low rates.
#pragma once

#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace metro::dpdk {

struct StaticPollingConfig {
  sim::Time per_packet_cost = sim::calib::kL3fwdPerPacketCost;
  int burst = sim::calib::kBurstSize;
  sim::Time tx_drain_interval = 100 * sim::kMicrosecond;  // BURST_TX_DRAIN_US
  int nice = 0;
  // Optional real per-packet work run after each burst's cost is charged
  // (wall-clock only; simulated results are unaffected). See
  // nic::PacketWork.
  nic::PacketWork packet_work{};
};

/// Per-driver counters the experiment harness reads out.
struct DriverStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t polls = 0;
  std::uint64_t empty_polls = 0;

  /// Attach all counters to `set` under `prefix` (setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".packets", packets_processed);
    set.attach_counter(prefix + ".polls", polls);
    set.attach_counter(prefix + ".empty_polls", empty_polls);
  }
};

/// Spawn a static-polling lcore bound to `queue` of `port`, running on
/// `core`. Returns the core entity id (for CPU accounting) and exposes
/// counters through `stats` (caller-owned, must outlive the simulation).
/// Generic over the kernel instantiation; defined in static_polling.cpp
/// and instantiated for both shipped backends.
template <typename Sim>
typename sim::BasicCore<Sim>::EntityId spawn_static_lcore(Sim& sim, nic::BasicPort<Sim>& port,
                                                          int queue, sim::BasicCore<Sim>& core,
                                                          const StaticPollingConfig& cfg,
                                                          DriverStats& stats);

}  // namespace metro::dpdk
