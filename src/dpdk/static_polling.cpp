#include "dpdk/static_polling.hpp"

#include <string>
#include <vector>

namespace metro::dpdk {

namespace {

template <typename Sim>
sim::Task static_lcore_task(Sim& sim, nic::BasicPort<Sim>& port, int queue,
                            sim::BasicCore<Sim>& core,
                            typename sim::BasicCore<Sim>::EntityId ent, StaticPollingConfig cfg,
                            DriverStats& stats) {
  nic::BasicRxRing<Sim>& ring = port.rx_queue(queue);
  nic::BasicTxRing<Sim>& tx = port.tx();
  std::vector<nic::PacketDesc> burst(static_cast<std::size_t>(cfg.burst));
  sim::Time last_tx_flush = sim.now();

  core.set_spinning(ent, true);  // busy-wait: always runnable
  for (;;) {
    const int n = ring.pop_burst(burst.data(), cfg.burst);
    ++stats.polls;
    if (n > 0) {
      // Process the burst; wall time depends on CPU share and frequency.
      co_await core.run_for(ent, static_cast<sim::Time>(n) * cfg.per_packet_cost);
      if (cfg.packet_work) {
        for (int i = 0; i < n; ++i) cfg.packet_work(burst[static_cast<std::size_t>(i)]);
      }
      for (int i = 0; i < n; ++i) tx.send(burst[static_cast<std::size_t>(i)]);
      stats.packets_processed += static_cast<std::uint64_t>(n);
      if (tx.pending() == 0) last_tx_flush = sim.now();
      continue;
    }
    ++stats.empty_polls;
    // Idle: fast-forward to the next arrival (the thread keeps spinning —
    // it stays accounted as busy). If Tx descriptors are pending, wake in
    // time for the periodic drain, as l3fwd's main loop does.
    if (tx.pending() > 0) {
      const sim::Time due = last_tx_flush + cfg.tx_drain_interval;
      const sim::Time wait = due - sim.now();
      if (wait <= 0) {
        tx.flush();
        last_tx_flush = sim.now();
        continue;
      }
      const bool notified = co_await ring.arrival_signal().wait_for(wait);
      if (!notified) {
        tx.flush();
        last_tx_flush = sim.now();
      }
    } else {
      co_await ring.arrival_signal().wait();
      last_tx_flush = sim.now();
    }
  }
}

}  // namespace

template <typename Sim>
typename sim::BasicCore<Sim>::EntityId spawn_static_lcore(Sim& sim, nic::BasicPort<Sim>& port,
                                                          int queue, sim::BasicCore<Sim>& core,
                                                          const StaticPollingConfig& cfg,
                                                          DriverStats& stats) {
  const auto ent = core.add_entity("dpdk-poll-q" + std::to_string(queue), cfg.nice);
  sim.spawn(static_lcore_task(sim, port, queue, core, ent, cfg, stats));
  return ent;
}

template sim::BasicCore<sim::Simulation>::EntityId spawn_static_lcore<sim::Simulation>(
    sim::Simulation&, nic::BasicPort<sim::Simulation>&, int, sim::BasicCore<sim::Simulation>&,
    const StaticPollingConfig&, DriverStats&);
template sim::BasicCore<sim::LadderSimulation>::EntityId
spawn_static_lcore<sim::LadderSimulation>(sim::LadderSimulation&,
                                          nic::BasicPort<sim::LadderSimulation>&, int,
                                          sim::BasicCore<sim::LadderSimulation>&,
                                          const StaticPollingConfig&, DriverStats&);
template sim::BasicCore<sim::WheelSimulation>::EntityId
spawn_static_lcore<sim::WheelSimulation>(sim::WheelSimulation&,
                                         nic::BasicPort<sim::WheelSimulation>&, int,
                                         sim::BasicCore<sim::WheelSimulation>&,
                                         const StaticPollingConfig&, DriverStats&);

}  // namespace metro::dpdk
