#include "dpdk/static_polling.hpp"

#include <vector>

namespace metro::dpdk {

namespace {

sim::Task static_lcore_task(sim::Simulation& sim, nic::Port& port, int queue, sim::Core& core,
                            sim::Core::EntityId ent, StaticPollingConfig cfg, DriverStats& stats) {
  nic::RxRing& ring = port.rx_queue(queue);
  nic::TxRing& tx = port.tx();
  std::vector<nic::PacketDesc> burst(static_cast<std::size_t>(cfg.burst));
  sim::Time last_tx_flush = sim.now();

  core.set_spinning(ent, true);  // busy-wait: always runnable
  for (;;) {
    const int n = ring.pop_burst(burst.data(), cfg.burst);
    ++stats.polls;
    if (n > 0) {
      // Process the burst; wall time depends on CPU share and frequency.
      co_await core.run_for(ent, static_cast<sim::Time>(n) * cfg.per_packet_cost);
      for (int i = 0; i < n; ++i) tx.send(burst[static_cast<std::size_t>(i)]);
      stats.packets_processed += static_cast<std::uint64_t>(n);
      if (tx.pending() == 0) last_tx_flush = sim.now();
      continue;
    }
    ++stats.empty_polls;
    // Idle: fast-forward to the next arrival (the thread keeps spinning —
    // it stays accounted as busy). If Tx descriptors are pending, wake in
    // time for the periodic drain, as l3fwd's main loop does.
    if (tx.pending() > 0) {
      const sim::Time due = last_tx_flush + cfg.tx_drain_interval;
      const sim::Time wait = due - sim.now();
      if (wait <= 0) {
        tx.flush();
        last_tx_flush = sim.now();
        continue;
      }
      const bool notified = co_await ring.arrival_signal().wait_for(wait);
      if (!notified) {
        tx.flush();
        last_tx_flush = sim.now();
      }
    } else {
      co_await ring.arrival_signal().wait();
      last_tx_flush = sim.now();
    }
  }
}

}  // namespace

sim::Core::EntityId spawn_static_lcore(sim::Simulation& sim, nic::Port& port, int queue,
                                       sim::Core& core, const StaticPollingConfig& cfg,
                                       DriverStats& stats) {
  const auto ent = core.add_entity("dpdk-poll-q" + std::to_string(queue), cfg.nice);
  sim.spawn(static_lcore_task(sim, port, queue, core, ent, cfg, stats));
  return ent;
}

}  // namespace metro::dpdk
