/// \file metric_set.hpp
/// Typed metric registry: the telemetry substrate of every layer.
///
/// The paper's whole evaluation is a read-out of counters and
/// distributions — tries, wake-ups, drops, latency histograms — and every
/// layer (kernel-adjacent services, NIC rings, drivers, apps, the
/// experiment harness) contributes some. A MetricSet is one named,
/// registration-ordered collection of those observables:
///
///   * **register at setup, update raw** — layers either create owned
///     metrics (`counter("x")` returns a `std::uint64_t&`) or attach the
///     fields they already have (`attach_counter("x", field_)`); the hot
///     path keeps doing plain `++field_` with zero telemetry overhead and
///     zero steady-state allocations;
///   * **window semantics** — `window_start()` snapshots counter/gauge
///     values and resets distributions; `delta(start)` subtracts counters
///     so a measurement window is two calls, not a hand-copied
///     `*_at_start_` field per counter;
///   * **deterministic merge** — `MetricSnapshot::merge` unions two
///     snapshots by name: counters/gauges add, `Summary`s merge by the
///     parallel-moments rule, `Histogram`s merge bin-wise (geometry
///     mismatches throw). Shard results merge without anyone hand-picking
///     a field subset;
///   * **order-sensitive fingerprint()** — one 64-bit SplitMix64-chained
///     digest over every name, kind and value (histograms bin for bin).
///     Two runs fingerprint equal iff every registered observable is
///     bit-identical, which is what cross-backend / cross-geometry /
///     cross-jobs identity checks mean by "the same execution".
///
/// Adding an observable to a layer is one `attach_*` line; it then shows
/// up in snapshots, window deltas, merges, fingerprints and the JSON
/// report with no further edits anywhere.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace metro::stats {

class JsonWriter;

/// What a registry entry measures (fixed at registration).
enum class MetricKind : std::uint8_t {
  kCounter,    ///< monotonically increasing std::uint64_t
  kGauge,      ///< instantaneous double (a level, not a total)
  kSummary,    ///< streaming moments (stats::Summary)
  kHistogram,  ///< binned distribution (stats::Histogram)
};

/// Stable display name of a metric kind ("counter", "gauge", ...).
const char* metric_kind_name(MetricKind kind) noexcept;

/// A point-in-time copy of a MetricSet's values, in registration order.
/// Snapshots own their data: they outlive the set, subtract (window
/// deltas), merge (shard aggregation) and fingerprint independently.
class MetricSnapshot {
 public:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;           ///< kCounter value
    double gauge = 0.0;                  ///< kGauge value
    Summary summary;                     ///< kSummary value
    std::optional<Histogram> histogram;  ///< kHistogram value
  };

  std::size_t size() const noexcept { return entries_.size(); }
  const Entry& entry(std::size_t i) const { return entries_[i]; }

  /// Lookup by name; nullptr when absent.
  const Entry* find(std::string_view name) const noexcept;

  /// Typed lookups; throw std::out_of_range on a missing name and
  /// std::invalid_argument on a kind mismatch.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const Summary& summary(std::string_view name) const;
  const Histogram& histogram(std::string_view name) const;

  /// Overwrite a counter value. Exists for tests that need to *seed* a
  /// perturbation and prove the fingerprint catches it; production code
  /// never mutates snapshots.
  void set_counter(std::string_view name, std::uint64_t value);

  /// This snapshot minus `start`, for a measurement window: counters
  /// subtract, everything else keeps this snapshot's value (distributions
  /// are window-local — the set reset them at window_start()). Throws
  /// std::invalid_argument unless `start` has the identical shape (same
  /// names, kinds and order).
  MetricSnapshot delta(const MetricSnapshot& start) const;

  /// Deterministic union-merge by name: entries present in both must
  /// agree on kind (else std::invalid_argument) and combine — counters
  /// add, Summary::merge, Histogram::merge (geometry checked); entries
  /// only in `other` append in `other`'s order. Gauges also *add*: right
  /// for per-shard levels that total across shards (rates, backlogs),
  /// deliberately not an average — intensive quantities (a ρ, a CPU%)
  /// must be re-derived from merged counters, not merged themselves.
  /// Merging the same snapshots in the same order always yields the same
  /// result, regardless of how many workers produced them.
  void merge(const MetricSnapshot& other);

  /// Order-sensitive digest over every name, kind and value — same
  /// algorithm as MetricSet::fingerprint(), so a snapshot fingerprints
  /// equal to the set it was taken from.
  std::uint64_t fingerprint() const;

  /// Emit as one JSON object via the shared writer: counters/gauges as
  /// numbers, summaries as {count, mean, stddev, min, max, sum},
  /// histograms as {count, overflow, bin_width, n_bins, digest} plus the
  /// boxplot quantiles (raw bins stay out of reports; `digest` carries
  /// bin-for-bin identity).
  void write_json(JsonWriter& w) const;

 private:
  friend class MetricSet;
  // The time-series sampler writes per-window deltas into preallocated
  // snapshots in place (no per-sample allocation).
  friend class SeriesRecorder;
  std::vector<Entry> entries_;
};

/// The live registry: layers register (or attach) metrics at setup; the
/// harness snapshots, windows and fingerprints them. Attached metrics are
/// borrowed — the owning layer must outlive the set. Not copyable (owned
/// metric references must stay stable).
class MetricSet {
 public:
  MetricSet() = default;
  MetricSet(const MetricSet&) = delete;
  MetricSet& operator=(const MetricSet&) = delete;

  /// Create an owned metric. The returned reference is stable for the
  /// set's lifetime; duplicate names throw std::invalid_argument.
  std::uint64_t& counter(std::string name);
  double& gauge(std::string name);
  Summary& summary(std::string name);
  Histogram& histogram(std::string name, double bin_width, double max_value);

  /// Register an externally-owned metric (a field the layer already
  /// updates on its hot path). The set only reads/resets it; the caller
  /// keeps updating the field directly.
  void attach_counter(std::string name, std::uint64_t& value);
  void attach_gauge(std::string name, double& value);
  void attach_summary(std::string name, Summary& value);
  void attach_histogram(std::string name, Histogram& value);

  std::size_t size() const noexcept { return slots_.size(); }
  MetricKind kind(std::size_t i) const { return slots_[i].kind; }
  const std::string& name(std::size_t i) const { return slots_[i].name; }
  bool contains(std::string_view name) const noexcept;

  /// Copy every value out, in registration order.
  MetricSnapshot snapshot() const;

  /// Refresh a snapshot previously taken from this set *in place*:
  /// overwrites values only, reusing the entry names and histogram
  /// storage, so the steady-state cost is copies — zero allocations.
  /// This is the time-series sampling hot path. Throws
  /// std::invalid_argument if `out`'s shape (names, kinds, order, or a
  /// histogram geometry) no longer matches the registry.
  void snapshot_into(MetricSnapshot& out) const;

  /// Open a measurement window: returns the counter/gauge baseline and
  /// resets every summary and histogram (distributions are per-window;
  /// counters are lifetime totals read through delta()).
  MetricSnapshot window_start();

  /// snapshot() minus `start` (see MetricSnapshot::delta).
  MetricSnapshot delta(const MetricSnapshot& start) const;

  /// Order-sensitive digest of the live values (no snapshot copy).
  std::uint64_t fingerprint() const;

  /// Zero every metric (counters and gauges included).
  void reset();

 private:
  struct Slot {
    std::string name;
    MetricKind kind;
    void* ptr;  // uint64_t* / double* / Summary* / Histogram*
  };

  void add_slot(std::string name, MetricKind kind, void* ptr);

  std::vector<Slot> slots_;
  // Owned storage; deque keeps addresses stable across registrations.
  std::deque<std::uint64_t> owned_counters_;
  std::deque<double> owned_gauges_;
  std::deque<Summary> owned_summaries_;
  std::deque<Histogram> owned_histograms_;
};

}  // namespace metro::stats
