// Fixed-resolution histogram with percentile queries and boxplot stats.
//
// Values are binned linearly at a configurable resolution over [0, max);
// out-of-range values are counted in a saturating overflow bin, and exact
// min/max/mean are tracked on the side so reported extremes are not
// quantised. Sufficient for latency distributions where the paper reports
// boxplots (median, quartiles, whiskers) and density plots (Fig. 4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace metro::stats {

struct Boxplot {
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double whisker_lo = 0.0;  // p5
  double whisker_hi = 0.0;  // p95
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t count = 0;
};

class Histogram {
 public:
  /// `bin_width` and `max_value` are in the caller's unit (we use us).
  Histogram(double bin_width, double max_value)
      : bin_width_(bin_width),
        bins_(static_cast<std::size_t>(max_value / bin_width) + 1, 0) {}

  // Copies stay geometry-identical but only move the touched bin prefix:
  // the default latency geometry is 100k bins (~0.8 MB) of which a run
  // touches a few thousand, and the time-series sampler copies histograms
  // once per window. Bins at or above touched_bins() are zero by
  // invariant, so the prefix copy (plus zeroing any stale tail of the
  // destination) reproduces the full state.
  Histogram(const Histogram& other)
      : bin_width_(other.bin_width_),
        bins_(other.bins_.size(), 0),
        overflow_(other.overflow_),
        summary_(other.summary_),
        hi_(other.hi_) {
    std::copy(other.bins_.begin(), other.bins_.begin() + static_cast<std::ptrdiff_t>(hi_),
              bins_.begin());
  }

  Histogram& operator=(const Histogram& other) {
    if (this == &other) return *this;
    if (bins_.size() == other.bins_.size()) {
      // In-place: overwrite the source's touched prefix, zero whatever my
      // previous contents touched above it. Never allocates — this is the
      // alloc-free refresh path of MetricSet::snapshot_into.
      std::copy(other.bins_.begin(),
                other.bins_.begin() + static_cast<std::ptrdiff_t>(other.hi_), bins_.begin());
      if (hi_ > other.hi_) {
        std::fill(bins_.begin() + static_cast<std::ptrdiff_t>(other.hi_),
                  bins_.begin() + static_cast<std::ptrdiff_t>(hi_), 0);
      }
    } else {
      bins_.assign(other.bins_.size(), 0);
      std::copy(other.bins_.begin(),
                other.bins_.begin() + static_cast<std::ptrdiff_t>(other.hi_), bins_.begin());
    }
    bin_width_ = other.bin_width_;
    overflow_ = other.overflow_;
    summary_ = other.summary_;
    hi_ = other.hi_;
    return *this;
  }

  Histogram(Histogram&&) = default;
  Histogram& operator=(Histogram&&) = default;

  void add(double x) {
    summary_.add(x);
    std::size_t idx = x <= 0.0 ? 0 : static_cast<std::size_t>(x / bin_width_);
    if (idx >= bins_.size()) {
      ++overflow_;
      return;
    }
    ++bins_[idx];
    if (idx >= hi_) hi_ = idx + 1;
  }

  std::uint64_t count() const noexcept { return summary_.count(); }
  const Summary& summary() const noexcept { return summary_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Value at quantile q in [0, 1] (linear within the bin).
  double percentile(double q) const {
    const std::uint64_t total = summary_.count();
    if (total == 0) return 0.0;
    const double target = q * static_cast<double>(total);
    double cum = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      const double next = cum + static_cast<double>(bins_[i]);
      if (next >= target && bins_[i] > 0) {
        const double frac = (target - cum) / static_cast<double>(bins_[i]);
        return (static_cast<double>(i) + frac) * bin_width_;
      }
      cum = next;
    }
    return summary_.max();
  }

  Boxplot boxplot() const {
    Boxplot b;
    b.p25 = percentile(0.25);
    b.median = percentile(0.50);
    b.p75 = percentile(0.75);
    b.whisker_lo = percentile(0.05);
    b.whisker_hi = percentile(0.95);
    b.mean = summary_.mean();
    b.stddev = summary_.stddev();
    b.count = summary_.count();
    return b;
  }

  /// Normalised density per bin (integrates to ~1 over the covered range).
  std::vector<double> density() const {
    std::vector<double> d(bins_.size(), 0.0);
    const double total = static_cast<double>(summary_.count());
    if (total == 0.0) return d;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      d[i] = static_cast<double>(bins_[i]) / (total * bin_width_);
    }
    return d;
  }

  /// Bin-wise merge of another histogram filled at the *same* geometry:
  /// bins and overflow add, the side Summary merges by the parallel-
  /// moments rule. Merging shard histograms of split sub-streams yields
  /// bin counts identical to a single-pass fill of the combined stream.
  /// Throws std::invalid_argument on a bin-width or bin-count mismatch —
  /// silently resampling mismatched geometries would fabricate data.
  void merge(const Histogram& other) {
    if (other.bin_width_ != bin_width_ || other.bins_.size() != bins_.size()) {
      throw std::invalid_argument(
          "Histogram::merge: geometry mismatch (bin_width " + std::to_string(bin_width_) +
          "/" + std::to_string(other.bin_width_) + ", bins " + std::to_string(bins_.size()) +
          "/" + std::to_string(other.bins_.size()) + ")");
    }
    for (std::size_t i = 0; i < other.hi_; ++i) bins_[i] += other.bins_[i];
    hi_ = std::max(hi_, other.hi_);
    overflow_ += other.overflow_;
    summary_.merge(other.summary_);
  }

  /// Write `this - earlier` into `out`, where `earlier` is a previous
  /// snapshot of this same histogram (bins are monotonic between resets,
  /// so the bin-wise subtraction is exact; the side Summary subtracts by
  /// Summary::since). `out` must already have the matching geometry —
  /// writes happen in place and never allocate, which is what lets the
  /// time-series sampler run inside the alloc-free window. Throws
  /// std::invalid_argument on any geometry mismatch.
  void since_into(const Histogram& earlier, Histogram& out) const {
    if (earlier.bin_width_ != bin_width_ || earlier.bins_.size() != bins_.size() ||
        out.bin_width_ != bin_width_ || out.bins_.size() != bins_.size()) {
      throw std::invalid_argument(
          "Histogram::since_into: geometry mismatch (bin_width " +
          std::to_string(bin_width_) + "/" + std::to_string(earlier.bin_width_) + "/" +
          std::to_string(out.bin_width_) + ", bins " + std::to_string(bins_.size()) + "/" +
          std::to_string(earlier.bins_.size()) + "/" + std::to_string(out.bins_.size()) + ")");
    }
    // `earlier` is an older snapshot of *this, so its touched range is a
    // prefix of ours (bins beyond it read zero either way); `out` may hold
    // a stale previous delta whose tail must be cleared.
    for (std::size_t i = 0; i < hi_; ++i) {
      out.bins_[i] = bins_[i] - earlier.bins_[i];
    }
    if (out.hi_ > hi_) {
      std::fill(out.bins_.begin() + static_cast<std::ptrdiff_t>(hi_),
                out.bins_.begin() + static_cast<std::ptrdiff_t>(out.hi_), 0);
    }
    out.hi_ = hi_;
    out.overflow_ = overflow_ - earlier.overflow_;
    out.summary_ = summary_.since(earlier.summary_);
  }

  double bin_width() const noexcept { return bin_width_; }
  std::size_t n_bins() const noexcept { return bins_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return bins_[i]; }

  /// One past the highest bin written since construction or reset() —
  /// every bin at or above this index is zero. Deterministic (a pure
  /// function of the recorded values), so fingerprints may hash just the
  /// touched prefix plus this watermark without weakening the identity
  /// gates.
  std::size_t touched_bins() const noexcept { return hi_; }

  void reset() {
    summary_.reset();
    overflow_ = 0;
    std::fill(bins_.begin(), bins_.begin() + static_cast<std::ptrdiff_t>(hi_), 0);
    hi_ = 0;
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  Summary summary_;
  std::size_t hi_ = 0;  ///< touched-bin watermark; see touched_bins()
};

}  // namespace metro::stats
