#include "stats/trace.hpp"

#include <ostream>

#include "stats/json_writer.hpp"

namespace metro::trace {

Tracer::Tracer(std::size_t capacity) {
  buf_.resize(capacity == 0 ? 1 : capacity);
  // Pre-intern the well-known ids in the exact order of the trace::id
  // constants — the constant is the index. Categories group lanes in the
  // chrome://tracing search box; arg labels name the payloads.
  names_ = {
      {"kernel", "fire", "processed", ""},            // kKernelFire
      {"kernel", "ladder_epoch", "top_pending", ""},  // kLadderEpoch
      {"kernel", "ladder_spill", "spilled", ""},      // kLadderSpill
      {"kernel", "wheel_cascade", "moved", "level"},  // kWheelCascade
      {"kernel", "wheel_epoch", "overflow", ""},      // kWheelEpoch
      {"nic", "rx_burst", "accepted", "offered"},     // kRxBurst
      {"nic", "tx_flush", "flushed", ""},             // kTxFlush
      {"met", "sleep", "ts_ns", "queue"},             // kMetSleep
      {"met", "drain", "drained", "queue"},           // kMetDrain
      {"fault", "drop", "flow_id", ""},                   // kFaultDrop
      {"fault", "reorder_hold", "flow_id", ""},           // kFaultReorder
      {"fault", "link_down", "flow_id", ""},              // kFaultLinkDown
      {"fault", "rx_stall", "stall_ns", ""},          // kFaultStall
      {"sweep", "shard", "shard_index", ""},          // kShard
  };
}

std::uint32_t Tracer::intern(std::string category, std::string name, std::string arg_label,
                             std::string arg2_label) {
  names_.push_back(NameInfo{std::move(category), std::move(name), std::move(arg_label),
                            std::move(arg2_label)});
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::size_t Tracer::count(std::uint32_t name) const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    if (buf_[i].name == name) ++n;
  }
  return n;
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceProcess>& processes) {
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (std::size_t p = 0; p < processes.size(); ++p) {
    const std::uint64_t pid = p + 1;
    // Lane label: chrome://tracing shows this instead of the bare pid.
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.key("args").begin_object();
    w.kv("name", processes[p].name);
    w.end_object();
    w.end_object();
    const Tracer* t = processes[p].tracer;
    if (t == nullptr) continue;
    for (std::size_t i = 0; i < t->size(); ++i) {
      const TraceEvent& e = t->event(i);
      const NameInfo& n = t->name_info(e.name);
      w.begin_object();
      w.kv("name", n.name);
      w.kv("cat", n.category);
      w.kv("ph", e.phase == Phase::kSpan ? "X" : "i");
      // Chrome timestamps are microseconds; ns/1000.0 keeps sub-µs
      // resolution as a fractional part.
      w.kv("ts", static_cast<double>(e.ts) / 1000.0);
      if (e.phase == Phase::kSpan) {
        w.kv("dur", static_cast<double>(e.dur) / 1000.0);
      } else {
        w.kv("s", "t");  // instant scope: thread
      }
      w.kv("pid", pid);
      w.kv("tid", static_cast<std::uint64_t>(e.tid));
      w.key("args").begin_object();
      w.kv(n.arg_label, e.arg);
      if (!n.arg2_label.empty()) w.kv(n.arg2_label, static_cast<std::uint64_t>(e.arg2));
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.finish();
}

}  // namespace metro::trace
