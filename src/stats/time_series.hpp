/// \file time_series.hpp
/// Windowed time-series telemetry: periodic MetricSet sampling on sim time.
///
/// A MetricSet answers "what happened over the run"; a SeriesRecorder
/// answers "what happened *when*". Armed on the kernel, it snapshots the
/// whole registry every `interval` of simulated time into a preallocated
/// ring of per-window deltas — so a regime shift mid-run (a rate step, an
/// MMPP phase change, a fault window) shows up as the window where the
/// counters moved, not a smear over one aggregate.
///
/// Semantics per metric kind, per window:
///   * **counter** — exact delta over the window (windows sum to the run
///     delta bit-exactly);
///   * **gauge** — the value at the window's end (a level, not a total);
///   * **summary** — moment-subtracted window statistics: count and sum
///     are exact, mean/variance follow from the inverse of the parallel-
///     moments merge rule; min/max stay run-so-far (extremes are not
///     window-recoverable from moments alone — documented, and the merge
///     of all windows still yields the exact run extremes);
///   * **histogram** — bin-wise exact subtraction (bins are monotonic
///     between resets), with the side Summary handled as above.
///
/// Each window carries the deterministic fingerprint of its delta, so the
/// repo-wide identity gates (cross-backend, cross-geometry, jobs=N-vs-1)
/// extend from "the runs agree in aggregate" to "the runs agree window by
/// window".
///
/// Hot-path contract: after arm() returns, sampling is allocation-free —
/// snapshots refresh in place (MetricSet::snapshot_into), deltas write
/// into the preallocated ring, and a full ring counts drops instead of
/// growing. Memory is `capacity x sizeof(snapshot)`; the latency
/// histogram dominates (~0.8 MB per window at the default geometry), so
/// callers size capacity to the expected window count, not a round power
/// of two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/metric_set.hpp"

namespace metro::stats {

/// Sampling cadence and ring size of a SeriesRecorder.
struct SeriesConfig {
  sim::Time interval = 0;      ///< sim-time between samples; must be > 0
  std::size_t capacity = 64;   ///< ring slots; overflow drops (counted)
};

/// Periodic sampler over one MetricSet. Construct (and prime) at window
/// start, arm on the kernel, read windows after the run. Not thread-safe;
/// one recorder per shard.
class SeriesRecorder {
 public:
  /// One closed sampling window.
  struct Window {
    MetricSnapshot delta;         ///< per-kind window delta (see file doc)
    sim::Time t_end = 0;          ///< sim time the window closed
    std::uint64_t fingerprint = 0;  ///< delta.fingerprint(), precomputed
  };

  /// Binds to `metrics` (borrowed; must outlive the recorder). Throws
  /// std::invalid_argument on a non-positive interval or zero capacity.
  SeriesRecorder(const MetricSet& metrics, SeriesConfig cfg);

  SeriesRecorder(const SeriesRecorder&) = delete;
  SeriesRecorder& operator=(const SeriesRecorder&) = delete;

  /// Take the baseline snapshot at sim-time `now` (the start of window 0)
  /// and preallocate the ring. Allocates; call before the measured window.
  void prime(sim::Time now);

  /// Close the current window at `now`. Alloc-free once primed; a full
  /// ring counts a drop and records nothing.
  void sample(sim::Time now);

  /// Close the partial tail window — when sim time elapsed since the last
  /// sample, or when the registry moved at the very same timestamp (a
  /// periodic tick fires before other events sharing its fire time) — and
  /// disarm, so the recorded windows always sum to the full run delta.
  void finish(sim::Time now);

  /// Prime at sim.now() and schedule self-re-arming periodic sampling on
  /// the kernel. The tick callable is 16 bytes — within the kernel's
  /// inline budget, so arming adds no steady-state allocations. Sampling
  /// only *reads* metrics; it never alters what the run would have
  /// computed, so final telemetry fingerprints are unchanged.
  template <typename Sim>
  void arm(Sim& sim) {
    struct Tick {
      SeriesRecorder* rec;
      Sim* sim;
      void operator()() const {
        if (!rec->armed_) return;  // disarmed mid-flight: stale tick, stop
        rec->sample(sim->now());
        sim->schedule_after(rec->cfg_.interval, *this);
      }
    };
    static_assert(sizeof(Tick) <= 24, "series tick must stay inline in the kernel");
    prime(sim.now());
    armed_ = true;
    sim.schedule_after(cfg_.interval, Tick{this, &sim});
  }

  /// Stop sampling; the next pending tick (if any) becomes a no-op.
  void disarm() noexcept { armed_ = false; }
  bool armed() const noexcept { return armed_; }

  sim::Time interval() const noexcept { return cfg_.interval; }
  std::size_t capacity() const noexcept { return cfg_.capacity; }

  /// Closed windows so far, oldest first.
  std::size_t size() const noexcept { return size_; }
  const Window& window(std::size_t i) const { return ring_[i]; }

  /// Samples that found the ring full and were discarded. When non-zero
  /// the sum-over-windows identity has holes; reports surface the count.
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  /// out = cur - prev, per the per-kind window rules. All three share the
  /// snapshot shape taken at prime(); writes in place, never allocates.
  static void delta_into(const MetricSnapshot& cur, const MetricSnapshot& prev,
                         MetricSnapshot& out);

  const MetricSet& metrics_;
  SeriesConfig cfg_;
  MetricSnapshot prev_;  ///< absolute snapshot at the last window edge
  MetricSnapshot cur_;   ///< scratch for the in-place refresh
  std::vector<Window> ring_;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  sim::Time last_sample_ = 0;
  bool primed_ = false;
  bool armed_ = false;
};

}  // namespace metro::stats
