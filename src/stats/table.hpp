// Minimal aligned-table / CSV printer for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as an
// aligned text table (and optionally CSV for plotting), so the output can be
// compared side by side with the publication.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace metro::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Format helper for doubles.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    print_row(os, headers_, widths);
    std::string sep;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i] + 2, '-');
      if (i + 1 < widths.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& row : rows_) print_row(os, row, widths);
  }

  void print_csv(std::ostream& os) const {
    print_csv_row(os, headers_);
    for (const auto& row : rows_) print_csv_row(os, row);
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << " " << std::setw(static_cast<int>(widths[i])) << row[i] << " ";
      if (i + 1 < row.size()) os << "|";
    }
    os << "\n";
  }

  static void print_csv_row(std::ostream& os, const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) os << ",";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metro::stats
