// Streaming moment statistics (Welford's online algorithm).
//
// Used for every scalar the experiments report: vacation/busy period
// durations, per-packet latency means, CPU percentages, ... Numerically
// stable for millions of samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace metro::stats {

class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const Summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  /// Window statistics of this summary minus an `earlier` snapshot of the
  /// *same* stream: the inverse of the parallel-moments merge rule.
  /// count and sum are exact; mean follows; m2 is recovered as
  /// m2_w = m2 - m2_1 - d^2 * n1 * nw / n (clamped at zero against
  /// floating-point cancellation). min/max are NOT window-recoverable
  /// from moments, so the run-so-far extremes are kept — merging every
  /// window still yields the exact run extremes (min of mins).
  Summary since(const Summary& earlier) const {
    if (earlier.count_ == 0) return *this;
    Summary out;
    out.count_ = count_ - earlier.count_;
    out.min_ = min_;
    out.max_ = max_;
    if (out.count_ == 0) return out;
    out.sum_ = sum_ - earlier.sum_;
    out.mean_ = out.sum_ / static_cast<double>(out.count_);
    const double n1 = static_cast<double>(earlier.count_);
    const double nw = static_cast<double>(out.count_);
    const double delta = out.mean_ - earlier.mean_;
    out.m2_ = std::max(
        0.0, m2_ - earlier.m2_ - delta * delta * n1 * nw / static_cast<double>(count_));
    return out;
  }

  void reset() { *this = Summary{}; }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace metro::stats
