#include "stats/time_series.hpp"

#include <stdexcept>
#include <utility>

namespace metro::stats {

SeriesRecorder::SeriesRecorder(const MetricSet& metrics, SeriesConfig cfg)
    : metrics_(metrics), cfg_(cfg) {
  if (cfg_.interval <= 0) {
    throw std::invalid_argument("SeriesRecorder: interval must be > 0 ns");
  }
  if (cfg_.capacity == 0) {
    throw std::invalid_argument("SeriesRecorder: capacity must be > 0 windows");
  }
}

void SeriesRecorder::prime(sim::Time now) {
  prev_ = metrics_.snapshot();
  cur_ = prev_;
  ring_.clear();
  ring_.resize(cfg_.capacity);
  // Shape every slot now so sample() only overwrites values: the copies
  // carry the entry names, kinds and histogram geometries.
  for (Window& w : ring_) w.delta = prev_;
  size_ = 0;
  dropped_ = 0;
  last_sample_ = now;
  primed_ = true;
}

void SeriesRecorder::sample(sim::Time now) {
  if (!primed_) return;
  if (size_ == ring_.size()) {
    ++dropped_;
    last_sample_ = now;
    return;
  }
  metrics_.snapshot_into(cur_);
  Window& w = ring_[size_];
  delta_into(cur_, prev_, w.delta);
  w.t_end = now;
  w.fingerprint = w.delta.fingerprint();
  // The refreshed snapshot becomes the next window's baseline; swapping
  // vectors keeps both buffers alive with no allocation.
  std::swap(prev_, cur_);
  ++size_;
  last_sample_ = now;
}

void SeriesRecorder::finish(sim::Time now) {
  // Close the tail even at zero elapsed time when the registry moved: a
  // periodic tick fires *before* other events sharing its timestamp, so
  // work done at exactly the final sample's time would otherwise fall
  // into no window and break the windows-sum-to-run-delta identity.
  if (primed_ && (now > last_sample_ || metrics_.fingerprint() != prev_.fingerprint())) {
    sample(now);
  }
  armed_ = false;
}

void SeriesRecorder::delta_into(const MetricSnapshot& cur, const MetricSnapshot& prev,
                                MetricSnapshot& out) {
  for (std::size_t i = 0; i < cur.entries_.size(); ++i) {
    const MetricSnapshot::Entry& c = cur.entries_[i];
    const MetricSnapshot::Entry& p = prev.entries_[i];
    MetricSnapshot::Entry& o = out.entries_[i];
    switch (c.kind) {
      case MetricKind::kCounter: o.counter = c.counter - p.counter; break;
      case MetricKind::kGauge: o.gauge = c.gauge; break;  // level at window end
      case MetricKind::kSummary: o.summary = c.summary.since(p.summary); break;
      case MetricKind::kHistogram: c.histogram->since_into(*p.histogram, *o.histogram); break;
    }
  }
}

}  // namespace metro::stats
