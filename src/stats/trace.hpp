/// \file trace.hpp
/// Sim-time span/instant tracer with Chrome trace-event export.
///
/// The telemetry layer (stats::MetricSet) answers "how much happened";
/// this answers "when". A trace::Tracer is a pre-sized ring buffer of
/// 40-byte POD TraceEvent records — instants ("a cascade happened at t")
/// and spans ("this queue drained from t0 for d ns") — with category and
/// name interned once at registration so the recording hot path writes a
/// handful of integers and never touches a string or the allocator.
///
/// Design constraints, in order:
///   * **default-off, branch-predictable** — every instrumentation site is
///     behind a `tracer_ != nullptr` test marked [[unlikely]]; a run that
///     never arms a tracer pays one always-false compare per site.
///   * **alloc-free recording** — the buffer is sized at construction;
///     a full ring counts drops instead of growing (`dropped()`).
///   * **deterministic observation** — sim-time timestamps only; recording
///     never feeds back into the simulation, so telemetry fingerprints
///     are bit-identical with tracing on or off (test-enforced).
///
/// Export is Chrome trace-event JSON (`write_chrome_trace`): the file
/// loads directly into chrome://tracing or Perfetto, one process lane per
/// Tracer (e.g. per sweep shard), one thread lane per tid (e.g. per
/// Metronome queue). Wall-clock spans (sweep shards) use the same record
/// with nanoseconds-since-epoch timestamps from WallSpan.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace metro::trace {

/// Chrome trace-event phase of a record.
enum class Phase : std::uint8_t {
  kInstant,  ///< point event ("i")
  kSpan,     ///< complete duration event ("X")
};

/// Well-known event names, pre-interned by every Tracer in this exact
/// order (the constant *is* the intern id). Instrumentation sites use
/// these directly; ad-hoc users call Tracer::intern for their own ids.
namespace id {
inline constexpr std::uint32_t kKernelFire = 0;     ///< sampled event dispatch
inline constexpr std::uint32_t kLadderEpoch = 1;    ///< ladder epoch rollover
inline constexpr std::uint32_t kLadderSpill = 2;    ///< ladder bucket spill
inline constexpr std::uint32_t kWheelCascade = 3;   ///< wheel level cascade
inline constexpr std::uint32_t kWheelEpoch = 4;     ///< wheel overflow rebase
inline constexpr std::uint32_t kRxBurst = 5;        ///< NIC grouped ingress
inline constexpr std::uint32_t kTxFlush = 6;        ///< TxRing batch flush
inline constexpr std::uint32_t kMetSleep = 7;       ///< Metronome sleep→wake
inline constexpr std::uint32_t kMetDrain = 8;       ///< Metronome busy period
inline constexpr std::uint32_t kFaultDrop = 9;      ///< injected packet drop
inline constexpr std::uint32_t kFaultReorder = 10;  ///< injected reorder hold
inline constexpr std::uint32_t kFaultLinkDown = 11; ///< link-flap window hit
inline constexpr std::uint32_t kFaultStall = 12;    ///< rx-ring stall window
inline constexpr std::uint32_t kShard = 13;         ///< sweep shard (wall time)
}  // namespace id

/// One recorded event. POD, 40 bytes; timestamps are sim-time ns (or, for
/// wall lanes, ns since the run's wall epoch).
struct TraceEvent {
  sim::Time ts = 0;           ///< start (kSpan) or occurrence (kInstant)
  sim::Time dur = 0;          ///< span duration in ns; 0 for instants
  std::uint64_t arg = 0;      ///< primary payload (see NameInfo::arg_label)
  std::uint32_t name = 0;     ///< intern id (index into the name table)
  std::uint32_t tid = 0;      ///< thread lane (queue index, worker index)
  std::uint32_t arg2 = 0;     ///< secondary payload
  Phase phase = Phase::kInstant;
};
static_assert(sizeof(TraceEvent) <= 40, "TraceEvent grew past its budget");

/// Display metadata of an interned name (strings live here, never in the
/// per-event records).
struct NameInfo {
  std::string category;   ///< Chrome "cat" field (kernel/nic/met/fault/sweep)
  std::string name;       ///< Chrome "name" field
  std::string arg_label;  ///< label of TraceEvent::arg in the args object
  std::string arg2_label; ///< label of TraceEvent::arg2; empty = omitted
};

/// Pre-sized ring-buffer recorder. Construction allocates the buffer and
/// interns the well-known ids; recording is noexcept and alloc-free.
/// Not thread-safe: one Tracer per shard/worker, merged at export.
class Tracer {
 public:
  /// `capacity` bounds the event count; a full ring drops (counted).
  explicit Tracer(std::size_t capacity = 1u << 13);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Register an ad-hoc name; returns its id. Setup-time only.
  std::uint32_t intern(std::string category, std::string name,
                       std::string arg_label = "arg", std::string arg2_label = {});

  /// Record a point event at sim-time `ts`.
  void instant(std::uint32_t name, sim::Time ts, std::uint64_t arg = 0,
               std::uint32_t tid = 0, std::uint32_t arg2 = 0) noexcept {
    if (size_ == buf_.size()) {
      ++dropped_;
      return;
    }
    buf_[size_++] = TraceEvent{ts, 0, arg, name, tid, arg2, Phase::kInstant};
  }

  /// Record a completed span [start, start+dur).
  void span(std::uint32_t name, sim::Time start, sim::Time dur, std::uint64_t arg = 0,
            std::uint32_t tid = 0, std::uint32_t arg2 = 0) noexcept {
    if (size_ == buf_.size()) {
      ++dropped_;
      return;
    }
    buf_[size_++] = TraceEvent{start, dur, arg, name, tid, arg2, Phase::kSpan};
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buf_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  const TraceEvent& event(std::size_t i) const { return buf_[i]; }

  const NameInfo& name_info(std::uint32_t id) const { return names_[id]; }
  std::size_t n_names() const noexcept { return names_.size(); }

  /// Recorded events carrying intern id `name` (export sanity checks).
  std::size_t count(std::uint32_t name) const noexcept;

  /// Forget recorded events (capacity and names kept).
  void clear() noexcept {
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<NameInfo> names_;
};

/// RAII sim-time span: records name on destruction, from the sim clock at
/// construction to the sim clock at scope exit. For straight-line code
/// only — a coroutine must not hold one across a suspension point (the
/// frame outlives the scope rule it relies on); coroutines record spans
/// explicitly instead.
template <typename Sim>
class ScopedSpan {
 public:
  ScopedSpan(Tracer* t, const Sim& sim, std::uint32_t name, std::uint32_t tid = 0,
             std::uint64_t arg = 0) noexcept
      : t_(t), sim_(&sim), name_(name), tid_(tid), arg_(arg),
        t0_(t != nullptr ? sim.now() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Override the primary payload before the span closes.
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

  ~ScopedSpan() {
    if (t_ != nullptr) t_->span(name_, t0_, sim_->now() - t0_, arg_, tid_);
  }

 private:
  Tracer* t_;
  const Sim* sim_;
  std::uint32_t name_;
  std::uint32_t tid_;
  std::uint64_t arg_;
  sim::Time t0_;
};

/// RAII wall-clock span, timestamped as ns since a caller-chosen epoch
/// (the sweep run start) so all workers share one timeline. Wall lanes
/// are nondeterministic by nature; they are kept out of every
/// deterministic report path and exist only for --trace-out export.
class WallSpan {
 public:
  WallSpan(Tracer* t, std::chrono::steady_clock::time_point epoch, std::uint32_t name,
           std::uint32_t tid = 0, std::uint64_t arg = 0) noexcept
      : t_(t), epoch_(epoch), name_(name), tid_(tid), arg_(arg),
        t0_(std::chrono::steady_clock::now()) {}

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

  ~WallSpan() {
    if (t_ == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    const auto ns = [](auto d) {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    };
    t_->span(name_, ns(t0_ - epoch_), ns(now - t0_), arg_, tid_);
  }

 private:
  Tracer* t_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint32_t name_;
  std::uint32_t tid_;
  std::uint64_t arg_;
  std::chrono::steady_clock::time_point t0_;
};

/// One process lane of a Chrome trace export: a display name (shard or
/// worker label) plus the tracer whose events fill the lane.
struct TraceProcess {
  std::string name;
  const Tracer* tracer = nullptr;
};

/// Write Chrome trace-event JSON ({"traceEvents": [...]}) for the given
/// process lanes: pid = index + 1, with a process_name metadata record per
/// lane. Timestamps convert ns → µs (Chrome's unit) as exact doubles.
void write_chrome_trace(std::ostream& os, const std::vector<TraceProcess>& processes);

}  // namespace metro::trace
