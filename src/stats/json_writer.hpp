/// \file json_writer.hpp
/// The one JSON emission path for every machine-readable artifact.
///
/// Every BENCH_*.json file and sweep report used to be hand-rolled
/// `ostringstream` string-pasting — five slightly different comma/quote
/// conventions, no escaping, and `inf`/`nan` silently producing invalid
/// JSON. JsonWriter is a small streaming emitter with an explicit
/// container stack: it places commas, indents two spaces per depth (so
/// the artifacts stay diff-friendly and `python3 -m json.tool` clean),
/// escapes strings, and prints doubles with round-trip precision so
/// bit-identical values always serialise to byte-identical text — the
/// property the sweep determinism checks compare reports by.
///
/// Non-finite doubles serialise as `null` (JSON has no inf/nan); emitting
/// one is almost always an upstream bug (a 0/0 speedup), and `null` keeps
/// the artifact parseable so CI can still diff the rest.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace metro::stats {

class JsonWriter {
 public:
  /// Writes into `os`; emit exactly one top-level value, then the writer
  /// must be back at depth 0 (checked by done()).
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object() {
    begin_value();
    os_ << "{";
    stack_.push_back(Frame{true, 0});
    return *this;
  }

  JsonWriter& end_object() { return end_container('}', true); }

  JsonWriter& begin_array() {
    begin_value();
    os_ << "[";
    stack_.push_back(Frame{false, 0});
    return *this;
  }

  JsonWriter& end_array() { return end_container(']', false); }

  /// Key of the next value; valid only directly inside an object.
  JsonWriter& key(std::string_view k) {
    assert(!stack_.empty() && "JsonWriter: key() with no open container");
    assert(top().is_object && "JsonWriter: key() is only valid inside an object");
    Frame& f = top();
    if (f.count > 0) os_ << ",";
    newline_indent();
    write_string(k);
    os_ << ": ";
    have_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    begin_value();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    begin_value();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    begin_value();
    if (!std::isfinite(v)) {
      os_ << "null";
      return *this;
    }
    // max_digits10 round-trips the exact double, so equal values always
    // print equal text (the determinism checks compare report bytes).
    // Written straight to the sink with the stream state restored — no
    // per-value temporary stream.
    const auto flags = os_.flags();
    const auto precision = os_.precision();
    os_ << std::defaultfloat << std::setprecision(17) << v;
    os_.flags(flags);
    os_.precision(precision);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    begin_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    begin_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& null() {
    begin_value();
    os_ << "null";
    return *this;
  }

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once one complete top-level value has been written.
  bool done() const noexcept { return stack_.empty() && wrote_root_; }

  /// Final newline so the artifact ends like a POSIX text file.
  void finish() {
    if (done()) os_ << "\n";
  }

 private:
  struct Frame {
    bool is_object;
    std::size_t count;
  };

  Frame& top() { return stack_.back(); }

  void newline_indent() {
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  /// Comma/indent bookkeeping before any value token.
  void begin_value() {
    if (stack_.empty()) {
      wrote_root_ = true;
      return;
    }
    Frame& f = top();
    if (f.is_object) {
      // key() must have placed the comma and indentation: a bare value
      // inside an object would emit invalid JSON.
      assert(have_key_ && "JsonWriter: value() inside an object needs key() first");
      have_key_ = false;
    } else {
      if (f.count > 0) os_ << ",";
      newline_indent();
    }
    ++f.count;
  }

  JsonWriter& end_container(char close, bool object) {
    assert(!stack_.empty() && "JsonWriter: end with no open container");
    assert(top().is_object == object && "JsonWriter: mismatched end_object()/end_array()");
    (void)object;
    const Frame f = top();
    stack_.pop_back();
    if (f.count > 0) newline_indent();
    os_ << close;
    if (stack_.empty()) wrote_root_ = true;
    return *this;
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            os_ << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(c) << std::dec << std::setfill(' ');
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool have_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace metro::stats
