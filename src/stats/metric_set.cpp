#include "stats/metric_set.hpp"

#include <bit>
#include <stdexcept>

#include "stats/json_writer.hpp"
#include "util/seed_mix.hpp"

namespace metro::stats {

namespace {

// --- fingerprint accumulator ------------------------------------------------
// One algorithm for live sets and snapshots: a SplitMix64 chain over every
// name byte, kind tag and value, in registration order. Doubles hash by
// bit pattern, so "bit-identical" is literal.

std::uint64_t mix(std::uint64_t h, std::uint64_t v) { return util::splitmix64(h ^ v); }

std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix_string(std::uint64_t h, std::string_view s) {
  h = mix(h, s.size());
  // FNV-1a over the bytes, folded once: cheaper than a splitmix step per
  // character and still order/content sensitive.
  std::uint64_t fnv = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    fnv ^= static_cast<unsigned char>(c);
    fnv *= 0x100000001b3ULL;
  }
  return mix(h, fnv);
}

std::uint64_t mix_summary(std::uint64_t h, const Summary& s) {
  h = mix(h, s.count());
  h = mix_double(h, s.sum());
  h = mix_double(h, s.mean());
  h = mix_double(h, s.variance());
  h = mix_double(h, s.min());
  return mix_double(h, s.max());
}

std::uint64_t mix_histogram(std::uint64_t h, const Histogram& hist) {
  h = mix_double(h, hist.bin_width());
  h = mix(h, hist.n_bins());
  // Bins at or above the touched watermark are zero by invariant, and the
  // watermark itself is a deterministic function of the recorded values —
  // hashing the prefix plus the watermark covers the full bin array at a
  // cost that scales with the data, not the geometry (the default latency
  // histogram is 100k bins of which a run touches a few thousand; the
  // per-window series fingerprints walk this for every sample).
  const std::size_t hi = hist.touched_bins();
  h = mix(h, hi);
  for (std::size_t i = 0; i < hi; ++i) h = mix(h, hist.bin_count(i));
  h = mix(h, hist.overflow());
  return mix_summary(h, hist.summary());
}

/// Digest of a single histogram's bins (reports carry this instead of the
/// raw bin array).
std::uint64_t histogram_digest(const Histogram& hist) {
  return mix_histogram(util::splitmix64(0x486973746f6772ULL), hist);
}

[[noreturn]] void throw_kind_mismatch(std::string_view name, MetricKind want, MetricKind got) {
  throw std::invalid_argument("metric '" + std::string(name) + "' is a " +
                              metric_kind_name(got) + ", not a " + metric_kind_name(want));
}

}  // namespace

const char* metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kSummary: return "summary";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// --- MetricSnapshot ---------------------------------------------------------

const MetricSnapshot::Entry* MetricSnapshot::find(std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {
const MetricSnapshot::Entry& require(const MetricSnapshot& snap, std::string_view name,
                                     MetricKind want) {
  const MetricSnapshot::Entry* e = snap.find(name);
  if (e == nullptr) {
    throw std::out_of_range("no metric named '" + std::string(name) + "' in snapshot");
  }
  if (e->kind != want) throw_kind_mismatch(name, want, e->kind);
  return *e;
}
}  // namespace

std::uint64_t MetricSnapshot::counter(std::string_view name) const {
  return require(*this, name, MetricKind::kCounter).counter;
}

double MetricSnapshot::gauge(std::string_view name) const {
  return require(*this, name, MetricKind::kGauge).gauge;
}

const Summary& MetricSnapshot::summary(std::string_view name) const {
  return require(*this, name, MetricKind::kSummary).summary;
}

const Histogram& MetricSnapshot::histogram(std::string_view name) const {
  return *require(*this, name, MetricKind::kHistogram).histogram;
}

void MetricSnapshot::set_counter(std::string_view name, std::uint64_t value) {
  const_cast<Entry&>(require(*this, name, MetricKind::kCounter)).counter = value;
}

MetricSnapshot MetricSnapshot::delta(const MetricSnapshot& start) const {
  if (start.entries_.size() != entries_.size()) {
    throw std::invalid_argument("MetricSnapshot::delta: shape mismatch (" +
                                std::to_string(entries_.size()) + " vs " +
                                std::to_string(start.entries_.size()) + " entries)");
  }
  MetricSnapshot out = *this;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& s = start.entries_[i];
    Entry& e = out.entries_[i];
    if (e.name != s.name || e.kind != s.kind) {
      throw std::invalid_argument("MetricSnapshot::delta: entry " + std::to_string(i) +
                                  " mismatch ('" + e.name + "' vs '" + s.name + "')");
    }
    if (e.kind == MetricKind::kCounter) e.counter -= s.counter;
  }
  return out;
}

void MetricSnapshot::merge(const MetricSnapshot& other) {
  for (const Entry& o : other.entries_) {
    Entry* mine = nullptr;
    for (Entry& e : entries_) {
      if (e.name == o.name) {
        mine = &e;
        break;
      }
    }
    if (mine == nullptr) {
      entries_.push_back(o);
      continue;
    }
    if (mine->kind != o.kind) throw_kind_mismatch(o.name, mine->kind, o.kind);
    try {
      switch (o.kind) {
        case MetricKind::kCounter: mine->counter += o.counter; break;
        case MetricKind::kGauge: mine->gauge += o.gauge; break;
        case MetricKind::kSummary: mine->summary.merge(o.summary); break;
        case MetricKind::kHistogram: mine->histogram->merge(*o.histogram); break;
      }
    } catch (const std::exception& e) {
      // Name the diverging metric: "Histogram::merge: bin_width mismatch"
      // alone is useless in a sweep failure report with dozens of
      // registered histograms.
      throw std::invalid_argument("MetricSnapshot::merge: metric '" + o.name + "': " + e.what());
    }
  }
}

std::uint64_t MetricSnapshot::fingerprint() const {
  std::uint64_t h = util::splitmix64(entries_.size());
  for (const Entry& e : entries_) {
    h = mix_string(h, e.name);
    h = mix(h, static_cast<std::uint64_t>(e.kind));
    switch (e.kind) {
      case MetricKind::kCounter: h = mix(h, e.counter); break;
      case MetricKind::kGauge: h = mix_double(h, e.gauge); break;
      case MetricKind::kSummary: h = mix_summary(h, e.summary); break;
      case MetricKind::kHistogram: h = mix_histogram(h, *e.histogram); break;
    }
  }
  return h;
}

void MetricSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        w.kv(e.name, e.counter);
        break;
      case MetricKind::kGauge:
        w.kv(e.name, e.gauge);
        break;
      case MetricKind::kSummary:
        w.key(e.name).begin_object();
        w.kv("count", e.summary.count());
        w.kv("mean", e.summary.mean());
        w.kv("stddev", e.summary.stddev());
        w.kv("min", e.summary.min());
        w.kv("max", e.summary.max());
        w.kv("sum", e.summary.sum());
        w.end_object();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        const Boxplot b = h.boxplot();
        w.key(e.name).begin_object();
        w.kv("count", h.count());
        w.kv("overflow", h.overflow());
        w.kv("bin_width", h.bin_width());
        w.kv("n_bins", static_cast<std::uint64_t>(h.n_bins()));
        w.kv("digest", histogram_digest(h));
        w.kv("p5", b.whisker_lo);
        w.kv("p25", b.p25);
        w.kv("median", b.median);
        w.kv("p75", b.p75);
        w.kv("p95", b.whisker_hi);
        w.kv("mean", b.mean);
        w.end_object();
        break;
      }
    }
  }
  w.end_object();
}

// --- MetricSet --------------------------------------------------------------

void MetricSet::add_slot(std::string name, MetricKind kind, void* ptr) {
  if (contains(name)) {
    throw std::invalid_argument("metric '" + name + "' registered twice");
  }
  slots_.push_back(Slot{std::move(name), kind, ptr});
}

std::uint64_t& MetricSet::counter(std::string name) {
  std::uint64_t& v = owned_counters_.emplace_back(0);
  add_slot(std::move(name), MetricKind::kCounter, &v);
  return v;
}

double& MetricSet::gauge(std::string name) {
  double& v = owned_gauges_.emplace_back(0.0);
  add_slot(std::move(name), MetricKind::kGauge, &v);
  return v;
}

Summary& MetricSet::summary(std::string name) {
  Summary& v = owned_summaries_.emplace_back();
  add_slot(std::move(name), MetricKind::kSummary, &v);
  return v;
}

Histogram& MetricSet::histogram(std::string name, double bin_width, double max_value) {
  Histogram& v = owned_histograms_.emplace_back(bin_width, max_value);
  add_slot(std::move(name), MetricKind::kHistogram, &v);
  return v;
}

void MetricSet::attach_counter(std::string name, std::uint64_t& value) {
  add_slot(std::move(name), MetricKind::kCounter, &value);
}

void MetricSet::attach_gauge(std::string name, double& value) {
  add_slot(std::move(name), MetricKind::kGauge, &value);
}

void MetricSet::attach_summary(std::string name, Summary& value) {
  add_slot(std::move(name), MetricKind::kSummary, &value);
}

void MetricSet::attach_histogram(std::string name, Histogram& value) {
  add_slot(std::move(name), MetricKind::kHistogram, &value);
}

bool MetricSet::contains(std::string_view name) const noexcept {
  for (const Slot& s : slots_) {
    if (s.name == name) return true;
  }
  return false;
}

MetricSnapshot MetricSet::snapshot() const {
  MetricSnapshot out;
  out.entries_.reserve(slots_.size());
  for (const Slot& s : slots_) {
    MetricSnapshot::Entry e;
    e.name = s.name;
    e.kind = s.kind;
    switch (s.kind) {
      case MetricKind::kCounter: e.counter = *static_cast<const std::uint64_t*>(s.ptr); break;
      case MetricKind::kGauge: e.gauge = *static_cast<const double*>(s.ptr); break;
      case MetricKind::kSummary: e.summary = *static_cast<const Summary*>(s.ptr); break;
      case MetricKind::kHistogram:
        e.histogram.emplace(*static_cast<const Histogram*>(s.ptr));
        break;
    }
    out.entries_.push_back(std::move(e));
  }
  return out;
}

void MetricSet::snapshot_into(MetricSnapshot& out) const {
  if (out.entries_.size() != slots_.size()) {
    throw std::invalid_argument("MetricSet::snapshot_into: shape mismatch (" +
                                std::to_string(out.entries_.size()) + " entries vs " +
                                std::to_string(slots_.size()) + " registered)");
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    MetricSnapshot::Entry& e = out.entries_[i];
    if (e.name != s.name || e.kind != s.kind) {
      throw std::invalid_argument("MetricSet::snapshot_into: entry " + std::to_string(i) +
                                  " mismatch ('" + e.name + "' vs '" + s.name + "')");
    }
    switch (s.kind) {
      case MetricKind::kCounter: e.counter = *static_cast<const std::uint64_t*>(s.ptr); break;
      case MetricKind::kGauge: e.gauge = *static_cast<const double*>(s.ptr); break;
      case MetricKind::kSummary: e.summary = *static_cast<const Summary*>(s.ptr); break;
      case MetricKind::kHistogram: {
        const Histogram& src = *static_cast<const Histogram*>(s.ptr);
        if (!e.histogram.has_value() || e.histogram->bin_width() != src.bin_width() ||
            e.histogram->n_bins() != src.n_bins()) {
          throw std::invalid_argument("MetricSet::snapshot_into: metric '" + s.name +
                                      "': histogram geometry changed");
        }
        // Equal-geometry Histogram assignment reuses the existing bin
        // storage and copies only the touched prefix: the refresh stays
        // allocation-free and scales with the data, not the geometry.
        *e.histogram = src;
        break;
      }
    }
  }
}

MetricSnapshot MetricSet::window_start() {
  for (const Slot& s : slots_) {
    if (s.kind == MetricKind::kSummary) {
      static_cast<Summary*>(s.ptr)->reset();
    } else if (s.kind == MetricKind::kHistogram) {
      static_cast<Histogram*>(s.ptr)->reset();
    }
  }
  return snapshot();
}

MetricSnapshot MetricSet::delta(const MetricSnapshot& start) const {
  return snapshot().delta(start);
}

std::uint64_t MetricSet::fingerprint() const {
  std::uint64_t h = util::splitmix64(slots_.size());
  for (const Slot& s : slots_) {
    h = mix_string(h, s.name);
    h = mix(h, static_cast<std::uint64_t>(s.kind));
    switch (s.kind) {
      case MetricKind::kCounter: h = mix(h, *static_cast<const std::uint64_t*>(s.ptr)); break;
      case MetricKind::kGauge: h = mix_double(h, *static_cast<const double*>(s.ptr)); break;
      case MetricKind::kSummary: h = mix_summary(h, *static_cast<const Summary*>(s.ptr)); break;
      case MetricKind::kHistogram:
        h = mix_histogram(h, *static_cast<const Histogram*>(s.ptr));
        break;
    }
  }
  return h;
}

void MetricSet::reset() {
  for (const Slot& s : slots_) {
    switch (s.kind) {
      case MetricKind::kCounter: *static_cast<std::uint64_t*>(s.ptr) = 0; break;
      case MetricKind::kGauge: *static_cast<double*>(s.ptr) = 0.0; break;
      case MetricKind::kSummary: static_cast<Summary*>(s.ptr)->reset(); break;
      case MetricKind::kHistogram: static_cast<Histogram*>(s.ptr)->reset(); break;
    }
  }
}

}  // namespace metro::stats
