#include "rt/metronome_rt.hpp"

#include <random>

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace metro::rt {

MetronomeRt::MetronomeRt(RtConfig cfg) : cfg_(cfg), rate_pps_(cfg.rate_pps) {
  queues_.reserve(static_cast<std::size_t>(cfg_.n_queues));
  for (int q = 0; q < cfg_.n_queues; ++q) {
    auto state = std::make_unique<RtQueueState>();
    state->ring = std::make_unique<SpscRing<RtPacket>>(cfg_.ring_capacity);
    state->ts_us.store(cfg_.adaptive
                           ? cfg_.target_vacation_us * cfg_.n_threads / cfg_.n_queues
                           : cfg_.fixed_ts_us);
    queues_.push_back(std::move(state));
  }
  worker_stats_.reserve(static_cast<std::size_t>(cfg_.n_threads));
  for (int t = 0; t < cfg_.n_threads; ++t) {
    worker_stats_.push_back(std::make_unique<WorkerStats>());
  }
}

MetronomeRt::~MetronomeRt() {
  if (running_.load()) stop();
}

namespace {
double process_cpu_seconds() {
#if defined(__linux__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto to_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) / 1e6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
#else
  return 0.0;
#endif
}
}  // namespace

void MetronomeRt::start() {
  cpu_seconds_at_start_ = process_cpu_seconds();
  wall_ns_at_start_ = monotonic_ns();
  running_.store(true, std::memory_order_release);
  producer_ = std::thread([this] { producer_loop(); });
  for (int t = 0; t < cfg_.n_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

void MetronomeRt::producer_loop() {
  set_min_timer_slack();
  std::mt19937_64 rng(12345);
  std::int64_t next_send = monotonic_ns();
  while (running_.load(std::memory_order_acquire)) {
    const double rate = rate_pps_.load(std::memory_order_relaxed);
    if (rate <= 0.0) {
      hr_sleep(100'000);
      next_send = monotonic_ns();
      continue;
    }
    const auto gap = static_cast<std::int64_t>(1e9 / rate);
    const std::int64_t now = monotonic_ns();
    if (now < next_send) {
      // Hybrid pacing: sleep for coarse gaps, spin for the rest.
      if (next_send - now > 50'000) hr_sleep(next_send - now - 20'000);
      while (monotonic_ns() < next_send && running_.load(std::memory_order_relaxed)) {
      }
    }
    RtPacket pkt;
    pkt.arrival_ns = monotonic_ns();
    pkt.flow_id = static_cast<std::uint32_t>(rng());
    const int q = cfg_.n_queues > 1
                      ? static_cast<int>(pkt.flow_id % static_cast<std::uint32_t>(cfg_.n_queues))
                      : 0;
    queues_[static_cast<std::size_t>(q)]->ring->push(pkt);
    ++producer_pushed_;
    next_send += gap;
    // If we fell behind (scheduled out), resynchronize instead of bursting.
    if (monotonic_ns() - next_send > 10'000'000) next_send = monotonic_ns();
  }
}

void MetronomeRt::worker_loop(int thread_id) {
  set_min_timer_slack();
  WorkerStats& my = *worker_stats_[static_cast<std::size_t>(thread_id)];
  std::mt19937_64 rng(777 + static_cast<std::uint64_t>(thread_id));
  std::vector<RtPacket> burst(static_cast<std::size_t>(cfg_.burst));
  int curr = thread_id % cfg_.n_queues;

  while (running_.load(std::memory_order_acquire)) {
    RtQueueState& q = *queues_[static_cast<std::size_t>(curr)];
    q.total_tries.fetch_add(1, std::memory_order_relaxed);

    if (!q.lock.try_lock()) {
      q.busy_tries.fetch_add(1, std::memory_order_relaxed);
      if (cfg_.n_queues > 1) {
        curr = static_cast<int>(rng() % static_cast<std::uint64_t>(cfg_.n_queues));
      }
      hr_sleep(static_cast<std::int64_t>(cfg_.long_timeout_us * 1e3));
      continue;
    }

    // --- busy period ---------------------------------------------------
    const std::int64_t acquire = monotonic_ns();
    const std::int64_t last_release = q.last_release_ns.load(std::memory_order_relaxed);

    std::uint64_t drained = 0;
    int n;
    while ((n = q.ring->pop_burst(burst.data(), cfg_.burst)) > 0 &&
           running_.load(std::memory_order_relaxed)) {
      const std::int64_t t_pop = monotonic_ns();
      for (int i = 0; i < n; ++i) {
        my.latency_us.add(static_cast<double>(t_pop - burst[static_cast<std::size_t>(i)].arrival_ns) /
                          1e3);
      }
      drained += static_cast<std::uint64_t>(n);
    }
    const std::int64_t release = monotonic_ns();
    q.last_release_ns.store(release, std::memory_order_relaxed);
    packets_consumed_.fetch_add(drained, std::memory_order_relaxed);

    double ts_us = q.ts_us.load(std::memory_order_relaxed);
    if (last_release >= 0) {
      const double vacation_us = static_cast<double>(acquire - last_release) / 1e3;
      const double busy_us = static_cast<double>(release - acquire) / 1e3;
      my.vacation_us.add(vacation_us);
      my.busy_us.add(busy_us);
      // Eq. (11) EWMA of eq. (4) samples; published for the other threads.
      const double sample = core::model::rho_estimate(busy_us, vacation_us);
      const double rho =
          (1.0 - cfg_.alpha) * q.rho.load(std::memory_order_relaxed) + cfg_.alpha * sample;
      q.rho.store(rho, std::memory_order_relaxed);
      if (cfg_.adaptive) {
        ts_us = core::model::ts_for_target_multiqueue(cfg_.target_vacation_us, rho,
                                                      cfg_.n_threads, cfg_.n_queues);
        q.ts_us.store(ts_us, std::memory_order_relaxed);
      }
    }
    q.lock.unlock();

    hr_sleep(static_cast<std::int64_t>(ts_us * 1e3));
  }
}

RtResult MetronomeRt::stop() {
  running_.store(false, std::memory_order_release);
  if (producer_.joinable()) producer_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  RtResult r;
  r.packets_consumed = packets_consumed_.load();
  r.producer_pushed = producer_pushed_;
  for (const auto& q : queues_) {
    r.producer_drops += q->ring->dropped();
    r.busy_tries += q->busy_tries.load();
    r.total_tries += q->total_tries.load();
    // Drain whatever the workers had not yet retrieved (threads are joined,
    // so this is safe) to make the packet conservation audit exact.
    RtPacket buf[64];
    int n;
    while ((n = q->ring->pop_burst(buf, 64)) > 0) {
      r.leftover_in_rings += static_cast<std::uint64_t>(n);
    }
  }
  for (const auto& w : worker_stats_) {
    r.vacation_us.merge(w->vacation_us);
    r.busy_us.merge(w->busy_us);
    r.latency_us.merge(w->latency_us);
  }
  r.final_rho = queues_[0]->rho.load();
  r.final_ts_us = queues_[0]->ts_us.load();
  r.cpu_seconds = process_cpu_seconds() - cpu_seconds_at_start_;
  r.wall_seconds = static_cast<double>(monotonic_ns() - wall_ns_at_start_) / 1e9;
  return r;
}

}  // namespace metro::rt
