// Real fine-grain sleep for the real-thread runtime.
//
// The paper's hr_sleep() is a custom kernel service; on a stock kernel the
// closest user-space equivalent is clock_nanosleep(CLOCK_MONOTONIC) with
// the per-thread timer slack forced to its 1 ns minimum via
// prctl(PR_SET_TIMERSLACK, 1) — precisely the tuned-nanosleep baseline the
// paper compares against in Fig. 1. This shim packages that, plus the
// measurement helper the Fig. 1 bench uses on this host.
#pragma once

#include <cstdint>

namespace metro::rt {

/// Set the calling thread's timer slack to the minimum (1 ns). Returns
/// false if prctl is unavailable (the sleep still works, just coarser).
bool set_min_timer_slack();

/// Sleep ~`ns` nanoseconds on CLOCK_MONOTONIC, restarting on EINTR.
void hr_sleep(std::int64_t ns);

/// Monotonic timestamp in nanoseconds.
std::int64_t monotonic_ns();

/// Measure the actual latency of one hr_sleep(ns) call, in nanoseconds.
std::int64_t measure_sleep_latency(std::int64_t ns);

}  // namespace metro::rt
