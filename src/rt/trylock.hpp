// The real trylock: one CMPXCHG on a dedicated cache line (§III-B).
//
// compare_exchange on an int compiles to LOCK CMPXCHG on x86 — exactly the
// instruction the paper builds its race-resolution protocol on. The lock
// word lives alone on its cache line to avoid false sharing between the
// Metronome threads hammering it.
#pragma once

#include <atomic>

namespace metro::rt {

class alignas(64) TryLock {
 public:
  /// Non-blocking acquire. Acquire ordering: the winner sees all queue
  /// state published by the previous owner's unlock().
  bool try_lock() noexcept {
    int expected = 0;
    return state_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void unlock() noexcept { state_.store(0, std::memory_order_release); }

  bool locked() const noexcept { return state_.load(std::memory_order_relaxed) != 0; }

 private:
  std::atomic<int> state_{0};
};

}  // namespace metro::rt
