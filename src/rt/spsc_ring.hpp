// Bounded lock-free ring buffer (rte_ring stand-in for the real-thread
// runtime).
//
// Single producer; consumers are serialized externally by the per-queue
// TryLock (only the lock holder pops), so SPSC ordering suffices: the
// producer publishes with a release store of the tail, the consumer
// publishes consumption with a release store of the head, and the lock's
// acquire/release edges order consumer hand-offs between threads.
// Head/tail live on separate cache lines.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace metro::rt {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two. Free-running 64-bit
  /// head/tail counters distinguish full from empty, so every slot is
  /// usable.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  /// Producer-side push. Returns false when full (tail drop).
  bool push(const T& value) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side burst pop (caller must hold the queue lock).
  int pop_burst(T* out, int max) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t available = tail - head;
    const int n = available < static_cast<std::uint64_t>(max) ? static_cast<int>(available) : max;
    for (int i = 0; i < n; ++i) out[i] = slots_[(head + static_cast<std::uint64_t>(i)) & mask_];
    head_.store(head + static_cast<std::uint64_t>(n), std::memory_order_release);
    return n;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }
  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace metro::rt
