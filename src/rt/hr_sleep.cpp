#include "rt/hr_sleep.hpp"

#include <cerrno>
#include <ctime>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace metro::rt {

bool set_min_timer_slack() {
#if defined(__linux__) && defined(PR_SET_TIMERSLACK)
  return prctl(PR_SET_TIMERSLACK, 1UL, 0UL, 0UL, 0UL) == 0;
#else
  return false;
#endif
}

void hr_sleep(std::int64_t ns) {
  if (ns <= 0) return;
  timespec req;
  req.tv_sec = static_cast<time_t>(ns / 1'000'000'000);
  req.tv_nsec = static_cast<long>(ns % 1'000'000'000);
  timespec rem;
  while (clock_nanosleep(CLOCK_MONOTONIC, 0, &req, &rem) == EINTR) req = rem;
}

std::int64_t monotonic_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

std::int64_t measure_sleep_latency(std::int64_t ns) {
  const std::int64_t start = monotonic_ns();
  hr_sleep(ns);
  return monotonic_ns() - start;
}

}  // namespace metro::rt
