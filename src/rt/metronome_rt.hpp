// Real-thread Metronome runtime.
//
// The same protocol as core::Metronome (paper Listing 2), but on actual
// std::thread workers with the real CMPXCHG trylock, real
// clock_nanosleep-based hr_sleep, and lock-free rings fed by a paced
// producer thread. This is the proof that the concurrency design is
// implementable exactly as published; the discrete-event twin is what the
// quantitative benches measure (it controls the OS environment, which a
// CI container cannot).
//
// The producer paces synthetic "descriptors" (arrival timestamp + flow) at
// a configured rate using a hybrid sleep/spin loop, mimicking MoonGen.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/ewma.hpp"
#include "core/model.hpp"
#include "rt/hr_sleep.hpp"
#include "rt/spsc_ring.hpp"
#include "rt/trylock.hpp"
#include "stats/summary.hpp"

namespace metro::rt {

struct RtPacket {
  std::int64_t arrival_ns = 0;
  std::uint32_t flow_id = 0;
};

struct RtConfig {
  int n_threads = 3;           // M
  int n_queues = 1;            // N
  double target_vacation_us = 50.0;
  double long_timeout_us = 2000.0;
  double alpha = 0.05;
  int burst = 32;
  std::size_t ring_capacity = 4096;
  double rate_pps = 200e3;     // producer pacing
  bool adaptive = true;
  double fixed_ts_us = 100.0;
};

/// Per-queue shared state; padded so queues don't false-share.
struct alignas(64) RtQueueState {
  TryLock lock;
  std::unique_ptr<SpscRing<RtPacket>> ring;
  std::atomic<std::int64_t> last_release_ns{-1};
  std::atomic<std::uint64_t> busy_tries{0};
  std::atomic<std::uint64_t> total_tries{0};
  // rho/ts written only by the lock holder, read by sleepers: a data-race-
  // free published double via atomic.
  std::atomic<double> rho{0.0};
  std::atomic<double> ts_us{0.0};
};

struct RtResult {
  std::uint64_t packets_consumed = 0;
  std::uint64_t producer_pushed = 0;
  std::uint64_t producer_drops = 0;
  /// Packets still sitting in the rings when the runtime was stopped
  /// (consumed + leftover + drops == pushed, exactly).
  std::uint64_t leftover_in_rings = 0;
  std::uint64_t busy_tries = 0;
  std::uint64_t total_tries = 0;
  stats::Summary vacation_us;
  stats::Summary busy_us;
  stats::Summary latency_us;  // retrieval latency: pop time - arrival
  double final_rho = 0.0;
  double final_ts_us = 0.0;
  /// Process CPU time consumed between start() and stop() (getrusage, the
  /// paper's own §V accounting tool) and the wall time of the run.
  double cpu_seconds = 0.0;
  double wall_seconds = 0.0;
};

class MetronomeRt {
 public:
  explicit MetronomeRt(RtConfig cfg);
  ~MetronomeRt();

  MetronomeRt(const MetronomeRt&) = delete;
  MetronomeRt& operator=(const MetronomeRt&) = delete;

  /// Launch producer + M worker threads.
  void start();

  /// Stop everything, join, and return aggregated statistics.
  RtResult stop();

  /// Live counter (for adaptivity probes while running).
  std::uint64_t packets_consumed() const noexcept {
    return packets_consumed_.load(std::memory_order_relaxed);
  }
  double current_rho(int queue = 0) const {
    return queues_[static_cast<std::size_t>(queue)]->rho.load(std::memory_order_relaxed);
  }
  double current_ts_us(int queue = 0) const {
    return queues_[static_cast<std::size_t>(queue)]->ts_us.load(std::memory_order_relaxed);
  }

  /// Change the producer rate while running (adaptivity tests).
  void set_rate_pps(double pps) { rate_pps_.store(pps, std::memory_order_relaxed); }

 private:
  void producer_loop();
  void worker_loop(int thread_id);

  RtConfig cfg_;
  std::vector<std::unique_ptr<RtQueueState>> queues_;
  std::atomic<bool> running_{false};
  std::atomic<double> rate_pps_;
  std::atomic<std::uint64_t> packets_consumed_{0};
  std::uint64_t producer_pushed_ = 0;
  double cpu_seconds_at_start_ = 0.0;
  std::int64_t wall_ns_at_start_ = 0;

  // Per-worker private stats, merged at stop().
  struct WorkerStats {
    stats::Summary vacation_us;
    stats::Summary busy_us;
    stats::Summary latency_us;
  };
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;

  std::thread producer_;
  std::vector<std::thread> workers_;
};

}  // namespace metro::rt
