// Simulated NIC port: RSS dispatch onto N Rx queues plus a Tx side.
//
// Models the Intel X520 (10 GbE, default single queue, 512-descriptor
// rings) and XL710 (40 GbE, multi-queue, capped at ~37 Mpps aggregate
// processing by the device itself — spec update #13, which the paper hits
// in §V-F). Traffic sources push descriptors through `rx()` — or, for
// already-grouped deliveries, through `rx_burst()`, which runs the whole
// group through cap accounting and RSS dispatch in one call — and the
// port tail-drops on full rings.
//
// Templated over the kernel instantiation (BasicPort<Sim>); the heap alias
// `Port` preserves the original spelling. Member definitions live in
// port.cpp with explicit instantiations for the two shipped backends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nic/rings.hpp"
#include "nic/rss.hpp"
#include "nic/sim_packet.hpp"
#include "sim/calibration.hpp"
#include "sim/simulation.hpp"

namespace metro::nic {

struct PortConfig {
  int n_rx_queues = 1;
  int rx_ring_size = sim::calib::kX520DefaultRingSize;
  int tx_batch = sim::calib::kTxBatchDefault;
  /// Aggregate device processing cap in packets/s (0 = uncapped).
  /// XL710: ~37 Mpps regardless of configured rate.
  double max_pps = 0.0;
};

/// Factory presets matching the paper's two NICs.
PortConfig x520_config(int n_queues = 1);
PortConfig xl710_config(int n_queues);

template <typename Sim = sim::Simulation>
class BasicPort {
 public:
  BasicPort(Sim& sim, PortConfig cfg, TxCallback on_tx = {});

  int n_rx_queues() const noexcept { return static_cast<int>(rx_.size()); }
  BasicRxRing<Sim>& rx_queue(int i) { return *rx_[static_cast<std::size_t>(i)]; }
  BasicTxRing<Sim>& tx() noexcept { return tx_ring_; }
  const PortConfig& config() const noexcept { return cfg_; }

  /// NIC-side ingress: RSS-dispatch one descriptor. Returns false if the
  /// packet was dropped (fault plane, ring full or device cap exceeded).
  bool rx(PacketDesc pkt);

  /// Ingress of `n` descriptors with non-decreasing arrival times (a
  /// feeder group). Semantically identical to n rx() calls — same cap
  /// accounting, same RSS dispatch, same drop counters — but one call per
  /// group instead of one per packet. Returns how many were accepted.
  /// With a fault plane attached the burst degrades to the per-packet
  /// path, because faults are defined per packet (drop / corrupt / dup /
  /// reorder decisions consume the fault stream in arrival order).
  int rx_burst(const PacketDesc* pkts, int n);

  /// Attach (or detach, with nullptr) the deterministic fault plane.
  /// Plumbs the stall hook into every rx ring as well. The injector must
  /// outlive the port; a null injector restores the healthy fast path.
  void set_fault_injector(fault::FaultInjector* faults);

  // --- counters ---------------------------------------------------------
  std::uint64_t total_rx() const noexcept { return total_rx_; }
  std::uint64_t total_dropped() const;
  std::uint64_t device_cap_drops() const noexcept { return cap_drops_; }

  /// Attach the port's whole counter tree to `set` under `prefix`:
  /// `<prefix>.rx`, `<prefix>.cap_drops`, per-queue
  /// `<prefix>.qN.received/.dropped` and `<prefix>.tx.transmitted`.
  /// Registration only — the data path is untouched.
  void register_metrics(stats::MetricSet& set, const std::string& prefix);

 private:
  /// The healthy ingress body (cap accounting + RSS dispatch); rx() is the
  /// fault-plane wrapper around it.
  bool accept(const PacketDesc& pkt);

  /// Record one kRxBurst instant when the kernel has a tracer attached.
  void trace_burst(const PacketDesc* pkts, int n, int accepted);

  Sim& sim_;
  PortConfig cfg_;
  RssReta reta_;
  std::vector<std::unique_ptr<BasicRxRing<Sim>>> rx_;
  BasicTxRing<Sim> tx_ring_;
  fault::FaultInjector* faults_ = nullptr;  // borrowed; nullptr = healthy
  std::uint64_t total_rx_ = 0;
  std::uint64_t cap_drops_ = 0;
  /// Device pacing: earliest time the NIC can accept the next packet.
  sim::Time next_accept_ = 0;
  sim::Time per_packet_ns_ = 0;  // 1/max_pps, 0 if uncapped
};

/// Heap-kernel alias (the original spelling).
using Port = BasicPort<sim::Simulation>;

}  // namespace metro::nic
