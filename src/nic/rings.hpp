// NIC descriptor rings.
//
// RxRing models the hardware Rx descriptor ring: the NIC DMA-writes
// arriving packets into it; when it is full, further packets are tail-
// dropped (`imissed` in DPDK counters). Drivers retrieve descriptors in
// bursts of up to 32, exactly like rte_eth_rx_burst.
//
// TxRing models the transmit side including the *Tx batch threshold*
// discussed in §V-C: descriptors are buffered until `batch` of them are
// pending, then flushed to the wire in one shot. A small batch improves
// latency at low rates (no packet is stranded across a vacation period) at
// the cost of more MMIO doorbells — the paper measures both settings.
//
// Per-packet cost discipline: these two paths run once per simulated
// packet, so they carry no avoidable per-packet work —
//   * RxRing::push notifies the arrival signal only on the empty→non-empty
//     edge (waiters block only on an empty ring, so notifies at depth 2, 3,
//     ... could never wake anyone — they were pure loop overhead);
//   * TxRing's transmit callback is a non-owning FunctionRef (one indirect
//     call, no std::function machinery) and flush() tests it once per
//     flush, not once per packet.
//
// Both rings are templated over the kernel instantiation; the heap-bound
// aliases RxRing / TxRing preserve the original spellings.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fault/fault.hpp"
#include "nic/sim_packet.hpp"
#include "sim/simulation.hpp"
#include "stats/metric_set.hpp"
#include "util/function_ref.hpp"

namespace metro::nic {

/// Per-packet transmit hook `on_tx(pkt, tx_time)`, invoked at flush time —
/// the experiment harness binds its latency-histogram recorder here. Non-
/// owning: the callable must outlive the ring (the harness owns both).
using TxCallback = util::FunctionRef<void(const PacketDesc&, sim::Time)>;

template <typename Sim = sim::Simulation>
class BasicRxRing {
 public:
  /// Storage is rounded up to a power of two so index wrap is a mask, not
  /// a division; the *logical* capacity (full/drop threshold) stays exactly
  /// as requested, matching the configured descriptor count.
  BasicRxRing(Sim& sim, int capacity)
      : capacity_(static_cast<std::size_t>(capacity)),
        mask_(std::bit_ceil(static_cast<std::size_t>(capacity)) - 1),
        slots_(mask_ + 1),
        arrival_signal_(sim) {}

  /// NIC-side enqueue. Returns false (and counts a drop) when full.
  /// Edge-triggered arrival notification: waiters only ever block on an
  /// empty ring (every driver drains before waiting), so only the
  /// empty→non-empty transition can have an audience.
  bool push(const PacketDesc& pkt) {
    // A stalled ring behaves exactly like a full one: DMA writes that land
    // during the stall window are tail-dropped (imissed). The check is one
    // predicted-false branch when no fault plane is attached.
    if (faults_ != nullptr && faults_->rx_stalled(pkt.arrival)) {
      ++dropped_;
      return false;
    }
    if (count_ == capacity_) {
      ++dropped_;
      return false;
    }
    slots_[tail_ & mask_] = pkt;
    ++tail_;
    ++received_;
    if (count_++ == 0) arrival_signal_.notify_all();
    return true;
  }

  /// Driver-side burst retrieval (rte_eth_rx_burst semantics). Copies out
  /// at most two contiguous runs (descriptors are PODs).
  int pop_burst(PacketDesc* out, int max) {
    if (max <= 0) return 0;
    std::size_t n = count_;
    if (n > static_cast<std::size_t>(max)) n = static_cast<std::size_t>(max);
    if (n == 0) return 0;
    const std::size_t start = head_ & mask_;
    const std::size_t first = std::min(n, (mask_ + 1) - start);
    std::memcpy(out, slots_.data() + start, first * sizeof(PacketDesc));
    if (n > first) {
      std::memcpy(out + first, slots_.data(), (n - first) * sizeof(PacketDesc));
    }
    head_ += n;
    count_ -= n;
    return static_cast<int>(n);
  }

  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return capacity_; }

  std::uint64_t total_received() const noexcept { return received_; }
  std::uint64_t total_dropped() const noexcept { return dropped_; }

  /// Awaitable signal fired when an empty ring receives its first packet;
  /// used by polling drivers to fast-forward idle stretches without
  /// per-poll events. Wait only with the ring drained (all drivers do).
  sim::BasicSignal<Sim>& arrival_signal() noexcept { return arrival_signal_; }

  /// Attach this ring's counters to `set` under `prefix` (setup only; the
  /// hot path keeps its plain increments).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".received", received_);
    set.attach_counter(prefix + ".dropped", dropped_);
  }

  /// Attach (or detach, with nullptr) the fault plane's stall hook. The
  /// injector must outlive the ring; normally wired by BasicPort.
  void set_fault_injector(fault::FaultInjector* faults) noexcept { faults_ = faults; }

 private:
  std::size_t capacity_;  // logical capacity (full threshold)
  std::size_t mask_;      // storage size - 1 (power of two)
  std::vector<PacketDesc> slots_;
  std::size_t head_ = 0;  // monotonically increasing; masked on access
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  fault::FaultInjector* faults_ = nullptr;  // borrowed; nullptr = healthy
  sim::BasicSignal<Sim> arrival_signal_;
};

template <typename Sim = sim::Simulation>
class BasicTxRing {
 public:
  /// Per-packet transmit hook (see nic::TxCallback). Kept as a member
  /// alias so existing `TxRing::TxCallback` spellings stay valid.
  using TxCallback = nic::TxCallback;

  BasicTxRing(Sim& sim, int batch_threshold, TxCallback on_tx = {})
      : sim_(sim), batch_(batch_threshold < 1 ? 1 : batch_threshold), on_tx_(on_tx) {
    // send() fills at most `batch_` entries before flushing, so one warm-up
    // reservation makes the steady-state path allocation-free.
    pending_.reserve(static_cast<std::size_t>(batch_));
  }

  /// Queue one descriptor for transmission; flushes when the batch fills.
  void send(const PacketDesc& pkt) {
    pending_.push_back(pkt);
    if (static_cast<int>(pending_.size()) >= batch_) flush();
  }

  /// Force out whatever is pending (used by the Tx-drain ablation). The
  /// callback test is hoisted out of the per-packet loop.
  void flush() {
    if (trace::Tracer* t = sim_.tracer(); t != nullptr) [[unlikely]] {
      if (!pending_.empty()) {
        t->instant(trace::id::kTxFlush, sim_.now(), pending_.size());
      }
    }
    transmitted_ += pending_.size();
    if (on_tx_) {
      const sim::Time now = sim_.now();
      for (const PacketDesc& p : pending_) on_tx_(p, now);
    }
    pending_.clear();
  }

  std::size_t pending() const noexcept { return pending_.size(); }
  std::uint64_t total_transmitted() const noexcept { return transmitted_; }
  int batch_threshold() const noexcept { return batch_; }

  /// Attach this ring's counters to `set` under `prefix` (setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".transmitted", transmitted_);
  }

 private:
  Sim& sim_;
  int batch_;
  TxCallback on_tx_;
  std::vector<PacketDesc> pending_;
  std::uint64_t transmitted_ = 0;
};

/// Heap-kernel aliases (the original spellings).
using RxRing = BasicRxRing<sim::Simulation>;
using TxRing = BasicTxRing<sim::Simulation>;

}  // namespace metro::nic
