// Toeplitz hash + RSS indirection (the queue-spreading mechanism of the
// X520/XL710 NICs used in the paper's multi-queue experiments).
#pragma once

#include <array>
#include <cstdint>

namespace metro::nic {

/// Microsoft/Intel's default 40-byte RSS key (used by DPDK's testpmd).
inline constexpr std::array<std::uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3,
    0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3,
    0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

/// Toeplitz hash over an input byte string (RSS spec): for every set bit of
/// the input, XOR in the 32-bit window of the key starting at that bit.
std::uint32_t toeplitz_hash(const std::uint8_t* data, std::size_t len,
                            const std::array<std::uint8_t, 40>& key = kDefaultRssKey);

/// IPv4 + L4-port RSS input (src ip, dst ip, src port, dst port — all
/// big-endian on the wire; pass host-order values here).
std::uint32_t rss_hash_ipv4(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint16_t src_port,
                            std::uint16_t dst_port,
                            const std::array<std::uint8_t, 40>& key = kDefaultRssKey);

/// RSS redirection table (RETA): maps hash -> queue. 128 entries, as on
/// the 82599; initialised round-robin over `n_queues`.
class RssReta {
 public:
  static constexpr std::size_t kSize = 128;

  explicit RssReta(int n_queues) {
    for (std::size_t i = 0; i < kSize; ++i) {
      table_[i] = static_cast<std::uint16_t>(i % static_cast<std::size_t>(n_queues));
    }
  }

  std::uint16_t queue_for(std::uint32_t hash) const { return table_[hash % kSize]; }

  void set(std::size_t idx, std::uint16_t queue) { table_[idx] = queue; }

 private:
  std::array<std::uint16_t, kSize> table_{};
};

}  // namespace metro::nic
