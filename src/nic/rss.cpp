#include "nic/rss.hpp"

namespace metro::nic {

std::uint32_t toeplitz_hash(const std::uint8_t* data, std::size_t len,
                            const std::array<std::uint8_t, 40>& key) {
  std::uint32_t result = 0;
  // Sliding 32-bit window of the key, advanced one bit per input bit.
  std::uint32_t window = (static_cast<std::uint32_t>(key[0]) << 24) |
                         (static_cast<std::uint32_t>(key[1]) << 16) |
                         (static_cast<std::uint32_t>(key[2]) << 8) |
                         static_cast<std::uint32_t>(key[3]);
  std::size_t next_key_byte = 4;
  std::uint8_t pending = next_key_byte < key.size() ? key[next_key_byte] : 0;
  int pending_bits = 8;

  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t byte = data[i];
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) result ^= window;
      // Shift the window left by one, pulling the next key bit in.
      window <<= 1;
      if (pending_bits > 0) {
        window |= (pending >> 7) & 1;
        pending = static_cast<std::uint8_t>(pending << 1);
        --pending_bits;
      }
      if (pending_bits == 0) {
        ++next_key_byte;
        if (next_key_byte < key.size()) {
          pending = key[next_key_byte];
          pending_bits = 8;
        }
      }
    }
  }
  return result;
}

std::uint32_t rss_hash_ipv4(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint16_t src_port,
                            std::uint16_t dst_port, const std::array<std::uint8_t, 40>& key) {
  std::uint8_t input[12];
  input[0] = static_cast<std::uint8_t>(src_ip >> 24);
  input[1] = static_cast<std::uint8_t>(src_ip >> 16);
  input[2] = static_cast<std::uint8_t>(src_ip >> 8);
  input[3] = static_cast<std::uint8_t>(src_ip);
  input[4] = static_cast<std::uint8_t>(dst_ip >> 24);
  input[5] = static_cast<std::uint8_t>(dst_ip >> 16);
  input[6] = static_cast<std::uint8_t>(dst_ip >> 8);
  input[7] = static_cast<std::uint8_t>(dst_ip);
  input[8] = static_cast<std::uint8_t>(src_port >> 8);
  input[9] = static_cast<std::uint8_t>(src_port);
  input[10] = static_cast<std::uint8_t>(dst_port >> 8);
  input[11] = static_cast<std::uint8_t>(dst_port);
  return toeplitz_hash(input, sizeof(input), key);
}

}  // namespace metro::nic
