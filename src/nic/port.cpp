#include "nic/port.hpp"

#include <algorithm>

namespace metro::nic {

PortConfig x520_config(int n_queues) {
  PortConfig cfg;
  cfg.n_rx_queues = n_queues;
  cfg.rx_ring_size = sim::calib::kX520DefaultRingSize;
  cfg.max_pps = 0.0;  // generator never exceeds 14.88 Mpps line rate
  return cfg;
}

PortConfig xl710_config(int n_queues) {
  PortConfig cfg;
  cfg.n_rx_queues = n_queues;
  cfg.rx_ring_size = sim::calib::kXl710DefaultRingSize;
  cfg.max_pps = sim::calib::kXl710MaxMpps * 1e6;
  return cfg;
}

template <typename Sim>
BasicPort<Sim>::BasicPort(Sim& sim, PortConfig cfg, TxCallback on_tx)
    : sim_(sim),
      cfg_(cfg),
      reta_(cfg.n_rx_queues),
      tx_ring_(sim, cfg.tx_batch, on_tx) {
  rx_.reserve(static_cast<std::size_t>(cfg.n_rx_queues));
  for (int i = 0; i < cfg.n_rx_queues; ++i) {
    rx_.push_back(std::make_unique<BasicRxRing<Sim>>(sim, cfg.rx_ring_size));
  }
  if (cfg.max_pps > 0.0) {
    per_packet_ns_ = static_cast<sim::Time>(1e9 / cfg.max_pps);
  }
}

template <typename Sim>
bool BasicPort<Sim>::accept(const PacketDesc& pkt) {
  // Device-level processing cap (XL710 spec update #13): packets arriving
  // faster than the device can process are dropped at the MAC. Credit
  // accounting (next_accept_ advances by the per-packet budget, not to the
  // arrival time) makes the sustained accept rate exactly max_pps.
  if (per_packet_ns_ > 0) {
    if (pkt.arrival < next_accept_) {
      ++cap_drops_;
      return false;
    }
    next_accept_ = std::max(pkt.arrival - per_packet_ns_, next_accept_) + per_packet_ns_;
  }
  ++total_rx_;
  const std::uint16_t q = reta_.queue_for(pkt.rss_hash);
  return rx_[q]->push(pkt);
}

template <typename Sim>
bool BasicPort<Sim>::rx(PacketDesc pkt) {
  if (faults_ == nullptr) return accept(pkt);
  // The injector decides how many copies (0, 1 or 2, possibly mutated or
  // reordered) actually reach the MAC; each surviving copy runs the full
  // healthy ingress body.
  bool accepted = false;
  faults_->ingress(pkt, [&](const PacketDesc& p) { accepted = accept(p) || accepted; });
  return accepted;
}

template <typename Sim>
void BasicPort<Sim>::set_fault_injector(fault::FaultInjector* faults) {
  faults_ = faults;
  for (auto& ring : rx_) ring->set_fault_injector(faults);
}

template <typename Sim>
int BasicPort<Sim>::rx_burst(const PacketDesc* pkts, int n) {
  int accepted = 0;
  if (faults_ != nullptr) {
    // Faults are per packet, so a faulty burst is exactly n rx() calls —
    // the fault stream is consumed in arrival order either way.
    for (int i = 0; i < n; ++i) accepted += rx(pkts[i]) ? 1 : 0;
    trace_burst(pkts, n, accepted);
    return accepted;
  }
  // One load of the cap/RETA state for the whole group; the per-packet
  // body is the same accounting rx() performs.
  if (per_packet_ns_ > 0) {
    for (int i = 0; i < n; ++i) {
      const PacketDesc& pkt = pkts[i];
      if (pkt.arrival < next_accept_) {
        ++cap_drops_;
        continue;
      }
      next_accept_ = std::max(pkt.arrival - per_packet_ns_, next_accept_) + per_packet_ns_;
      ++total_rx_;
      accepted += rx_[reta_.queue_for(pkt.rss_hash)]->push(pkt) ? 1 : 0;
    }
  } else {
    total_rx_ += static_cast<std::uint64_t>(n);
    for (int i = 0; i < n; ++i) {
      const PacketDesc& pkt = pkts[i];
      accepted += rx_[reta_.queue_for(pkt.rss_hash)]->push(pkt) ? 1 : 0;
    }
  }
  trace_burst(pkts, n, accepted);
  return accepted;
}

template <typename Sim>
void BasicPort<Sim>::trace_burst(const PacketDesc* pkts, int n, int accepted) {
  if (trace::Tracer* t = sim_.tracer(); t != nullptr) [[unlikely]] {
    // One instant per group (not per packet): the burst boundary is the
    // interesting structure; arrival of the group's last packet stamps it.
    t->instant(trace::id::kRxBurst, n > 0 ? pkts[n - 1].arrival : sim_.now(),
               static_cast<std::uint64_t>(accepted), 0, static_cast<std::uint32_t>(n));
  }
}

template <typename Sim>
std::uint64_t BasicPort<Sim>::total_dropped() const {
  std::uint64_t drops = cap_drops_;
  for (const auto& ring : rx_) drops += ring->total_dropped();
  return drops;
}

template <typename Sim>
void BasicPort<Sim>::register_metrics(stats::MetricSet& set, const std::string& prefix) {
  set.attach_counter(prefix + ".rx", total_rx_);
  set.attach_counter(prefix + ".cap_drops", cap_drops_);
  for (std::size_t q = 0; q < rx_.size(); ++q) {
    rx_[q]->register_metrics(set, prefix + ".q" + std::to_string(q));
  }
  tx_ring_.register_metrics(set, prefix + ".tx");
}

template class BasicPort<sim::Simulation>;
template class BasicPort<sim::LadderSimulation>;
template class BasicPort<sim::WheelSimulation>;

}  // namespace metro::nic
