#include "nic/port.hpp"

#include <algorithm>

namespace metro::nic {

PortConfig x520_config(int n_queues) {
  PortConfig cfg;
  cfg.n_rx_queues = n_queues;
  cfg.rx_ring_size = sim::calib::kX520DefaultRingSize;
  cfg.max_pps = 0.0;  // generator never exceeds 14.88 Mpps line rate
  return cfg;
}

PortConfig xl710_config(int n_queues) {
  PortConfig cfg;
  cfg.n_rx_queues = n_queues;
  cfg.rx_ring_size = sim::calib::kXl710DefaultRingSize;
  cfg.max_pps = sim::calib::kXl710MaxMpps * 1e6;
  return cfg;
}

Port::Port(sim::Simulation& sim, PortConfig cfg, TxRing::TxCallback on_tx)
    : sim_(sim),
      cfg_(cfg),
      reta_(cfg.n_rx_queues),
      tx_ring_(sim, cfg.tx_batch, std::move(on_tx)) {
  rx_.reserve(static_cast<std::size_t>(cfg.n_rx_queues));
  for (int i = 0; i < cfg.n_rx_queues; ++i) {
    rx_.push_back(std::make_unique<RxRing>(sim, cfg.rx_ring_size));
  }
  if (cfg.max_pps > 0.0) {
    per_packet_ns_ = static_cast<sim::Time>(1e9 / cfg.max_pps);
  }
}

bool Port::rx(PacketDesc pkt) {
  // Device-level processing cap (XL710 spec update #13): packets arriving
  // faster than the device can process are dropped at the MAC. Credit
  // accounting (next_accept_ advances by the per-packet budget, not to the
  // arrival time) makes the sustained accept rate exactly max_pps.
  if (per_packet_ns_ > 0) {
    if (pkt.arrival < next_accept_) {
      ++cap_drops_;
      return false;
    }
    next_accept_ = std::max(pkt.arrival - per_packet_ns_, next_accept_) + per_packet_ns_;
  }
  ++total_rx_;
  const std::uint16_t q = reta_.queue_for(pkt.rss_hash);
  return rx_[q]->push(pkt);
}

std::uint64_t Port::total_dropped() const {
  std::uint64_t drops = cap_drops_;
  for (const auto& ring : rx_) drops += ring->total_dropped();
  return drops;
}

}  // namespace metro::nic
