// Compact packet descriptor used on the simulator's timing fast path.
//
// DPDK never copies packet payloads when moving traffic between NIC and
// application — it moves 16-byte descriptors (the paper leans on this in
// Appendix II to justify a size-independent retrieval rate). The simulator
// does the same: timing experiments operate on descriptors; the functional
// applications (l3fwd, IPsec, FloWatcher) are exercised on real packet
// bytes in their unit tests and examples, and contribute their calibrated
// per-packet cost to the timing path.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/function_ref.hpp"

namespace metro::nic {

struct PacketDesc {
  sim::Time arrival = 0;      // wire arrival timestamp
  std::uint32_t rss_hash = 0; // Toeplitz hash of the 5-tuple
  std::uint32_t flow_id = 0;  // generator-assigned flow identity
  std::uint16_t wire_size = 64;
};

// Optional per-packet work hook the drivers invoke for every drained
// descriptor, AFTER charging the calibrated per-packet cost. The hook does
// real wall-clock work (e.g. the fig16 --crypto=live mode runs the actual
// ESP gateway here) but never touches simulated time or telemetry, so
// simulation results stay bit-identical whether or not it is set. Non-
// owning: the callable must outlive the driver.
using PacketWork = util::FunctionRef<void(const PacketDesc&)>;

}  // namespace metro::nic
