#include "scenario/registry.hpp"

namespace metro::scenario {

namespace {

using apps::ArrivalModel;
using apps::DriverKind;
using apps::ExperimentConfig;

// The common single-queue X520 testbed most scenarios run on: Metronome
// with 3 threads on 3 cores — the paper's baseline deployment shape.
ExperimentConfig x520_base() {
  ExperimentConfig cfg;
  cfg.driver = DriverKind::kMetronome;
  cfg.n_queues = 1;
  cfg.n_cores = 3;
  cfg.met.n_threads = 3;
  cfg.warmup = 200 * sim::kMillisecond;
  cfg.measure = 800 * sim::kMillisecond;
  return cfg;
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> reg;

  {
    ScenarioSpec s{"cbr_uniform", "CBR at 10 GbE line rate, uniform flows (figure baseline)",
                   x520_base()};
    s.config.workload.rate_mpps = 14.88;
    s.config.workload.n_flows = 256;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"poisson_uniform", "Poisson arrivals at line rate, uniform flows",
                   x520_base()};
    s.config.workload.rate_mpps = 14.88;
    s.config.workload.poisson = true;
    s.config.workload.n_flows = 256;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"imix_cbr", "CBR with the simple-IMIX size mix (64/570/1518 at 7:4:1)",
                   x520_base()};
    s.config.workload.rate_mpps = 10.0;
    s.config.workload.imix = true;
    s.config.workload.n_flows = 256;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"unbalanced_heavy",
                   "§V-F.4 unbalanced mix: 30% of packets in one UDP flow (picker-based)",
                   fig13_testbed()};
    s.config.n_queues = 3;
    s.config.n_cores = 5;
    s.config.met.n_threads = 5;
    s.config.workload.rate_mpps = 20.0;
    s.config.workload.heavy_share = 0.3;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"mmpp_bursty",
                   "2-state MMPP ON-OFF arrivals: 3.7x bursts with near-silent gaps",
                   x520_base()};
    s.config.workload.model = ArrivalModel::kMmpp;
    s.config.workload.rate_mpps = 8.0;
    s.config.workload.n_flows = 512;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"pareto_trains",
                   "heavy-tail flow-size mix: Pareto(1.3) back-to-back flow trains",
                   x520_base()};
    s.config.workload.model = ArrivalModel::kParetoTrain;
    s.config.workload.rate_mpps = 10.0;
    s.config.workload.n_flows = 1024;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"incast_sync",
                   "synchronized incast: 32 senders x 8 packets per epoch at wire speed",
                   fig13_testbed()};
    s.config.workload.model = ArrivalModel::kIncast;
    s.config.workload.rate_mpps = 10.0;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"trace_replay_unbalanced",
                   "pcap replay of the synthesised 1000-packet §V-F.4 trace (30% one flow)",
                   x520_base()};
    s.config.workload.model = ArrivalModel::kTrace;
    s.config.workload.rate_mpps = 5.0;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"perflow_poisson",
                   "per-flow Poisson sources: 2048 concurrently armed flow timers",
                   x520_base()};
    s.config.workload.model = ArrivalModel::kPerFlow;
    s.config.workload.poisson = true;
    s.config.workload.rate_mpps = 10.0;
    s.config.workload.n_flows = 2048;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"fig13_fullstack_perflow",
                   "fig13 multiqueue testbed on 24576 per-flow sources (ladder regime)",
                   fig13_testbed()};
    s.config.workload.model = ArrivalModel::kPerFlow;
    s.config.workload.poisson = true;
    s.config.workload.n_flows = 24576;
    s.config.warmup = 50 * sim::kMillisecond;
    s.config.measure = 400 * sim::kMillisecond;
    reg.push_back(std::move(s));
  }
  {
    // The million-flow regime the timing-wheel backend exists for: 2^20
    // per-flow Poisson sources, each keeping one timer armed at all times
    // (>1M concurrently pending events; the arena source path makes the
    // population affordable to construct). Windows are short because one
    // simulated millisecond covers 37k packets against a 28 ms mean
    // per-flow gap — the point is the pending population, not run length.
    ScenarioSpec s{"fig13_fullstack_1m",
                   "fig13 multiqueue testbed on 2^20 per-flow sources (wheel regime)",
                   fig13_testbed()};
    s.config.workload.model = ArrivalModel::kPerFlow;
    s.config.workload.poisson = true;
    s.config.workload.n_flows = 1u << 20;
    s.config.warmup = 5 * sim::kMillisecond;
    s.config.measure = 25 * sim::kMillisecond;
    s.config.wheel = sim::WheelConfig::for_population(s.config.workload.n_flows);
    reg.push_back(std::move(s));
  }
  {
    // 2^22 flows: the flow table no longer fits LLC and the mean per-flow
    // gap (113 ms) dwarfs the default wheel's level-0 horizon, so the
    // geometry matters — for_population() widens the level-0 slots until
    // re-arms land there directly instead of cascading. Fingerprints stay
    // identical to any other geometry (pure speed knob).
    ScenarioSpec s{"fig13_fullstack_4m",
                   "fig13 multiqueue testbed on 2^22 per-flow sources (beyond-LLC regime)",
                   fig13_testbed()};
    s.config.workload.model = ArrivalModel::kPerFlow;
    s.config.workload.poisson = true;
    s.config.workload.n_flows = 1u << 22;
    s.config.warmup = 5 * sim::kMillisecond;
    s.config.measure = 25 * sim::kMillisecond;
    s.config.wheel = sim::WheelConfig::for_population(s.config.workload.n_flows);
    reg.push_back(std::move(s));
  }
  {
    // 2^24 flows: ~256 MB of arena lanes + ~1.3 GB of pending kernel
    // events — the memory-bandwidth wall. Mean per-flow gap is 453 ms, so
    // a 25 ms window sees each flow at most once; the packet rate is
    // unchanged (it depends only on the aggregate rate) but every fire is
    // a cold-memory touch.
    ScenarioSpec s{"fig13_fullstack_16m",
                   "fig13 multiqueue testbed on 2^24 per-flow sources (memory-bandwidth wall)",
                   fig13_testbed()};
    s.config.workload.model = ArrivalModel::kPerFlow;
    s.config.workload.poisson = true;
    s.config.workload.n_flows = 1u << 24;
    s.config.warmup = 5 * sim::kMillisecond;
    s.config.measure = 25 * sim::kMillisecond;
    s.config.wheel = sim::WheelConfig::for_population(s.config.workload.n_flows);
    reg.push_back(std::move(s));
  }

  // --- fault-plane scenarios (src/fault/) -------------------------------
  // Adverse-condition coverage: the same testbeds as the healthy
  // scenarios, with a FaultSpec layered on. Flap/stall periods are in the
  // low milliseconds so several windows fire even inside the benches'
  // --fast measurement windows.
  {
    ScenarioSpec s{"cbr_lossy",
                   "CBR under a lossy link: 2% drop, 0.5% duplication, 1% reordering",
                   x520_base()};
    s.config.workload.rate_mpps = 10.0;
    s.config.workload.n_flows = 256;
    s.config.workload.fault.drop_prob = 0.02;
    s.config.workload.fault.dup_prob = 0.005;
    s.config.workload.fault.reorder_prob = 0.01;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"imix_corrupt",
                   "IMIX stream with 5% header bit-flip corruption (RSS hash + wire size)",
                   x520_base()};
    s.config.workload.rate_mpps = 8.0;
    s.config.workload.imix = true;
    s.config.workload.n_flows = 256;
    s.config.workload.fault.corrupt_prob = 0.05;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"poisson_linkflap",
                   "Poisson arrivals through a flapping link: 300 us outage every 3 ms",
                   x520_base()};
    s.config.workload.rate_mpps = 10.0;
    s.config.workload.poisson = true;
    s.config.workload.n_flows = 256;
    s.config.workload.fault.link_down_every = 3 * sim::kMillisecond;
    s.config.workload.fault.link_down_for = 300 * sim::kMicrosecond;
    reg.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"incast_stall",
                   "fig13 incast with a wedged rx ring: 200 us stall every 2 ms",
                   fig13_testbed()};
    s.config.workload.model = ArrivalModel::kIncast;
    s.config.workload.rate_mpps = 10.0;
    s.config.workload.fault.stall_every = 2 * sim::kMillisecond;
    s.config.workload.fault.stall_for = 200 * sim::kMicrosecond;
    reg.push_back(std::move(s));
  }

  return reg;
}

}  // namespace

ExperimentConfig fig13_testbed() {
  ExperimentConfig cfg;
  cfg.driver = DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 4;
  cfg.met.n_threads = 4;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 37.0;
  cfg.workload.n_flows = 4096;
  cfg.warmup = 200 * sim::kMillisecond;
  cfg.measure = 800 * sim::kMillisecond;
  return cfg;
}

const std::vector<ScenarioSpec>& all_scenarios() {
  static const std::vector<ScenarioSpec> registry = build_registry();
  return registry;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const auto& s : all_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace metro::scenario
