#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "stats/json_writer.hpp"
#include "util/seed_mix.hpp"

namespace metro::scenario {

const char* backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kHeap: return "heap";
    case BackendKind::kLadder: return "ladder";
    case BackendKind::kWheel: return "wheel";
  }
  return "unknown";
}

namespace {

template <typename Sim>
ShardResult run_shard_typed(const Shard& shard, double deadline_s, std::size_t trace_capacity) {
  const auto t0 = std::chrono::steady_clock::now();
  apps::BasicTestbed<Sim> bed(shard.config);
  std::shared_ptr<trace::Tracer> tracer;
  if (trace_capacity > 0) {
    tracer = std::make_shared<trace::Tracer>(trace_capacity);
    bed.set_tracer(tracer.get());
  }
  // Cooperative watchdog: with a deadline set, each virtual-time phase is
  // sliced and the host clock checked between slices. run_until(t) runs
  // every event at <= t and then advances the clock to exactly t, so the
  // slicing is execution-equivalent — same events, same order, same
  // fingerprint — and only the *wall* behaviour changes.
  const auto run_to = [&](sim::Time from, sim::Time target) {
    if (deadline_s <= 0.0) {
      bed.run_until(target);
      return;
    }
    const auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(deadline_s));
    constexpr sim::Time kSlices = 32;
    for (sim::Time s = 1; s <= kSlices; ++s) {
      bed.run_until(s == kSlices ? target : from + (target - from) * s / kSlices);
      if (std::chrono::steady_clock::now() > deadline) {
        // Deterministic text (no timing values): failed reports must stay
        // byte-identical across worker counts.
        throw std::runtime_error(std::string("shard wall-clock deadline exceeded (scenario '") +
                                 shard.scenario + "', backend " + backend_name(shard.backend) +
                                 ")");
      }
    }
  };
  bed.start();
  run_to(0, shard.config.warmup);
  bed.begin_measurement();
  ShardResult out;
  out.pending_at_measure = bed.sim().pending_events();
  run_to(shard.config.warmup, shard.config.warmup + shard.config.measure);
  out.result = bed.finish_measurement();
  // The full telemetry set *is* the shard's observable state: snapshot it
  // once, fingerprint it (order-sensitive over every counter, summary and
  // histogram bin — what cross-backend / cross-geometry identity means),
  // and derive the headline counter view from the same snapshot.
  out.telemetry = bed.telemetry().snapshot();
  out.fingerprint = out.telemetry.fingerprint();
  std::uint64_t dropped = out.telemetry.counter("port.cap_drops");
  for (int q = 0; q < bed.port().n_rx_queues(); ++q) {
    dropped += out.telemetry.counter("port.q" + std::to_string(q) + ".dropped");
  }
  out.counters = ShardCounters{out.telemetry.counter("port.rx"), dropped,
                               out.telemetry.counter("port.tx.transmitted"),
                               bed.packets_processed()};
  out.events = bed.sim().events_processed();
  out.final_clock = bed.sim().now();
  out.latency_count = out.telemetry.histogram("latency_us").count();

  // Compact per-window tracks out of the recorder's full-snapshot ring:
  // the headline counters every figure plots, plus the window's own
  // fingerprint so series identity can be asserted window by window.
  if (const stats::SeriesRecorder* sr = bed.series(); sr != nullptr) {
    out.series.interval = sr->interval();
    out.series.dropped_windows = sr->dropped();
    out.series.windows.reserve(sr->size());
    const int n_queues = bed.port().n_rx_queues();
    for (std::size_t k = 0; k < sr->size(); ++k) {
      const stats::SeriesRecorder::Window& win = sr->window(k);
      SeriesWindow w;
      w.t_end = win.t_end;
      w.fingerprint = win.fingerprint;
      w.rx = win.delta.counter("port.rx");
      w.tx = win.delta.counter("port.tx.transmitted");
      w.dropped = win.delta.counter("port.cap_drops");
      for (int q = 0; q < n_queues; ++q) {
        w.dropped += win.delta.counter("port.q" + std::to_string(q) + ".dropped");
      }
      const stats::Histogram& lat = win.delta.histogram("latency_us");
      w.latency_count = lat.count();
      w.latency_sum_us = lat.summary().sum();
      for (int q = 0;; ++q) {
        const auto* e = win.delta.find("met.q" + std::to_string(q) + ".total_tries");
        if (e == nullptr) break;
        w.wakeups += e->counter;
      }
      out.series.windows.push_back(w);
    }
  }
  out.trace = std::move(tracer);

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

ShardResult run_shard(const Shard& shard, double deadline_s, std::size_t trace_capacity) {
  switch (shard.backend) {
    case BackendKind::kLadder:
      return run_shard_typed<sim::LadderSimulation>(shard, deadline_s, trace_capacity);
    case BackendKind::kWheel:
      return run_shard_typed<sim::WheelSimulation>(shard, deadline_s, trace_capacity);
    case BackendKind::kHeap: break;
  }
  return run_shard_typed<sim::Simulation>(shard, deadline_s, trace_capacity);
}

}  // namespace

std::vector<Shard> SweepRunner::expand(const SweepMatrix& matrix) {
  std::vector<Shard> shards;
  std::uint64_t point_index = 0;
  for (const auto& name : matrix.scenarios) {
    const ScenarioSpec* spec = find_scenario(name);
    if (spec == nullptr) {
      throw std::invalid_argument("SweepRunner: unknown scenario '" + name + "'");
    }
    // Empty axes collapse to one implicit "scenario default" point.
    const std::size_t n_rates = matrix.rates_mpps.empty() ? 1 : matrix.rates_mpps.size();
    const std::size_t n_geoms =
        matrix.ladder_geometries.empty() ? 1 : matrix.ladder_geometries.size();
    for (std::size_t r = 0; r < n_rates; ++r) {
      apps::ExperimentConfig cfg = spec->config;
      if (!matrix.rates_mpps.empty()) cfg.workload.rate_mpps = matrix.rates_mpps[r];
      if (matrix.warmup >= 0) cfg.warmup = matrix.warmup;
      if (matrix.measure >= 0) cfg.measure = matrix.measure;
      if (matrix.series_interval > 0) cfg.series_interval = matrix.series_interval;
      if (matrix.base_seed != 0) {
        // A *point* is (scenario, rate): backends and ladder geometries of
        // one point share the seed, because both are pure speed knobs —
        // same point -> same execution is exactly what the divergence
        // checks assert.
        cfg.seed = util::mix_seed(matrix.base_seed, point_index);
        cfg.workload.seed = util::mix_seed(cfg.seed, 1);
      }
      ++point_index;
      for (const BackendKind backend : matrix.backends) {
        // The geometry axis only means something to the ladder backend;
        // expanding it for heap or wheel shards would just repeat
        // bit-identical runs, so those get exactly one shard per point.
        const std::size_t backend_geoms = backend == BackendKind::kLadder ? n_geoms : 1;
        for (std::size_t g = 0; g < backend_geoms; ++g) {
          if (backend == BackendKind::kLadder && !matrix.ladder_geometries.empty()) {
            cfg.ladder = matrix.ladder_geometries[g];
          }
          shards.push_back(Shard{spec->name, backend, cfg});
        }
      }
    }
  }
  return shards;
}

ShardResult SweepRunner::execute(const Shard& shard) const {
  // Exception isolation + retry: any throw (configuration error, merge
  // mismatch, deadline) is captured into the result instead of unwinding
  // into the worker (which, pre-hardening, std::terminated the process
  // when a second shard threw, and killed the whole sweep either way).
  ShardResult out;
  const int max_attempts = 1 + max_retries_;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    try {
      out = run_shard(shard, deadline_s_, trace_capacity_);
      out.attempts = attempt;
      return out;
    } catch (const std::exception& e) {
      out = ShardResult{};
      out.failed = true;
      out.attempts = attempt;
      out.error = e.what();
    } catch (...) {
      out = ShardResult{};
      out.failed = true;
      out.attempts = attempt;
      out.error = "unknown exception";
    }
  }
  return out;
}

std::vector<ShardResult> SweepRunner::run(const std::vector<Shard>& shards) const {
  std::vector<ShardResult> results(shards.size());
  worker_stats_.clear();
  wall_tracers_.clear();
  if (shards.empty()) return results;

  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), shards.size()));
  worker_stats_.resize(static_cast<std::size_t>(workers));
  if (trace_capacity_ > 0) {
    // One wall lane per worker: shard spans from different threads never
    // interleave inside one ring, and export stays merge-free.
    wall_tracers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      // Worker rings only hold one kShard span per shard run.
      wall_tracers_.push_back(std::make_unique<trace::Tracer>(shards.size() + 1));
    }
  }
  const auto epoch = std::chrono::steady_clock::now();

  const auto run_one = [&](int w, std::size_t i) {
    WorkerStats& ws = worker_stats_[static_cast<std::size_t>(w)];
    const auto t0 = std::chrono::steady_clock::now();
    {
      trace::WallSpan span(trace_capacity_ > 0 ? wall_tracers_[static_cast<std::size_t>(w)].get()
                                               : nullptr,
                           epoch, trace::id::kShard, static_cast<std::uint32_t>(w), i);
      results[i] = execute(shards[i]);
    }
    ws.busy_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    ++ws.shards_run;
    if (results[i].failed) ++ws.shards_failed;
    ws.retries += static_cast<std::uint64_t>(results[i].attempts - 1);
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < shards.size(); ++i) run_one(0, i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&](int w) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards.size()) return;
      run_one(w, i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();
  return results;
}

std::size_t failed_count(const std::vector<ShardResult>& results) {
  std::size_t n = 0;
  for (const ShardResult& r : results) n += r.failed ? 1 : 0;
  return n;
}

std::string failure_summary(const std::vector<Shard>& shards,
                            const std::vector<ShardResult>& results) {
  std::ostringstream os;
  for (std::size_t i = 0; i < shards.size() && i < results.size(); ++i) {
    if (!results[i].failed) continue;
    os << "shard " << i << " [" << shards[i].scenario << "/" << backend_name(shards[i].backend)
       << " @ " << shards[i].config.workload.rate_mpps << " Mpps] failed after "
       << results[i].attempts << (results[i].attempts == 1 ? " attempt: " : " attempts: ")
       << results[i].error << "\n";
  }
  return os.str();
}

stats::MetricSnapshot merge_telemetry(const std::vector<ShardResult>& results) {
  stats::MetricSnapshot total;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].failed) continue;  // nothing to merge; listed in `failures`
    try {
      total.merge(results[i].telemetry);
    } catch (const std::exception& e) {
      // Shard index context on top of the metric-name context added by
      // MetricSnapshot::merge — the pair makes a geometry mismatch in a
      // 100-shard sweep directly actionable.
      throw std::invalid_argument("merge_telemetry: shard " + std::to_string(i) + ": " + e.what());
    }
  }
  return total;
}

ShardSeries merge_timeseries(const std::vector<ShardResult>& results) {
  ShardSeries merged;
  for (const ShardResult& r : results) {
    if (r.failed || r.series.interval <= 0) continue;
    if (merged.interval == 0) merged.interval = r.series.interval;
    merged.dropped_windows += r.series.dropped_windows;
    if (r.series.windows.size() > merged.windows.size()) {
      merged.windows.resize(r.series.windows.size());
    }
    for (std::size_t k = 0; k < r.series.windows.size(); ++k) {
      const SeriesWindow& w = r.series.windows[k];
      SeriesWindow& m = merged.windows[k];
      m.t_end = std::max(m.t_end, w.t_end);
      // FNV-1a-style chain over the shard fingerprints of window k: order-
      // sensitive in shard order, which run() fixes independently of --jobs.
      m.fingerprint = (m.fingerprint ^ w.fingerprint) * 1099511628211ULL;
      m.rx += w.rx;
      m.tx += w.tx;
      m.dropped += w.dropped;
      m.latency_count += w.latency_count;
      m.latency_sum_us += w.latency_sum_us;
      m.wakeups += w.wakeups;
    }
  }
  return merged;
}

namespace {

/// Measurement-window packet totals carried next to a `timeseries` block:
/// with no windows dropped, the per-window arrays sum to exactly these
/// (the self-check CI runs against the report).
struct SeriesTotals {
  std::uint64_t rx = 0;
  std::uint64_t tx = 0;
  std::uint64_t dropped = 0;
};

/// The per-shard / merged `timeseries` JSON object: interval + drop count
/// + parallel per-window arrays (schema documented in docs/BENCHMARKS.md).
void write_series_json(stats::JsonWriter& w, const ShardSeries& s, const SeriesTotals& totals) {
  w.begin_object();
  w.kv("interval_ns", static_cast<std::int64_t>(s.interval));
  w.kv("dropped_windows", s.dropped_windows);
  w.kv("n_windows", static_cast<std::uint64_t>(s.windows.size()));
  w.kv("window_rx", totals.rx);
  w.kv("window_tx", totals.tx);
  w.kv("window_dropped", totals.dropped);
  w.key("t_end_ns").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(static_cast<std::int64_t>(win.t_end));
  w.end_array();
  w.key("fingerprints").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.fingerprint);
  w.end_array();
  w.key("rx").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.rx);
  w.end_array();
  w.key("tx").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.tx);
  w.end_array();
  w.key("dropped").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.dropped);
  w.end_array();
  w.key("latency_count").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.latency_count);
  w.end_array();
  w.key("latency_sum_us").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.latency_sum_us);
  w.end_array();
  w.key("wakeups").begin_array();
  for (const SeriesWindow& win : s.windows) w.value(win.wakeups);
  w.end_array();
  w.end_object();
}

}  // namespace

std::string report_json(const std::vector<Shard>& shards,
                        const std::vector<ShardResult>& results, bool include_timing,
                        const SweepRunner* runner) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.key("shards").begin_array();
  for (std::size_t i = 0; i < shards.size() && i < results.size(); ++i) {
    const Shard& s = shards[i];
    const ShardResult& r = results[i];
    w.begin_object();
    w.kv("scenario", s.scenario);
    w.kv("backend", backend_name(s.backend));
    w.kv("rate_mpps", s.config.workload.rate_mpps);
    w.kv("seed", s.config.seed);
    if (s.backend == BackendKind::kLadder) {
      w.key("ladder").begin_object();
      w.kv("buckets", static_cast<std::uint64_t>(s.config.ladder.buckets));
      w.kv("sort_threshold", static_cast<std::uint64_t>(s.config.ladder.sort_threshold));
      w.kv("bottom_spill", static_cast<std::uint64_t>(s.config.ladder.bottom_spill));
      w.end_object();
    }
    w.key("counters").begin_object();
    w.kv("rx", r.counters.rx);
    w.kv("dropped", r.counters.dropped);
    w.kv("tx", r.counters.tx);
    w.kv("processed", r.counters.processed);
    w.end_object();
    w.kv("events", r.events);
    w.kv("pending_at_measure", static_cast<std::uint64_t>(r.pending_at_measure));
    w.kv("final_clock_ns", static_cast<std::int64_t>(r.final_clock));
    w.kv("latency_count", r.latency_count);
    w.kv("telemetry_fingerprint", r.fingerprint);
    w.kv("throughput_mpps", r.result.throughput_mpps);
    w.kv("loss_permille", r.result.loss_permille);
    w.kv("cpu_percent", r.result.cpu_percent);
    w.kv("package_watts", r.result.package_watts);
    w.kv("failed", r.failed);
    w.kv("attempts", r.attempts);
    if (r.failed) w.kv("error", r.error);
    if (include_timing) w.kv("wall_seconds", r.wall_seconds);
    if (r.series.interval > 0) {
      w.key("timeseries");
      write_series_json(w, r.series,
                        SeriesTotals{r.result.rx_packets, r.result.tx_packets,
                                     r.result.dropped_packets});
    }
    w.key("metrics");
    r.telemetry.write_json(w);
    w.end_object();
  }
  w.end_array();
  // Every failed shard again, by itself: the section a red CI run is read
  // from (and the section tests assert a deliberately-throwing shard
  // lands in). Always present, empty on a clean sweep.
  w.key("failures").begin_array();
  for (std::size_t i = 0; i < shards.size() && i < results.size(); ++i) {
    if (!results[i].failed) continue;
    const Shard& s = shards[i];
    w.begin_object();
    w.kv("shard", static_cast<std::uint64_t>(i));
    w.kv("scenario", s.scenario);
    w.kv("backend", backend_name(s.backend));
    w.kv("rate_mpps", s.config.workload.rate_mpps);
    w.kv("seed", s.config.seed);
    w.kv("attempts", results[i].attempts);
    w.kv("error", results[i].error);
    w.end_object();
  }
  w.end_array();
  // Fault-plane read-out for every fault-bearing shard: the six injector
  // counters next to the shard's identity and fingerprint. Always
  // present, empty when no shard carries a FaultSpec.
  w.key("fault_matrix").begin_array();
  for (std::size_t i = 0; i < shards.size() && i < results.size(); ++i) {
    const Shard& s = shards[i];
    const ShardResult& r = results[i];
    if (!s.config.workload.fault.any() || r.failed) continue;
    w.begin_object();
    w.kv("shard", static_cast<std::uint64_t>(i));
    w.kv("scenario", s.scenario);
    w.kv("backend", backend_name(s.backend));
    w.kv("rate_mpps", s.config.workload.rate_mpps);
    w.kv("telemetry_fingerprint", r.fingerprint);
    for (const char* name : {"dropped", "corrupted", "dup", "reordered", "link_down_ns",
                             "stall_ns"}) {
      const auto* entry = r.telemetry.find(std::string("fault.") + name);
      w.kv(name, entry != nullptr ? entry->counter : 0);
    }
    w.end_object();
  }
  w.end_array();
  // Whole-sweep time series (see merge_timeseries), present only when at
  // least one shard recorded one.
  const ShardSeries merged_series = merge_timeseries(results);
  if (merged_series.interval > 0) {
    SeriesTotals merged_totals;
    for (const ShardResult& r : results) {
      if (r.failed || r.series.interval <= 0) continue;
      merged_totals.rx += r.result.rx_packets;
      merged_totals.tx += r.result.tx_packets;
      merged_totals.dropped += r.result.dropped_packets;
    }
    w.key("timeseries_merged");
    write_series_json(w, merged_series, merged_totals);
  }
  // Per-worker sweep execution counters (`sweep.tN.*`). Wall-clock
  // observability: the shard->worker assignment races for jobs > 1, so
  // this block rides the include_timing path and stays out of every
  // byte-identity comparison.
  if (include_timing && runner != nullptr && !runner->worker_stats().empty()) {
    w.key("sweep_workers").begin_object();
    const auto& stats = runner->worker_stats();
    for (std::size_t t = 0; t < stats.size(); ++t) {
      const std::string base = "sweep.t" + std::to_string(t);
      w.kv(base + ".shards", stats[t].shards_run);
      w.kv(base + ".failed", stats[t].shards_failed);
      w.kv(base + ".retries", stats[t].retries);
      w.kv(base + ".busy_seconds", stats[t].busy_seconds);
    }
    w.end_object();
  }
  // Whole-sweep totals: every shard's telemetry union-merged in shard
  // order. Backends of one point both contribute (a sweep total, not a
  // deduplicated workload total).
  w.key("totals");
  merge_telemetry(results).write_json(w);
  w.end_object();
  w.finish();
  return os.str();
}

}  // namespace metro::scenario
