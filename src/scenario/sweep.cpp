#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/seed_mix.hpp"

namespace metro::scenario {

const char* backend_name(BackendKind kind) noexcept {
  return kind == BackendKind::kHeap ? "heap" : "ladder";
}

namespace {

template <typename Sim>
ShardResult run_shard_typed(const Shard& shard) {
  const auto t0 = std::chrono::steady_clock::now();
  apps::BasicTestbed<Sim> bed(shard.config);
  bed.start();
  bed.run_until(shard.config.warmup);
  bed.begin_measurement();
  ShardResult out;
  out.pending_at_measure = bed.sim().pending_events();
  bed.run_until(shard.config.warmup + shard.config.measure);
  out.result = bed.finish_measurement();
  out.counters = ShardCounters{bed.port().total_rx(), bed.port().total_dropped(),
                               bed.port().tx().total_transmitted(), bed.packets_processed()};
  out.events = bed.sim().events_processed();
  out.final_clock = bed.sim().now();
  const stats::Histogram& h = bed.latency_histogram();
  out.latency_count = h.count();
  // Order-sensitive digest over the raw bins (plus the overflow bin):
  // identical distributions — bin for bin — are what cross-backend and
  // cross-geometry identity means at the application level.
  std::uint64_t digest = util::splitmix64(h.n_bins());
  for (std::size_t i = 0; i < h.n_bins(); ++i) {
    digest = util::splitmix64(digest ^ h.bin_count(i));
  }
  out.latency_digest = util::splitmix64(digest ^ h.overflow());
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

ShardResult run_shard(const Shard& shard) {
  if (shard.backend == BackendKind::kHeap) {
    return run_shard_typed<sim::Simulation>(shard);
  }
  return run_shard_typed<sim::LadderSimulation>(shard);
}

// Deterministic double formatting: max_digits10 round-trips the exact
// value, so equal doubles always print equal text.
void put_double(std::ostream& os, double v) {
  os << std::setprecision(17) << v << std::setprecision(6);
}

}  // namespace

std::vector<Shard> SweepRunner::expand(const SweepMatrix& matrix) {
  std::vector<Shard> shards;
  std::uint64_t point_index = 0;
  for (const auto& name : matrix.scenarios) {
    const ScenarioSpec* spec = find_scenario(name);
    if (spec == nullptr) {
      throw std::invalid_argument("SweepRunner: unknown scenario '" + name + "'");
    }
    // Empty axes collapse to one implicit "scenario default" point.
    const std::size_t n_rates = matrix.rates_mpps.empty() ? 1 : matrix.rates_mpps.size();
    const std::size_t n_geoms =
        matrix.ladder_geometries.empty() ? 1 : matrix.ladder_geometries.size();
    for (std::size_t r = 0; r < n_rates; ++r) {
      apps::ExperimentConfig cfg = spec->config;
      if (!matrix.rates_mpps.empty()) cfg.workload.rate_mpps = matrix.rates_mpps[r];
      if (matrix.warmup >= 0) cfg.warmup = matrix.warmup;
      if (matrix.measure >= 0) cfg.measure = matrix.measure;
      if (matrix.base_seed != 0) {
        // A *point* is (scenario, rate): backends and ladder geometries of
        // one point share the seed, because both are pure speed knobs —
        // same point -> same execution is exactly what the divergence
        // checks assert.
        cfg.seed = util::mix_seed(matrix.base_seed, point_index);
        cfg.workload.seed = util::mix_seed(cfg.seed, 1);
      }
      ++point_index;
      for (const BackendKind backend : matrix.backends) {
        // The geometry axis only means something to the ladder backend;
        // expanding it for heap shards would just repeat bit-identical
        // runs, so heap gets exactly one shard per point.
        const std::size_t backend_geoms = backend == BackendKind::kLadder ? n_geoms : 1;
        for (std::size_t g = 0; g < backend_geoms; ++g) {
          if (backend == BackendKind::kLadder && !matrix.ladder_geometries.empty()) {
            cfg.ladder = matrix.ladder_geometries[g];
          }
          shards.push_back(Shard{spec->name, backend, cfg});
        }
      }
    }
  }
  return shards;
}

std::vector<ShardResult> SweepRunner::run(const std::vector<Shard>& shards) const {
  std::vector<ShardResult> results(shards.size());
  if (shards.empty()) return results;

  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), shards.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < shards.size(); ++i) results[i] = run_shard(shards[i]);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards.size()) return;
      try {
        results[i] = run_shard(shards[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::string report_json(const std::vector<Shard>& shards,
                        const std::vector<ShardResult>& results, bool include_timing) {
  std::ostringstream os;
  os << "{\n  \"shards\": [\n";
  for (std::size_t i = 0; i < shards.size() && i < results.size(); ++i) {
    const Shard& s = shards[i];
    const ShardResult& r = results[i];
    os << "    {\"scenario\": \"" << s.scenario << "\", \"backend\": \""
       << backend_name(s.backend) << "\", \"rate_mpps\": ";
    put_double(os, s.config.workload.rate_mpps);
    os << ", \"seed\": " << s.config.seed;
    if (s.backend == BackendKind::kLadder) {
      os << ", \"ladder\": {\"buckets\": " << s.config.ladder.buckets
         << ", \"sort_threshold\": " << s.config.ladder.sort_threshold
         << ", \"bottom_spill\": " << s.config.ladder.bottom_spill << "}";
    }
    os << ",\n     \"counters\": {\"rx\": " << r.counters.rx
       << ", \"dropped\": " << r.counters.dropped << ", \"tx\": " << r.counters.tx
       << ", \"processed\": " << r.counters.processed << "}"
       << ", \"events\": " << r.events << ", \"pending_at_measure\": " << r.pending_at_measure
       << ", \"final_clock_ns\": " << r.final_clock << ",\n     \"latency\": {\"count\": "
       << r.latency_count << ", \"digest\": " << r.latency_digest << "}"
       << ", \"throughput_mpps\": ";
    put_double(os, r.result.throughput_mpps);
    os << ", \"loss_permille\": ";
    put_double(os, r.result.loss_permille);
    os << ", \"cpu_percent\": ";
    put_double(os, r.result.cpu_percent);
    os << ", \"package_watts\": ";
    put_double(os, r.result.package_watts);
    if (include_timing) {
      os << ", \"wall_seconds\": ";
      put_double(os, r.wall_seconds);
    }
    os << "}" << (i + 1 < shards.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace metro::scenario
