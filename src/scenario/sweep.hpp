/// \file sweep.hpp
/// Parallel parameter-matrix sweep runner.
///
/// The paper's evaluation is a matrix — scenarios x backends x rates x
/// queue geometries — and every figure bench used to walk its corner of
/// that matrix serially. SweepRunner expands a matrix into independent
/// *shards* (one complete Testbed run each: own BasicSimulation, own RNG,
/// own results), executes them on a pool of std::thread workers, and
/// merges the results in shard order.
///
/// Determinism contract: each shard is a pure function of its
/// ExperimentConfig (seeds included), shards share no mutable state, and
/// the merged result vector is indexed by shard order — so results (and
/// the JSON report, timing fields aside) are bit-identical for any worker
/// count. Per-shard seeds are derived with util::mix_seed from the matrix
/// base seed and the *point* index (backend excluded), so the same point
/// run on different backends — or different ladder geometries — gets the
/// same seed and must produce the same execution.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "apps/experiment.hpp"
#include "scenario/registry.hpp"
#include "stats/metric_set.hpp"
#include "stats/trace.hpp"

namespace metro::scenario {

/// Which event-queue backend a shard runs on.
enum class BackendKind { kHeap, kLadder, kWheel };

/// Stable display/JSON name of a backend.
const char* backend_name(BackendKind kind) noexcept;

/// One unit of sweep work: a complete experiment on one backend.
struct Shard {
  std::string scenario;  ///< label for reports (registry name or bench key)
  BackendKind backend = BackendKind::kHeap;
  apps::ExperimentConfig config;
};

/// Headline packet counters, for tables and divergence diagnostics. A
/// *view* over the shard's telemetry snapshot — identity checks no longer
/// compare this hand-picked subset; they compare ShardResult::fingerprint,
/// which covers every registered metric.
struct ShardCounters {
  std::uint64_t rx = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tx = 0;
  std::uint64_t processed = 0;
  bool operator==(const ShardCounters&) const = default;
};

/// One sampling window of a shard's measurement time series — the compact
/// cross-layer track kept per shard (the full MetricSnapshot deltas stay
/// inside the testbed's SeriesRecorder ring; carrying them here would cost
/// ~800 KB per window for the latency histogram alone).
struct SeriesWindow {
  sim::Time t_end = 0;            ///< sim time at the window's close
  std::uint64_t fingerprint = 0;  ///< digest of the window's full delta snapshot
  std::uint64_t rx = 0;           ///< packets offered to the port this window
  std::uint64_t tx = 0;           ///< packets transmitted this window
  std::uint64_t dropped = 0;      ///< cap + ring drops this window
  std::uint64_t latency_count = 0;   ///< latency samples this window
  double latency_sum_us = 0.0;       ///< sum of those samples (mean = sum/count)
  std::uint64_t wakeups = 0;         ///< Metronome lock attempts this window
};

/// A shard's whole measurement time series (empty unless the shard's
/// config set ExperimentConfig::series_interval).
struct ShardSeries {
  sim::Time interval = 0;             ///< sampling interval; 0 = series off
  std::uint64_t dropped_windows = 0;  ///< samples lost to ring overflow
  std::vector<SeriesWindow> windows;
};

/// Everything a shard run produces. All fields except wall_seconds are
/// deterministic (pure functions of the shard's config).
struct ShardResult {
  /// Every metric the testbed registered (port and per-ring counters,
  /// driver statistics, the latency histogram), snapshotted at the end of
  /// the run. Counters are whole-run totals; summaries/histograms are
  /// *measurement-window* values (begin_measurement resets them — warmup
  /// samples are not in here). The merge/report path operates on this,
  /// not on copied fields.
  stats::MetricSnapshot telemetry;
  /// Order-sensitive digest of `telemetry` — the cross-backend /
  /// cross-geometry / cross-jobs identity check. Subsumes the old
  /// latency-bin digest and ShardCounters comparison: any single counter
  /// or bin diverging changes this value.
  std::uint64_t fingerprint = 0;
  ShardCounters counters;              ///< headline view (see ShardCounters)
  std::uint64_t events = 0;            ///< kernel events over the whole run
  std::size_t pending_at_measure = 0;  ///< pending events at measurement start
  sim::Time final_clock = 0;
  std::uint64_t latency_count = 0;     ///< latency histogram sample count
  apps::ExperimentResult result;       ///< measurement-window observables
  /// Compact per-window tracks (see ShardSeries); deterministic.
  ShardSeries series;
  /// The shard's trace ring (set only when the runner's tracing is on).
  /// Shared so results stay copyable; sim-time events only, deterministic.
  std::shared_ptr<trace::Tracer> trace;
  double wall_seconds = 0.0;           ///< host time; NOT deterministic

  // --- failure capture (hardened runner) --------------------------------
  /// True when every attempt at this shard threw (or hit the wall-clock
  /// deadline); the other fields are default-initialised in that case.
  bool failed = false;
  /// what() of the last attempt's exception; deterministic for
  /// deterministic failures (configuration errors throw the same text on
  /// every worker count and backend).
  std::string error;
  /// How many times the shard was attempted (1 = first try succeeded).
  int attempts = 1;
};

/// A declarative parameter matrix over registered scenarios. Empty axis =
/// "scenario default" (one implicit point on that axis).
struct SweepMatrix {
  std::vector<std::string> scenarios;   ///< registry names (see registry.hpp)
  std::vector<BackendKind> backends = {BackendKind::kHeap};
  std::vector<double> rates_mpps;       ///< offered-rate overrides
  std::vector<sim::LadderConfig> ladder_geometries;  ///< ladder-shard geometry overrides
  sim::Time warmup = -1;   ///< window override; < 0 keeps the scenario's
  sim::Time measure = -1;  ///< window override; < 0 keeps the scenario's
  /// != 0: derive per-point seeds as mix_seed(base_seed, point_index)
  /// (backends of one point share the seed). 0 keeps scenario seeds.
  std::uint64_t base_seed = 0;
  /// > 0: every shard samples its telemetry at this sim-time interval
  /// (ExperimentConfig::series_interval override; see ShardSeries).
  sim::Time series_interval = 0;
};

/// Expands matrices and runs shard lists on a worker pool.
class SweepRunner {
 public:
  /// \param jobs worker-thread count; <= 1 runs inline on the caller.
  explicit SweepRunner(int jobs = 1) : jobs_(jobs < 1 ? 1 : jobs) {}

  /// Expand a matrix into shards, ordered scenario-major, then rate, with
  /// the shards of one point adjacent in matrix.backends order: one shard
  /// per backend, except the ladder which gets one per geometry (the
  /// geometry axis means nothing to heap or wheel shards).
  /// Throws std::invalid_argument on an unknown scenario name.
  static std::vector<Shard> expand(const SweepMatrix& matrix);

  /// Run every shard (in parallel up to the job count) and return results
  /// in shard order. Results are bit-identical for any job count.
  ///
  /// Hardened execution: a shard that throws no longer takes down the
  /// sweep (or, worse, std::terminates the process from a worker thread).
  /// The exception is captured into ShardResult::failed/error, the shard
  /// is retried up to max_retries() times (a deterministic failure fails
  /// identically; a wall-clock deadline may clear on a quieter machine),
  /// and every *other* shard still runs to completion. Callers decide the
  /// exit status from failed_count().
  std::vector<ShardResult> run(const std::vector<Shard>& shards) const;

  int jobs() const noexcept { return jobs_; }

  /// Per-shard wall-clock deadline in seconds; <= 0 (the default)
  /// disables the watchdog. Enforced cooperatively: the shard's virtual-
  /// time run is sliced and the host clock checked between slices, so a
  /// wedged shard fails with a deterministic "deadline exceeded" error
  /// instead of hanging the sweep. Slicing run_until is execution-
  /// equivalent (events fire at the same virtual times), so the watchdog
  /// never perturbs results.
  void set_shard_deadline(double seconds) noexcept { deadline_s_ = seconds; }
  double shard_deadline() const noexcept { return deadline_s_; }

  /// Retries per failed shard (default 1, the "one deterministic retry").
  void set_max_retries(int retries) noexcept { max_retries_ = retries < 0 ? 0 : retries; }
  int max_retries() const noexcept { return max_retries_; }

  /// Enable per-shard tracing: every shard gets its own trace::Tracer of
  /// `capacity` events (attached through BasicTestbed::set_tracer and kept
  /// in ShardResult::trace), and each worker thread records a wall-clock
  /// sweep/shard span per shard it runs. 0 turns tracing back off.
  /// Tracing is a pure observer; shard results stay bit-identical.
  void set_tracing(std::size_t capacity) noexcept { trace_capacity_ = capacity; }
  std::size_t trace_capacity() const noexcept { return trace_capacity_; }

  /// Per-worker execution statistics from the most recent run(). The
  /// counters are deterministic only for jobs <= 1 (shard->worker
  /// assignment is a race above that); report_json emits them — as
  /// `sweep.tN.*` — only on the include_timing path for that reason.
  struct WorkerStats {
    std::uint64_t shards_run = 0;
    std::uint64_t shards_failed = 0;
    std::uint64_t retries = 0;     ///< extra attempts beyond the first
    double busy_seconds = 0.0;     ///< wall time inside execute()
  };
  const std::vector<WorkerStats>& worker_stats() const noexcept { return worker_stats_; }

  /// Per-worker wall-clock trace lanes (one sweep/shard span per shard
  /// run), recorded only while tracing is enabled. Wall time, so excluded
  /// from every determinism gate; export alongside the shard rings.
  const std::vector<std::unique_ptr<trace::Tracer>>& wall_tracers() const noexcept {
    return wall_tracers_;
  }

 private:
  ShardResult execute(const Shard& shard) const;

  int jobs_;
  double deadline_s_ = 0.0;
  int max_retries_ = 1;
  std::size_t trace_capacity_ = 0;
  // run() is logically const (pure function of the shard list); the
  // bookkeeping below is observability output, refreshed per run.
  mutable std::vector<WorkerStats> worker_stats_;
  mutable std::vector<std::unique_ptr<trace::Tracer>> wall_tracers_;
};

/// Number of shards whose every attempt failed.
std::size_t failed_count(const std::vector<ShardResult>& results);

/// Human-readable per-shard failure lines ("shard 3 [cbr_lossy/ladder @
/// 10 Mpps] failed after 2 attempts: ..."), empty when nothing failed.
/// Benches print this to stderr before exiting nonzero.
std::string failure_summary(const std::vector<Shard>& shards,
                            const std::vector<ShardResult>& results);

/// Deterministically merge every shard's telemetry into one snapshot, in
/// shard order (union by name: counters add, summaries/histograms merge —
/// see stats::MetricSnapshot::merge). Shards of different shapes (other
/// drivers, other queue counts) union cleanly; a same-named histogram
/// with a different geometry throws, with the shard index and metric name
/// in the message. Failed shards are skipped (their telemetry is empty).
stats::MetricSnapshot merge_telemetry(const std::vector<ShardResult>& results);

/// Deterministically merge every non-failed shard's time series, window
/// index by window index (window k of the merge sums window k of every
/// shard that has one): counters add, per-window fingerprints chain in
/// shard order (FNV-style), t_end takes the latest closer. Returns an
/// empty series when no shard recorded one. The merge is a pure fold in
/// shard order, so it is bit-identical for any --jobs value.
ShardSeries merge_timeseries(const std::vector<ShardResult>& results);

/// Merge shards + results into one JSON report (shard order preserved),
/// emitted through stats::JsonWriter — the single JSON path. Per shard:
/// the identifying axes, headline counters, `telemetry_fingerprint`,
/// `failed`/`attempts` (plus `error` when failed) and the full `metrics`
/// object; a trailing `failures` array lists every failed shard, a
/// `fault_matrix` array summarises the fault-plane counters of every
/// fault-bearing shard, and a `totals` object carries merge_telemetry()
/// over all shards. `include_timing` adds per-shard wall_seconds — the
/// one nondeterministic field; leave it off when comparing reports across
/// worker counts. Shards that recorded a time series additionally carry a
/// `timeseries` object (interval + parallel per-window arrays, schema in
/// docs/BENCHMARKS.md), and the report then ends with a
/// `timeseries_merged` object (merge_timeseries over all shards).
/// `runner`, when given together with include_timing, appends a
/// `sweep_workers` object with the per-thread `sweep.tN.*` counters —
/// wall-clock observability, deliberately absent from the deterministic
/// report shape.
std::string report_json(const std::vector<Shard>& shards,
                        const std::vector<ShardResult>& results, bool include_timing,
                        const SweepRunner* runner = nullptr);

}  // namespace metro::scenario
