/// \file registry.hpp
/// The declarative scenario registry.
///
/// A scenario is a named, fully-assembled ExperimentConfig — app, driver,
/// queue count, workload shape, rate, windows, seed — the value type the
/// sweep runner (sweep.hpp) expands into parameter matrices and the
/// scenario-matrix bench runs across event-queue backends. Registering a
/// workload here is what makes it sweepable, cross-backend-checked in CI,
/// and addressable by name from any bench.
///
/// The shipped registry covers the paper's staples (CBR, Poisson, IMIX,
/// the §V-F.4 unbalanced mix) plus the bursty/heavy-tail additions
/// (MMPP ON-OFF, Pareto flow trains, synchronized incast, pcap trace
/// replay) and the per-flow-source large-population regime the ladder
/// backend targets.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "apps/experiment.hpp"

namespace metro::scenario {

/// A named workload: the registry's value type.
struct ScenarioSpec {
  std::string name;     ///< unique registry key (CLI- and JSON-friendly)
  std::string summary;  ///< one-line description for listings
  /// The complete testbed configuration, with full (non---fast) windows.
  /// Sweeps override rate/windows/seed per shard; everything else is the
  /// scenario's identity.
  apps::ExperimentConfig config;
};

/// All registered scenarios, in registration order (stable across runs —
/// sweep shard indices and derived seeds depend on it).
const std::vector<ScenarioSpec>& all_scenarios();

/// Look up a scenario by name; nullptr when unknown.
const ScenarioSpec* find_scenario(std::string_view name);

/// The fig13 multiqueue testbed base (XL710, 2 Rx queues, 4 Metronome
/// threads, 15 us target vacation, 37 Mpps over 4096 flows, full
/// windows) — the one definition shared by the registered fig13
/// scenarios and the kernel bench's fig13 trajectory runs, so the
/// testbed cannot silently fork.
apps::ExperimentConfig fig13_testbed();

}  // namespace metro::scenario
