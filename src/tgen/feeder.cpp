#include "tgen/feeder.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace metro::tgen {

namespace {

template <typename Sim>
sim::Task feeder_task(Sim& sim, nic::BasicPort<Sim>& port, Generator& gen, FeederConfig cfg) {
  std::vector<nic::PacketDesc> group;
  group.reserve(static_cast<std::size_t>(cfg.max_batch));
  std::optional<nic::PacketDesc> carry = gen.next();
  while (carry.has_value()) {
    group.clear();
    const sim::Time window_start = carry->arrival;
    group.push_back(*carry);
    carry.reset();
    while (static_cast<int>(group.size()) < cfg.max_batch) {
      auto pkt = gen.next();
      if (!pkt.has_value()) break;
      if (pkt->arrival > window_start + cfg.batch_window) {
        carry = pkt;  // belongs to the next group
        break;
      }
      group.push_back(*pkt);
    }
    // Deliver the whole group when its last packet has arrived on the wire
    // — one port call per group, not one per packet.
    co_await sim.sleep_until(group.back().arrival);
    port.rx_burst(group.data(), static_cast<int>(group.size()));
    if (!carry.has_value()) carry = gen.next();
  }
}

template <typename Sim>
sim::Task flow_source_task(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                           std::uint32_t flow_id, double mean_gap_ns, PerFlowSourceConfig cfg) {
  const sim::Time end = cfg.start + cfg.duration;
  // Uniform phase offset so the N sources decorrelate from t = start.
  sim::Time next = cfg.start + static_cast<sim::Time>(sim.rng().uniform(0.0, mean_gap_ns));
  nic::PacketDesc pkt;
  pkt.flow_id = flow_id;
  pkt.rss_hash = flows.rss_hash(flow_id);
  pkt.wire_size = cfg.wire_size;
  while (next <= end) {
    co_await sim.sleep_until(next);
    pkt.arrival = sim.now();
    port.rx(pkt);
    const double gap = cfg.poisson ? sim.rng().exponential(mean_gap_ns) : mean_gap_ns;
    next += std::max<sim::Time>(1, static_cast<sim::Time>(gap));
  }
}

}  // namespace

template <typename Sim>
void attach(Sim& sim, nic::BasicPort<Sim>& port, Generator& gen, FeederConfig cfg) {
  sim.spawn(feeder_task(sim, port, gen, cfg));
}

template <typename Sim>
void attach_per_flow_sources(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                             PerFlowSourceConfig cfg) {
  const auto n = flows.size();
  if (n == 0 || cfg.total_rate_pps <= 0.0) return;
  const double mean_gap_ns = 1e9 * static_cast<double>(n) / cfg.total_rate_pps;
  for (std::size_t f = 0; f < n; ++f) {
    sim.spawn(flow_source_task(sim, port, flows, static_cast<std::uint32_t>(f), mean_gap_ns, cfg));
  }
}

template void attach<sim::Simulation>(sim::Simulation&, nic::BasicPort<sim::Simulation>&,
                                      Generator&, FeederConfig);
template void attach<sim::LadderSimulation>(sim::LadderSimulation&,
                                            nic::BasicPort<sim::LadderSimulation>&, Generator&,
                                            FeederConfig);
template void attach_per_flow_sources<sim::Simulation>(sim::Simulation&,
                                                       nic::BasicPort<sim::Simulation>&,
                                                       const FlowSet&, PerFlowSourceConfig);
template void attach_per_flow_sources<sim::LadderSimulation>(
    sim::LadderSimulation&, nic::BasicPort<sim::LadderSimulation>&, const FlowSet&,
    PerFlowSourceConfig);

}  // namespace metro::tgen
