#include "tgen/feeder.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace metro::tgen {

namespace {

template <typename Sim>
sim::Task feeder_task(Sim& sim, nic::BasicPort<Sim>& port, Generator& gen, FeederConfig cfg) {
  // Pull through next_batch() so hot generators amortise the virtual call
  // and state reloads; the buffer is a pure prefetch — group boundaries
  // (window + max_batch) are identical to the old one-next()-at-a-time
  // loop because next_batch draws the exact next() stream.
  std::vector<nic::PacketDesc> buf;
  buf.reserve(static_cast<std::size_t>(cfg.max_batch));
  std::size_t head = 0;
  const auto pull = [&]() -> std::optional<nic::PacketDesc> {
    if (head == buf.size()) {
      buf.clear();
      head = 0;
      gen.next_batch(buf, static_cast<std::size_t>(cfg.max_batch));
      if (buf.empty()) return std::nullopt;
    }
    return buf[head++];
  };
  std::vector<nic::PacketDesc> group;
  group.reserve(static_cast<std::size_t>(cfg.max_batch));
  std::optional<nic::PacketDesc> carry = pull();
  while (carry.has_value()) {
    group.clear();
    const sim::Time window_start = carry->arrival;
    group.push_back(*carry);
    carry.reset();
    while (static_cast<int>(group.size()) < cfg.max_batch) {
      auto pkt = pull();
      if (!pkt.has_value()) break;
      if (pkt->arrival > window_start + cfg.batch_window) {
        carry = pkt;  // belongs to the next group
        break;
      }
      group.push_back(*pkt);
    }
    // Deliver the whole group when its last packet has arrived on the wire
    // — one port call per group, not one per packet.
    co_await sim.sleep_until(group.back().arrival);
    port.rx_burst(group.data(), static_cast<int>(group.size()));
    if (!carry.has_value()) carry = pull();
  }
}

template <typename Sim>
sim::Task flow_source_task(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                           std::uint32_t flow_id, double mean_gap_ns, PerFlowSourceConfig cfg) {
  const sim::Time end = cfg.start + cfg.duration;
  // Uniform phase offset so the N sources decorrelate from t = start.
  sim::Time next = cfg.start + static_cast<sim::Time>(sim.rng().uniform(0.0, mean_gap_ns));
  nic::PacketDesc pkt;
  pkt.flow_id = flow_id;
  pkt.rss_hash = flows.rss_hash(flow_id);
  pkt.wire_size = cfg.wire_size;
  while (next <= end) {
    co_await sim.sleep_until(next);
    pkt.arrival = sim.now();
    port.rx(pkt);
    const double gap = cfg.poisson ? sim.rng().exponential(mean_gap_ns) : mean_gap_ns;
    next += std::max<sim::Time>(1, static_cast<sim::Time>(gap));
  }
}

}  // namespace

template <typename Sim>
void attach(Sim& sim, nic::BasicPort<Sim>& port, Generator& gen, FeederConfig cfg) {
  sim.spawn(feeder_task(sim, port, gen, cfg));
}

template <typename Sim>
void attach_per_flow_sources(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                             PerFlowSourceConfig cfg) {
  const auto n = flows.size();
  if (n == 0 || cfg.total_rate_pps <= 0.0) return;
  const double mean_gap_ns = 1e9 * static_cast<double>(n) / cfg.total_rate_pps;
  for (std::size_t f = 0; f < n; ++f) {
    sim.spawn(flow_source_task(sim, port, flows, static_cast<std::uint32_t>(f), mean_gap_ns, cfg));
  }
}

template void attach<sim::Simulation>(sim::Simulation&, nic::BasicPort<sim::Simulation>&,
                                      Generator&, FeederConfig);
template void attach<sim::LadderSimulation>(sim::LadderSimulation&,
                                            nic::BasicPort<sim::LadderSimulation>&, Generator&,
                                            FeederConfig);
template void attach<sim::WheelSimulation>(sim::WheelSimulation&,
                                           nic::BasicPort<sim::WheelSimulation>&, Generator&,
                                           FeederConfig);
template <typename Sim>
PerFlowSourceArena<Sim>::PerFlowSourceArena(Sim& sim, nic::BasicPort<Sim>& port,
                                            const FlowSet& flows, PerFlowSourceConfig cfg)
    : sim_(sim), port_(port), cfg_(cfg) {
  const auto n = flows.size();
  if (n == 0 || cfg.total_rate_pps <= 0.0) return;
  // Exact-size lane fills: at 2^24 flows a reserve-less push_back loop
  // would transiently hold a doubled allocation per lane.
  rss_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    rss_[f] = flows.rss_hash(static_cast<std::uint32_t>(f));
  }
  next_at_.assign(n, kIdle);
  emitted_.assign(n, 0);
  mean_gap_ns_ = 1e9 * static_cast<double>(n) / cfg.total_rate_pps;
  end_ = cfg.start + cfg.duration;
  // One bootstrap callback in place of n spawns. It lands in the now-FIFO
  // exactly where the coroutine path's n task handles would, so the phase
  // draws happen at the same point of the event order.
  sim_.schedule_at(sim_.now(), [this] { bootstrap(); });
}

template <typename Sim>
void PerFlowSourceArena<Sim>::bootstrap() {
  // Batched arming, two sequential passes over the lanes. Pass 1 streams
  // the uniform phase draws into the next-fire lane — flow order, the
  // order attach_per_flow_sources' tasks resume in (the now-FIFO
  // preserves spawn order), so the draws consume the shared RNG
  // identically. Pass 2 arms the kernel timers, also in flow order.
  // Splitting the passes cannot change the execution: draws consume no
  // sequence numbers, so each armed timer still gets the sequence number
  // the interleaved form would have handed it.
  const auto n = static_cast<std::uint32_t>(rss_.size());
  for (std::uint32_t f = 0; f < n; ++f) {
    next_at_[f] = cfg_.start + static_cast<sim::Time>(sim_.rng().uniform(0.0, mean_gap_ns_));
  }
  for (std::uint32_t f = 0; f < n; ++f) {
    if (next_at_[f] > end_) {
      next_at_[f] = kIdle;  // the coroutine's `while (next <= end)` bound
    } else {
      arm(f);
    }
  }
}

template <typename Sim>
void PerFlowSourceArena<Sim>::arm(std::uint32_t flow) {
  // [this, flow] is 16 trivially-copyable bytes — inside the kernel's
  // inline callback budget, so steady state never allocates.
  sim_.schedule_at(next_at_[flow], [this, flow] { --armed_; fire(flow); });
  ++armed_;
}

template <typename Sim>
void PerFlowSourceArena<Sim>::fire(std::uint32_t flow) {
  // The fire path touches only the firing flow's lane entries (rss read,
  // draw-state bump, next-fire write) plus the shared config/RNG — no
  // neighbouring flow state comes into the working set.
  nic::PacketDesc pkt;
  pkt.flow_id = flow;
  pkt.rss_hash = rss_[flow];
  pkt.wire_size = cfg_.wire_size;
  pkt.arrival = sim_.now();
  port_.rx(pkt);
  ++fired_;
  ++emitted_[flow];
  const double gap = cfg_.poisson ? sim_.rng().exponential(mean_gap_ns_) : mean_gap_ns_;
  const auto next = sim_.now() + std::max<sim::Time>(1, static_cast<sim::Time>(gap));
  if (next > end_) {
    next_at_[flow] = kIdle;  // retired: the coroutine's loop bound
    return;
  }
  next_at_[flow] = next;
  arm(flow);
}

template class PerFlowSourceArena<sim::Simulation>;
template class PerFlowSourceArena<sim::LadderSimulation>;
template class PerFlowSourceArena<sim::WheelSimulation>;

template void attach_per_flow_sources<sim::Simulation>(sim::Simulation&,
                                                       nic::BasicPort<sim::Simulation>&,
                                                       const FlowSet&, PerFlowSourceConfig);
template void attach_per_flow_sources<sim::LadderSimulation>(
    sim::LadderSimulation&, nic::BasicPort<sim::LadderSimulation>&, const FlowSet&,
    PerFlowSourceConfig);
template void attach_per_flow_sources<sim::WheelSimulation>(
    sim::WheelSimulation&, nic::BasicPort<sim::WheelSimulation>&, const FlowSet&,
    PerFlowSourceConfig);

}  // namespace metro::tgen
