#include "tgen/feeder.hpp"

#include <vector>

namespace metro::tgen {

namespace {

sim::Task feeder_task(sim::Simulation& sim, nic::Port& port, Generator& gen, FeederConfig cfg) {
  std::vector<nic::PacketDesc> group;
  group.reserve(static_cast<std::size_t>(cfg.max_batch));
  std::optional<nic::PacketDesc> carry = gen.next();
  while (carry.has_value()) {
    group.clear();
    const sim::Time window_start = carry->arrival;
    group.push_back(*carry);
    carry.reset();
    while (static_cast<int>(group.size()) < cfg.max_batch) {
      auto pkt = gen.next();
      if (!pkt.has_value()) break;
      if (pkt->arrival > window_start + cfg.batch_window) {
        carry = pkt;  // belongs to the next group
        break;
      }
      group.push_back(*pkt);
    }
    // Deliver the whole group when its last packet has arrived on the wire.
    co_await sim.sleep_until(group.back().arrival);
    for (const auto& pkt : group) port.rx(pkt);
    if (!carry.has_value()) carry = gen.next();
  }
}

}  // namespace

void attach(sim::Simulation& sim, nic::Port& port, Generator& gen, FeederConfig cfg) {
  sim.spawn(feeder_task(sim, port, gen, cfg));
}

}  // namespace metro::tgen
