/// \file bursty.hpp
/// Bursty / heavy-tail workload generators beyond CBR and Poisson.
///
/// The paper's campaigns run smooth arrivals (CBR, Poisson, the §V-B
/// ramp); real deployments see correlated bursts. Three generators widen
/// the scenario registry (src/scenario/) accordingly:
///
///   * MmppGenerator       — a 2-state Markov-modulated Poisson process
///                           (ON/OFF bursty arrivals): exponential dwell
///                           times in a high-rate and a low-rate state.
///   * ParetoTrainGenerator— heavy-tail flow-size mix: flows send
///                           back-to-back packet trains whose lengths are
///                           Pareto distributed, so a few elephant trains
///                           carry most packets.
///   * IncastGenerator     — synchronized incast: every epoch a fan-in of
///                           senders fires a burst at the same instant,
///                           the pattern that overruns shallow Rx rings.
///
/// All three implement tgen::Generator (pull-based, non-decreasing
/// arrival times) and own a private sim::Rng seeded explicitly, so the
/// stream a feeder pulls is a pure function of the config — bit-identical
/// across event-queue backends and across sweep worker counts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "tgen/generator.hpp"

namespace metro::tgen {

/// Shape knobs of the 2-state MMPP, expressed relative to the mean rate
/// so the headline rate stays the sweepable knob. The long-run rate is
/// mean_rate * (on_factor * duty + off_factor * (1 - duty)) with
/// duty = mean_on / (mean_on + mean_off); the defaults keep the
/// configured mean exactly: 3.7 * 0.25 + 0.1 * 0.75 == 1.
struct MmppShape {
  double on_factor = 3.7;   ///< ON-state rate = on_factor * mean rate.
  double off_factor = 0.1;  ///< OFF-state rate (0 = pure ON/OFF silence).
  sim::Time mean_on = 100 * sim::kMicrosecond;   ///< mean ON dwell (exponential)
  sim::Time mean_off = 300 * sim::kMicrosecond;  ///< mean OFF dwell (exponential)
};

struct MmppConfig {
  double mean_rate_pps = 10e6;  ///< headline (long-run average) rate
  MmppShape shape{};
  std::uint16_t wire_size = 64;
  sim::Time start = 0;
  sim::Time duration = sim::kSecond;
  std::uint64_t seed = 42;
};

/// 2-state MMPP / ON-OFF arrival process over a flow set.
class MmppGenerator final : public Generator {
 public:
  MmppGenerator(MmppConfig cfg, const FlowSet& flows, std::unique_ptr<FlowPicker> picker);

  std::optional<nic::PacketDesc> next() override;

 private:
  MmppConfig cfg_;
  const FlowSet& flows_;
  std::unique_ptr<FlowPicker> picker_;
  sim::Rng rng_;
  sim::Time t_;
  sim::Time state_end_;
  bool on_ = true;
};

/// Shape knobs of the heavy-tail flow-train mix.
struct ParetoTrainShape {
  double alpha = 1.3;        ///< Pareto shape; <2 puts most mass in few trains
  double mean_train = 16.0;  ///< mean packets per train (sets the scale xm)
  std::uint64_t max_train = 1u << 20;  ///< truncation so one draw cannot stall a sweep
};

struct ParetoTrainConfig {
  double rate_pps = 10e6;  ///< aggregate CBR packet rate
  ParetoTrainShape shape{};
  std::uint16_t wire_size = 64;
  sim::Time start = 0;
  sim::Time duration = sim::kSecond;
  std::uint64_t seed = 42;
};

/// Heavy-tail flow-size mix: the aggregate stream is CBR at `rate_pps`,
/// but consecutive packets belong to the *same* flow for a Pareto-sized
/// train before a fresh flow (uniform over the set) takes over.
class ParetoTrainGenerator final : public Generator {
 public:
  ParetoTrainGenerator(ParetoTrainConfig cfg, const FlowSet& flows);

  std::optional<nic::PacketDesc> next() override;

 private:
  void next_train();

  ParetoTrainConfig cfg_;
  const FlowSet& flows_;
  sim::Rng rng_;
  sim::Time t_;
  sim::Time gap_;
  std::uint32_t flow_ = 0;
  std::uint64_t remaining_ = 0;
};

/// Shape knobs of the synchronized incast pattern. The epoch period is
/// derived from the headline rate: period = fan_in * burst_per_sender /
/// rate, so rate sweeps stretch or squeeze the silence between bursts
/// while each burst stays back-to-back at wire speed.
struct IncastShape {
  std::uint32_t fan_in = 32;           ///< senders per epoch
  std::uint32_t burst_per_sender = 8;  ///< packets each sender contributes
  sim::Time intra_gap = 67;            ///< ns between packets inside a burst (~64B line rate)
};

struct IncastConfig {
  double rate_pps = 5e6;  ///< long-run average rate (sets the epoch period)
  IncastShape shape{};
  std::uint16_t wire_size = 64;
  sim::Time start = 0;
  sim::Time duration = sim::kSecond;
  std::uint64_t seed = 42;
};

/// Synchronized incast: every epoch, `fan_in` flows (a random contiguous
/// window of the flow set) each contribute `burst_per_sender` packets,
/// interleaved round-robin and spaced `intra_gap` apart — the whole
/// fan-in lands within one ring-sized instant, then the line goes silent
/// until the next epoch.
class IncastGenerator final : public Generator {
 public:
  IncastGenerator(IncastConfig cfg, const FlowSet& flows);

  std::optional<nic::PacketDesc> next() override;

 private:
  IncastConfig cfg_;
  const FlowSet& flows_;
  sim::Rng rng_;
  sim::Time epoch_start_;
  sim::Time period_;
  std::uint32_t base_flow_ = 0;
  std::uint32_t index_ = 0;       // packet index within the epoch
  std::uint32_t epoch_packets_;   // fan_in * burst_per_sender
};

}  // namespace metro::tgen
