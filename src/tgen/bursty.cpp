#include "tgen/bursty.hpp"

#include <algorithm>
#include <cmath>

namespace metro::tgen {

using sim::Time;

// --- MMPP -------------------------------------------------------------------

MmppGenerator::MmppGenerator(MmppConfig cfg, const FlowSet& flows,
                             std::unique_ptr<FlowPicker> picker)
    : cfg_(cfg),
      flows_(flows),
      picker_(std::move(picker)),
      rng_(cfg.seed),
      t_(cfg.start),
      state_end_(cfg.start) {}

std::optional<nic::PacketDesc> MmppGenerator::next() {
  const Time end = cfg_.start + cfg_.duration;
  while (t_ < end) {
    if (t_ >= state_end_) {
      // Dwell expired: flip state and draw the next dwell. The first call
      // lands here too (state_end_ == start), so the process begins with a
      // fresh ON dwell.
      on_ = state_end_ == cfg_.start ? true : !on_;
      const double mean_dwell =
          static_cast<double>(on_ ? cfg_.shape.mean_on : cfg_.shape.mean_off);
      state_end_ = t_ + std::max<Time>(1, static_cast<Time>(rng_.exponential(mean_dwell)));
    }
    const double rate =
        cfg_.mean_rate_pps * (on_ ? cfg_.shape.on_factor : cfg_.shape.off_factor);
    if (rate <= 0.0) {
      t_ = state_end_;  // silent state: skip to the next transition
      continue;
    }
    const Time gap = std::max<Time>(1, static_cast<Time>(rng_.exponential(1e9 / rate)));
    if (t_ + gap >= state_end_) {
      // The draw crosses the state boundary; Poisson memorylessness lets us
      // discard it and redraw from the boundary in the new state.
      t_ = state_end_;
      continue;
    }
    t_ += gap;
    if (t_ >= end) break;  // the dwell ran past the horizon mid-gap
    nic::PacketDesc pkt;
    pkt.arrival = t_;
    pkt.flow_id = picker_->pick(rng_);
    pkt.rss_hash = flows_.rss_hash(pkt.flow_id);
    pkt.wire_size = cfg_.wire_size;
    return pkt;
  }
  return std::nullopt;
}

// --- Pareto flow trains -----------------------------------------------------

ParetoTrainGenerator::ParetoTrainGenerator(ParetoTrainConfig cfg, const FlowSet& flows)
    : cfg_(cfg),
      flows_(flows),
      rng_(cfg.seed),
      t_(cfg.start),
      gap_(cfg.rate_pps > 0 ? static_cast<Time>(1e9 / cfg.rate_pps) : 0) {}

void ParetoTrainGenerator::next_train() {
  flow_ = static_cast<std::uint32_t>(rng_.uniform_u64(flows_.size()));
  // Pareto mean is xm * alpha / (alpha - 1); invert so mean_train is the
  // actual mean train length (alpha must be > 1 for the mean to exist).
  const double alpha = std::max(1.0001, cfg_.shape.alpha);
  const double xm = cfg_.shape.mean_train * (alpha - 1.0) / alpha;
  const double draw = rng_.pareto(xm, alpha);
  remaining_ = std::clamp<std::uint64_t>(static_cast<std::uint64_t>(draw), 1,
                                         cfg_.shape.max_train);
}

std::optional<nic::PacketDesc> ParetoTrainGenerator::next() {
  if (gap_ == 0 || t_ >= cfg_.start + cfg_.duration) return std::nullopt;
  if (remaining_ == 0) next_train();
  nic::PacketDesc pkt;
  pkt.arrival = t_;
  pkt.flow_id = flow_;
  pkt.rss_hash = flows_.rss_hash(flow_);
  pkt.wire_size = cfg_.wire_size;
  --remaining_;
  t_ += gap_;
  return pkt;
}

// --- Synchronized incast ----------------------------------------------------

IncastGenerator::IncastGenerator(IncastConfig cfg, const FlowSet& flows)
    : cfg_(cfg),
      flows_(flows),
      rng_(cfg.seed),
      epoch_start_(cfg.start),
      epoch_packets_(cfg.shape.fan_in * cfg.shape.burst_per_sender) {
  const double per_epoch = static_cast<double>(epoch_packets_);
  period_ = cfg.rate_pps > 0 ? static_cast<Time>(1e9 * per_epoch / cfg.rate_pps) : 0;
  // A period shorter than the burst itself would make arrivals overlap the
  // next epoch (and regress); keep at least the burst span.
  period_ = std::max<Time>(period_, static_cast<Time>(epoch_packets_) * cfg.shape.intra_gap + 1);
  base_flow_ = static_cast<std::uint32_t>(rng_.uniform_u64(flows_.size()));
}

std::optional<nic::PacketDesc> IncastGenerator::next() {
  if (period_ == 0 || epoch_packets_ == 0) return std::nullopt;
  if (index_ == epoch_packets_) {
    epoch_start_ += period_;
    index_ = 0;
    base_flow_ = static_cast<std::uint32_t>(rng_.uniform_u64(flows_.size()));
  }
  if (epoch_start_ >= cfg_.start + cfg_.duration) return std::nullopt;
  // Interleave senders round-robin so consecutive packets hit different
  // flows (and thus, via RSS, different queues) — the worst case for a
  // shared ring, which is the point of incast.
  const std::uint32_t sender = index_ % cfg_.shape.fan_in;
  nic::PacketDesc pkt;
  pkt.arrival = epoch_start_ + static_cast<Time>(index_) * cfg_.shape.intra_gap;
  // An epoch straddling the horizon is truncated: the stream's contract
  // (like every generator here) is that no arrival lands past duration.
  if (pkt.arrival >= cfg_.start + cfg_.duration) return std::nullopt;
  pkt.flow_id = (base_flow_ + sender) % static_cast<std::uint32_t>(flows_.size());
  pkt.rss_hash = flows_.rss_hash(pkt.flow_id);
  pkt.wire_size = cfg_.wire_size;
  ++index_;
  return pkt;
}

}  // namespace metro::tgen
