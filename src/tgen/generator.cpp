#include "tgen/generator.hpp"

#include "tgen/trace.hpp"

#include <cmath>

namespace metro::tgen {

using sim::Time;
using namespace metro::sim;  // time literals

FlowSet::FlowSet(std::size_t n_flows, std::uint64_t seed) {
  sim::Rng rng(seed);
  flows_.reserve(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) {
    Flow f;
    // RFC 5737 test networks as source space, 10/8 as destination space.
    f.tuple.src_ip = net::ipv4_addr(198, 18, 0, 0) + static_cast<std::uint32_t>(rng.uniform_u64(1 << 16));
    f.tuple.dst_ip = net::ipv4_addr(10, 0, 0, 0) + static_cast<std::uint32_t>(rng.uniform_u64(1 << 24));
    f.tuple.src_port = static_cast<std::uint16_t>(1024 + rng.uniform_u64(60000));
    f.tuple.dst_port = static_cast<std::uint16_t>(1024 + rng.uniform_u64(60000));
    f.tuple.protocol = net::kIpProtoUdp;
    f.rss = nic::rss_hash_ipv4(f.tuple.src_ip, f.tuple.dst_ip, f.tuple.src_port, f.tuple.dst_port);
    flows_.push_back(f);
  }
}

std::size_t Generator::next_batch(std::vector<nic::PacketDesc>& out, std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    auto pkt = next();
    if (!pkt.has_value()) break;
    out.push_back(*pkt);
    ++n;
  }
  return n;
}

double RampProfile::rate_at(Time t) const {
  if (t < 0 || t > total_) return 0.0;
  const Time half = total_ / 2;
  const auto step_index = [this](Time x) { return x / step_; };
  const long n_steps_half = step_index(half) + 1;
  const double increment = (peak_ - floor_) / static_cast<double>(n_steps_half);
  if (t <= half) {
    return floor_ + increment * static_cast<double>(step_index(t) + 1);
  }
  const long down = step_index(t - half);
  const double r = peak_ - increment * static_cast<double>(down + 1);
  return r < floor_ ? floor_ : r;
}

StreamGenerator::StreamGenerator(StreamConfig cfg, const FlowSet& flows,
                                 std::unique_ptr<FlowPicker> picker)
    : cfg_(cfg),
      flows_(flows),
      picker_(std::move(picker)),
      rng_(cfg.seed),
      t_(cfg.start),
      gap_(cfg.rate_pps > 0 ? static_cast<Time>(1e9 / cfg.rate_pps) : 0) {}

std::optional<nic::PacketDesc> StreamGenerator::next() {
  if (cfg_.rate_pps <= 0.0) return std::nullopt;
  if (t_ >= cfg_.start + cfg_.duration) return std::nullopt;
  nic::PacketDesc pkt;
  pkt.arrival = t_;
  pkt.flow_id = picker_->pick(rng_);
  pkt.rss_hash = flows_.rss_hash(pkt.flow_id);
  pkt.wire_size = cfg_.imix ? ImixSizes{}.next(rng_) : cfg_.wire_size;
  if (cfg_.poisson) {
    t_ += static_cast<Time>(rng_.exponential(static_cast<double>(gap_)));
  } else {
    t_ += gap_;
  }
  return pkt;
}

std::size_t StreamGenerator::next_batch(std::vector<nic::PacketDesc>& out, std::size_t max) {
  if (cfg_.rate_pps <= 0.0) return 0;
  const Time end = cfg_.start + cfg_.duration;
  // Hoist the loop-invariant state; write t_ back once. The draw sequence
  // per packet (pick, optional imix size, optional exponential gap) is
  // byte-identical to next()'s.
  Time t = t_;
  std::size_t n = 0;
  for (; n < max && t < end; ++n) {
    nic::PacketDesc pkt;
    pkt.arrival = t;
    pkt.flow_id = picker_->pick(rng_);
    pkt.rss_hash = flows_.rss_hash(pkt.flow_id);
    pkt.wire_size = cfg_.imix ? ImixSizes{}.next(rng_) : cfg_.wire_size;
    if (cfg_.poisson) {
      t += static_cast<Time>(rng_.exponential(static_cast<double>(gap_)));
    } else {
      t += gap_;
    }
    out.push_back(pkt);
  }
  t_ = t;
  return n;
}

ProfileGenerator::ProfileGenerator(const RateProfile& profile, Time duration,
                                   std::uint16_t wire_size, const FlowSet& flows,
                                   std::unique_ptr<FlowPicker> picker, std::uint64_t seed)
    : profile_(profile),
      duration_(duration),
      wire_size_(wire_size),
      flows_(flows),
      picker_(std::move(picker)),
      rng_(seed) {}

std::optional<nic::PacketDesc> ProfileGenerator::next() {
  while (t_ < duration_) {
    const double rate = profile_.rate_at(t_);
    if (rate <= 0.0) {
      t_ += 1_ms;
      continue;
    }
    nic::PacketDesc pkt;
    pkt.arrival = t_;
    pkt.flow_id = picker_->pick(rng_);
    pkt.rss_hash = flows_.rss_hash(pkt.flow_id);
    pkt.wire_size = wire_size_;
    t_ += static_cast<Time>(1e9 / rate);
    return pkt;
  }
  return std::nullopt;
}

}  // namespace metro::tgen
