#include "tgen/trace.hpp"

#include "net/packet_builder.hpp"
#include "net/packet.hpp"
#include "nic/rss.hpp"

namespace metro::tgen {

std::vector<net::PcapPacket> synthesise_unbalanced_trace(std::size_t n_packets,
                                                         double heavy_share,
                                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  net::FiveTuple heavy;
  heavy.src_ip = net::ipv4_addr(198, 18, 0, 1);
  heavy.dst_ip = net::ipv4_addr(10, 99, 99, 99);
  heavy.src_port = 7777;
  heavy.dst_port = 8888;
  heavy.protocol = net::kIpProtoUdp;

  std::vector<net::PcapPacket> out;
  out.reserve(n_packets);
  net::Packet pkt;
  for (std::size_t i = 0; i < n_packets; ++i) {
    net::FiveTuple t;
    if (rng.chance(heavy_share)) {
      t = heavy;
    } else {
      t.src_ip = net::ipv4_addr(198, 18, 0, 0) + static_cast<std::uint32_t>(rng.uniform_u64(1 << 16));
      t.dst_ip = net::ipv4_addr(10, 0, 0, 0) + static_cast<std::uint32_t>(rng.uniform_u64(1 << 24));
      t.src_port = static_cast<std::uint16_t>(1024 + rng.uniform_u64(60000));
      t.dst_port = static_cast<std::uint16_t>(1024 + rng.uniform_u64(60000));
      t.protocol = net::kIpProtoUdp;
    }
    net::build_udp_packet(pkt, t, 64);
    net::PcapPacket rec;
    rec.timestamp_ns = static_cast<std::int64_t>(i) * 1000;  // nominal spacing
    rec.data.assign(pkt.data(), pkt.data() + pkt.size());
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<TraceEntry> parse_trace(const std::vector<net::PcapPacket>& packets) {
  std::vector<TraceEntry> entries;
  entries.reserve(packets.size());
  net::Packet buf;
  for (const auto& rec : packets) {
    if (rec.data.size() > net::Packet::kDataRoom - net::Packet::kHeadroom) continue;
    buf.assign(rec.data.data(), rec.data.size());
    TraceEntry e;
    if (!net::extract_five_tuple(buf, e.tuple)) continue;
    e.rss_hash =
        nic::rss_hash_ipv4(e.tuple.src_ip, e.tuple.dst_ip, e.tuple.src_port, e.tuple.dst_port);
    // Wire size = captured frame + 4 B FCS (build_udp_packet strips it).
    e.wire_size = static_cast<std::uint16_t>(rec.data.size() + 4);
    entries.push_back(e);
  }
  return entries;
}

TraceGenerator::TraceGenerator(std::vector<TraceEntry> entries, double rate_pps,
                               sim::Time duration)
    : entries_(std::move(entries)),
      gap_(rate_pps > 0 ? static_cast<sim::Time>(1e9 / rate_pps) : 0),
      duration_(duration) {}

std::optional<nic::PacketDesc> TraceGenerator::next() {
  if (entries_.empty() || gap_ == 0 || t_ >= duration_) return std::nullopt;
  const TraceEntry& e = entries_[index_];
  index_ = (index_ + 1) % entries_.size();  // loop the trace, as the paper does
  nic::PacketDesc pkt;
  pkt.arrival = t_;
  pkt.rss_hash = e.rss_hash;
  pkt.flow_id = e.rss_hash;  // flow identity = hash for trace replay
  pkt.wire_size = e.wire_size;
  t_ += gap_;
  return pkt;
}

}  // namespace metro::tgen
