// Workload generators — the MoonGen substitute.
//
// A Generator yields a monotone stream of packet descriptors (arrival
// time, flow, wire size). The paper's campaigns need:
//   * constant bit rate at line rate and fractions of it (most figures),
//   * Poisson arrivals (robustness checks),
//   * the MoonGen `rate-control-methods.lua` ramp of §V-B (rate stepped
//     every 2 s up to 14 Mpps and back down over a minute),
//   * the unbalanced flow mix of §V-F.4 (a 1000-packet trace, 30% one UDP
//     flow, 70% uniformly random flows).
//
// Flow identities come from a FlowSet which precomputes each flow's
// 5-tuple and Toeplitz RSS hash, so the hot path is hash-free.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/flow.hpp"
#include "nic/rss.hpp"
#include "nic/sim_packet.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace metro::tgen {

/// A pool of synthetic UDP flows with precomputed RSS hashes.
class FlowSet {
 public:
  FlowSet(std::size_t n_flows, std::uint64_t seed);

  std::size_t size() const noexcept { return flows_.size(); }
  const net::FiveTuple& tuple(std::uint32_t flow_id) const {
    return flows_[flow_id % flows_.size()].tuple;
  }
  std::uint32_t rss_hash(std::uint32_t flow_id) const {
    return flows_[flow_id % flows_.size()].rss;
  }

 private:
  struct Flow {
    net::FiveTuple tuple;
    std::uint32_t rss;
  };
  std::vector<Flow> flows_;
};

class Generator {
 public:
  virtual ~Generator() = default;
  /// Next packet, or nullopt when the workload is exhausted. Arrival times
  /// are non-decreasing.
  virtual std::optional<nic::PacketDesc> next() = 0;
  /// Append up to `max` packets to `out`; returns the number appended
  /// (0 = exhausted). Draws the exact stream next() would — the batched
  /// path is an amortisation, never a different workload (enforced by
  /// tests/test_tgen.cpp for every generator). The default loops next();
  /// hot generators override it to hoist the per-call virtual dispatch
  /// and state reloads out of the loop.
  virtual std::size_t next_batch(std::vector<nic::PacketDesc>& out, std::size_t max);
};

/// Picks flow ids for successive packets.
class FlowPicker {
 public:
  virtual ~FlowPicker() = default;
  virtual std::uint32_t pick(sim::Rng& rng) = 0;
};

/// Uniform over the flow set.
class UniformFlowPicker final : public FlowPicker {
 public:
  explicit UniformFlowPicker(std::uint32_t n_flows) : n_(n_flows) {}
  std::uint32_t pick(sim::Rng& rng) override {
    return static_cast<std::uint32_t>(rng.uniform_u64(n_));
  }

 private:
  std::uint32_t n_;
};

/// One heavy flow with probability `heavy_share`, uniform otherwise —
/// the §V-F.4 unbalanced trace.
class UnbalancedFlowPicker final : public FlowPicker {
 public:
  UnbalancedFlowPicker(std::uint32_t heavy_flow, double heavy_share, std::uint32_t n_flows)
      : heavy_(heavy_flow), share_(heavy_share), n_(n_flows) {}
  std::uint32_t pick(sim::Rng& rng) override {
    if (rng.chance(share_)) return heavy_;
    return static_cast<std::uint32_t>(rng.uniform_u64(n_));
  }

 private:
  std::uint32_t heavy_;
  double share_;
  std::uint32_t n_;
};

/// Time-varying rate profile (packets per second) for ramp workloads.
class RateProfile {
 public:
  virtual ~RateProfile() = default;
  virtual double rate_at(sim::Time t) const = 0;
};

/// MoonGen rate-control ramp: step up every `step` until `peak_pps` at
/// the midpoint, then step back down (§V-B: 2 s steps, 14 Mpps peak at
/// ~30 s of a one-minute run).
class RampProfile final : public RateProfile {
 public:
  RampProfile(double floor_pps, double peak_pps, sim::Time step, sim::Time total)
      : floor_(floor_pps), peak_(peak_pps), step_(step), total_(total) {}

  double rate_at(sim::Time t) const override;

 private:
  double floor_;
  double peak_;
  sim::Time step_;
  sim::Time total_;
};

struct StreamConfig {
  double rate_pps = 14.88e6;
  std::uint16_t wire_size = 64;
  /// Draw sizes from the simple-IMIX mix (64/570/1518 at 7:4:1) instead of
  /// the fixed wire_size — used by the Appendix-II size-independence check.
  bool imix = false;
  sim::Time start = 0;
  sim::Time duration = sim::kSecond;
  bool poisson = false;      // exponential vs constant inter-arrival
  std::uint64_t seed = 42;
};

/// CBR or Poisson stream over a flow set.
class StreamGenerator final : public Generator {
 public:
  StreamGenerator(StreamConfig cfg, const FlowSet& flows, std::unique_ptr<FlowPicker> picker);

  std::optional<nic::PacketDesc> next() override;
  /// Bulk variant with the per-packet draw sequence of next(), minus the
  /// per-packet virtual call — the feeder's steady-state path.
  std::size_t next_batch(std::vector<nic::PacketDesc>& out, std::size_t max) override;

 private:
  StreamConfig cfg_;
  const FlowSet& flows_;
  std::unique_ptr<FlowPicker> picker_;
  sim::Rng rng_;
  sim::Time t_;
  sim::Time gap_;
};

/// Stream whose instantaneous rate follows a RateProfile (re-evaluated per
/// packet). Zero-rate intervals are skipped in 1 ms hops.
class ProfileGenerator final : public Generator {
 public:
  ProfileGenerator(const RateProfile& profile, sim::Time duration, std::uint16_t wire_size,
                   const FlowSet& flows, std::unique_ptr<FlowPicker> picker,
                   std::uint64_t seed = 42);

  std::optional<nic::PacketDesc> next() override;

 private:
  const RateProfile& profile_;
  sim::Time duration_;
  std::uint16_t wire_size_;
  const FlowSet& flows_;
  std::unique_ptr<FlowPicker> picker_;
  sim::Rng rng_;
  sim::Time t_ = 0;
};

}  // namespace metro::tgen
