// Feeder: drives a Generator's packet stream into a simulated Port.
//
// To keep the event count tractable at 10-40 Gbps line rates, arrivals are
// grouped: the feeder pulls packets whose timestamps fall within a short
// window (default 2 us, i.e. well below any vacation period of interest),
// sleeps until the *last* arrival of the group, and pushes the group into
// the port with one rx_burst() call. Per-packet timestamps inside the
// group are exact, so latency accounting is unaffected; only the instant
// at which the ring "sees" the packets is coarsened by < window.
//
// For scenarios where the *pending-event population* is the point (the
// fig13 full-stack regime: thousands to millions of concurrently armed
// flow timers), the per-flow entry points keep one timer armed per flow,
// so N flows put N events in the kernel's pending store — the workload
// the ladder-queue and timing-wheel backends exist for. One event per
// packet; use the grouped feeder when simulation speed matters more than
// population realism. Two implementations share the exact event stream:
//
//   * attach_per_flow_sources() — one coroutine per flow. The readable
//     reference; a heap-allocated frame per flow makes it unaffordable at
//     the million-flow mark.
//   * PerFlowSourceArena — the same processes as a structure-of-arrays
//     arena plus one pooled callback timer per flow. 16 bytes of arena
//     state per flow across three packed lanes, steady-state
//     allocation-free, and construction is a few vector fills instead of
//     millions of coroutine frames. Emits the byte-identical event
//     stream (enforced by tests/test_tgen.cpp).
//
// All entry points are generic over the kernel instantiation; defined in
// feeder.cpp and instantiated for the three shipped backends.
#pragma once

#include <memory>
#include <vector>

#include "nic/port.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "tgen/generator.hpp"

namespace metro::tgen {

struct FeederConfig {
  sim::Time batch_window = 2 * sim::kMicrosecond;
  int max_batch = 32;
};

/// Spawn a coroutine that feeds `gen` into `port` until exhaustion.
/// The generator must outlive the simulation run.
template <typename Sim>
void attach(Sim& sim, nic::BasicPort<Sim>& port, Generator& gen, FeederConfig cfg = {});

/// Per-flow arrival processes (see the file comment).
struct PerFlowSourceConfig {
  double total_rate_pps = 14.88e6;  ///< aggregate over all flows
  bool poisson = true;              ///< exponential vs constant per-flow gaps
  std::uint16_t wire_size = 64;
  sim::Time start = 0;
  sim::Time duration = sim::kSecond;
};

/// Spawn one arrival process per flow of `flows` (flows.size() concurrent
/// pending timers). All randomness is drawn from the owning simulation's
/// RNG in event order, so runs stay bit-identical across backends. The
/// flow set must outlive the simulation run.
template <typename Sim>
void attach_per_flow_sources(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                             PerFlowSourceConfig cfg);

/// Arena-backed per-flow arrival processes: the multi-million-flow form
/// of attach_per_flow_sources. The arena is a structure of arrays — three
/// packed lanes, 16 bytes per flow in total, sized exactly (no growth
/// slack at 2^24 flows):
///
///   * rss hash (4 B)       — the precomputed RSS hash, contiguous so the
///                            fire path touches one dense cache line per
///                            16 flows instead of a FlowSet stride;
///   * next-fire time (8 B) — the instant of the flow's pending timer
///                            (kIdle once the flow retires past its end);
///   * draw state (4 B)     — packets this flow has emitted, i.e. the
///                            gap draws it has consumed from the shared
///                            RNG (per-flow accounting for the at-scale
///                            invariant tests).
///
/// One pending kernel timer per flow carries only the flow index (the
/// 16-byte callback fits the kernel's inline budget), so a fire touches
/// the firing flow's lane entries and nothing else — no coroutine frame,
/// no per-arrival allocation, no shared record to false-share.
///
/// Re-arming is batched where the population is batched: constructing the
/// arena schedules a single bootstrap callback that first streams the
/// uniform phase draws into the next-fire lane (one sequential pass, flow
/// order) and then arms the timers in a second sequential pass, so
/// building a 2^22-flow population is a handful of lane fills plus the
/// kernel inserts — not millions of interleaved draw/spawn round trips
/// through cold kernel structures.
///
/// Equivalence contract: the arena consumes the simulation RNG in the
/// same order as the coroutine path (phase draws in flow order at t=now,
/// then one gap draw per arrival in event order) and arms its timers in
/// the same relative sequence order (the phase/arm split does not change
/// seq assignment: RNG draws consume no sequence numbers, and flows past
/// their end are skipped by both passes exactly as the coroutine's
/// `while (next <= end)` bound would). The emitted packet stream — every
/// field, every delivery instant, and hence every downstream observable —
/// is bit-identical to attach_per_flow_sources for every backend
/// (tests/test_tgen.cpp pins this). Only the kernel's internal event
/// count differs: one bootstrap event replaces the n spawn resumes.
///
/// The arena must outlive the simulation run; it is pinned (callbacks
/// capture `this`).
template <typename Sim>
class PerFlowSourceArena {
 public:
  /// next_fire_at() value of a flow with no pending timer (retired past
  /// `start + duration`, or not yet bootstrapped).
  static constexpr sim::Time kIdle = -1;

  PerFlowSourceArena(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                     PerFlowSourceConfig cfg);
  PerFlowSourceArena(const PerFlowSourceArena&) = delete;
  PerFlowSourceArena& operator=(const PerFlowSourceArena&) = delete;

  std::size_t flow_count() const noexcept { return rss_.size(); }
  /// Timers currently pending in the kernel (0 once every flow passed
  /// `start + duration`).
  std::size_t armed() const noexcept { return armed_; }
  /// Packets emitted so far.
  std::uint64_t fired() const noexcept { return fired_; }

  // --- per-flow lane accessors (accounting tests and diagnostics) -------
  /// True while `flow` has a timer pending in the kernel.
  bool flow_armed(std::uint32_t flow) const noexcept { return next_at_[flow] != kIdle; }
  /// The pending timer's fire instant, or kIdle when the flow retired.
  sim::Time next_fire_at(std::uint32_t flow) const noexcept { return next_at_[flow]; }
  /// Packets this flow emitted (== gap draws it consumed).
  std::uint32_t flow_fired(std::uint32_t flow) const noexcept { return emitted_[flow]; }

 private:
  void bootstrap();
  void fire(std::uint32_t flow);
  void arm(std::uint32_t flow);

  Sim& sim_;
  nic::BasicPort<Sim>& port_;
  // The SoA lanes (16 B per flow; see the class comment).
  std::vector<std::uint32_t> rss_;      ///< RSS hash lane
  std::vector<sim::Time> next_at_;      ///< next-fire lane (kIdle = retired)
  std::vector<std::uint32_t> emitted_;  ///< draw-state lane (packets emitted)
  PerFlowSourceConfig cfg_;
  double mean_gap_ns_ = 0.0;
  sim::Time end_ = 0;
  std::size_t armed_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace metro::tgen
