// Feeder: drives a Generator's packet stream into a simulated Port.
//
// To keep the event count tractable at 10-40 Gbps line rates, arrivals are
// grouped: the feeder pulls packets whose timestamps fall within a short
// window (default 2 us, i.e. well below any vacation period of interest),
// sleeps until the *last* arrival of the group, and pushes the group into
// the port with one rx_burst() call. Per-packet timestamps inside the
// group are exact, so latency accounting is unaffected; only the instant
// at which the ring "sees" the packets is coarsened by < window.
//
// For scenarios where the *pending-event population* is the point (the
// fig13 full-stack regime: tens of thousands of concurrently armed flow
// timers), attach_per_flow_sources() spawns one arrival process per flow
// instead: every flow keeps one timer armed at all times, so N flows put N
// events in the kernel's pending store — the workload the ladder queue
// backend exists for. One event per packet; use the grouped feeder when
// simulation speed matters more than population realism.
//
// Both entry points are generic over the kernel instantiation; defined in
// feeder.cpp and instantiated for both shipped backends.
#pragma once

#include <memory>

#include "nic/port.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "tgen/generator.hpp"

namespace metro::tgen {

struct FeederConfig {
  sim::Time batch_window = 2 * sim::kMicrosecond;
  int max_batch = 32;
};

/// Spawn a coroutine that feeds `gen` into `port` until exhaustion.
/// The generator must outlive the simulation run.
template <typename Sim>
void attach(Sim& sim, nic::BasicPort<Sim>& port, Generator& gen, FeederConfig cfg = {});

/// Per-flow arrival processes (see the file comment).
struct PerFlowSourceConfig {
  double total_rate_pps = 14.88e6;  ///< aggregate over all flows
  bool poisson = true;              ///< exponential vs constant per-flow gaps
  std::uint16_t wire_size = 64;
  sim::Time start = 0;
  sim::Time duration = sim::kSecond;
};

/// Spawn one arrival process per flow of `flows` (flows.size() concurrent
/// pending timers). All randomness is drawn from the owning simulation's
/// RNG in event order, so runs stay bit-identical across backends. The
/// flow set must outlive the simulation run.
template <typename Sim>
void attach_per_flow_sources(Sim& sim, nic::BasicPort<Sim>& port, const FlowSet& flows,
                             PerFlowSourceConfig cfg);

}  // namespace metro::tgen
