// Feeder: drives a Generator's packet stream into a simulated Port.
//
// To keep the event count tractable at 10-40 Gbps line rates, arrivals are
// grouped: the feeder pulls packets whose timestamps fall within a short
// window (default 2 us, i.e. well below any vacation period of interest),
// sleeps until the *last* arrival of the group, and pushes the group in one
// event. Per-packet timestamps inside the group are exact, so latency
// accounting is unaffected; only the instant at which the ring "sees" the
// packets is coarsened by < window.
#pragma once

#include <memory>

#include "nic/port.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "tgen/generator.hpp"

namespace metro::tgen {

struct FeederConfig {
  sim::Time batch_window = 2 * sim::kMicrosecond;
  int max_batch = 32;
};

/// Spawn a coroutine that feeds `gen` into `port` until exhaustion.
/// The generator must outlive the simulation run.
void attach(sim::Simulation& sim, nic::Port& port, Generator& gen, FeederConfig cfg = {});

}  // namespace metro::tgen
