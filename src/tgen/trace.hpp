// Trace-based workload generation.
//
// §V-F.4 drives the unbalanced experiment by "continuously sending at line
// rate an unbalanced pcap file ... composed by 1000 packets, 30% of the
// packets belongs to the same UDP flow, while the other 70% is randomly
// generated". This module provides:
//   * synthesise_unbalanced_trace(): builds exactly that 1000-packet trace
//     (real Ethernet/IPv4/UDP frames, usable with net::PcapWriter);
//   * TraceGenerator: replays a parsed trace in a loop at a target rate,
//     recomputing each packet's RSS hash from its real headers;
//   * ImixFlowSizes: the standard simple-IMIX size mix (7:4:1 of
//     64/570/1518 B), used by the Appendix-II size-independence ablation.
#pragma once

#include <optional>
#include <vector>

#include "net/flow.hpp"
#include "net/pcap.hpp"
#include "nic/sim_packet.hpp"
#include "sim/rng.hpp"
#include "tgen/generator.hpp"

namespace metro::tgen {

/// One replayable trace entry: pre-extracted tuple + precomputed RSS hash.
struct TraceEntry {
  net::FiveTuple tuple;
  std::uint32_t rss_hash = 0;
  std::uint16_t wire_size = 64;
};

/// Build the §V-F.4 trace: `n_packets` frames, `heavy_share` of them in one
/// UDP flow, the rest random. Frames are real packets (build_udp_packet).
std::vector<net::PcapPacket> synthesise_unbalanced_trace(std::size_t n_packets,
                                                         double heavy_share,
                                                         std::uint64_t seed);

/// Parse pcap packets into replayable entries (non-IPv4 frames skipped).
std::vector<TraceEntry> parse_trace(const std::vector<net::PcapPacket>& packets);

/// Replay a trace in a loop at a constant packet rate.
class TraceGenerator final : public Generator {
 public:
  TraceGenerator(std::vector<TraceEntry> entries, double rate_pps, sim::Time duration);

  std::optional<nic::PacketDesc> next() override;

 private:
  std::vector<TraceEntry> entries_;
  sim::Time gap_;
  sim::Time duration_;
  sim::Time t_ = 0;
  std::size_t index_ = 0;
};

/// Simple IMIX: 64 B x7, 570 B x4, 1518 B x1 (per dozen).
class ImixSizes {
 public:
  std::uint16_t next(sim::Rng& rng) const {
    const auto roll = rng.uniform_u64(12);
    if (roll < 7) return 64;
    if (roll < 11) return 570;
    return 1518;
  }
  /// Mean wire size of the mix, bytes.
  static constexpr double mean_size() { return (7.0 * 64 + 4.0 * 570 + 1518) / 12.0; }
};

}  // namespace metro::tgen
