#include "net/headers.hpp"

namespace metro::net {

std::uint16_t internet_checksum(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t sum = 0;
  while (len >= 2) {
    std::uint16_t word;
    std::memcpy(&word, bytes, 2);
    sum += be16_to_host(word);
    bytes += 2;
    len -= 2;
  }
  if (len == 1) sum += static_cast<std::uint32_t>(*bytes) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

void ipv4_set_checksum(Ipv4Header& ip) {
  ip.checksum = 0;
  ip.checksum = host_to_be16(internet_checksum(&ip, ip.header_len()));
}

bool ipv4_checksum_ok(const Ipv4Header& ip) {
  return internet_checksum(&ip, ip.header_len()) == 0;
}

std::uint16_t checksum_update16(std::uint16_t old_checksum, std::uint16_t old_field,
                                std::uint16_t new_field) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_field);
  sum += new_field;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace metro::net
