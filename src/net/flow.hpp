// 5-tuple flow identity and hashing.
//
// Used by the exact-match l3fwd variant, the FloWatcher flow table, and
// (via Toeplitz in nic/rss.hpp) by RSS queue selection.
#pragma once

#include <cstdint>
#include <functional>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace metro::net {

struct FiveTuple {
  std::uint32_t src_ip = 0;  // host order
  std::uint32_t dst_ip = 0;  // host order
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;
};

/// Extract the 5-tuple from an Ethernet/IPv4/{UDP,TCP} packet.
/// Returns false for anything else.
inline bool extract_five_tuple(const Packet& pkt, FiveTuple& out) {
  if (pkt.size() < sizeof(EthernetHeader) + sizeof(Ipv4Header)) return false;
  const auto* eth = pkt.at<EthernetHeader>(0);
  if (be16_to_host(eth->ether_type) != kEtherTypeIpv4) return false;
  const auto* ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  out.src_ip = be32_to_host(ip->src);
  out.dst_ip = be32_to_host(ip->dst);
  out.protocol = ip->protocol;
  const std::size_t l4_off = sizeof(EthernetHeader) + ip->header_len();
  if (ip->protocol == kIpProtoUdp || ip->protocol == kIpProtoTcp) {
    if (pkt.size() < l4_off + 4) return false;
    // Ports sit at the same offsets in UDP and TCP.
    const auto* ports = pkt.at<std::uint16_t>(l4_off);
    out.src_port = be16_to_host(ports[0]);
    out.dst_port = be16_to_host(ports[1]);
  } else {
    out.src_port = 0;
    out.dst_port = 0;
  }
  return true;
}

/// 64-bit mix hash of the 5-tuple (SplitMix-style finalizer). Fast and
/// well distributed; used for flow tables (Toeplitz is used for RSS).
inline std::uint64_t flow_hash(const FiveTuple& t) {
  std::uint64_t h = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
  h ^= (static_cast<std::uint64_t>(t.src_port) << 24) ^
       (static_cast<std::uint64_t>(t.dst_port) << 8) ^ t.protocol;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace metro::net

template <>
struct std::hash<metro::net::FiveTuple> {
  std::size_t operator()(const metro::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(metro::net::flow_hash(t));
  }
};
