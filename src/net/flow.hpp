// 5-tuple flow identity and hashing.
//
// Used by the exact-match l3fwd variant, the FloWatcher flow table, and
// (via Toeplitz in nic/rss.hpp) by RSS queue selection.
#pragma once

#include <cstdint>
#include <functional>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace metro::net {

struct FiveTuple {
  std::uint32_t src_ip = 0;  // host order
  std::uint32_t dst_ip = 0;  // host order
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;
};

/// Why a 5-tuple extraction did not produce a tuple. Distinguishing
/// "not our protocol" from "IPv4 that lies about itself" lets the apps
/// keep separate non-IP and malformed drop counters (the fault plane's
/// bit-flip corruption produces the latter).
enum class FiveTupleError {
  kOk,
  kNotIpv4,    ///< too short for Ethernet, or a non-IPv4 ethertype
  kMalformed,  ///< IPv4 ethertype but the header is unusable (bad
               ///< version/IHL, or truncated below what it declares)
};

/// Extract the 5-tuple from an Ethernet/IPv4/{UDP,TCP} packet with full
/// header validation: every field is bounds-checked against the buffer
/// *before* it is read (Packet::at's asserts vanish under NDEBUG, so the
/// checks here are the only thing between a corrupted IHL and an
/// out-of-bounds read in Release builds).
inline FiveTupleError classify_five_tuple(const Packet& pkt, FiveTuple& out) {
  if (pkt.size() < sizeof(EthernetHeader)) return FiveTupleError::kNotIpv4;
  const auto* eth = pkt.at<EthernetHeader>(0);
  if (be16_to_host(eth->ether_type) != kEtherTypeIpv4) return FiveTupleError::kNotIpv4;
  if (pkt.size() < sizeof(EthernetHeader) + sizeof(Ipv4Header)) return FiveTupleError::kMalformed;
  const auto* ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  if ((ip->version_ihl >> 4) != 4) return FiveTupleError::kMalformed;
  const std::size_t ihl = ip->header_len();
  if (ihl < sizeof(Ipv4Header)) return FiveTupleError::kMalformed;
  if (pkt.size() < sizeof(EthernetHeader) + ihl) return FiveTupleError::kMalformed;
  // total_length must cover the header and must not claim bytes the
  // buffer does not hold (shorter is fine: Ethernet pads small frames).
  const std::size_t total_len = be16_to_host(ip->total_length);
  if (total_len < ihl || total_len > pkt.size() - sizeof(EthernetHeader)) {
    return FiveTupleError::kMalformed;
  }
  out.src_ip = be32_to_host(ip->src);
  out.dst_ip = be32_to_host(ip->dst);
  out.protocol = ip->protocol;
  const std::size_t l4_off = sizeof(EthernetHeader) + ihl;
  if (ip->protocol == kIpProtoUdp || ip->protocol == kIpProtoTcp) {
    if (pkt.size() < l4_off + 4) return FiveTupleError::kMalformed;
    // Ports sit at the same offsets in UDP and TCP.
    const auto* ports = pkt.at<std::uint16_t>(l4_off);
    out.src_port = be16_to_host(ports[0]);
    out.dst_port = be16_to_host(ports[1]);
  } else {
    out.src_port = 0;
    out.dst_port = 0;
  }
  return FiveTupleError::kOk;
}

/// Extract the 5-tuple from an Ethernet/IPv4/{UDP,TCP} packet.
/// Returns false for anything else (callers that care *why* use
/// classify_five_tuple).
inline bool extract_five_tuple(const Packet& pkt, FiveTuple& out) {
  return classify_five_tuple(pkt, out) == FiveTupleError::kOk;
}

/// 64-bit mix hash of the 5-tuple (SplitMix-style finalizer). Fast and
/// well distributed; used for flow tables (Toeplitz is used for RSS).
inline std::uint64_t flow_hash(const FiveTuple& t) {
  std::uint64_t h = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
  h ^= (static_cast<std::uint64_t>(t.src_port) << 24) ^
       (static_cast<std::uint64_t>(t.dst_port) << 8) ^ t.protocol;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace metro::net

template <>
struct std::hash<metro::net::FiveTuple> {
  std::size_t operator()(const metro::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(metro::net::flow_hash(t));
  }
};
