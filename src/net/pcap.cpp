#include "net/pcap.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace metro::net {

namespace {

constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

void put_u32(std::ostream& out, std::uint32_t v) {
  // Host byte order, as pcap writers conventionally do.
  out.write(reinterpret_cast<const char*>(&v), 4);
}
void put_u16(std::ostream& out, std::uint16_t v) {
  out.write(reinterpret_cast<const char*>(&v), 2);
}

std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xffu) << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) | (v >> 24);
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen) : out_(out), snaplen_(snaplen) {
  put_u32(out_, kMagicMicro);
  put_u16(out_, 2);   // version major
  put_u16(out_, 4);   // version minor
  put_u32(out_, 0);   // thiszone
  put_u32(out_, 0);   // sigfigs
  put_u32(out_, snaplen_);
  put_u32(out_, kLinkTypeEthernet);
}

void PcapWriter::write(const PcapPacket& pkt) {
  const auto secs = static_cast<std::uint32_t>(pkt.timestamp_ns / 1'000'000'000);
  const auto micros = static_cast<std::uint32_t>((pkt.timestamp_ns % 1'000'000'000) / 1000);
  const auto caplen =
      static_cast<std::uint32_t>(std::min<std::size_t>(pkt.data.size(), snaplen_));
  put_u32(out_, secs);
  put_u32(out_, micros);
  put_u32(out_, caplen);
  put_u32(out_, static_cast<std::uint32_t>(pkt.data.size()));
  out_.write(reinterpret_cast<const char*>(pkt.data.data()), caplen);
  ++count_;
}

std::uint32_t PcapReader::u32(const std::uint8_t* p) const {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return swapped_ ? swap32(v) : v;
}

PcapReader::PcapReader(std::istream& in) : in_(in) {
  std::array<std::uint8_t, 24> header;
  in_.read(reinterpret_cast<char*>(header.data()), static_cast<std::streamsize>(header.size()));
  if (in_.gcount() != 24) throw std::runtime_error("pcap: truncated global header");
  std::uint32_t magic;
  std::memcpy(&magic, header.data(), 4);
  switch (magic) {
    case kMagicMicro:
      break;
    case kMagicNano:
      nanosecond_ = true;
      break;
    case kMagicMicroSwapped:
      swapped_ = true;
      break;
    case kMagicNanoSwapped:
      swapped_ = true;
      nanosecond_ = true;
      break;
    default:
      throw std::runtime_error("pcap: bad magic");
  }
  snaplen_ = u32(header.data() + 16);
}

bool PcapReader::next(PcapPacket& out) {
  std::array<std::uint8_t, 16> rec;
  in_.read(reinterpret_cast<char*>(rec.data()), static_cast<std::streamsize>(rec.size()));
  if (in_.gcount() == 0) return false;  // clean EOF
  if (in_.gcount() != 16) throw std::runtime_error("pcap: truncated record header");
  const std::uint32_t secs = u32(rec.data());
  const std::uint32_t frac = u32(rec.data() + 4);
  const std::uint32_t caplen = u32(rec.data() + 8);
  // A corrupted length field must not become a multi-gigabyte allocation:
  // no valid record exceeds the file's declared snaplen (cap at 256 KiB
  // even if the global header claims more — jumbo frames top out far
  // below that).
  const std::uint32_t limit = std::min<std::uint32_t>(snaplen_ > 0 ? snaplen_ : 65535, 1u << 18);
  if (caplen > limit) throw std::runtime_error("pcap: record caplen exceeds snaplen");
  out.timestamp_ns = static_cast<std::int64_t>(secs) * 1'000'000'000 +
                     static_cast<std::int64_t>(frac) * (nanosecond_ ? 1 : 1000);
  out.data.resize(caplen);
  in_.read(reinterpret_cast<char*>(out.data.data()), caplen);
  if (in_.gcount() != static_cast<std::streamsize>(caplen)) {
    throw std::runtime_error("pcap: truncated packet data");
  }
  return true;
}

std::vector<PcapPacket> PcapReader::read_all(std::istream& in) {
  PcapReader reader(in);
  std::vector<PcapPacket> packets;
  PcapPacket pkt;
  while (reader.next(pkt)) packets.push_back(pkt);
  return packets;
}

}  // namespace metro::net
