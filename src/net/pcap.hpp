// Minimal pcap file support (classic libpcap format, magic 0xa1b2c3d4).
//
// §V-F.4 drives the unbalanced multi-queue experiment from a 1000-packet
// pcap file replayed in a loop. This module writes and reads that format
// so the workload can be built exactly the same way: synthesise a trace
// with the wanted flow mix, persist it, and replay it through the
// generator (tgen/trace.hpp). Microsecond timestamps, Ethernet link type.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace metro::net {

struct PcapPacket {
  std::int64_t timestamp_ns = 0;
  std::vector<std::uint8_t> data;  // captured bytes (we never truncate)
};

class PcapWriter {
 public:
  /// Writes the global header immediately. `snaplen` caps caplen fields.
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535);

  void write(const PcapPacket& pkt);
  std::size_t packets_written() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint32_t snaplen_;
  std::size_t count_ = 0;
};

class PcapReader {
 public:
  /// Parses the global header; throws std::runtime_error on a bad magic.
  explicit PcapReader(std::istream& in);

  /// Read the next record. Returns false at a clean end of file; throws on
  /// a truncated record.
  bool next(PcapPacket& out);

  /// Convenience: read a whole file.
  static std::vector<PcapPacket> read_all(std::istream& in);

  bool byte_swapped() const noexcept { return swapped_; }
  std::uint32_t snaplen() const noexcept { return snaplen_; }

 private:
  std::uint32_t u32(const std::uint8_t* p) const;
  std::istream& in_;
  bool swapped_ = false;
  bool nanosecond_ = false;
  std::uint32_t snaplen_ = 0;
};

}  // namespace metro::net
