// mbuf-style packet buffer.
//
// Mirrors the parts of rte_mbuf the applications need: a fixed-capacity
// data room with headroom (so tunnel encapsulation can prepend headers
// without copying the payload), a wire length, and metadata (arrival
// timestamp, RSS hash, input queue). Buffers are pool-allocated
// (mempool.hpp) and never own heap memory themselves.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

namespace metro::net {

class Packet {
 public:
  static constexpr std::size_t kDataRoom = 2048;
  static constexpr std::size_t kHeadroom = 128;

  Packet() { reset(); }

  /// Restore the pristine state (called by the mempool on free).
  void reset() {
    data_off_ = kHeadroom;
    data_len_ = 0;
    arrival_ns = 0;
    rss_hash = 0;
    queue = 0;
  }

  std::uint8_t* data() { return room_ + data_off_; }
  const std::uint8_t* data() const { return room_ + data_off_; }
  std::size_t size() const { return data_len_; }
  std::size_t headroom() const { return data_off_; }
  std::size_t tailroom() const { return kDataRoom - data_off_ - data_len_; }

  /// Set the payload, centered after the headroom.
  void assign(const void* src, std::size_t len) {
    assert(len <= kDataRoom - kHeadroom);
    data_off_ = kHeadroom;
    data_len_ = len;
    std::memcpy(data(), src, len);
  }

  /// Fill `len` bytes with a pattern (synthetic payloads).
  void fill(std::uint8_t byte, std::size_t len) {
    assert(len <= kDataRoom - kHeadroom);
    data_off_ = kHeadroom;
    data_len_ = len;
    std::memset(data(), byte, len);
  }

  /// Prepend `len` bytes (tunnel encap). Returns pointer to the new start.
  std::uint8_t* prepend(std::size_t len) {
    assert(len <= data_off_);
    data_off_ -= len;
    data_len_ += len;
    return data();
  }

  /// Remove `len` bytes from the front (decap).
  std::uint8_t* adj(std::size_t len) {
    assert(len <= data_len_);
    data_off_ += len;
    data_len_ -= len;
    return data();
  }

  /// Append `len` bytes at the tail (padding, trailers). Returns pointer to
  /// the appended region.
  std::uint8_t* append(std::size_t len) {
    assert(len <= tailroom());
    std::uint8_t* p = room_ + data_off_ + data_len_;
    data_len_ += len;
    return p;
  }

  /// Trim `len` bytes from the tail.
  void trim(std::size_t len) {
    assert(len <= data_len_);
    data_len_ -= len;
  }

  /// Typed view at a byte offset into the payload.
  template <typename T>
  T* at(std::size_t offset) {
    assert(offset + sizeof(T) <= data_len_);
    return reinterpret_cast<T*>(data() + offset);
  }
  template <typename T>
  const T* at(std::size_t offset) const {
    assert(offset + sizeof(T) <= data_len_);
    return reinterpret_cast<const T*>(data() + offset);
  }

  // --- metadata (rte_mbuf-style) ---------------------------------------
  std::int64_t arrival_ns = 0;
  std::uint32_t rss_hash = 0;
  std::uint16_t queue = 0;

 private:
  std::size_t data_off_ = kHeadroom;
  std::size_t data_len_ = 0;
  alignas(64) std::uint8_t room_[kDataRoom];
};

}  // namespace metro::net
