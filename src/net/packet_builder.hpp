// Synthetic packet construction.
//
// Builds well-formed Ethernet/IPv4/UDP frames from a 5-tuple — the frames
// the tests, examples, trace synthesiser and functional benchmarks all
// share. `wire_size` includes the 4-byte FCS, which (as with a real NIC)
// is not carried in the buffer: a 64 B wire frame yields 60 B of data.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/flow.hpp"
#include "net/packet.hpp"

namespace metro::net {

void build_udp_packet(Packet& pkt, const FiveTuple& tuple, std::size_t wire_size = 64,
                      std::uint8_t ttl = 64);

}  // namespace metro::net
