// DIR-24-8 longest-prefix-match table (the algorithm behind rte_lpm).
//
// Lookup is one memory access for prefixes up to /24 (a 2^24-entry first
// table indexed by the top 24 address bits) and two for longer prefixes
// (an "extended" first-level entry points into a 256-entry second-level
// group indexed by the last byte). Add and delete maintain per-entry
// depths so overlapping prefixes resolve to the longest match, exactly as
// in DPDK's implementation; a shadow rule list supports delete-with-
// backfill (a deleted prefix's range is repainted with the next-longest
// covering rule).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace metro::net {

class LpmTable {
 public:
  using NextHop = std::uint16_t;
  static constexpr int kMaxDepth = 32;

  /// `max_tbl8_groups`: capacity for >/24 prefixes (DPDK default 256).
  explicit LpmTable(std::size_t max_tbl8_groups = 256);

  /// Insert or update a route. `ip` is in host order; `depth` in [1, 32].
  /// Returns false if depth is invalid or tbl8 space is exhausted.
  bool add(std::uint32_t ip, int depth, NextHop next_hop);

  /// Remove a route. Returns false if no such (prefix, depth) rule exists.
  bool remove(std::uint32_t ip, int depth);

  /// Longest-prefix lookup. nullopt on miss.
  std::optional<NextHop> lookup(std::uint32_t ip) const;

  std::size_t rule_count() const noexcept { return rules_.size(); }
  std::size_t tbl8_groups_in_use() const noexcept { return used_groups_; }

 private:
  struct Entry {
    // valid=0 means miss. When ext=1, value indexes a tbl8 group;
    // otherwise it is the next hop. depth = prefix length that painted
    // this entry (0 for the tbl8 "inherited" background).
    std::uint32_t valid : 1;
    std::uint32_t ext : 1;
    std::uint32_t depth : 6;
    std::uint32_t value : 24;
  };
  static_assert(sizeof(Entry) == 4);

  struct Rule {
    std::uint32_t prefix;  // masked network address, host order
    int depth;
    NextHop next_hop;
  };

  static std::uint32_t mask_of(int depth) {
    return depth == 0 ? 0 : ~std::uint32_t{0} << (32 - depth);
  }

  const Rule* find_rule(std::uint32_t prefix, int depth) const;
  /// Longest rule strictly shorter than `depth` covering `ip`.
  const Rule* covering_rule(std::uint32_t ip, int depth) const;

  int alloc_tbl8(const Entry& background);
  void free_tbl8(int group);

  void paint24(std::uint32_t ip, int depth, Entry paint);
  void paint8(int group, std::uint32_t ip, int depth, Entry paint);

  std::vector<Entry> tbl24_;
  std::vector<Entry> tbl8_;         // max_groups * 256 entries
  std::vector<bool> group_used_;
  std::size_t used_groups_ = 0;
  std::vector<Rule> rules_;
};

}  // namespace metro::net
