// Wire-format protocol headers: Ethernet, IPv4, UDP, TCP, ESP.
//
// All structs are packed wire layouts; multi-byte fields are big endian and
// must be accessed through the byteorder helpers. Checksum routines
// implement RFC 1071 (one's-complement sum) including the incremental
// update used by the l3fwd TTL decrement (RFC 1624).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "net/byteorder.hpp"

namespace metro::net {

using MacAddress = std::array<std::uint8_t, 6>;

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

#pragma pack(push, 1)

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type;  // big endian
};
static_assert(sizeof(EthernetHeader) == 14);

struct Ipv4Header {
  std::uint8_t version_ihl;    // 0x45 for a 20-byte header
  std::uint8_t tos;
  std::uint16_t total_length;  // big endian
  std::uint16_t id;            // big endian
  std::uint16_t frag_offset;   // big endian
  std::uint8_t ttl;
  std::uint8_t protocol;
  std::uint16_t checksum;      // big endian
  std::uint32_t src;           // big endian
  std::uint32_t dst;           // big endian

  std::uint8_t header_len() const { return static_cast<std::uint8_t>((version_ihl & 0x0f) * 4); }
};
static_assert(sizeof(Ipv4Header) == 20);

struct UdpHeader {
  std::uint16_t src_port;  // big endian
  std::uint16_t dst_port;  // big endian
  std::uint16_t length;    // big endian
  std::uint16_t checksum;  // big endian
};
static_assert(sizeof(UdpHeader) == 8);

struct TcpHeader {
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t seq;
  std::uint32_t ack;
  std::uint8_t data_offset;  // upper nibble = header length in words
  std::uint8_t flags;
  std::uint16_t window;
  std::uint16_t checksum;
  std::uint16_t urgent;
};
static_assert(sizeof(TcpHeader) == 20);

/// IPsec Encapsulating Security Payload header (RFC 4303).
struct EspHeader {
  std::uint32_t spi;       // big endian
  std::uint32_t sequence;  // big endian
};
static_assert(sizeof(EspHeader) == 8);

#pragma pack(pop)

inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoEsp = 50;

/// RFC 1071 one's-complement checksum over `len` bytes.
std::uint16_t internet_checksum(const void* data, std::size_t len);

/// Compute and store the IPv4 header checksum (checksum field zeroed first).
void ipv4_set_checksum(Ipv4Header& ip);

/// Verify the IPv4 header checksum.
bool ipv4_checksum_ok(const Ipv4Header& ip);

/// RFC 1624 incremental checksum update for a 16-bit field change.
std::uint16_t checksum_update16(std::uint16_t old_checksum, std::uint16_t old_field,
                                std::uint16_t new_field);

/// Build a dotted-quad IPv4 address as a host-order uint32.
constexpr std::uint32_t ipv4_addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

}  // namespace metro::net
