// Fixed-size packet buffer pool (rte_mempool analogue).
//
// All buffers are allocated once up front (DPDK does this from hugepages);
// alloc/free push and pop a freelist and never touch the system allocator
// on the fast path. Exhaustion returns nullptr, exactly like
// rte_pktmbuf_alloc on an empty pool — callers must handle it (the NIC
// model counts it as an allocation drop).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace metro::net {

class Mempool {
 public:
  explicit Mempool(std::size_t capacity) : storage_(capacity) {
    free_.reserve(capacity);
    for (auto& p : storage_) free_.push_back(&p);
  }

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  /// Pop a pristine buffer, or nullptr when exhausted.
  Packet* alloc() {
    if (free_.empty()) {
      ++alloc_failures_;
      return nullptr;
    }
    Packet* p = free_.back();
    free_.pop_back();
    return p;
  }

  /// Return a buffer to the pool. `p` must have come from this pool.
  void free(Packet* p) {
    p->reset();
    free_.push_back(p);
  }

  std::size_t capacity() const noexcept { return storage_.size(); }
  std::size_t available() const noexcept { return free_.size(); }
  std::size_t in_use() const noexcept { return storage_.size() - free_.size(); }
  std::size_t alloc_failures() const noexcept { return alloc_failures_; }

 private:
  std::vector<Packet> storage_;
  std::vector<Packet*> free_;
  std::size_t alloc_failures_ = 0;
};

}  // namespace metro::net
