#include "net/lpm.hpp"

#include <algorithm>

namespace metro::net {

namespace {
constexpr std::size_t kTbl24Size = 1u << 24;
constexpr std::size_t kTbl8GroupSize = 256;
}  // namespace

LpmTable::LpmTable(std::size_t max_tbl8_groups)
    : tbl24_(kTbl24Size, Entry{0, 0, 0, 0}),
      tbl8_(max_tbl8_groups * kTbl8GroupSize, Entry{0, 0, 0, 0}),
      group_used_(max_tbl8_groups, false) {}

const LpmTable::Rule* LpmTable::find_rule(std::uint32_t prefix, int depth) const {
  for (const auto& r : rules_) {
    if (r.depth == depth && r.prefix == prefix) return &r;
  }
  return nullptr;
}

const LpmTable::Rule* LpmTable::covering_rule(std::uint32_t ip, int depth) const {
  const Rule* best = nullptr;
  for (const auto& r : rules_) {
    if (r.depth >= depth) continue;
    if ((ip & mask_of(r.depth)) != r.prefix) continue;
    if (best == nullptr || r.depth > best->depth) best = &r;
  }
  return best;
}

int LpmTable::alloc_tbl8(const Entry& background) {
  for (std::size_t g = 0; g < group_used_.size(); ++g) {
    if (group_used_[g]) continue;
    group_used_[g] = true;
    ++used_groups_;
    auto* base = &tbl8_[g * kTbl8GroupSize];
    std::fill(base, base + kTbl8GroupSize, background);
    return static_cast<int>(g);
  }
  return -1;
}

void LpmTable::free_tbl8(int group) {
  group_used_[static_cast<std::size_t>(group)] = false;
  --used_groups_;
}

void LpmTable::paint24(std::uint32_t ip, int depth, Entry paint) {
  // Range of tbl24 slots covered by the (<= /24) prefix.
  const std::uint32_t first = (ip & mask_of(depth)) >> 8;
  const std::uint32_t count = 1u << (24 - depth);
  for (std::uint32_t i = first; i < first + count; ++i) {
    Entry& e = tbl24_[i];
    if (e.valid && e.ext) {
      // Repaint the group's background (entries painted by shorter or
      // equal depth), preserving longer sub-prefixes inside the group.
      auto* base = &tbl8_[e.value * kTbl8GroupSize];
      for (std::size_t j = 0; j < kTbl8GroupSize; ++j) {
        if (!base[j].valid || base[j].depth <= depth) {
          base[j] = paint;
        }
      }
    } else if (!e.valid || e.depth <= depth) {
      e = paint;
    }
  }
}

void LpmTable::paint8(int group, std::uint32_t ip, int depth, Entry paint) {
  auto* base = &tbl8_[static_cast<std::size_t>(group) * kTbl8GroupSize];
  const std::uint32_t first = (ip & mask_of(depth)) & 0xff;
  const std::uint32_t count = 1u << (32 - depth);
  for (std::uint32_t j = first; j < first + count; ++j) {
    if (!base[j].valid || base[j].depth <= depth) base[j] = paint;
  }
}

bool LpmTable::add(std::uint32_t ip, int depth, NextHop next_hop) {
  if (depth < 1 || depth > kMaxDepth) return false;
  const std::uint32_t prefix = ip & mask_of(depth);

  if (const Rule* existing = find_rule(prefix, depth); existing != nullptr) {
    const_cast<Rule*>(existing)->next_hop = next_hop;
  } else {
    rules_.push_back(Rule{prefix, depth, next_hop});
  }

  const Entry paint{1, 0, static_cast<std::uint32_t>(depth), next_hop};
  if (depth <= 24) {
    paint24(prefix, depth, paint);
    return true;
  }

  // Depth > 24: ensure the covering tbl24 slot is extended.
  const std::uint32_t idx24 = prefix >> 8;
  Entry& top = tbl24_[idx24];
  if (!(top.valid && top.ext)) {
    const Entry background = top;  // may be invalid or a <= /24 route
    const int group = alloc_tbl8(background);
    if (group < 0) {
      // Roll back the rule insertion on table exhaustion.
      std::erase_if(rules_, [&](const Rule& r) { return r.depth == depth && r.prefix == prefix; });
      return false;
    }
    top = Entry{1, 1, 0, static_cast<std::uint32_t>(group)};
  }
  paint8(static_cast<int>(top.value), prefix, depth, paint);
  return true;
}

bool LpmTable::remove(std::uint32_t ip, int depth) {
  if (depth < 1 || depth > kMaxDepth) return false;
  const std::uint32_t prefix = ip & mask_of(depth);
  const auto it = std::find_if(rules_.begin(), rules_.end(), [&](const Rule& r) {
    return r.depth == depth && r.prefix == prefix;
  });
  if (it == rules_.end()) return false;
  rules_.erase(it);

  // Backfill paint: next-longest covering rule, or invalid.
  const Rule* cover = covering_rule(prefix, depth);
  Entry paint{0, 0, 0, 0};
  if (cover != nullptr) {
    paint = Entry{1, 0, static_cast<std::uint32_t>(cover->depth), cover->next_hop};
  }

  if (depth <= 24) {
    // Repaint slots whose painter was exactly this rule.
    const std::uint32_t first = prefix >> 8;
    const std::uint32_t count = 1u << (24 - depth);
    for (std::uint32_t i = first; i < first + count; ++i) {
      Entry& e = tbl24_[i];
      if (e.valid && e.ext) {
        auto* base = &tbl8_[e.value * kTbl8GroupSize];
        for (std::size_t j = 0; j < kTbl8GroupSize; ++j) {
          if (base[j].valid && !base[j].ext && base[j].depth == static_cast<std::uint32_t>(depth)) {
            base[j] = paint;
          }
        }
      } else if (e.valid && e.depth == static_cast<std::uint32_t>(depth)) {
        e = paint;
      }
    }
    return true;
  }

  const std::uint32_t idx24 = prefix >> 8;
  Entry& top = tbl24_[idx24];
  if (!(top.valid && top.ext)) return true;  // nothing painted (shouldn't happen)
  const int group = static_cast<int>(top.value);
  auto* base = &tbl8_[static_cast<std::size_t>(group) * kTbl8GroupSize];
  const std::uint32_t first = prefix & 0xff;
  const std::uint32_t count = 1u << (32 - depth);
  for (std::uint32_t j = first; j < first + count; ++j) {
    if (base[j].valid && base[j].depth == static_cast<std::uint32_t>(depth)) base[j] = paint;
  }

  // Collapse the group back into tbl24 if no > /24 entries remain.
  const bool has_long = std::any_of(base, base + kTbl8GroupSize,
                                    [](const Entry& e) { return e.valid && e.depth > 24; });
  if (!has_long) {
    // All entries share the background (some <= /24 cover or invalid).
    top = base[0];
    free_tbl8(group);
  }
  return true;
}

std::optional<LpmTable::NextHop> LpmTable::lookup(std::uint32_t ip) const {
  const Entry e = tbl24_[ip >> 8];
  if (!e.valid) return std::nullopt;
  if (!e.ext) return static_cast<NextHop>(e.value);
  const Entry e8 = tbl8_[e.value * kTbl8GroupSize + (ip & 0xff)];
  if (!e8.valid) return std::nullopt;
  return static_cast<NextHop>(e8.value);
}

}  // namespace metro::net
