// Network byte-order helpers.
//
// Header structs store multi-byte fields in network byte order (big
// endian), as on the wire; these helpers convert explicitly at the access
// points so the structs can be memcpy'd straight out of packet buffers.
#pragma once

#include <bit>
#include <cstdint>

namespace metro::net {

constexpr std::uint16_t bswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000ffU) << 24) | ((v & 0x0000ff00U) << 8) | ((v & 0x00ff0000U) >> 8) |
         ((v & 0xff000000U) >> 24);
}

constexpr std::uint16_t host_to_be16(std::uint16_t v) {
  if constexpr (std::endian::native == std::endian::little) return bswap16(v);
  return v;
}
constexpr std::uint16_t be16_to_host(std::uint16_t v) { return host_to_be16(v); }

constexpr std::uint32_t host_to_be32(std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) return bswap32(v);
  return v;
}
constexpr std::uint32_t be32_to_host(std::uint32_t v) { return host_to_be32(v); }

}  // namespace metro::net
