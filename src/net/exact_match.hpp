// Cuckoo hash table with 4-way buckets (the scheme behind rte_hash).
//
// Each key has two candidate buckets derived from one 64-bit hash; lookups
// probe at most 8 slots. Insertion displaces existing entries along a
// bounded random walk when both candidate buckets are full, giving high
// load factors (> 90%) with O(1) worst-case lookup — the property the
// exact-match l3fwd variant and FloWatcher's flow table rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace metro::net {

template <typename Key, typename Value, typename Hasher>
class CuckooTable {
 public:
  static constexpr std::size_t kBucketWidth = 4;
  static constexpr int kMaxDisplacements = 256;

  /// Capacity is rounded up to a power-of-two bucket count.
  explicit CuckooTable(std::size_t min_capacity, Hasher hasher = {})
      : hasher_(std::move(hasher)) {
    std::size_t buckets = 1;
    while (buckets * kBucketWidth < min_capacity * 2) buckets <<= 1;
    mask_ = buckets - 1;
    slots_.resize(buckets * kBucketWidth);
  }

  /// Insert or update. Returns false only if the displacement walk fails
  /// (table effectively full).
  bool insert(const Key& key, const Value& value) {
    const std::uint64_t h = hasher_(key);
    const std::size_t b1 = primary(h);
    const std::size_t b2 = secondary(h, b1);

    if (Slot* s = find_in(b1, key); s != nullptr) {
      s->value = value;
      return true;
    }
    if (Slot* s = find_in(b2, key); s != nullptr) {
      s->value = value;
      return true;
    }
    if (place_in(b1, key, value, h) || place_in(b2, key, value, h)) {
      ++size_;
      return true;
    }

    // Both buckets full: random-walk eviction starting from b1.
    Key cur_key = key;
    Value cur_value = value;
    std::uint64_t cur_hash = h;
    std::size_t bucket = b1;
    for (int step = 0; step < kMaxDisplacements; ++step) {
      // Evict a pseudo-randomly chosen victim slot.
      const std::size_t victim_idx =
          bucket * kBucketWidth + ((cur_hash >> 17) + static_cast<std::size_t>(step)) % kBucketWidth;
      Slot& victim = slots_[victim_idx];
      std::swap(cur_key, victim.key);
      std::swap(cur_value, victim.value);
      const std::uint64_t victim_hash = hasher_(cur_key);
      victim.hash = cur_hash;
      cur_hash = victim_hash;
      // Try the displaced entry's alternate bucket.
      const std::size_t p = primary(cur_hash);
      const std::size_t alt = (p == bucket) ? secondary(cur_hash, p) : p;
      if (place_in(alt, cur_key, cur_value, cur_hash)) {
        ++size_;
        return true;
      }
      bucket = alt;
    }
    return false;
  }

  std::optional<Value> find(const Key& key) const {
    const std::uint64_t h = hasher_(key);
    const std::size_t b1 = primary(h);
    if (const Slot* s = find_in(b1, key); s != nullptr) return s->value;
    if (const Slot* s = find_in(secondary(h, b1), key); s != nullptr) return s->value;
    return std::nullopt;
  }

  /// Pointer-returning lookup for in-place value mutation (flow counters).
  Value* find_mut(const Key& key) {
    const std::uint64_t h = hasher_(key);
    const std::size_t b1 = primary(h);
    if (Slot* s = find_in(b1, key); s != nullptr) return &s->value;
    if (Slot* s = find_in(secondary(h, b1), key); s != nullptr) return &s->value;
    return nullptr;
  }

  bool erase(const Key& key) {
    const std::uint64_t h = hasher_(key);
    const std::size_t b1 = primary(h);
    for (std::size_t b : {b1, secondary(h, b1)}) {
      if (Slot* s = find_in(b, key); s != nullptr) {
        s->occupied = false;
        --size_;
        return true;
      }
    }
    return false;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Visit every occupied entry (FloWatcher end-of-run flow dump).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.occupied) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    std::uint64_t hash = 0;
    bool occupied = false;
  };

  std::size_t primary(std::uint64_t h) const { return static_cast<std::size_t>(h) & mask_; }
  std::size_t secondary(std::uint64_t h, std::size_t b1) const {
    // Derive the alternate bucket from the high hash bits; ensure != b1
    // by xor-ing with an odd constant-derived offset.
    std::size_t b2 = static_cast<std::size_t>(h >> 32) & mask_;
    if (b2 == b1) b2 = (b1 ^ 0x5bd1e995) & mask_;
    if (b2 == b1) b2 = (b1 + 1) & mask_;
    return b2;
  }

  Slot* find_in(std::size_t bucket, const Key& key) {
    for (std::size_t i = 0; i < kBucketWidth; ++i) {
      Slot& s = slots_[bucket * kBucketWidth + i];
      if (s.occupied && s.key == key) return &s;
    }
    return nullptr;
  }
  const Slot* find_in(std::size_t bucket, const Key& key) const {
    return const_cast<CuckooTable*>(this)->find_in(bucket, key);
  }

  bool place_in(std::size_t bucket, const Key& key, const Value& value, std::uint64_t h) {
    for (std::size_t i = 0; i < kBucketWidth; ++i) {
      Slot& s = slots_[bucket * kBucketWidth + i];
      if (!s.occupied) {
        s.key = key;
        s.value = value;
        s.hash = h;
        s.occupied = true;
        return true;
      }
    }
    return false;
  }

  Hasher hasher_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace metro::net
