#include "net/packet_builder.hpp"

#include "net/headers.hpp"

namespace metro::net {

void build_udp_packet(Packet& pkt, const FiveTuple& tuple, std::size_t wire_size,
                      std::uint8_t ttl) {
  const std::size_t frame = wire_size >= 4 ? wire_size - 4 : wire_size;
  const std::size_t min_frame = sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(UdpHeader);
  const std::size_t total = frame < min_frame ? min_frame : frame;
  pkt.fill(0, total);

  auto* eth = pkt.at<EthernetHeader>(0);
  eth->dst = MacAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
  eth->src = MacAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x02};
  eth->ether_type = host_to_be16(kEtherTypeIpv4);

  auto* ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  ip->version_ihl = 0x45;
  ip->tos = 0;
  ip->total_length = host_to_be16(static_cast<std::uint16_t>(total - sizeof(EthernetHeader)));
  ip->id = host_to_be16(0x1234);
  ip->frag_offset = 0;
  ip->ttl = ttl;
  ip->protocol = tuple.protocol ? tuple.protocol : kIpProtoUdp;
  ip->src = host_to_be32(tuple.src_ip);
  ip->dst = host_to_be32(tuple.dst_ip);
  ipv4_set_checksum(*ip);

  auto* udp = pkt.at<UdpHeader>(sizeof(EthernetHeader) + sizeof(Ipv4Header));
  udp->src_port = host_to_be16(tuple.src_port);
  udp->dst_port = host_to_be16(tuple.dst_port);
  udp->length = host_to_be16(
      static_cast<std::uint16_t>(total - sizeof(EthernetHeader) - sizeof(Ipv4Header)));
  udp->checksum = 0;  // optional for IPv4
}

}  // namespace metro::net
