// Internal interface to the AES-NI translation unit (aes_ni.cpp, compiled
// with -maes where the compiler supports it). Not part of the public crypto
// API — Aes128 dispatches here when the running CPU has the AES ISA.
//
// Key layout: `ekb` / `dkb` are the 11 round keys serialised as 176 bytes in
// FIPS-197 order (each schedule word stored big-endian), which is exactly
// the byte image _mm_loadu_si128 expects for aesenc/aesdec operands. `dkb`
// must be the equivalent-inverse-cipher schedule (InvMixColumns already
// applied to the middle rounds) — Aes128 computes that once in its ctor.
#pragma once

#include <cstddef>
#include <cstdint>

namespace metro::crypto::detail {

/// True when the running CPU exposes the AES ISA (runtime cpuid check;
/// always false on non-x86 builds or when the compiler lacks -maes).
bool aesni_supported() noexcept;

void aesni_encrypt_block(const std::uint8_t* ekb, const std::uint8_t* in,
                         std::uint8_t* out) noexcept;
void aesni_decrypt_block(const std::uint8_t* dkb, const std::uint8_t* in,
                         std::uint8_t* out) noexcept;

/// Whole-buffer CBC over `n_blocks` 16-byte blocks; keeps the chain value
/// in a register across the buffer. in == out (in-place) is allowed.
void aesni_cbc_encrypt(const std::uint8_t* ekb, const std::uint8_t* in, std::size_t n_blocks,
                       const std::uint8_t* iv, std::uint8_t* out) noexcept;
/// CBC decrypt, four blocks in flight per iteration (aesdec pipelines
/// across independent blocks). in == out (in-place) is allowed.
void aesni_cbc_decrypt(const std::uint8_t* dkb, const std::uint8_t* in, std::size_t n_blocks,
                       const std::uint8_t* iv, std::uint8_t* out) noexcept;

}  // namespace metro::crypto::detail
