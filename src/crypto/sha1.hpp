// SHA-1 and HMAC-SHA1 (FIPS 180-4 / RFC 2104).
//
// Used by the IPsec gateway for ESP integrity (HMAC-SHA1-96, the standard
// IPsec truncation). SHA-1 is fine here: this is an authenticity tag inside
// a reproduction of a 2020 testbed, not new security design.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace metro::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, kDigestSize> finish();

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> digest(std::span<const std::uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t block[kBlockSize]);

  std::uint32_t state_[5]{};
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buffer_[kBlockSize]{};
  std::size_t buffered_ = 0;
};

/// HMAC-SHA1 (RFC 2104). `truncate` allows HMAC-SHA1-96 (12 bytes) as used
/// by IPsec ESP authentication.
class HmacSha1 {
 public:
  explicit HmacSha1(std::span<const std::uint8_t> key);

  std::array<std::uint8_t, Sha1::kDigestSize> compute(std::span<const std::uint8_t> data) const;

  /// IPsec-style truncated tag.
  std::array<std::uint8_t, 12> compute96(std::span<const std::uint8_t> data) const;

 private:
  std::array<std::uint8_t, Sha1::kBlockSize> ipad_key_{};
  std::array<std::uint8_t, Sha1::kBlockSize> opad_key_{};
};

}  // namespace metro::crypto
