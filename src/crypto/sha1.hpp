/// \file sha1.hpp
/// SHA-1 and HMAC-SHA1 (FIPS 180-4 / RFC 2104).
///
/// Used by the IPsec gateway for ESP integrity (HMAC-SHA1-96, the standard
/// IPsec truncation). SHA-1 is fine here: this is an authenticity tag inside
/// a reproduction of a 2020 testbed, not new security design.
///
/// Two optimisations matter on the per-packet path:
///   * word-at-a-time block loads (memcpy + byte-swap instead of assembling
///     each message word from four byte loads), and
///   * HMAC midstates: the two fixed 64-byte ipad/opad blocks are absorbed
///     once in the HmacSha1 ctor and every tag resumes from the saved
///     compression states, saving two of the ~five compressions a short
///     ESP-sized message costs.
/// ScalarHmacSha1 keeps the original absorb-the-pads-every-call behaviour
/// as the differential-testing oracle and bench baseline.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace metro::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  /// Compression-function state after an integral number of 64-byte
  /// blocks; the HMAC midstate is one of these.
  struct State {
    std::array<std::uint32_t, 5> h{};
  };

  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  std::array<std::uint8_t, kDigestSize> finish();

  /// Write the first `out.size()` digest bytes (<= 20) straight into `out`
  /// — the truncated-tag path, skipping the 20-byte intermediate array.
  /// Resets, like finish().
  void finish_into(std::span<std::uint8_t> out);

  /// Snapshot the chaining state. Only meaningful on a block boundary
  /// (buffered bytes are not captured).
  State state() const {
    return State{{state_[0], state_[1], state_[2], state_[3], state_[4]}};
  }

  /// Resume from a snapshot taken after `bytes_consumed` bytes (must be a
  /// multiple of kBlockSize) were absorbed.
  void reset_from(const State& s, std::uint64_t bytes_consumed);

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestSize> digest(std::span<const std::uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t block[kBlockSize]);

  std::uint32_t state_[5]{};
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buffer_[kBlockSize]{};
  std::size_t buffered_ = 0;
};

/// HMAC-SHA1 (RFC 2104) with precomputed ipad/opad midstates: the ctor
/// absorbs both fixed 64-byte pad blocks once, and each tag resumes from
/// the saved states. compute96 gives the IPsec HMAC-SHA1-96 truncation.
class HmacSha1 {
 public:
  explicit HmacSha1(std::span<const std::uint8_t> key);

  std::array<std::uint8_t, Sha1::kDigestSize> compute(std::span<const std::uint8_t> data) const;

  /// IPsec-style truncated tag.
  std::array<std::uint8_t, 12> compute96(std::span<const std::uint8_t> data) const;

  /// Stream the truncated tag straight into `out` (e.g. the packet tail)
  /// with no intermediate digest buffer.
  void compute96(std::span<const std::uint8_t> data, std::span<std::uint8_t, 12> out) const;

 private:
  Sha1::State inner_mid_{};  ///< SHA-1 state after absorbing key^ipad.
  Sha1::State outer_mid_{};  ///< SHA-1 state after absorbing key^opad.
};

/// The original HMAC that re-absorbs the 64-byte ipad/opad blocks on every
/// call. Oracle for HmacSha1 and the scalar baseline in bench_crypto.
class ScalarHmacSha1 {
 public:
  explicit ScalarHmacSha1(std::span<const std::uint8_t> key);

  std::array<std::uint8_t, Sha1::kDigestSize> compute(std::span<const std::uint8_t> data) const;

  /// IPsec-style truncated tag.
  std::array<std::uint8_t, 12> compute96(std::span<const std::uint8_t> data) const;

  /// Truncated tag into `out` (same signature as the fast type so the
  /// gateway template can use either).
  void compute96(std::span<const std::uint8_t> data, std::span<std::uint8_t, 12> out) const;

 private:
  std::array<std::uint8_t, Sha1::kBlockSize> ipad_key_{};
  std::array<std::uint8_t, Sha1::kBlockSize> opad_key_{};
};

}  // namespace metro::crypto
