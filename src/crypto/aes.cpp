#include "crypto/aes.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "crypto/aes_ni.hpp"

namespace metro::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36};

/// GF(2^8) multiply by x (xtime).
constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

// Off the hot path only: T-table generation, the decryption key schedule,
// and the scalar oracle's InvMixColumns.
constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

constexpr std::uint32_t pack(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

// ---------------------------------------------------------------------------
// T-tables, generated at compile time from the S-box.
//
// The state is four big-endian 32-bit column words s0..s3 (row 0 in the top
// byte). One encryption round folds SubBytes + ShiftRows + MixColumns +
// AddRoundKey into
//
//   t_j = Te0[s_j >> 24] ^ Te1[(s_{j+1} >> 16) & 0xff]
//       ^ Te2[(s_{j+2} >> 8) & 0xff] ^ Te3[s_{j+3} & 0xff] ^ rk[j]
//
// where Te0[x] packs the MixColumns column {02,01,01,03}·S[x] and Te1..Te3
// are its byte rotations for rows 1..3. The Td tables do the same for the
// inverse round with the {0e,09,0d,0b} InvMixColumns column; decryption
// runs the equivalent inverse cipher, whose middle round keys get
// InvMixColumns applied once at schedule time (dk_), not per block.
// ---------------------------------------------------------------------------

struct Tables {
  std::uint32_t t0[256], t1[256], t2[256], t3[256];
};

constexpr Tables make_enc_tables() {
  Tables e{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    e.t0[i] = pack(s2, s, s, s3);
    e.t1[i] = pack(s3, s2, s, s);
    e.t2[i] = pack(s, s3, s2, s);
    e.t3[i] = pack(s, s, s3, s2);
  }
  return e;
}

constexpr Tables make_dec_tables() {
  Tables d{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kInvSbox[i];
    const std::uint8_t e = gmul(s, 0x0e);
    const std::uint8_t n = gmul(s, 0x09);
    const std::uint8_t t = gmul(s, 0x0d);
    const std::uint8_t b = gmul(s, 0x0b);
    d.t0[i] = pack(e, n, t, b);
    d.t1[i] = pack(b, e, n, t);
    d.t2[i] = pack(t, b, e, n);
    d.t3[i] = pack(n, t, b, e);
  }
  return d;
}

constexpr Tables kTe = make_enc_tables();
constexpr Tables kTd = make_dec_tables();

inline std::uint32_t load_be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap32(v);
  return v;
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap32(v);
  std::memcpy(p, &v, 4);
}

constexpr std::uint32_t sub_word(std::uint32_t w) {
  return pack(kSbox[(w >> 24) & 0xff], kSbox[(w >> 16) & 0xff], kSbox[(w >> 8) & 0xff],
              kSbox[w & 0xff]);
}

/// InvMixColumns on one packed column word (decryption key schedule only).
constexpr std::uint32_t inv_mix_word(std::uint32_t w) {
  const std::uint8_t a = static_cast<std::uint8_t>(w >> 24);
  const std::uint8_t b = static_cast<std::uint8_t>(w >> 16);
  const std::uint8_t c = static_cast<std::uint8_t>(w >> 8);
  const std::uint8_t d = static_cast<std::uint8_t>(w);
  return pack(static_cast<std::uint8_t>(gmul(a, 0x0e) ^ gmul(b, 0x0b) ^ gmul(c, 0x0d) ^
                                        gmul(d, 0x09)),
              static_cast<std::uint8_t>(gmul(a, 0x09) ^ gmul(b, 0x0e) ^ gmul(c, 0x0b) ^
                                        gmul(d, 0x0d)),
              static_cast<std::uint8_t>(gmul(a, 0x0d) ^ gmul(b, 0x09) ^ gmul(c, 0x0e) ^
                                        gmul(d, 0x0b)),
              static_cast<std::uint8_t>(gmul(a, 0x0b) ^ gmul(b, 0x0d) ^ gmul(c, 0x09) ^
                                        gmul(d, 0x0e)));
}

}  // namespace

// ---------------------------------------------------------------------------
// Aes128 (T-table)
// ---------------------------------------------------------------------------

Aes128::Aes128(std::span<const std::uint8_t, kKeySize> key, Impl impl) {
  for (int i = 0; i < 4; ++i) ek_[i] = load_be32(key.data() + 4 * i);
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint32_t t = ek_[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      t = sub_word(std::rotl(t, 8)) ^ (static_cast<std::uint32_t>(kRcon[i / 4 - 1]) << 24);
    }
    ek_[static_cast<std::size_t>(i)] = ek_[static_cast<std::size_t>(i - 4)] ^ t;
  }
  // Equivalent inverse cipher: reverse the round order and push the middle
  // round keys through InvMixColumns once, here, instead of per block.
  for (int j = 0; j < 4; ++j) {
    dk_[static_cast<std::size_t>(j)] = ek_[static_cast<std::size_t>(4 * kRounds + j)];
    dk_[static_cast<std::size_t>(4 * kRounds + j)] = ek_[static_cast<std::size_t>(j)];
  }
  for (int r = 1; r < kRounds; ++r) {
    for (int j = 0; j < 4; ++j) {
      dk_[static_cast<std::size_t>(4 * r + j)] =
          inv_mix_word(ek_[static_cast<std::size_t>(4 * (kRounds - r) + j)]);
    }
  }
  // Serialise both schedules to FIPS-197 byte order for the AES-NI path.
  // InvMixColumns on a packed column word is exactly aesimc on the byte
  // image, so dkb_ is directly usable as the aesdec key schedule.
  for (std::size_t i = 0; i < ek_.size(); ++i) {
    store_be32(&ekb_[4 * i], ek_[i]);
    store_be32(&dkb_[4 * i], dk_[i]);
  }
  assert(impl != Impl::kHardware || hardware_available());
  use_hw_ = impl == Impl::kHardware || (impl == Impl::kAuto && hardware_available());
}

bool Aes128::hardware_available() noexcept { return detail::aesni_supported(); }

void Aes128::encrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const {
  if (use_hw_) {
    detail::aesni_encrypt_block(ekb_.data(), in, out);
    return;
  }
  std::uint32_t s0 = load_be32(in) ^ ek_[0];
  std::uint32_t s1 = load_be32(in + 4) ^ ek_[1];
  std::uint32_t s2 = load_be32(in + 8) ^ ek_[2];
  std::uint32_t s3 = load_be32(in + 12) ^ ek_[3];
  for (int r = 1; r < kRounds; ++r) {
    const std::uint32_t* rk = &ek_[static_cast<std::size_t>(4 * r)];
    const std::uint32_t t0 = kTe.t0[s0 >> 24] ^ kTe.t1[(s1 >> 16) & 0xff] ^
                             kTe.t2[(s2 >> 8) & 0xff] ^ kTe.t3[s3 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kTe.t0[s1 >> 24] ^ kTe.t1[(s2 >> 16) & 0xff] ^
                             kTe.t2[(s3 >> 8) & 0xff] ^ kTe.t3[s0 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kTe.t0[s2 >> 24] ^ kTe.t1[(s3 >> 16) & 0xff] ^
                             kTe.t2[(s0 >> 8) & 0xff] ^ kTe.t3[s1 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kTe.t0[s3 >> 24] ^ kTe.t1[(s0 >> 16) & 0xff] ^
                             kTe.t2[(s1 >> 8) & 0xff] ^ kTe.t3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  const std::uint32_t* rk = &ek_[static_cast<std::size_t>(4 * kRounds)];
  store_be32(out + 0, pack(kSbox[s0 >> 24], kSbox[(s1 >> 16) & 0xff], kSbox[(s2 >> 8) & 0xff],
                           kSbox[s3 & 0xff]) ^
                          rk[0]);
  store_be32(out + 4, pack(kSbox[s1 >> 24], kSbox[(s2 >> 16) & 0xff], kSbox[(s3 >> 8) & 0xff],
                           kSbox[s0 & 0xff]) ^
                          rk[1]);
  store_be32(out + 8, pack(kSbox[s2 >> 24], kSbox[(s3 >> 16) & 0xff], kSbox[(s0 >> 8) & 0xff],
                           kSbox[s1 & 0xff]) ^
                          rk[2]);
  store_be32(out + 12, pack(kSbox[s3 >> 24], kSbox[(s0 >> 16) & 0xff], kSbox[(s1 >> 8) & 0xff],
                            kSbox[s2 & 0xff]) ^
                           rk[3]);
}

void Aes128::decrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const {
  if (use_hw_) {
    detail::aesni_decrypt_block(dkb_.data(), in, out);
    return;
  }
  std::uint32_t s0 = load_be32(in) ^ dk_[0];
  std::uint32_t s1 = load_be32(in + 4) ^ dk_[1];
  std::uint32_t s2 = load_be32(in + 8) ^ dk_[2];
  std::uint32_t s3 = load_be32(in + 12) ^ dk_[3];
  for (int r = 1; r < kRounds; ++r) {
    const std::uint32_t* rk = &dk_[static_cast<std::size_t>(4 * r)];
    const std::uint32_t t0 = kTd.t0[s0 >> 24] ^ kTd.t1[(s3 >> 16) & 0xff] ^
                             kTd.t2[(s2 >> 8) & 0xff] ^ kTd.t3[s1 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kTd.t0[s1 >> 24] ^ kTd.t1[(s0 >> 16) & 0xff] ^
                             kTd.t2[(s3 >> 8) & 0xff] ^ kTd.t3[s2 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kTd.t0[s2 >> 24] ^ kTd.t1[(s1 >> 16) & 0xff] ^
                             kTd.t2[(s0 >> 8) & 0xff] ^ kTd.t3[s3 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kTd.t0[s3 >> 24] ^ kTd.t1[(s2 >> 16) & 0xff] ^
                             kTd.t2[(s1 >> 8) & 0xff] ^ kTd.t3[s0 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  const std::uint32_t* rk = &dk_[static_cast<std::size_t>(4 * kRounds)];
  store_be32(out + 0, pack(kInvSbox[s0 >> 24], kInvSbox[(s3 >> 16) & 0xff],
                           kInvSbox[(s2 >> 8) & 0xff], kInvSbox[s1 & 0xff]) ^
                          rk[0]);
  store_be32(out + 4, pack(kInvSbox[s1 >> 24], kInvSbox[(s0 >> 16) & 0xff],
                           kInvSbox[(s3 >> 8) & 0xff], kInvSbox[s2 & 0xff]) ^
                          rk[1]);
  store_be32(out + 8, pack(kInvSbox[s2 >> 24], kInvSbox[(s1 >> 16) & 0xff],
                           kInvSbox[(s0 >> 8) & 0xff], kInvSbox[s3 & 0xff]) ^
                          rk[2]);
  store_be32(out + 12, pack(kInvSbox[s3 >> 24], kInvSbox[(s2 >> 16) & 0xff],
                            kInvSbox[(s1 >> 8) & 0xff], kInvSbox[s0 & 0xff]) ^
                           rk[3]);
}

void Aes128::decrypt_block4(const std::uint8_t in[4 * kBlockSize],
                            std::uint8_t out[4 * kBlockSize]) const {
  if (use_hw_) {
    for (int b = 0; b < 4; ++b) detail::aesni_decrypt_block(dkb_.data(), in + 16 * b, out + 16 * b);
    return;
  }
  // Four independent states advanced in lockstep: each round's 16 table
  // loads per block interleave across the four blocks, hiding L1 latency
  // that a serial block-at-a-time loop would expose.
  std::uint32_t s[4][4];
  for (int b = 0; b < 4; ++b) {
    for (int j = 0; j < 4; ++j) {
      s[b][j] = load_be32(in + 16 * b + 4 * j) ^ dk_[static_cast<std::size_t>(j)];
    }
  }
  for (int r = 1; r < kRounds; ++r) {
    const std::uint32_t* rk = &dk_[static_cast<std::size_t>(4 * r)];
    std::uint32_t t[4][4];
    for (int b = 0; b < 4; ++b) {
      t[b][0] = kTd.t0[s[b][0] >> 24] ^ kTd.t1[(s[b][3] >> 16) & 0xff] ^
                kTd.t2[(s[b][2] >> 8) & 0xff] ^ kTd.t3[s[b][1] & 0xff] ^ rk[0];
      t[b][1] = kTd.t0[s[b][1] >> 24] ^ kTd.t1[(s[b][0] >> 16) & 0xff] ^
                kTd.t2[(s[b][3] >> 8) & 0xff] ^ kTd.t3[s[b][2] & 0xff] ^ rk[1];
      t[b][2] = kTd.t0[s[b][2] >> 24] ^ kTd.t1[(s[b][1] >> 16) & 0xff] ^
                kTd.t2[(s[b][0] >> 8) & 0xff] ^ kTd.t3[s[b][3] & 0xff] ^ rk[2];
      t[b][3] = kTd.t0[s[b][3] >> 24] ^ kTd.t1[(s[b][2] >> 16) & 0xff] ^
                kTd.t2[(s[b][1] >> 8) & 0xff] ^ kTd.t3[s[b][0] & 0xff] ^ rk[3];
    }
    std::memcpy(s, t, sizeof(s));
  }
  const std::uint32_t* rk = &dk_[static_cast<std::size_t>(4 * kRounds)];
  for (int b = 0; b < 4; ++b) {
    store_be32(out + 16 * b + 0,
               pack(kInvSbox[s[b][0] >> 24], kInvSbox[(s[b][3] >> 16) & 0xff],
                    kInvSbox[(s[b][2] >> 8) & 0xff], kInvSbox[s[b][1] & 0xff]) ^
                   rk[0]);
    store_be32(out + 16 * b + 4,
               pack(kInvSbox[s[b][1] >> 24], kInvSbox[(s[b][0] >> 16) & 0xff],
                    kInvSbox[(s[b][3] >> 8) & 0xff], kInvSbox[s[b][2] & 0xff]) ^
                   rk[1]);
    store_be32(out + 16 * b + 8,
               pack(kInvSbox[s[b][2] >> 24], kInvSbox[(s[b][1] >> 16) & 0xff],
                    kInvSbox[(s[b][0] >> 8) & 0xff], kInvSbox[s[b][3] & 0xff]) ^
                   rk[2]);
    store_be32(out + 16 * b + 12,
               pack(kInvSbox[s[b][3] >> 24], kInvSbox[(s[b][2] >> 16) & 0xff],
                    kInvSbox[(s[b][1] >> 8) & 0xff], kInvSbox[s[b][0] & 0xff]) ^
                   rk[3]);
  }
}

// ---------------------------------------------------------------------------
// ScalarAes128 (the original per-byte implementation, kept as the oracle)
// ---------------------------------------------------------------------------

ScalarAes128::ScalarAes128(std::span<const std::uint8_t, kKeySize> key) {
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, &round_keys_[static_cast<std::size_t>(i - 1) * 4], 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4 - 1]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[static_cast<std::size_t>(i) * 4 + static_cast<std::size_t>(j)] =
          round_keys_[static_cast<std::size_t>(i - 4) * 4 + static_cast<std::size_t>(j)] ^ temp[j];
    }
  }
}

void ScalarAes128::encrypt_block(const std::uint8_t in[kBlockSize],
                                 std::uint8_t out[kBlockSize]) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[static_cast<std::size_t>(i)];

  for (int round = 1; round <= kRounds; ++round) {
    // SubBytes
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[col*4 + row])
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) t[c * 4 + r] = s[((c + r) % 4) * 4 + r];
    }
    std::memcpy(s, t, 16);
    // MixColumns (skipped in the last round)
    if (round != kRounds) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = &s[c * 4];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey
    for (int i = 0; i < 16; ++i) {
      s[i] ^= round_keys_[static_cast<std::size_t>(round) * 16 + static_cast<std::size_t>(i)];
    }
  }
  std::memcpy(out, s, 16);
}

void ScalarAes128::decrypt_block(const std::uint8_t in[kBlockSize],
                                 std::uint8_t out[kBlockSize]) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) {
    s[i] = in[i] ^ round_keys_[static_cast<std::size_t>(kRounds) * 16 + static_cast<std::size_t>(i)];
  }

  for (int round = kRounds - 1; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) t[((c + r) % 4) * 4 + r] = s[c * 4 + r];
    }
    std::memcpy(s, t, 16);
    // InvSubBytes
    for (auto& b : s) b = kInvSbox[b];
    // AddRoundKey
    for (int i = 0; i < 16; ++i) {
      s[i] ^= round_keys_[static_cast<std::size_t>(round) * 16 + static_cast<std::size_t>(i)];
    }
    // InvMixColumns (skipped after the last iteration, i.e. round 0)
    if (round != 0) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = &s[c * 4];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
        col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
        col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
        col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
      }
    }
  }
  std::memcpy(out, s, 16);
}

// ---------------------------------------------------------------------------
// CBC
// ---------------------------------------------------------------------------

void Aes128::cbc_encrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
                         std::span<std::uint8_t> out) const {
  assert(in.size() % kBlockSize == 0);
  assert(out.size() >= in.size());
  if (use_hw_) {
    detail::aesni_cbc_encrypt(ekb_.data(), in.data(), in.size() / kBlockSize, iv.data(),
                              out.data());
    return;
  }
  std::uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  for (std::size_t off = 0; off < in.size(); off += 16) {
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i) {
      block[i] = in[off + static_cast<std::size_t>(i)] ^ chain[i];
    }
    encrypt_block(block, &out[off]);
    std::memcpy(chain, &out[off], 16);
  }
}

void Aes128::cbc_decrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
                         std::span<std::uint8_t> out) const {
  assert(in.size() % kBlockSize == 0);
  assert(out.size() >= in.size());
  if (use_hw_) {
    detail::aesni_cbc_decrypt(dkb_.data(), in.data(), in.size() / kBlockSize, iv.data(),
                              out.data());
    return;
  }
  std::uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  std::size_t off = 0;
  // Ciphertext blocks decrypt independently; run four at a time through
  // the pipelined path. cbuf keeps the ciphertext (the next chain values)
  // intact when in and out alias.
  std::uint8_t cbuf[64], pbuf[64];
  while (in.size() - off >= 64) {
    std::memcpy(cbuf, &in[off], 64);
    decrypt_block4(cbuf, pbuf);
    for (int i = 0; i < 16; ++i) out[off + static_cast<std::size_t>(i)] = pbuf[i] ^ chain[i];
    for (int b = 1; b < 4; ++b) {
      for (int i = 0; i < 16; ++i) {
        out[off + static_cast<std::size_t>(16 * b + i)] = pbuf[16 * b + i] ^ cbuf[16 * (b - 1) + i];
      }
    }
    std::memcpy(chain, &cbuf[48], 16);
    off += 64;
  }
  for (; off < in.size(); off += 16) {
    std::uint8_t cipher_block[16];
    std::memcpy(cipher_block, &in[off], 16);  // copy: in/out may alias
    std::uint8_t block[16];
    decrypt_block(cipher_block, block);
    for (int i = 0; i < 16; ++i) {
      out[off + static_cast<std::size_t>(i)] = block[i] ^ chain[i];
    }
    std::memcpy(chain, cipher_block, 16);
  }
}

template <typename Cipher>
void BasicAesCbc<Cipher>::encrypt(std::span<const std::uint8_t> in,
                                  std::span<const std::uint8_t, 16> iv,
                                  std::span<std::uint8_t> out) const {
  if constexpr (requires { cipher_.cbc_encrypt(in, iv, out); }) {
    cipher_.cbc_encrypt(in, iv, out);
    return;
  } else {
    assert(in.size() % Cipher::kBlockSize == 0);
    assert(out.size() >= in.size());
    std::uint8_t chain[16];
    std::memcpy(chain, iv.data(), 16);
    for (std::size_t off = 0; off < in.size(); off += 16) {
      std::uint8_t block[16];
      for (int i = 0; i < 16; ++i) {
        block[i] = in[off + static_cast<std::size_t>(i)] ^ chain[i];
      }
      cipher_.encrypt_block(block, &out[off]);
      std::memcpy(chain, &out[off], 16);
    }
  }
}

template <typename Cipher>
void BasicAesCbc<Cipher>::decrypt(std::span<const std::uint8_t> in,
                                  std::span<const std::uint8_t, 16> iv,
                                  std::span<std::uint8_t> out) const {
  if constexpr (requires { cipher_.cbc_decrypt(in, iv, out); }) {
    cipher_.cbc_decrypt(in, iv, out);
    return;
  } else {
    assert(in.size() % Cipher::kBlockSize == 0);
    assert(out.size() >= in.size());
    std::uint8_t chain[16];
    std::memcpy(chain, iv.data(), 16);
    std::size_t off = 0;
    if constexpr (requires(const Cipher& c, const std::uint8_t* p, std::uint8_t* q) {
                    c.decrypt_block4(p, q);
                  }) {
      std::uint8_t cbuf[64], pbuf[64];
      while (in.size() - off >= 64) {
        std::memcpy(cbuf, &in[off], 64);
        cipher_.decrypt_block4(cbuf, pbuf);
        for (int i = 0; i < 16; ++i) out[off + static_cast<std::size_t>(i)] = pbuf[i] ^ chain[i];
        for (int b = 1; b < 4; ++b) {
          for (int i = 0; i < 16; ++i) {
            out[off + static_cast<std::size_t>(16 * b + i)] =
                pbuf[16 * b + i] ^ cbuf[16 * (b - 1) + i];
          }
        }
        std::memcpy(chain, &cbuf[48], 16);
        off += 64;
      }
    }
    for (; off < in.size(); off += 16) {
      std::uint8_t cipher_block[16];
      std::memcpy(cipher_block, &in[off], 16);  // copy: in/out may alias
      std::uint8_t block[16];
      cipher_.decrypt_block(cipher_block, block);
      for (int i = 0; i < 16; ++i) {
        out[off + static_cast<std::size_t>(i)] = block[i] ^ chain[i];
      }
      std::memcpy(chain, cipher_block, 16);
    }
  }
}

template class BasicAesCbc<Aes128>;
template class BasicAesCbc<ScalarAes128>;

}  // namespace metro::crypto
