/// \file aes.hpp
/// AES-128 block cipher and CBC mode (FIPS-197 / SP 800-38A).
///
/// The paper's IPsec gateway encrypts ESP payloads with AES-CBC 128 (the
/// testbed offloads it to the NIC; here it runs in software). Two
/// implementations live side by side:
///
///   * Aes128 — the fast substrate: four 256x32-bit encryption T-tables
///     (plus the inverse set for decryption) generated at compile time from
///     the S-box, a flat word-level round-key schedule computed once in the
///     ctor, and word-level AddRoundKey. One round is 4 table lookups + 3
///     XORs per column instead of 16 S-box lookups, a ShiftRows shuffle and
///     an xtime/gmul MixColumns. Decryption additionally exposes a 4-block
///     software-pipelined path (decrypt_block4) that CBC decryption uses to
///     exploit cross-block independence. Where the CPU has the AES ISA
///     (runtime cpuid check; Impl::kAuto), block and CBC work dispatch to
///     an AES-NI path (src/crypto/aes_ni.cpp) that runs one round per
///     aesenc/aesdec instruction — the T-tables remain the portable fast
///     path and are always selectable via Impl::kTables.
///   * ScalarAes128 — the original table-free per-byte implementation, kept
///     alive as the differential-testing oracle (tests/test_crypto.cpp
///     fuzzes fast-vs-scalar equivalence for random keys and lengths over
///     every enabled implementation).
///
/// Both share one byte-for-byte behaviour; vectors and the fuzz oracle pin
/// it. The discrete-event simulator charges the calibrated per-packet cost
/// by default and only executes the cipher inline in the fig16
/// `--crypto=live` mode (see bench/fig16_apps.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>

namespace metro::crypto {

/// Fast AES-128: T-tables everywhere, AES-NI where the CPU has it. Key
/// schedule runs once in the ctor; per-block work is table lookups and
/// XORs (or one aesenc/aesdec per round on the hardware path).
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Implementation pin. kAuto (the data-path default) takes the AES-NI
  /// path when the running CPU supports it and T-tables otherwise; tests
  /// force kTables / kHardware so both paths stay vector- and fuzz-pinned.
  enum class Impl { kAuto, kTables, kHardware };

  explicit Aes128(std::span<const std::uint8_t, kKeySize> key, Impl impl = Impl::kAuto);

  /// Whether the running CPU exposes the AES ISA (runtime cpuid check).
  static bool hardware_available() noexcept;
  /// Whether this instance dispatches to the AES-NI path.
  bool uses_hardware() const noexcept { return use_hw_; }

  void encrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;

  /// Decrypt four independent blocks in lockstep (software pipelining:
  /// the four states' table loads interleave, hiding L1 latency). Used by
  /// CBC decryption, where ciphertext blocks decrypt independently.
  void decrypt_block4(const std::uint8_t in[4 * kBlockSize],
                      std::uint8_t out[4 * kBlockSize]) const;

  /// Whole-buffer CBC (in.size() must be a multiple of 16; in-place only
  /// when in and out are identical ranges). Keeping the loop inside the
  /// cipher lets the hardware path hold the chain value in a register
  /// across the buffer instead of round-tripping through memory per block.
  void cbc_encrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
                   std::span<std::uint8_t> out) const;
  void cbc_decrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
                   std::span<std::uint8_t> out) const;

 private:
  /// Encryption round keys, 11 rounds x 4 big-endian words.
  std::array<std::uint32_t, 4 * (kRounds + 1)> ek_{};
  /// Equivalent-inverse-cipher round keys (InvMixColumns applied to the
  /// middle rounds), same layout.
  std::array<std::uint32_t, 4 * (kRounds + 1)> dk_{};
  /// The same two schedules serialised to FIPS-197 byte order — the layout
  /// the AES-NI round-key loads expect. Dead weight (176 B each) on
  /// machines without the ISA; carried unconditionally to keep the ctor
  /// branch-free.
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> ekb_{};
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> dkb_{};
  bool use_hw_ = false;
};

/// The original straightforward table-free AES-128: per-byte S-box lookups
/// with on-the-fly xtime/gmul MixColumns. Kept as the differential-testing
/// oracle for Aes128 and as the scalar baseline the crypto benches compare
/// against.
class ScalarAes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit ScalarAes128(std::span<const std::uint8_t, kKeySize> key);

  void encrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;

 private:
  /// 11 round keys of 16 bytes each.
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> round_keys_{};
};

/// CBC mode over any AES-128 implementation. Buffers must be multiples of
/// 16 bytes (the ESP layer applies RFC 4303 padding before calling in).
/// When the cipher exposes whole-buffer cbc_encrypt/cbc_decrypt (Aes128
/// does) the mode delegates to those; otherwise it falls back to a generic
/// block-at-a-time chain, taking the cipher's 4-block pipelined decrypt
/// path when it has one.
/// \tparam Cipher the block cipher (Aes128 or ScalarAes128).
template <typename Cipher>
class BasicAesCbc {
 public:
  /// Extra ctor arguments forward to the cipher (tests pin an Aes128
  /// implementation by passing Aes128::Impl here).
  template <typename... Extra>
  explicit BasicAesCbc(std::span<const std::uint8_t, Cipher::kKeySize> key, Extra&&... extra)
      : cipher_(key, std::forward<Extra>(extra)...) {}

  /// In-place allowed only when in and out are identical ranges.
  void encrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
               std::span<std::uint8_t> out) const;
  void decrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
               std::span<std::uint8_t> out) const;

  /// The underlying block cipher (microbench access).
  const Cipher& cipher() const noexcept { return cipher_; }

 private:
  Cipher cipher_;
};

/// Fast CBC (the ESP data-path type).
using AesCbc = BasicAesCbc<Aes128>;
/// Scalar-oracle CBC (differential tests, bench baseline).
using ScalarAesCbc = BasicAesCbc<ScalarAes128>;

}  // namespace metro::crypto
