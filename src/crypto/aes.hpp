// AES-128 block cipher and CBC mode (FIPS-197 / SP 800-38A).
//
// The paper's IPsec gateway encrypts ESP payloads with AES-CBC 128 (the
// testbed offloads it to the NIC; here it runs in software). This is a
// straightforward table-free implementation: S-box lookups with on-the-fly
// MixColumns, fast enough for the functional path (examples/tests); the
// discrete-event simulator charges the calibrated per-packet cost instead
// of executing the cipher inline.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace metro::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit Aes128(std::span<const std::uint8_t, kKeySize> key);

  void encrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;
  void decrypt_block(const std::uint8_t in[kBlockSize], std::uint8_t out[kBlockSize]) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, kBlockSize*(kRounds + 1)> round_keys_{};
};

/// CBC mode over AES-128. Buffers must be multiples of 16 bytes
/// (the ESP layer applies RFC 4303 padding before calling in).
class AesCbc {
 public:
  AesCbc(std::span<const std::uint8_t, Aes128::kKeySize> key) : cipher_(key) {}

  /// In-place forbidden: in and out may alias only if identical ranges.
  void encrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
               std::span<std::uint8_t> out) const;
  void decrypt(std::span<const std::uint8_t> in, std::span<const std::uint8_t, 16> iv,
               std::span<std::uint8_t> out) const;

 private:
  Aes128 cipher_;
};

}  // namespace metro::crypto
