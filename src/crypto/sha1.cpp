#include "crypto/sha1.hpp"

#include <cstring>

namespace metro::crypto {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (off + kBlockSize <= data.size()) {
    process_block(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    buffered_ = data.size() - off;
    std::memcpy(buffer_, data.data() + off, buffered_);
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(std::span(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span(len_be, 8));

  std::array<std::uint8_t, kDigestSize> out{};
  for (int i = 0; i < 5; ++i) {
    out[static_cast<std::size_t>(i) * 4 + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[static_cast<std::size_t>(i) * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[static_cast<std::size_t>(i) * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[static_cast<std::size_t>(i) * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  reset();
  return out;
}

void Sha1::process_block(const std::uint8_t block[kBlockSize]) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

HmacSha1::HmacSha1(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, Sha1::kBlockSize> norm_key{};
  if (key.size() > Sha1::kBlockSize) {
    const auto digest = Sha1::digest(key);
    std::memcpy(norm_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(norm_key.data(), key.data(), key.size());
  }
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad_key_[i] = norm_key[i] ^ 0x36;
    opad_key_[i] = norm_key[i] ^ 0x5c;
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> HmacSha1::compute(
    std::span<const std::uint8_t> data) const {
  Sha1 inner;
  inner.update(ipad_key_);
  inner.update(data);
  const auto inner_digest = inner.finish();
  Sha1 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

std::array<std::uint8_t, 12> HmacSha1::compute96(std::span<const std::uint8_t> data) const {
  const auto full = compute(data);
  std::array<std::uint8_t, 12> out{};
  std::memcpy(out.data(), full.data(), out.size());
  return out;
}

}  // namespace metro::crypto
