#include "crypto/sha1.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace metro::crypto {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline std::uint32_t load_be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap32(v);
  return v;
}

}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::reset_from(const State& s, std::uint64_t bytes_consumed) {
  assert(bytes_consumed % kBlockSize == 0);
  for (int i = 0; i < 5; ++i) state_[i] = s.h[static_cast<std::size_t>(i)];
  total_bytes_ = bytes_consumed;
  buffered_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (off + kBlockSize <= data.size()) {
    process_block(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    buffered_ = data.size() - off;
    std::memcpy(buffer_, data.data() + off, buffered_);
  }
}

void Sha1::finish_into(std::span<std::uint8_t> out) {
  assert(out.size() <= kDigestSize);
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Pad directly in the block buffer: 0x80, zeros to byte 56, then the
  // big-endian bit length — at most one extra compression.
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    std::memset(buffer_ + buffered_, 0, kBlockSize - buffered_);
    process_block(buffer_);
    buffered_ = 0;
  }
  std::memset(buffer_ + buffered_, 0, 56 - buffered_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  process_block(buffer_);

  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(state_[i / 4] >> (24 - 8 * (i % 4)));
  }
  reset();
}

std::array<std::uint8_t, Sha1::kDigestSize> Sha1::finish() {
  std::array<std::uint8_t, kDigestSize> out{};
  finish_into(out);
  return out;
}

void Sha1::process_block(const std::uint8_t block[kBlockSize]) {
  // Word-at-a-time loads: one 4-byte load + bswap per message word instead
  // of four byte loads and three shifts.
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) w[t] = load_be32(block + t * 4);
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

namespace {

/// RFC 2104 key normalisation: hash long keys, zero-pad to the block size.
std::array<std::uint8_t, Sha1::kBlockSize> normalize_key(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, Sha1::kBlockSize> norm{};
  if (key.size() > Sha1::kBlockSize) {
    const auto digest = Sha1::digest(key);
    std::memcpy(norm.data(), digest.data(), digest.size());
  } else {
    std::memcpy(norm.data(), key.data(), key.size());
  }
  return norm;
}

}  // namespace

// ---------------------------------------------------------------------------
// HmacSha1 (midstate)
// ---------------------------------------------------------------------------

HmacSha1::HmacSha1(std::span<const std::uint8_t> key) {
  const auto norm_key = normalize_key(key);
  std::array<std::uint8_t, Sha1::kBlockSize> pad{};
  Sha1 h;
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) pad[i] = norm_key[i] ^ 0x36;
  h.update(pad);
  inner_mid_ = h.state();
  h.reset();
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) pad[i] = norm_key[i] ^ 0x5c;
  h.update(pad);
  outer_mid_ = h.state();
}

std::array<std::uint8_t, Sha1::kDigestSize> HmacSha1::compute(
    std::span<const std::uint8_t> data) const {
  Sha1 h;
  h.reset_from(inner_mid_, Sha1::kBlockSize);
  h.update(data);
  const auto inner_digest = h.finish();
  h.reset_from(outer_mid_, Sha1::kBlockSize);
  h.update(inner_digest);
  return h.finish();
}

void HmacSha1::compute96(std::span<const std::uint8_t> data,
                         std::span<std::uint8_t, 12> out) const {
  Sha1 h;
  h.reset_from(inner_mid_, Sha1::kBlockSize);
  h.update(data);
  std::array<std::uint8_t, Sha1::kDigestSize> inner_digest;
  h.finish_into(inner_digest);
  h.reset_from(outer_mid_, Sha1::kBlockSize);
  h.update(inner_digest);
  h.finish_into(out);
}

std::array<std::uint8_t, 12> HmacSha1::compute96(std::span<const std::uint8_t> data) const {
  std::array<std::uint8_t, 12> out{};
  compute96(data, out);
  return out;
}

// ---------------------------------------------------------------------------
// ScalarHmacSha1 (the original pad-rehashing implementation, kept as oracle)
// ---------------------------------------------------------------------------

ScalarHmacSha1::ScalarHmacSha1(std::span<const std::uint8_t> key) {
  const auto norm_key = normalize_key(key);
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad_key_[i] = norm_key[i] ^ 0x36;
    opad_key_[i] = norm_key[i] ^ 0x5c;
  }
}

std::array<std::uint8_t, Sha1::kDigestSize> ScalarHmacSha1::compute(
    std::span<const std::uint8_t> data) const {
  Sha1 inner;
  inner.update(ipad_key_);
  inner.update(data);
  const auto inner_digest = inner.finish();
  Sha1 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

std::array<std::uint8_t, 12> ScalarHmacSha1::compute96(std::span<const std::uint8_t> data) const {
  const auto full = compute(data);
  std::array<std::uint8_t, 12> out{};
  std::memcpy(out.data(), full.data(), out.size());
  return out;
}

void ScalarHmacSha1::compute96(std::span<const std::uint8_t> data,
                               std::span<std::uint8_t, 12> out) const {
  const auto tag = compute96(data);
  std::memcpy(out.data(), tag.data(), tag.size());
}

}  // namespace metro::crypto
