// AES-NI implementation of the detail interface in aes_ni.hpp.
//
// This is the only translation unit built with -maes (see CMakeLists.txt),
// so the intrinsics must never leak across TU boundaries: callers go
// through plain-function entry points and gate on aesni_supported() first.
// On toolchains or architectures without the extension the file compiles
// to stubs that report "unsupported" and abort if reached anyway.
#include "crypto/aes_ni.hpp"

#include <cstdlib>

#if defined(__AES__) && (defined(__x86_64__) || defined(__i386__))
#include <immintrin.h>

namespace metro::crypto::detail {

namespace {

inline __m128i round_key(const std::uint8_t* kb, int r) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(kb) + r);
}

inline __m128i load(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void store(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

inline __m128i encrypt_one(const std::uint8_t* ekb, __m128i x) {
  x = _mm_xor_si128(x, round_key(ekb, 0));
  for (int r = 1; r < 10; ++r) x = _mm_aesenc_si128(x, round_key(ekb, r));
  return _mm_aesenclast_si128(x, round_key(ekb, 10));
}

inline __m128i decrypt_one(const std::uint8_t* dkb, __m128i x) {
  x = _mm_xor_si128(x, round_key(dkb, 0));
  for (int r = 1; r < 10; ++r) x = _mm_aesdec_si128(x, round_key(dkb, r));
  return _mm_aesdeclast_si128(x, round_key(dkb, 10));
}

}  // namespace

bool aesni_supported() noexcept { return __builtin_cpu_supports("aes") != 0; }

void aesni_encrypt_block(const std::uint8_t* ekb, const std::uint8_t* in,
                         std::uint8_t* out) noexcept {
  store(out, encrypt_one(ekb, load(in)));
}

void aesni_decrypt_block(const std::uint8_t* dkb, const std::uint8_t* in,
                         std::uint8_t* out) noexcept {
  store(out, decrypt_one(dkb, load(in)));
}

void aesni_cbc_encrypt(const std::uint8_t* ekb, const std::uint8_t* in, std::size_t n_blocks,
                       const std::uint8_t* iv, std::uint8_t* out) noexcept {
  // CBC encryption is inherently serial (block i chains into i+1); the win
  // here is keeping the chain value in a register across the whole buffer
  // and paying one aesenc chain per block instead of a table-walk round.
  __m128i chain = load(iv);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    chain = encrypt_one(ekb, _mm_xor_si128(load(in + 16 * b), chain));
    store(out + 16 * b, chain);
  }
}

void aesni_cbc_decrypt(const std::uint8_t* dkb, const std::uint8_t* in, std::size_t n_blocks,
                       const std::uint8_t* iv, std::uint8_t* out) noexcept {
  // Ciphertext blocks decrypt independently, so keep four aesdec chains in
  // flight per iteration to cover the instruction latency. Ciphertext is
  // read before any store, which makes in-place (in == out) safe.
  __m128i prev = load(iv);
  std::size_t b = 0;
  for (; b + 4 <= n_blocks; b += 4) {
    const __m128i c0 = load(in + 16 * b);
    const __m128i c1 = load(in + 16 * b + 16);
    const __m128i c2 = load(in + 16 * b + 32);
    const __m128i c3 = load(in + 16 * b + 48);
    const __m128i k0 = round_key(dkb, 0);
    __m128i x0 = _mm_xor_si128(c0, k0);
    __m128i x1 = _mm_xor_si128(c1, k0);
    __m128i x2 = _mm_xor_si128(c2, k0);
    __m128i x3 = _mm_xor_si128(c3, k0);
    for (int r = 1; r < 10; ++r) {
      const __m128i k = round_key(dkb, r);
      x0 = _mm_aesdec_si128(x0, k);
      x1 = _mm_aesdec_si128(x1, k);
      x2 = _mm_aesdec_si128(x2, k);
      x3 = _mm_aesdec_si128(x3, k);
    }
    const __m128i klast = round_key(dkb, 10);
    x0 = _mm_aesdeclast_si128(x0, klast);
    x1 = _mm_aesdeclast_si128(x1, klast);
    x2 = _mm_aesdeclast_si128(x2, klast);
    x3 = _mm_aesdeclast_si128(x3, klast);
    store(out + 16 * b, _mm_xor_si128(x0, prev));
    store(out + 16 * b + 16, _mm_xor_si128(x1, c0));
    store(out + 16 * b + 32, _mm_xor_si128(x2, c1));
    store(out + 16 * b + 48, _mm_xor_si128(x3, c2));
    prev = c3;
  }
  for (; b < n_blocks; ++b) {
    const __m128i c = load(in + 16 * b);
    store(out + 16 * b, _mm_xor_si128(decrypt_one(dkb, c), prev));
    prev = c;
  }
}

}  // namespace metro::crypto::detail

#else  // no AES ISA available at compile time: portable stubs

namespace metro::crypto::detail {

bool aesni_supported() noexcept { return false; }

// The dispatcher gates on aesni_supported(); reaching these is a logic
// error, not a recoverable condition.
void aesni_encrypt_block(const std::uint8_t*, const std::uint8_t*, std::uint8_t*) noexcept {
  std::abort();
}
void aesni_decrypt_block(const std::uint8_t*, const std::uint8_t*, std::uint8_t*) noexcept {
  std::abort();
}
void aesni_cbc_encrypt(const std::uint8_t*, const std::uint8_t*, std::size_t,
                       const std::uint8_t*, std::uint8_t*) noexcept {
  std::abort();
}
void aesni_cbc_decrypt(const std::uint8_t*, const std::uint8_t*, std::size_t,
                       const std::uint8_t*, std::uint8_t*) noexcept {
  std::abort();
}

}  // namespace metro::crypto::detail

#endif
