/// \file ipsec.hpp
/// IPsec Security Gateway (DPDK's ipsec-secgw sample, §V-G).
///
/// ESP tunnel mode per RFC 4303: the inner IPv4 packet is padded, AES-CBC-
/// 128 encrypted (fresh IV per packet), authenticated with HMAC-SHA1-96,
/// and wrapped in a new outer IPv4 + ESP header. Decap verifies the tag
/// (constant-time compare), decrypts, validates the padding and restores
/// the inner packet. The paper's testbed offloads the cipher to the NIC;
/// here it runs in software on the functional path, while the timing
/// simulator charges calib::kIpsecPerPacketCost (fitted to the sample
/// app's measured 5.61 Mpps ceiling) — except in the fig16
/// `--crypto=live` bench mode, which executes this gateway per simulated
/// packet.
///
/// The gateway is templated over a crypto policy so the fast T-table /
/// midstate substrate (FastCrypto → IpsecGateway) and the scalar oracle
/// (ScalarCrypto → ScalarIpsecGateway) share one protocol implementation;
/// the two are wire-compatible and interop is test-pinned.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "stats/metric_set.hpp"

namespace metro::apps {

struct SecurityAssociation {
  std::uint32_t spi = 0x1001;
  std::array<std::uint8_t, 16> cipher_key{};
  std::array<std::uint8_t, 20> auth_key{};
  std::uint32_t tunnel_src = 0;  // outer header endpoints, host order
  std::uint32_t tunnel_dst = 0;
};

struct IpsecStats {
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t malformed = 0;
  std::uint64_t replay_drops = 0;

  /// Attach all counters to `set` under `prefix` (setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".encapsulated", encapsulated);
    set.attach_counter(prefix + ".decapsulated", decapsulated);
    set.attach_counter(prefix + ".auth_failures", auth_failures);
    set.attach_counter(prefix + ".malformed", malformed);
    set.attach_counter(prefix + ".replay_drops", replay_drops);
  }
};

/// Crypto policy for the data path: T-table AES-CBC + midstate HMAC.
struct FastCrypto {
  using Cbc = crypto::AesCbc;
  using Hmac = crypto::HmacSha1;
};

/// Crypto policy using the scalar oracle implementations (differential
/// testing, bench baseline).
struct ScalarCrypto {
  using Cbc = crypto::ScalarAesCbc;
  using Hmac = crypto::ScalarHmacSha1;
};

/// ESP tunnel gateway over a pluggable crypto policy.
/// \tparam Crypto FastCrypto or ScalarCrypto.
template <typename Crypto>
class BasicIpsecGateway {
 public:
  explicit BasicIpsecGateway(const SecurityAssociation& sa, std::uint64_t iv_seed = 7);

  /// Outbound: consume an Ethernet/IPv4 packet, produce the tunnel packet
  /// in place. Returns false on malformed input or insufficient room.
  bool encap(net::Packet& pkt);

  /// Inbound: consume a tunnel packet, restore the inner packet in place.
  /// Verifies SPI, the anti-replay window and the HMAC tag.
  bool decap(net::Packet& pkt);

  /// Encapsulate every packet in `pkts` (one call hoists the per-call
  /// setup across the burst). A packet that fails is left exactly as the
  /// single-packet call would leave it and is counted in stats().
  /// Returns the number of packets that succeeded.
  std::size_t encap_burst(std::span<net::Packet> pkts);

  /// Burst decap; same failure semantics as encap_burst.
  std::size_t decap_burst(std::span<net::Packet> pkts);

  const IpsecStats& stats() const noexcept { return stats_; }
  std::uint32_t tx_sequence() const noexcept { return seq_out_; }

 private:
  static constexpr std::size_t kIvSize = 16;
  static constexpr std::size_t kTagSize = 12;  // HMAC-SHA1-96
  static constexpr std::size_t kReplayWindow = 64;

  bool replay_check_and_update(std::uint32_t seq);

  SecurityAssociation sa_;
  typename Crypto::Cbc cipher_;
  typename Crypto::Hmac hmac_;
  sim::Rng iv_rng_;
  std::uint32_t seq_out_ = 0;
  std::uint32_t replay_top_ = 0;    // highest sequence seen
  std::uint64_t replay_bits_ = 0;   // sliding window below replay_top_
  IpsecStats stats_;
};

/// The data-path gateway (fast substrate).
using IpsecGateway = BasicIpsecGateway<FastCrypto>;
/// Scalar-oracle gateway, wire-compatible with IpsecGateway.
using ScalarIpsecGateway = BasicIpsecGateway<ScalarCrypto>;

extern template class BasicIpsecGateway<FastCrypto>;
extern template class BasicIpsecGateway<ScalarCrypto>;

}  // namespace metro::apps
