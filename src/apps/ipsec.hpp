// IPsec Security Gateway (DPDK's ipsec-secgw sample, §V-G).
//
// ESP tunnel mode per RFC 4303: the inner IPv4 packet is padded, AES-CBC-
// 128 encrypted (fresh IV per packet), authenticated with HMAC-SHA1-96,
// and wrapped in a new outer IPv4 + ESP header. Decap verifies the tag,
// decrypts, validates the padding and restores the inner packet. The
// paper's testbed offloads the cipher to the NIC; here it runs in software
// on the functional path, while the timing simulator charges
// calib::kIpsecPerPacketCost (fitted to the sample app's measured 5.61
// Mpps ceiling).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "stats/metric_set.hpp"

namespace metro::apps {

struct SecurityAssociation {
  std::uint32_t spi = 0x1001;
  std::array<std::uint8_t, 16> cipher_key{};
  std::array<std::uint8_t, 20> auth_key{};
  std::uint32_t tunnel_src = 0;  // outer header endpoints, host order
  std::uint32_t tunnel_dst = 0;
};

struct IpsecStats {
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t malformed = 0;
  std::uint64_t replay_drops = 0;

  /// Attach all counters to `set` under `prefix` (setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".encapsulated", encapsulated);
    set.attach_counter(prefix + ".decapsulated", decapsulated);
    set.attach_counter(prefix + ".auth_failures", auth_failures);
    set.attach_counter(prefix + ".malformed", malformed);
    set.attach_counter(prefix + ".replay_drops", replay_drops);
  }
};

class IpsecGateway {
 public:
  explicit IpsecGateway(const SecurityAssociation& sa, std::uint64_t iv_seed = 7);

  /// Outbound: consume an Ethernet/IPv4 packet, produce the tunnel packet
  /// in place. Returns false on malformed input or insufficient room.
  bool encap(net::Packet& pkt);

  /// Inbound: consume a tunnel packet, restore the inner packet in place.
  /// Verifies SPI, the anti-replay window and the HMAC tag.
  bool decap(net::Packet& pkt);

  const IpsecStats& stats() const noexcept { return stats_; }
  std::uint32_t tx_sequence() const noexcept { return seq_out_; }

 private:
  static constexpr std::size_t kIvSize = 16;
  static constexpr std::size_t kTagSize = 12;  // HMAC-SHA1-96
  static constexpr std::size_t kReplayWindow = 64;

  bool replay_check_and_update(std::uint32_t seq);

  SecurityAssociation sa_;
  crypto::AesCbc cipher_;
  crypto::HmacSha1 hmac_;
  sim::Rng iv_rng_;
  std::uint32_t seq_out_ = 0;
  std::uint32_t replay_top_ = 0;    // highest sequence seen
  std::uint64_t replay_bits_ = 0;   // sliding window below replay_top_
  IpsecStats stats_;
};

}  // namespace metro::apps
