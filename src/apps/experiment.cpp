#include "apps/experiment.hpp"

#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/pcap.hpp"
#include "tgen/trace.hpp"

namespace metro::apps {

using sim::Time;

namespace {

/// Build the kTrace generator. With `trace.path` set, parse that external
/// pcap; otherwise synthesise the §V-F.4 unbalanced trace and round-trip
/// it through the pcap writer/reader (so the on-disk path is what runs,
/// not a shortcut). Either way the entries replay in a loop at the
/// configured rate.
std::unique_ptr<tgen::Generator> make_trace_generator(const WorkloadConfig& w, Time duration) {
  std::vector<tgen::TraceEntry> entries;
  if (!w.trace.path.empty()) {
    std::ifstream in(w.trace.path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open trace file: " + w.trace.path);
    entries = tgen::parse_trace(net::PcapReader::read_all(in));
    if (entries.empty()) {
      throw std::runtime_error("trace file has no replayable IPv4 frames: " + w.trace.path);
    }
  } else {
    const auto frames =
        tgen::synthesise_unbalanced_trace(w.trace.n_packets, w.trace.heavy_share, w.seed);
    std::stringstream pcap_bytes;
    net::PcapWriter writer(pcap_bytes);
    for (const auto& frame : frames) writer.write(frame);
    entries = tgen::parse_trace(net::PcapReader::read_all(pcap_bytes));
  }
  return std::make_unique<tgen::TraceGenerator>(std::move(entries), w.rate_mpps * 1e6, duration);
}

}  // namespace

template <typename Sim>
BasicTestbed<Sim>::BasicTestbed(const ExperimentConfig& cfg) : cfg_(cfg) {
  if constexpr (std::is_same_v<Sim, sim::LadderSimulation>) {
    sim_ = std::make_unique<Sim>(cfg.seed, sim::LadderQueueBackend(cfg.ladder));
  } else if constexpr (std::is_same_v<Sim, sim::WheelSimulation>) {
    sim_ = std::make_unique<Sim>(cfg.seed, sim::TimingWheelBackend(cfg.wheel));
  } else {
    sim_ = std::make_unique<Sim>(cfg.seed);
  }

  sim::CoreConfig core_cfg;
  core_cfg.governor = cfg.governor;
  machine_ = std::make_unique<sim::BasicMachine<Sim>>(*sim_, cfg.n_cores, core_cfg);

  // Latency in microseconds: 0.05 us bins up to 5 ms.
  latency_ = std::make_unique<stats::Histogram>(0.05, 5000.0);
  latency_recorder_.hist = latency_.get();

  nic::PortConfig port_cfg = cfg.xl710 ? nic::xl710_config(cfg.n_queues)
                                       : nic::x520_config(cfg.n_queues);
  port_cfg.tx_batch = cfg.tx_batch;
  port_ = std::make_unique<nic::BasicPort<Sim>>(*sim_, port_cfg,
                                                nic::TxCallback(latency_recorder_));

  if (cfg.workload.fault.any()) {
    // Fault stream seeded from the *shard* seed on a dedicated stream tag:
    // bit-identical across backends, geometries and --jobs by the same
    // argument as the workload stream.
    fault_ = std::make_unique<fault::FaultInjector>(cfg.workload.fault,
                                                    fault::FaultInjector::derive_seed(cfg.seed));
    port_->set_fault_injector(fault_.get());
  }

  flows_ = std::make_unique<tgen::FlowSet>(cfg.workload.n_flows, cfg.workload.seed);
  const Time gen_duration = cfg.warmup + cfg.measure + 100 * sim::kMillisecond;
  const auto n_flows = static_cast<std::uint32_t>(cfg.workload.n_flows);
  const auto uniform_picker = [n_flows] {
    return std::make_unique<tgen::UniformFlowPicker>(n_flows);
  };
  switch (cfg.workload.model) {
    case ArrivalModel::kPerFlow:
      break;  // no pull generator; sources are spawned in start()
    case ArrivalModel::kStream: {
      std::unique_ptr<tgen::FlowPicker> picker;
      if (cfg.workload.heavy_share > 0.0) {
        picker = std::make_unique<tgen::UnbalancedFlowPicker>(0, cfg.workload.heavy_share,
                                                              n_flows);
      } else {
        picker = uniform_picker();
      }
      tgen::StreamConfig stream;
      stream.rate_pps = cfg.workload.rate_mpps * 1e6;
      stream.wire_size = cfg.workload.wire_size;
      stream.imix = cfg.workload.imix;
      stream.poisson = cfg.workload.poisson;
      stream.seed = cfg.workload.seed;
      stream.duration = gen_duration;
      generator_ = std::make_unique<tgen::StreamGenerator>(stream, *flows_, std::move(picker));
      break;
    }
    case ArrivalModel::kMmpp: {
      tgen::MmppConfig mmpp;
      mmpp.mean_rate_pps = cfg.workload.rate_mpps * 1e6;
      mmpp.shape = cfg.workload.mmpp;
      mmpp.wire_size = cfg.workload.wire_size;
      mmpp.duration = gen_duration;
      mmpp.seed = cfg.workload.seed;
      generator_ = std::make_unique<tgen::MmppGenerator>(mmpp, *flows_, uniform_picker());
      break;
    }
    case ArrivalModel::kParetoTrain: {
      tgen::ParetoTrainConfig train;
      train.rate_pps = cfg.workload.rate_mpps * 1e6;
      train.shape = cfg.workload.pareto;
      train.wire_size = cfg.workload.wire_size;
      train.duration = gen_duration;
      train.seed = cfg.workload.seed;
      generator_ = std::make_unique<tgen::ParetoTrainGenerator>(train, *flows_);
      break;
    }
    case ArrivalModel::kIncast: {
      tgen::IncastConfig incast;
      incast.rate_pps = cfg.workload.rate_mpps * 1e6;
      incast.shape = cfg.workload.incast;
      incast.wire_size = cfg.workload.wire_size;
      incast.duration = gen_duration;
      incast.seed = cfg.workload.seed;
      generator_ = std::make_unique<tgen::IncastGenerator>(incast, *flows_);
      break;
    }
    case ArrivalModel::kTrace:
      generator_ = make_trace_generator(cfg.workload, gen_duration);
      break;
  }
}

template <typename Sim>
BasicTestbed<Sim>::~BasicTestbed() = default;

template <typename Sim>
void BasicTestbed<Sim>::start() {
  assert(!started_);
  started_ = true;

  if (cfg_.workload.rate_mpps > 0.0) {
    if (cfg_.workload.model == ArrivalModel::kPerFlow) {
      tgen::PerFlowSourceConfig src;
      src.total_rate_pps = cfg_.workload.rate_mpps * 1e6;
      src.poisson = cfg_.workload.poisson;
      src.wire_size = cfg_.workload.wire_size;
      src.duration = cfg_.warmup + cfg_.measure + 100 * sim::kMillisecond;
      // Arena form, not one coroutine per flow: at fig13_fullstack_1m+
      // scale (2^20..2^24 flows) the spawn loop and its millions of
      // frames would dominate setup; the SoA lanes are 16 B per flow.
      // Bit-identical stream either way (test_tgen). Scenarios at this
      // scale also set cfg_.wheel = WheelConfig::for_population(n_flows)
      // so the wheel backend's geometry matches the timer population
      // (registry.cpp); geometry never changes results, only wall time.
      flow_arena_ = std::make_unique<tgen::PerFlowSourceArena<Sim>>(*sim_, *port_, *flows_, src);
    } else if (generator_ != nullptr) {
      tgen::attach(*sim_, *port_, *generator_);
    }
  }

  switch (cfg_.driver) {
    case DriverKind::kMetronome: {
      std::vector<Core*> cores;
      for (int i = 0; i < cfg_.n_cores; ++i) cores.push_back(&machine_->core(i));
      metronome_ = std::make_unique<core::BasicMetronome<Sim>>(*sim_, *port_, cores, cfg_.met);
      metronome_->start();
      for (const auto& t : metronome_->threads()) {
        driver_entities_.push_back(EntitySnapshot{t.core, t.entity, 0});
      }
      break;
    }
    case DriverKind::kStaticPolling: {
      // One lcore per queue: queue q on core q % n_cores (the paper gives
      // each static thread its own core; sharing only happens in the
      // CPU-contention experiments).
      for (int q = 0; q < port_->n_rx_queues(); ++q) {
        auto stats = std::make_unique<dpdk::DriverStats>();
        Core& core = machine_->core(q % cfg_.n_cores);
        const auto ent = dpdk::spawn_static_lcore(*sim_, *port_, q, core, cfg_.polling, *stats);
        driver_entities_.push_back(EntitySnapshot{&core, ent, 0});
        polling_stats_.push_back(std::move(stats));
      }
      break;
    }
    case DriverKind::kXdp: {
      if (cfg_.n_cores < port_->n_rx_queues()) {
        throw std::invalid_argument("XDP requires one core per Rx queue");
      }
      for (int q = 0; q < port_->n_rx_queues(); ++q) {
        auto stats = std::make_unique<dpdk::XdpStats>();
        Core& core = machine_->core(q);
        const auto ent = dpdk::spawn_xdp_queue(*sim_, *port_, q, core, cfg_.xdp, *stats);
        driver_entities_.push_back(EntitySnapshot{&core, ent, 0});
        xdp_stats_.push_back(std::move(stats));
      }
      break;
    }
  }

  for (int i = 0; i < cfg_.competitor.n_workers && i < cfg_.n_cores; ++i) {
    FerretConfig fc;
    fc.total_work = -1;  // continuous contention
    fc.nice = cfg_.competitor.nice;
    competitors_.push_back(
        spawn_ferret(*sim_, machine_->core(i), fc, "competitor-" + std::to_string(i)));
  }

  // Telemetry assembly: with every layer constructed, register the whole
  // observable tree in one set. This is the only registration point —
  // from here on the hot paths just increment their own fields, and the
  // set snapshots/windows/fingerprints them.
  port_->register_metrics(metrics_, "port");
  if (fault_) fault_->register_metrics(metrics_, "fault");
  metrics_.attach_histogram("latency_us", *latency_);
  if (metronome_) metronome_->register_metrics(metrics_, "met");
  for (std::size_t q = 0; q < polling_stats_.size(); ++q) {
    polling_stats_[q]->register_metrics(metrics_, "polling.q" + std::to_string(q));
  }
  for (std::size_t q = 0; q < xdp_stats_.size(); ++q) {
    xdp_stats_[q]->register_metrics(metrics_, "xdp.q" + std::to_string(q));
  }
  for (std::size_t i = 0; i < competitors_.size(); ++i) {
    competitors_[i]->register_metrics(metrics_, "competitor." + std::to_string(i));
  }
}

template <typename Sim>
void BasicTestbed<Sim>::run_until(Time t) { sim_->run_until(t); }

template <typename Sim>
void BasicTestbed<Sim>::begin_measurement() {
  assert(started_ && "begin_measurement() before start(): no metrics registered");
  window_start_ = sim_->now();
  machine_start_ = machine_->snapshot_all();  // settles all cores
  for (auto& e : driver_entities_) e.on_cpu_at_start = e.core->on_cpu_time(e.entity);
  // One call replaces the old per-counter *_at_start_ copies: counters
  // baseline into the snapshot, distributions (latency histogram, per-
  // queue vacation/busy summaries) reset to collect this window only.
  window_baseline_ = metrics_.window_start();

  if (cfg_.series_interval > 0) {
    // Ring sized for the whole window (+1 partial tail, +1 slack). Each
    // slot holds a full MetricSnapshot — the latency histogram dominates
    // at ~800 KB — so the capacity is clamped; beyond it sample() counts
    // dropped windows instead of allocating.
    stats::SeriesConfig scfg;
    scfg.interval = cfg_.series_interval;
    const sim::Time want = cfg_.measure / cfg_.series_interval + 2;
    scfg.capacity = static_cast<std::size_t>(want < 2 ? 2 : (want > 512 ? 512 : want));
    series_ = std::make_unique<stats::SeriesRecorder>(metrics_, scfg);
    series_->arm(*sim_);
  }
}

template <typename Sim>
ExperimentResult BasicTestbed<Sim>::finish_measurement() {
  if (series_) series_->finish(sim_->now());
  ExperimentResult r;
  const auto machine_end = machine_->snapshot_all();
  const Time window = sim_->now() - window_start_;
  if (window <= 0) return r;

  const auto ws = machine_->window_stats(machine_start_, machine_end);
  r.package_watts = ws.avg_package_watts;

  double on_cpu_sum = 0.0;
  for (const auto& e : driver_entities_) {
    on_cpu_sum += static_cast<double>(e.core->on_cpu_time(e.entity) - e.on_cpu_at_start);
  }
  r.cpu_percent = 100.0 * on_cpu_sum / static_cast<double>(window);

  // Everything below is a read-out of the telemetry window: counters as
  // deltas against the begin_measurement() baseline, distributions as the
  // window-local values the baseline reset.
  const stats::MetricSnapshot d = metrics_.delta(window_baseline_);

  const double window_s = sim::to_seconds(window);
  const std::uint64_t rx = d.counter("port.rx");
  std::uint64_t drops = d.counter("port.cap_drops");
  for (int q = 0; q < port_->n_rx_queues(); ++q) {
    drops += d.counter("port.q" + std::to_string(q) + ".dropped");
  }
  const std::uint64_t tx = d.counter("port.tx.transmitted");
  r.rx_packets = rx;
  r.tx_packets = tx;
  r.dropped_packets = drops;
  r.offered_mpps = cfg_.workload.rate_mpps;
  r.throughput_mpps = static_cast<double>(tx) / window_s / 1e6;
  r.loss_permille = rx > 0 ? 1000.0 * static_cast<double>(drops) / static_cast<double>(rx) : 0.0;
  r.latency_us = d.histogram("latency_us").boxplot();

  if (metronome_) {
    r.rho = metronome_->mean_rho();
    r.ts_us = metronome_->mean_ts_us();
    std::uint64_t tries = 0;
    std::uint64_t busy = 0;
    for (int q = 0; q < metronome_->n_queues(); ++q) {
      const std::string base = "met.q" + std::to_string(q);
      const std::uint64_t q_tries = d.counter(base + ".total_tries");
      const std::uint64_t q_busy = d.counter(base + ".busy_tries");
      tries += q_tries;
      busy += q_busy;
      r.vacation_us.merge(d.summary(base + ".vacation_us"));
      r.busy_us.merge(d.summary(base + ".busy_us"));
      r.nv.merge(d.summary(base + ".nv"));
      const double pct =
          q_tries ? 100.0 * static_cast<double>(q_busy) / static_cast<double>(q_tries) : 0.0;
      r.queues.push_back(ExperimentResult::QueueDetail{
          pct, q_tries, metronome_->queue_state(q).rho.value()});
    }
    r.busy_tries_pct =
        tries ? 100.0 * static_cast<double>(busy) / static_cast<double>(tries) : 0.0;
    r.wakeups = tries;
  }
  return r;
}

template <typename Sim>
double BasicTestbed<Sim>::window_cpu_percent() {
  machine_->snapshot_all();  // settle so on_cpu_time is current
  const Time now = sim_->now();
  if (cpu_probe_oncpu_.size() != driver_entities_.size()) {
    cpu_probe_oncpu_.assign(driver_entities_.size(), 0);
    for (std::size_t i = 0; i < driver_entities_.size(); ++i) {
      cpu_probe_oncpu_[i] = driver_entities_[i].core->on_cpu_time(driver_entities_[i].entity);
    }
    cpu_probe_at_ = now;
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < driver_entities_.size(); ++i) {
    const Time cur = driver_entities_[i].core->on_cpu_time(driver_entities_[i].entity);
    sum += static_cast<double>(cur - cpu_probe_oncpu_[i]);
    cpu_probe_oncpu_[i] = cur;
  }
  const Time dt = now - cpu_probe_at_;
  cpu_probe_at_ = now;
  return dt > 0 ? 100.0 * sum / static_cast<double>(dt) : 0.0;
}

template <typename Sim>
std::uint64_t BasicTestbed<Sim>::packets_processed() const {
  if (metronome_) return metronome_->packets_processed();
  std::uint64_t total = 0;
  for (const auto& s : polling_stats_) total += s->packets_processed;
  for (const auto& s : xdp_stats_) total += s->packets_processed;
  return total;
}

template <typename Sim>
ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  BasicTestbed<Sim> bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  bed.begin_measurement();
  bed.run_until(cfg.warmup + cfg.measure);
  return bed.finish_measurement();
}

template class BasicTestbed<sim::Simulation>;
template class BasicTestbed<sim::LadderSimulation>;
template class BasicTestbed<sim::WheelSimulation>;
template ExperimentResult run_experiment<sim::Simulation>(const ExperimentConfig&);
template ExperimentResult run_experiment<sim::LadderSimulation>(const ExperimentConfig&);
template ExperimentResult run_experiment<sim::WheelSimulation>(const ExperimentConfig&);

}  // namespace metro::apps
