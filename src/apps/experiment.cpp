#include "apps/experiment.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/pcap.hpp"
#include "tgen/trace.hpp"

namespace metro::apps {

using sim::Time;

namespace {

/// Build the kTrace generator: synthesise the unbalanced trace, round-trip
/// it through the pcap writer/reader (so the on-disk path is what runs,
/// not a shortcut), parse, and replay at the configured rate.
std::unique_ptr<tgen::Generator> make_trace_generator(const WorkloadConfig& w, Time duration) {
  const auto frames =
      tgen::synthesise_unbalanced_trace(w.trace.n_packets, w.trace.heavy_share, w.seed);
  std::stringstream pcap_bytes;
  net::PcapWriter writer(pcap_bytes);
  for (const auto& frame : frames) writer.write(frame);
  auto entries = tgen::parse_trace(net::PcapReader::read_all(pcap_bytes));
  return std::make_unique<tgen::TraceGenerator>(std::move(entries), w.rate_mpps * 1e6, duration);
}

}  // namespace

template <typename Sim>
BasicTestbed<Sim>::BasicTestbed(const ExperimentConfig& cfg) : cfg_(cfg) {
  if constexpr (std::is_same_v<Sim, sim::LadderSimulation>) {
    sim_ = std::make_unique<Sim>(cfg.seed, sim::LadderQueueBackend(cfg.ladder));
  } else {
    sim_ = std::make_unique<Sim>(cfg.seed);
  }

  sim::CoreConfig core_cfg;
  core_cfg.governor = cfg.governor;
  machine_ = std::make_unique<sim::BasicMachine<Sim>>(*sim_, cfg.n_cores, core_cfg);

  // Latency in microseconds: 0.05 us bins up to 5 ms.
  latency_ = std::make_unique<stats::Histogram>(0.05, 5000.0);
  latency_recorder_.hist = latency_.get();

  nic::PortConfig port_cfg = cfg.xl710 ? nic::xl710_config(cfg.n_queues)
                                       : nic::x520_config(cfg.n_queues);
  port_cfg.tx_batch = cfg.tx_batch;
  port_ = std::make_unique<nic::BasicPort<Sim>>(*sim_, port_cfg,
                                                nic::TxCallback(latency_recorder_));

  flows_ = std::make_unique<tgen::FlowSet>(cfg.workload.n_flows, cfg.workload.seed);
  const Time gen_duration = cfg.warmup + cfg.measure + 100 * sim::kMillisecond;
  const auto n_flows = static_cast<std::uint32_t>(cfg.workload.n_flows);
  const auto uniform_picker = [n_flows] {
    return std::make_unique<tgen::UniformFlowPicker>(n_flows);
  };
  switch (cfg.workload.model) {
    case ArrivalModel::kPerFlow:
      break;  // no pull generator; sources are spawned in start()
    case ArrivalModel::kStream: {
      std::unique_ptr<tgen::FlowPicker> picker;
      if (cfg.workload.heavy_share > 0.0) {
        picker = std::make_unique<tgen::UnbalancedFlowPicker>(0, cfg.workload.heavy_share,
                                                              n_flows);
      } else {
        picker = uniform_picker();
      }
      tgen::StreamConfig stream;
      stream.rate_pps = cfg.workload.rate_mpps * 1e6;
      stream.wire_size = cfg.workload.wire_size;
      stream.imix = cfg.workload.imix;
      stream.poisson = cfg.workload.poisson;
      stream.seed = cfg.workload.seed;
      stream.duration = gen_duration;
      generator_ = std::make_unique<tgen::StreamGenerator>(stream, *flows_, std::move(picker));
      break;
    }
    case ArrivalModel::kMmpp: {
      tgen::MmppConfig mmpp;
      mmpp.mean_rate_pps = cfg.workload.rate_mpps * 1e6;
      mmpp.shape = cfg.workload.mmpp;
      mmpp.wire_size = cfg.workload.wire_size;
      mmpp.duration = gen_duration;
      mmpp.seed = cfg.workload.seed;
      generator_ = std::make_unique<tgen::MmppGenerator>(mmpp, *flows_, uniform_picker());
      break;
    }
    case ArrivalModel::kParetoTrain: {
      tgen::ParetoTrainConfig train;
      train.rate_pps = cfg.workload.rate_mpps * 1e6;
      train.shape = cfg.workload.pareto;
      train.wire_size = cfg.workload.wire_size;
      train.duration = gen_duration;
      train.seed = cfg.workload.seed;
      generator_ = std::make_unique<tgen::ParetoTrainGenerator>(train, *flows_);
      break;
    }
    case ArrivalModel::kIncast: {
      tgen::IncastConfig incast;
      incast.rate_pps = cfg.workload.rate_mpps * 1e6;
      incast.shape = cfg.workload.incast;
      incast.wire_size = cfg.workload.wire_size;
      incast.duration = gen_duration;
      incast.seed = cfg.workload.seed;
      generator_ = std::make_unique<tgen::IncastGenerator>(incast, *flows_);
      break;
    }
    case ArrivalModel::kTrace:
      generator_ = make_trace_generator(cfg.workload, gen_duration);
      break;
  }
}

template <typename Sim>
BasicTestbed<Sim>::~BasicTestbed() = default;

template <typename Sim>
void BasicTestbed<Sim>::start() {
  assert(!started_);
  started_ = true;

  if (cfg_.workload.rate_mpps > 0.0) {
    if (cfg_.workload.model == ArrivalModel::kPerFlow) {
      tgen::PerFlowSourceConfig src;
      src.total_rate_pps = cfg_.workload.rate_mpps * 1e6;
      src.poisson = cfg_.workload.poisson;
      src.wire_size = cfg_.workload.wire_size;
      src.duration = cfg_.warmup + cfg_.measure + 100 * sim::kMillisecond;
      tgen::attach_per_flow_sources(*sim_, *port_, *flows_, src);
    } else if (generator_ != nullptr) {
      tgen::attach(*sim_, *port_, *generator_);
    }
  }

  switch (cfg_.driver) {
    case DriverKind::kMetronome: {
      std::vector<Core*> cores;
      for (int i = 0; i < cfg_.n_cores; ++i) cores.push_back(&machine_->core(i));
      metronome_ = std::make_unique<core::BasicMetronome<Sim>>(*sim_, *port_, cores, cfg_.met);
      metronome_->start();
      for (const auto& t : metronome_->threads()) {
        driver_entities_.push_back(EntitySnapshot{t.core, t.entity, 0});
      }
      break;
    }
    case DriverKind::kStaticPolling: {
      // One lcore per queue: queue q on core q % n_cores (the paper gives
      // each static thread its own core; sharing only happens in the
      // CPU-contention experiments).
      for (int q = 0; q < port_->n_rx_queues(); ++q) {
        auto stats = std::make_unique<dpdk::DriverStats>();
        Core& core = machine_->core(q % cfg_.n_cores);
        const auto ent = dpdk::spawn_static_lcore(*sim_, *port_, q, core, cfg_.polling, *stats);
        driver_entities_.push_back(EntitySnapshot{&core, ent, 0});
        polling_stats_.push_back(std::move(stats));
      }
      break;
    }
    case DriverKind::kXdp: {
      if (cfg_.n_cores < port_->n_rx_queues()) {
        throw std::invalid_argument("XDP requires one core per Rx queue");
      }
      for (int q = 0; q < port_->n_rx_queues(); ++q) {
        auto stats = std::make_unique<dpdk::XdpStats>();
        Core& core = machine_->core(q);
        const auto ent = dpdk::spawn_xdp_queue(*sim_, *port_, q, core, cfg_.xdp, *stats);
        driver_entities_.push_back(EntitySnapshot{&core, ent, 0});
        xdp_stats_.push_back(std::move(stats));
      }
      break;
    }
  }

  for (int i = 0; i < cfg_.competitor.n_workers && i < cfg_.n_cores; ++i) {
    FerretConfig fc;
    fc.total_work = -1;  // continuous contention
    fc.nice = cfg_.competitor.nice;
    spawn_ferret(*sim_, machine_->core(i), fc, "competitor-" + std::to_string(i));
  }
}

template <typename Sim>
void BasicTestbed<Sim>::run_until(Time t) { sim_->run_until(t); }

template <typename Sim>
void BasicTestbed<Sim>::begin_measurement() {
  window_start_ = sim_->now();
  machine_start_ = machine_->snapshot_all();  // settles all cores
  for (auto& e : driver_entities_) e.on_cpu_at_start = e.core->on_cpu_time(e.entity);
  latency_->reset();
  if (metronome_) metronome_->reset_stats();
  rx_at_start_ = port_->total_rx();
  drop_at_start_ = port_->total_dropped();
  tx_at_start_ = port_->tx().total_transmitted();
}

template <typename Sim>
ExperimentResult BasicTestbed<Sim>::finish_measurement() {
  ExperimentResult r;
  const auto machine_end = machine_->snapshot_all();
  const Time window = sim_->now() - window_start_;
  if (window <= 0) return r;

  const auto ws = machine_->window_stats(machine_start_, machine_end);
  r.package_watts = ws.avg_package_watts;

  double on_cpu_sum = 0.0;
  for (const auto& e : driver_entities_) {
    on_cpu_sum += static_cast<double>(e.core->on_cpu_time(e.entity) - e.on_cpu_at_start);
  }
  r.cpu_percent = 100.0 * on_cpu_sum / static_cast<double>(window);

  const double window_s = sim::to_seconds(window);
  const std::uint64_t rx = port_->total_rx() - rx_at_start_;
  const std::uint64_t drops = port_->total_dropped() - drop_at_start_;
  const std::uint64_t tx = port_->tx().total_transmitted() - tx_at_start_;
  r.offered_mpps = cfg_.workload.rate_mpps;
  r.throughput_mpps = static_cast<double>(tx) / window_s / 1e6;
  r.loss_permille = rx > 0 ? 1000.0 * static_cast<double>(drops) / static_cast<double>(rx) : 0.0;
  r.latency_us = latency_->boxplot();

  if (metronome_) {
    r.rho = metronome_->mean_rho();
    r.busy_tries_pct = 100.0 * metronome_->busy_try_fraction();
    r.ts_us = metronome_->mean_ts_us();
    r.wakeups = metronome_->total_tries();
    for (int q = 0; q < metronome_->n_queues(); ++q) {
      const auto& qs = metronome_->queue_state(q);
      r.vacation_us.merge(qs.vacation_us);
      r.busy_us.merge(qs.busy_us);
      r.nv.merge(qs.nv);
      r.queues.push_back(ExperimentResult::QueueDetail{100.0 * qs.busy_try_fraction(),
                                                       qs.total_tries, qs.rho.value()});
    }
  }
  return r;
}

template <typename Sim>
double BasicTestbed<Sim>::window_cpu_percent() {
  machine_->snapshot_all();  // settle so on_cpu_time is current
  const Time now = sim_->now();
  if (cpu_probe_oncpu_.size() != driver_entities_.size()) {
    cpu_probe_oncpu_.assign(driver_entities_.size(), 0);
    for (std::size_t i = 0; i < driver_entities_.size(); ++i) {
      cpu_probe_oncpu_[i] = driver_entities_[i].core->on_cpu_time(driver_entities_[i].entity);
    }
    cpu_probe_at_ = now;
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < driver_entities_.size(); ++i) {
    const Time cur = driver_entities_[i].core->on_cpu_time(driver_entities_[i].entity);
    sum += static_cast<double>(cur - cpu_probe_oncpu_[i]);
    cpu_probe_oncpu_[i] = cur;
  }
  const Time dt = now - cpu_probe_at_;
  cpu_probe_at_ = now;
  return dt > 0 ? 100.0 * sum / static_cast<double>(dt) : 0.0;
}

template <typename Sim>
std::uint64_t BasicTestbed<Sim>::packets_processed() const {
  if (metronome_) return metronome_->packets_processed();
  std::uint64_t total = 0;
  for (const auto& s : polling_stats_) total += s->packets_processed;
  for (const auto& s : xdp_stats_) total += s->packets_processed;
  return total;
}

template <typename Sim>
ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  BasicTestbed<Sim> bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  bed.begin_measurement();
  bed.run_until(cfg.warmup + cfg.measure);
  return bed.finish_measurement();
}

template class BasicTestbed<sim::Simulation>;
template class BasicTestbed<sim::LadderSimulation>;
template ExperimentResult run_experiment<sim::Simulation>(const ExperimentConfig&);
template ExperimentResult run_experiment<sim::LadderSimulation>(const ExperimentConfig&);

}  // namespace metro::apps
