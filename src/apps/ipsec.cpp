#include "apps/ipsec.hpp"

#include <cstring>
#include <span>

namespace metro::apps {

using namespace metro::net;

template <typename Crypto>
BasicIpsecGateway<Crypto>::BasicIpsecGateway(const SecurityAssociation& sa, std::uint64_t iv_seed)
    : sa_(sa),
      cipher_(std::span<const std::uint8_t, 16>(sa_.cipher_key)),
      hmac_(sa_.auth_key),
      iv_rng_(iv_seed) {}

template <typename Crypto>
bool BasicIpsecGateway<Crypto>::encap(Packet& pkt) {
  if (pkt.size() < sizeof(EthernetHeader) + sizeof(Ipv4Header)) {
    ++stats_.malformed;
    return false;
  }
  const EthernetHeader eth = *pkt.at<EthernetHeader>(0);
  if (be16_to_host(eth.ether_type) != kEtherTypeIpv4) {
    ++stats_.malformed;
    return false;
  }

  // The plaintext is the inner IPv4 packet (Ethernet stripped).
  pkt.adj(sizeof(EthernetHeader));
  const std::size_t inner_len = pkt.size();

  // RFC 4303 trailer: pad to the cipher block, then pad-length + next-header.
  const std::size_t unpadded = inner_len + 2;
  const std::size_t padded = (unpadded + 15) / 16 * 16;
  const std::size_t pad_len = padded - unpadded;
  std::uint8_t* tail = pkt.append(pad_len + 2);
  for (std::size_t i = 0; i < pad_len; ++i) tail[i] = static_cast<std::uint8_t>(i + 1);
  tail[pad_len] = static_cast<std::uint8_t>(pad_len);
  tail[pad_len + 1] = 4;  // next header: IPv4 (tunnel mode)

  // Encrypt in place with a fresh random IV: all 16 bytes from two RNG
  // draws, not one draw per byte.
  std::array<std::uint8_t, kIvSize> iv;
  const std::uint64_t iv_lo = iv_rng_.next_u64();
  const std::uint64_t iv_hi = iv_rng_.next_u64();
  std::memcpy(iv.data(), &iv_lo, 8);
  std::memcpy(iv.data() + 8, &iv_hi, 8);
  cipher_.encrypt(std::span(pkt.data(), padded), std::span<const std::uint8_t, 16>(iv),
                  std::span(pkt.data(), padded));

  // Prepend IV and the ESP header.
  std::uint8_t* iv_area = pkt.prepend(kIvSize);
  std::memcpy(iv_area, iv.data(), kIvSize);
  auto* esp = reinterpret_cast<EspHeader*>(pkt.prepend(sizeof(EspHeader)));
  esp->spi = host_to_be32(sa_.spi);
  esp->sequence = host_to_be32(++seq_out_);

  // Integrity tag over ESP header + IV + ciphertext, streamed straight
  // into the packet tail.
  const std::size_t authed_len = pkt.size();
  hmac_.compute96(std::span(pkt.data(), authed_len),
                  std::span<std::uint8_t, kTagSize>(pkt.append(kTagSize), kTagSize));

  // Outer IPv4 + Ethernet.
  auto* outer_ip = reinterpret_cast<Ipv4Header*>(pkt.prepend(sizeof(Ipv4Header)));
  outer_ip->version_ihl = 0x45;
  outer_ip->tos = 0;
  outer_ip->total_length = host_to_be16(static_cast<std::uint16_t>(pkt.size()));
  outer_ip->id = host_to_be16(static_cast<std::uint16_t>(seq_out_));
  outer_ip->frag_offset = 0;
  outer_ip->ttl = 64;
  outer_ip->protocol = kIpProtoEsp;
  outer_ip->src = host_to_be32(sa_.tunnel_src);
  outer_ip->dst = host_to_be32(sa_.tunnel_dst);
  ipv4_set_checksum(*outer_ip);

  auto* outer_eth = reinterpret_cast<EthernetHeader*>(pkt.prepend(sizeof(EthernetHeader)));
  *outer_eth = eth;

  ++stats_.encapsulated;
  return true;
}

template <typename Crypto>
bool BasicIpsecGateway<Crypto>::replay_check_and_update(std::uint32_t seq) {
  if (seq == 0) return false;
  if (seq > replay_top_) {
    const std::uint32_t shift = seq - replay_top_;
    replay_bits_ = shift >= 64 ? 0 : replay_bits_ << shift;
    replay_bits_ |= 1;  // mark `seq` itself
    replay_top_ = seq;
    return true;
  }
  const std::uint32_t offset = replay_top_ - seq;
  if (offset >= kReplayWindow) return false;  // too old
  const std::uint64_t bit = 1ULL << offset;
  if (replay_bits_ & bit) return false;  // replayed
  replay_bits_ |= bit;
  return true;
}

template <typename Crypto>
bool BasicIpsecGateway<Crypto>::decap(Packet& pkt) {
  const std::size_t min_len = sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(EspHeader) +
                              kIvSize + 16 + kTagSize;
  if (pkt.size() < min_len) {
    ++stats_.malformed;
    return false;
  }
  const EthernetHeader eth = *pkt.at<EthernetHeader>(0);
  if (be16_to_host(eth.ether_type) != kEtherTypeIpv4) {
    ++stats_.malformed;
    return false;
  }
  const auto* outer_ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  // The gateway only ever emits a 20-byte option-free outer header
  // (encap writes 0x45); anything else means the tunnel header was
  // corrupted, and the fixed-size adj() below would misparse it.
  if (outer_ip->version_ihl != 0x45 || outer_ip->protocol != kIpProtoEsp ||
      !ipv4_checksum_ok(*outer_ip)) {
    ++stats_.malformed;
    return false;
  }

  pkt.adj(sizeof(EthernetHeader) + sizeof(Ipv4Header));

  // Verify the tag before touching anything else. Branch-free XOR-fold
  // compare: the time taken is independent of where a mismatch occurs, so
  // auth-failure timing leaks nothing about the expected tag.
  const std::size_t authed_len = pkt.size() - kTagSize;
  const auto expect = hmac_.compute96(std::span(pkt.data(), authed_len));
  const std::uint8_t* got = pkt.data() + authed_len;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kTagSize; ++i) diff |= expect[i] ^ got[i];
  if (diff != 0) {
    ++stats_.auth_failures;
    return false;
  }
  pkt.trim(kTagSize);

  const auto* esp = pkt.at<EspHeader>(0);
  if (be32_to_host(esp->spi) != sa_.spi) {
    ++stats_.malformed;
    return false;
  }
  const std::uint32_t seq = be32_to_host(esp->sequence);
  if (!replay_check_and_update(seq)) {
    ++stats_.replay_drops;
    return false;
  }

  std::array<std::uint8_t, kIvSize> iv;
  std::memcpy(iv.data(), pkt.data() + sizeof(EspHeader), kIvSize);
  pkt.adj(sizeof(EspHeader) + kIvSize);

  if (pkt.size() % 16 != 0 || pkt.size() == 0) {
    ++stats_.malformed;
    return false;
  }
  cipher_.decrypt(std::span(pkt.data(), pkt.size()), std::span<const std::uint8_t, 16>(iv),
                  std::span(pkt.data(), pkt.size()));

  // Validate and strip the ESP trailer.
  const std::uint8_t next_header = pkt.data()[pkt.size() - 1];
  const std::uint8_t pad_len = pkt.data()[pkt.size() - 2];
  if (next_header != 4 || pad_len + 2u > pkt.size()) {
    ++stats_.malformed;
    return false;
  }
  for (std::size_t i = 0; i < pad_len; ++i) {
    if (pkt.data()[pkt.size() - 2 - pad_len + i] != static_cast<std::uint8_t>(i + 1)) {
      ++stats_.malformed;
      return false;
    }
  }
  pkt.trim(pad_len + 2u);

  // Restore the Ethernet header in front of the inner IP packet.
  auto* inner_eth = reinterpret_cast<EthernetHeader*>(pkt.prepend(sizeof(EthernetHeader)));
  *inner_eth = eth;

  ++stats_.decapsulated;
  return true;
}

template <typename Crypto>
std::size_t BasicIpsecGateway<Crypto>::encap_burst(std::span<net::Packet> pkts) {
  std::size_t ok = 0;
  for (auto& pkt : pkts) ok += encap(pkt) ? 1 : 0;
  return ok;
}

template <typename Crypto>
std::size_t BasicIpsecGateway<Crypto>::decap_burst(std::span<net::Packet> pkts) {
  std::size_t ok = 0;
  for (auto& pkt : pkts) ok += decap(pkt) ? 1 : 0;
  return ok;
}

template class BasicIpsecGateway<FastCrypto>;
template class BasicIpsecGateway<ScalarCrypto>;

}  // namespace metro::apps
