// L3 forwarder (DPDK's l3fwd sample, LPM and exact-match variants).
//
// The functional path does everything the real sample does per packet:
// sanity-check the Ethernet/IPv4 headers, verify the IP checksum, look up
// the destination (longest-prefix match or exact 5-tuple match), decrement
// the TTL with an incremental checksum update (RFC 1624) and rewrite the
// MAC addresses for the output port. The timing simulator charges
// calib::kL3fwdPerPacketCost per packet instead of running this code
// inline (see nic/sim_packet.hpp for the rationale).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/exact_match.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/lpm.hpp"
#include "net/packet.hpp"
#include "net/packet_builder.hpp"
#include "stats/metric_set.hpp"

namespace metro::apps {

enum class L3fwdDrop {
  kNone,
  kNotIpv4,
  kBadChecksum,
  kTtlExpired,
  kNoRoute,
  kMalformed,
};

struct L3fwdStats {
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::array<std::uint64_t, 6> drop_reason{};  // indexed by L3fwdDrop

  /// Attach all counters (per-reason drops included) to `set` under
  /// `prefix` (setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    static constexpr const char* kReason[6] = {"none",       "not_ipv4", "bad_checksum",
                                               "ttl_expired", "no_route", "malformed"};
    set.attach_counter(prefix + ".forwarded", forwarded);
    set.attach_counter(prefix + ".dropped", dropped);
    for (std::size_t i = 1; i < drop_reason.size(); ++i) {
      set.attach_counter(prefix + ".drop." + kReason[i], drop_reason[i]);
    }
  }
};

class L3Forwarder {
 public:
  enum class Mode { kLpm, kExactMatch };

  struct OutPort {
    std::uint16_t id = 0;
    net::MacAddress src_mac{};
    net::MacAddress dst_mac{};  // next-hop MAC
  };

  explicit L3Forwarder(Mode mode, std::size_t em_capacity = 4096);

  /// Register an output port; next hops reference ports by index.
  void add_port(OutPort port) { ports_.push_back(port); }

  /// LPM route (host-order prefix). `port_index` must reference add_port'd.
  bool add_route(std::uint32_t prefix, int depth, std::uint16_t port_index) {
    return lpm_.add(prefix, depth, port_index);
  }

  /// Exact-match route on the full 5-tuple.
  bool add_em_route(const net::FiveTuple& tuple, std::uint16_t port_index) {
    return em_.insert(tuple, port_index);
  }

  /// Forward one packet in place. Returns the output port index, or
  /// nullopt if the packet was dropped (reason recorded in stats()).
  std::optional<std::uint16_t> process(net::Packet& pkt);

  const L3fwdStats& stats() const noexcept { return stats_; }
  Mode mode() const noexcept { return mode_; }

 private:
  std::optional<std::uint16_t> route_of(const net::Packet& pkt, const net::Ipv4Header& ip);
  void drop(L3fwdDrop reason) {
    ++stats_.dropped;
    ++stats_.drop_reason[static_cast<std::size_t>(reason)];
  }

  struct TupleHasher {
    std::uint64_t operator()(const net::FiveTuple& t) const { return net::flow_hash(t); }
  };

  Mode mode_;
  net::LpmTable lpm_;
  net::CuckooTable<net::FiveTuple, std::uint16_t, TupleHasher> em_;
  std::vector<OutPort> ports_;
  L3fwdStats stats_;
};

/// Synthetic test frames (moved to net/packet_builder.hpp; re-exported
/// here because every l3fwd consumer builds its inputs with it).
using net::build_udp_packet;

}  // namespace metro::apps
