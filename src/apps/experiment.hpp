// Unified experiment harness.
//
// Every table/figure bench assembles the same testbed: a Machine (cores +
// governor + power model), a Port (X520 or XL710), a workload generator,
// one of the three drivers (Metronome / static-polling DPDK / XDP), an
// optional co-scheduled CPU-bound competitor, a warm-up phase and a
// measurement window. This header packages that wiring once, so each bench
// is just a parameter sweep + a table printer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/ferret.hpp"
#include "core/metronome.hpp"
#include "dpdk/static_polling.hpp"
#include "dpdk/xdp_model.hpp"
#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "tgen/feeder.hpp"
#include "tgen/generator.hpp"

namespace metro::apps {

enum class DriverKind { kMetronome, kStaticPolling, kXdp };

struct WorkloadConfig {
  double rate_mpps = 14.88;  // 10 GbE 64 B line rate
  bool poisson = false;
  std::uint16_t wire_size = 64;
  bool imix = false;  // simple-IMIX size mix instead of fixed wire_size
  std::size_t n_flows = 256;
  /// > 0: fraction of packets belonging to flow 0 (§V-F.4 unbalanced mix).
  double heavy_share = 0.0;
  std::uint64_t seed = 42;
};

struct CompetitorConfig {
  /// Number of cores (0..n-1) that also run a continuous CPU-bound task.
  int n_workers = 0;
  int nice = 19;
};

struct ExperimentConfig {
  DriverKind driver = DriverKind::kMetronome;
  core::MetronomeConfig met{};
  dpdk::StaticPollingConfig polling{};
  dpdk::XdpConfig xdp{};

  int n_queues = 1;
  bool xl710 = false;  // X520 (10 GbE) by default
  int n_cores = 3;
  sim::Governor governor = sim::Governor::kPerformance;
  int tx_batch = sim::calib::kTxBatchDefault;

  WorkloadConfig workload{};
  CompetitorConfig competitor{};

  sim::Time warmup = 200 * sim::kMillisecond;
  sim::Time measure = sim::kSecond;
  std::uint64_t seed = 1;
};

struct ExperimentResult {
  double offered_mpps = 0.0;
  double throughput_mpps = 0.0;
  double loss_permille = 0.0;
  /// Sum of the driver threads' on-CPU shares; 100 = one full core.
  double cpu_percent = 0.0;
  double package_watts = 0.0;
  stats::Boxplot latency_us{};

  // Metronome-only observables (zero otherwise).
  double rho = 0.0;
  double busy_tries_pct = 0.0;
  double ts_us = 0.0;
  stats::Summary vacation_us{};
  stats::Summary busy_us{};
  stats::Summary nv{};
  std::uint64_t wakeups = 0;

  /// Per-queue Metronome detail (Table III).
  struct QueueDetail {
    double busy_tries_pct = 0.0;
    std::uint64_t total_tries = 0;
    double rho = 0.0;
  };
  std::vector<QueueDetail> queues;
};

ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// The live simulation testbed, for benches needing time series (Fig. 9)
/// or bespoke sequencing (Fig. 12). run_experiment() is built on this.
class Testbed {
 public:
  explicit Testbed(const ExperimentConfig& cfg);
  ~Testbed();

  sim::Simulation& sim() { return *sim_; }
  sim::Machine& machine() { return *machine_; }
  nic::Port& port() { return *port_; }
  core::Metronome* metronome() { return metronome_.get(); }

  /// Spawn the configured driver + workload + competitors.
  void start();

  /// Run to `t` (absolute virtual time).
  void run_until(sim::Time t);

  /// Zero all measurement state (call at the end of warm-up).
  void begin_measurement();

  /// Harvest results for the window since begin_measurement().
  ExperimentResult finish_measurement();

  /// Instantaneous observables for time-series sampling.
  double window_cpu_percent();  // since last call to this function
  std::uint64_t packets_processed() const;

 private:
  struct EntitySnapshot {
    sim::Core* core;
    sim::Core::EntityId entity;
    sim::Time on_cpu_at_start = 0;
  };

  ExperimentConfig cfg_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<stats::Histogram> latency_;
  std::unique_ptr<nic::Port> port_;
  std::unique_ptr<tgen::FlowSet> flows_;
  std::unique_ptr<tgen::Generator> generator_;
  std::unique_ptr<core::Metronome> metronome_;
  std::vector<std::unique_ptr<dpdk::DriverStats>> polling_stats_;
  std::vector<std::unique_ptr<dpdk::XdpStats>> xdp_stats_;
  std::vector<EntitySnapshot> driver_entities_;

  // measurement window state
  sim::Time window_start_ = 0;
  std::vector<sim::Core::Snapshot> machine_start_;
  std::uint64_t rx_at_start_ = 0;
  std::uint64_t drop_at_start_ = 0;
  std::uint64_t tx_at_start_ = 0;

  // window_cpu_percent() state
  sim::Time cpu_probe_at_ = 0;
  std::vector<sim::Time> cpu_probe_oncpu_;

  bool started_ = false;
};

}  // namespace metro::apps
