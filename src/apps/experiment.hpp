// Unified experiment harness.
//
// Every table/figure bench assembles the same testbed: a Machine (cores +
// governor + power model), a Port (X520 or XL710), a workload generator,
// one of the three drivers (Metronome / static-polling DPDK / XDP), an
// optional co-scheduled CPU-bound competitor, a warm-up phase and a
// measurement window. This header packages that wiring once, so each bench
// is just a parameter sweep + a table printer.
//
// The whole stack is generic over the event-queue backend: BasicTestbed<Sim>
// (and run_experiment<Sim>) assemble the same layers on any kernel
// instantiation, and execution is bit-identical across backends — same
// counters, same latency histogram, same final clock (enforced by
// tests/test_backend_fullstack.cpp). `Testbed` and the plain
// run_experiment(cfg) call bind to the default heap kernel as before.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/ferret.hpp"
#include "core/metronome.hpp"
#include "dpdk/static_polling.hpp"
#include "dpdk/xdp_model.hpp"
#include "fault/fault.hpp"
#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"
#include "stats/metric_set.hpp"
#include "stats/summary.hpp"
#include "stats/time_series.hpp"
#include "stats/trace.hpp"
#include "tgen/bursty.hpp"
#include "tgen/feeder.hpp"
#include "tgen/generator.hpp"

namespace metro::apps {

enum class DriverKind { kMetronome, kStaticPolling, kXdp };

/// Which arrival process drives the testbed (see tgen/). All models honour
/// rate_mpps (the headline long-run rate), n_flows, wire_size and seed;
/// model-specific knobs live in the matching shape struct below.
enum class ArrivalModel {
  /// CBR (or Poisson with `poisson`) through the grouped stream feeder —
  /// the traditional figure path. Honours imix and heavy_share.
  kStream,
  /// One arrival process per flow instead of the grouped stream feeder:
  /// n_flows concurrently pending timers — the large-population regime the
  /// ladder backend targets (see tgen/feeder.hpp). Costs one event per
  /// packet; leave off unless the pending population is the point.
  /// Honours poisson (per-flow gaps); flows are uniform by construction,
  /// so imix and heavy_share do not apply.
  kPerFlow,
  /// 2-state MMPP / ON-OFF bursty arrivals (tgen::MmppGenerator, `mmpp`).
  kMmpp,
  /// Heavy-tail flow-size mix: Pareto-sized back-to-back flow trains
  /// (tgen::ParetoTrainGenerator, `pareto`).
  kParetoTrain,
  /// Synchronized incast epochs (tgen::IncastGenerator, `incast`).
  kIncast,
  /// Replay of a synthesised §V-F.4-style pcap trace, round-tripped
  /// through net::PcapWriter/PcapReader (`trace`).
  kTrace,
};

/// Parameters of the ArrivalModel::kTrace workload. By default the §V-F.4
/// unbalanced trace (n_packets frames, heavy_share of them one UDP flow)
/// is synthesised with the workload seed, persisted to pcap bytes and
/// read back so the whole trace machinery is exercised, then replayed in
/// a loop at rate_mpps. When `path` names an *external* pcap file, that
/// file is parsed and replayed instead (n_packets/heavy_share ignored);
/// an unreadable file or one with no replayable IPv4 frames throws.
struct TraceReplayParams {
  std::size_t n_packets = 1000;
  double heavy_share = 0.3;
  std::string path;  ///< external pcap to replay; empty = synthesise
};

struct WorkloadConfig {
  double rate_mpps = 14.88;  // 10 GbE 64 B line rate
  bool poisson = false;
  std::uint16_t wire_size = 64;
  bool imix = false;  // simple-IMIX size mix instead of fixed wire_size
  std::size_t n_flows = 256;
  /// > 0: fraction of packets belonging to flow 0 (§V-F.4 unbalanced mix).
  double heavy_share = 0.0;
  /// The arrival process (see ArrivalModel).
  ArrivalModel model = ArrivalModel::kStream;
  tgen::MmppShape mmpp{};          ///< kMmpp knobs
  tgen::ParetoTrainShape pareto{}; ///< kParetoTrain knobs
  tgen::IncastShape incast{};      ///< kIncast knobs
  TraceReplayParams trace{};       ///< kTrace knobs
  /// Deterministic fault plane (drop / corrupt / dup / reorder / link
  /// flap / ring stall). Inert by default; when active the testbed seeds
  /// a FaultInjector from the *shard* seed (fault::FaultInjector::
  /// derive_seed(ExperimentConfig::seed)) and hooks it into the port.
  fault::FaultSpec fault{};
  std::uint64_t seed = 42;
};

struct CompetitorConfig {
  /// Number of cores (0..n-1) that also run a continuous CPU-bound task.
  int n_workers = 0;
  int nice = 19;
};

struct ExperimentConfig {
  DriverKind driver = DriverKind::kMetronome;
  core::MetronomeConfig met{};
  dpdk::StaticPollingConfig polling{};
  dpdk::XdpConfig xdp{};

  int n_queues = 1;
  bool xl710 = false;  // X520 (10 GbE) by default
  int n_cores = 3;
  sim::Governor governor = sim::Governor::kPerformance;
  int tx_batch = sim::calib::kTxBatchDefault;

  /// Event-queue geometry used when the testbed is instantiated over the
  /// ladder kernel (BasicTestbed<sim::LadderSimulation>); ignored on the
  /// heap. Geometry only changes simulation speed, never the execution —
  /// runs stay bit-identical across geometries (and backends).
  sim::LadderConfig ladder{};
  /// Likewise for the timing-wheel kernel
  /// (BasicTestbed<sim::WheelSimulation>); ignored by the other two.
  sim::WheelConfig wheel{};

  WorkloadConfig workload{};
  CompetitorConfig competitor{};

  sim::Time warmup = 200 * sim::kMillisecond;
  sim::Time measure = sim::kSecond;

  /// > 0: sample the full telemetry set every `series_interval` of sim
  /// time during the measurement window (stats::SeriesRecorder armed by
  /// begin_measurement(), closed by finish_measurement()). 0 = off.
  /// Sampling only reads counters, so results and fingerprints are
  /// identical either way.
  sim::Time series_interval = 0;

  std::uint64_t seed = 1;
};

/// The measurement-window observables every figure/table bench reads.
/// Since the telemetry refactor this is a *view*: finish_measurement()
/// derives every field from the testbed's MetricSet window delta
/// (BasicTestbed::telemetry()), not from hand-copied counters.
struct ExperimentResult {
  double offered_mpps = 0.0;
  double throughput_mpps = 0.0;
  double loss_permille = 0.0;
  /// Raw measurement-window packet totals (the counters behind the two
  /// rates above). A shard's timeseries windows sum to exactly these.
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t dropped_packets = 0;
  /// Sum of the driver threads' on-CPU shares; 100 = one full core.
  double cpu_percent = 0.0;
  double package_watts = 0.0;
  stats::Boxplot latency_us{};

  // Metronome-only observables (zero otherwise).
  double rho = 0.0;
  double busy_tries_pct = 0.0;
  double ts_us = 0.0;
  stats::Summary vacation_us{};
  stats::Summary busy_us{};
  stats::Summary nv{};
  std::uint64_t wakeups = 0;

  /// Per-queue Metronome detail (Table III).
  struct QueueDetail {
    double busy_tries_pct = 0.0;
    std::uint64_t total_tries = 0;
    double rho = 0.0;
  };
  std::vector<QueueDetail> queues;
};

/// The live simulation testbed, for benches needing time series (Fig. 9)
/// or bespoke sequencing (Fig. 12). run_experiment() is built on this.
/// \tparam Sim the kernel instantiation; the heap alias `Testbed`
///   preserves the original spelling.
template <typename Sim = sim::Simulation>
class BasicTestbed {
 public:
  explicit BasicTestbed(const ExperimentConfig& cfg);
  ~BasicTestbed();

  Sim& sim() { return *sim_; }
  sim::BasicMachine<Sim>& machine() { return *machine_; }
  nic::BasicPort<Sim>& port() { return *port_; }
  core::BasicMetronome<Sim>* metronome() { return metronome_.get(); }
  /// The end-to-end latency histogram backing the result boxplot
  /// (microseconds; cross-backend identity checks compare its raw bins).
  const stats::Histogram& latency_histogram() const { return *latency_; }

  /// The testbed's full telemetry set: every layer's observables (port +
  /// per-ring counters, driver/per-queue Metronome statistics, competitor
  /// progress, the latency histogram) registered in one place. Populated
  /// by start(); snapshot/fingerprint it for cross-backend identity, or
  /// read the measurement window through begin/finish_measurement().
  const stats::MetricSet& telemetry() const { return metrics_; }
  stats::MetricSet& telemetry() { return metrics_; }

  /// Spawn the configured driver + workload + competitors.
  void start();

  /// Run to `t` (absolute virtual time).
  void run_until(sim::Time t);

  /// Zero all measurement state (call at the end of warm-up).
  void begin_measurement();

  /// Harvest results for the window since begin_measurement().
  ExperimentResult finish_measurement();

  /// Instantaneous observables for time-series sampling.
  double window_cpu_percent();  // since last call to this function
  std::uint64_t packets_processed() const;

  /// Attach (or detach, with nullptr) a trace recorder. Fans out to the
  /// kernel (event-fire + backend instants, which the NIC rings and the
  /// Metronome read back through sim().tracer()) and to the fault plane.
  /// Pure observer: execution and telemetry are identical either way.
  void set_tracer(trace::Tracer* t) {
    sim_->set_tracer(t);
    if (fault_) fault_->set_tracer(t);
  }

  /// The measurement-window time series (nullptr unless
  /// ExperimentConfig::series_interval > 0 and measurement has begun).
  const stats::SeriesRecorder* series() const { return series_.get(); }

  /// The SoA per-flow source arena (nullptr unless the workload model is
  /// ArrivalModel::kPerFlow). Exposes the lane accessors —
  /// flow_count()/armed()/fired() and the per-flow lanes — for scale
  /// diagnostics; the pending-timer population it reports is what
  /// WheelConfig::for_population sizes the wheel geometry against.
  const tgen::PerFlowSourceArena<Sim>* flow_arena() const { return flow_arena_.get(); }

 private:
  using Core = sim::BasicCore<Sim>;

  struct EntitySnapshot {
    Core* core;
    typename Core::EntityId entity;
    sim::Time on_cpu_at_start = 0;
  };

  /// Bound into the Tx ring as a non-owning TxCallback: records the
  /// MoonGen-style end-to-end latency (software dwell time plus the fixed
  /// DMA/PCIe/timestamping path) into the histogram.
  struct LatencyRecorder {
    stats::Histogram* hist = nullptr;
    void operator()(const nic::PacketDesc& pkt, sim::Time tx_time) const {
      hist->add(sim::to_micros(tx_time - pkt.arrival + sim::calib::kFixedPathLatency));
    }
  };

  ExperimentConfig cfg_;
  std::unique_ptr<Sim> sim_;
  std::unique_ptr<sim::BasicMachine<Sim>> machine_;
  std::unique_ptr<stats::Histogram> latency_;
  LatencyRecorder latency_recorder_;  // must outlive port_ (non-owning ref)
  std::unique_ptr<fault::FaultInjector> fault_;  // must outlive port_ (borrowed there)
  std::unique_ptr<nic::BasicPort<Sim>> port_;
  std::unique_ptr<tgen::FlowSet> flows_;
  std::unique_ptr<tgen::Generator> generator_;
  std::unique_ptr<tgen::PerFlowSourceArena<Sim>> flow_arena_;  // kPerFlow only
  std::unique_ptr<core::BasicMetronome<Sim>> metronome_;
  std::vector<std::unique_ptr<dpdk::DriverStats>> polling_stats_;
  std::vector<std::unique_ptr<dpdk::XdpStats>> xdp_stats_;
  std::vector<EntitySnapshot> driver_entities_;
  std::vector<std::shared_ptr<FerretResult>> competitors_;

  // Telemetry: every layer registers here (start()); the measurement
  // window is a MetricSet window, not per-counter *_at_start_ copies.
  stats::MetricSet metrics_;
  stats::MetricSnapshot window_baseline_;
  std::unique_ptr<stats::SeriesRecorder> series_;  // armed by begin_measurement()

  // measurement window state (scheduler side)
  sim::Time window_start_ = 0;
  std::vector<typename Core::Snapshot> machine_start_;

  // window_cpu_percent() state
  sim::Time cpu_probe_at_ = 0;
  std::vector<sim::Time> cpu_probe_oncpu_;

  bool started_ = false;
};

/// Heap-kernel alias (the original spelling).
using Testbed = BasicTestbed<sim::Simulation>;

/// Assemble, warm up, measure, tear down — on the chosen kernel
/// instantiation (run_experiment(cfg) without a template argument is the
/// heap path, unchanged).
template <typename Sim = sim::Simulation>
ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace metro::apps
