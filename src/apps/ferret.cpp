#include "apps/ferret.hpp"

namespace metro::apps {

namespace {

template <typename Sim>
sim::Task ferret_task(Sim& sim, sim::BasicCore<Sim>& core,
                      typename sim::BasicCore<Sim>::EntityId ent, FerretConfig cfg,
                      std::shared_ptr<FerretResult> result) {
  result->started = sim.now();
  if (cfg.total_work <= 0) {
    // Continuous contention: model as a spinning entity; never finishes.
    core.set_spinning(ent, true);
    co_return;
  }
  sim::Time remaining = cfg.total_work;
  while (remaining > 0) {
    const sim::Time chunk = remaining < cfg.chunk ? remaining : cfg.chunk;
    co_await core.run_for(ent, chunk);
    remaining -= chunk;
    ++result->chunks_done;
  }
  result->finished = sim.now();
}

}  // namespace

template <typename Sim>
std::shared_ptr<FerretResult> spawn_ferret(Sim& sim, sim::BasicCore<Sim>& core,
                                           const FerretConfig& cfg, const std::string& name) {
  auto result = std::make_shared<FerretResult>();
  const auto ent = core.add_entity(name, cfg.nice);
  sim.spawn(ferret_task(sim, core, ent, cfg, result));
  return result;
}

template std::shared_ptr<FerretResult> spawn_ferret<sim::Simulation>(
    sim::Simulation&, sim::BasicCore<sim::Simulation>&, const FerretConfig&, const std::string&);
template std::shared_ptr<FerretResult> spawn_ferret<sim::LadderSimulation>(
    sim::LadderSimulation&, sim::BasicCore<sim::LadderSimulation>&, const FerretConfig&,
    const std::string&);
template std::shared_ptr<FerretResult> spawn_ferret<sim::WheelSimulation>(
    sim::WheelSimulation&, sim::BasicCore<sim::WheelSimulation>&, const FerretConfig&,
    const std::string&);

}  // namespace metro::apps
