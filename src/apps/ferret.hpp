// A CPU-bound competing workload (stand-in for PARSEC's `ferret`, §V-E).
//
// The paper co-schedules an image-similarity-search VM with Metronome /
// static DPDK to measure (i) how much the packet path degrades and (ii)
// how much the CPU-bound task is stretched. Only the competitor's
// CPU-bound nature matters for those experiments, so the model is a worker
// with a fixed budget of CPU work executed in chunks under the simulated
// scheduler; its wall-clock completion time is the measured quantity.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "stats/metric_set.hpp"

namespace metro::apps {

struct FerretResult {
  sim::Time started = 0;
  sim::Time finished = -1;  // -1 while still running
  /// CPU chunks completed so far (progress of a finite-work ferret;
  /// stays 0 for the continuous-contention mode, which never chunks).
  std::uint64_t chunks_done = 0;
  bool done() const noexcept { return finished >= 0; }
  double elapsed_seconds() const { return done() ? sim::to_seconds(finished - started) : -1.0; }

  /// Attach the worker's progress counter to `set` under `prefix`.
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".chunks_done", chunks_done);
  }
};

struct FerretConfig {
  /// Total CPU work at nominal frequency. <= 0 means run forever
  /// (continuous contention, used for throughput-under-sharing tests).
  sim::Time total_work = 2 * sim::kSecond;
  sim::Time chunk = sim::kMillisecond;
  int nice = 19;
};

/// Spawn one ferret worker on `core`. The returned result object is owned
/// by the caller and updated when the worker finishes. Generic over the
/// kernel instantiation; defined in ferret.cpp and instantiated for both
/// shipped backends.
template <typename Sim>
std::shared_ptr<FerretResult> spawn_ferret(Sim& sim, sim::BasicCore<Sim>& core,
                                           const FerretConfig& cfg,
                                           const std::string& name = "ferret");

}  // namespace metro::apps
