#include "apps/l3fwd.hpp"

#include <cstring>

namespace metro::apps {

using namespace metro::net;

L3Forwarder::L3Forwarder(Mode mode, std::size_t em_capacity)
    : mode_(mode), lpm_(256), em_(em_capacity) {}

std::optional<std::uint16_t> L3Forwarder::route_of(const Packet& pkt, const Ipv4Header& ip) {
  if (mode_ == Mode::kLpm) {
    const auto hop = lpm_.lookup(be32_to_host(ip.dst));
    if (!hop.has_value()) return std::nullopt;
    return *hop;
  }
  FiveTuple tuple;
  if (!extract_five_tuple(pkt, tuple)) return std::nullopt;
  return em_.find(tuple);
}

std::optional<std::uint16_t> L3Forwarder::process(Packet& pkt) {
  if (pkt.size() < sizeof(EthernetHeader) + sizeof(Ipv4Header)) {
    drop(L3fwdDrop::kMalformed);
    return std::nullopt;
  }
  auto* eth = pkt.at<EthernetHeader>(0);
  if (be16_to_host(eth->ether_type) != kEtherTypeIpv4) {
    drop(L3fwdDrop::kNotIpv4);
    return std::nullopt;
  }
  auto* ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  // Full header validation before any further field is trusted: version
  // nibble, IHL floor, truncation against both IHL and total_length
  // (shorter-than-buffer is fine — Ethernet pads small frames — but a
  // header claiming bytes the buffer lacks is corruption).
  if ((ip->version_ihl >> 4) != 4 || ip->header_len() < sizeof(Ipv4Header) ||
      pkt.size() < sizeof(EthernetHeader) + ip->header_len()) {
    drop(L3fwdDrop::kMalformed);
    return std::nullopt;
  }
  const std::size_t total_len = be16_to_host(ip->total_length);
  if (total_len < ip->header_len() || total_len > pkt.size() - sizeof(EthernetHeader)) {
    drop(L3fwdDrop::kMalformed);
    return std::nullopt;
  }
  if (!ipv4_checksum_ok(*ip)) {
    drop(L3fwdDrop::kBadChecksum);
    return std::nullopt;
  }
  if (ip->ttl <= 1) {
    drop(L3fwdDrop::kTtlExpired);
    return std::nullopt;
  }

  const auto port_index = route_of(pkt, *ip);
  if (!port_index.has_value() || *port_index >= ports_.size()) {
    drop(L3fwdDrop::kNoRoute);
    return std::nullopt;
  }

  // TTL decrement with incremental checksum update: the TTL shares a
  // 16-bit checksum word with the protocol field.
  const std::uint16_t old_word =
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(ip->ttl) << 8) | ip->protocol);
  ip->ttl -= 1;
  const std::uint16_t new_word =
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(ip->ttl) << 8) | ip->protocol);
  ip->checksum = host_to_be16(
      checksum_update16(be16_to_host(ip->checksum), old_word, new_word));

  const OutPort& out = ports_[*port_index];
  eth->src = out.src_mac;
  eth->dst = out.dst_mac;

  ++stats_.forwarded;
  return *port_index;
}

}  // namespace metro::apps
