#include "apps/flowatcher.hpp"

#include <algorithm>

namespace metro::apps {

bool FloWatcher::observe(const net::Packet& pkt, std::int64_t now_ns) {
  ++total_packets_;
  total_bytes_ += pkt.size();
  size_hist_.add(static_cast<double>(pkt.size()));
  net::FiveTuple tuple;
  switch (net::classify_five_tuple(pkt, tuple)) {
    case net::FiveTupleError::kNotIpv4:
      ++non_ip_;
      return false;
    case net::FiveTupleError::kMalformed:
      ++malformed_;
      return false;
    case net::FiveTupleError::kOk:
      break;
  }
  observe_flow_impl(tuple, static_cast<std::uint16_t>(pkt.size()), now_ns);
  return true;
}

void FloWatcher::observe_flow(const net::FiveTuple& tuple, std::uint16_t wire_bytes,
                              std::int64_t now_ns) {
  ++total_packets_;
  total_bytes_ += wire_bytes;
  size_hist_.add(static_cast<double>(wire_bytes));
  observe_flow_impl(tuple, wire_bytes, now_ns);
}

void FloWatcher::observe_flow_impl(const net::FiveTuple& tuple, std::uint16_t bytes,
                                   std::int64_t now_ns) {
  if (FlowRecord* rec = flows_.find_mut(tuple); rec != nullptr) {
    ++rec->packets;
    rec->bytes += bytes;
    rec->last_seen_ns = now_ns;
    return;
  }
  FlowRecord rec;
  rec.packets = 1;
  rec.bytes = bytes;
  rec.first_seen_ns = now_ns;
  rec.last_seen_ns = now_ns;
  flows_.insert(tuple, rec);
}

std::vector<HeavyHitter> FloWatcher::heavy_hitters(std::size_t k) const {
  std::vector<HeavyHitter> all;
  flows_.for_each([&](const net::FiveTuple& flow, const FlowRecord& rec) {
    all.push_back(HeavyHitter{flow, rec.packets, rec.bytes});
  });
  std::sort(all.begin(), all.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) { return a.packets > b.packets; });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace metro::apps
