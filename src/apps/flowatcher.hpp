// FloWatcher-style high-speed traffic monitor (§V-G, [15]).
//
// Run-to-completion model: the receiving thread computes the statistics
// itself — per-flow packet/byte counters in a cuckoo flow table, a packet
// size histogram, and inter-arrival tracking, from which heavy hitters and
// aggregate rates can be queried. This mirrors FloWatcher-DPDK's
// fine-grained per-packet + per-flow statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "net/exact_match.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"
#include "stats/histogram.hpp"
#include "stats/metric_set.hpp"
#include "stats/summary.hpp"

namespace metro::apps {

struct FlowRecord {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t first_seen_ns = 0;
  std::int64_t last_seen_ns = 0;
};

struct HeavyHitter {
  net::FiveTuple flow;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

class FloWatcher {
 public:
  explicit FloWatcher(std::size_t flow_capacity = 1 << 16)
      : flows_(flow_capacity), size_hist_(64.0, 1600.0) {}

  /// Account one packet (functional path: parses the real headers).
  /// Returns false for non-IPv4 or malformed packets (still counted).
  bool observe(const net::Packet& pkt, std::int64_t now_ns);

  /// Account a pre-extracted flow (timing path: descriptors only).
  void observe_flow(const net::FiveTuple& tuple, std::uint16_t wire_bytes, std::int64_t now_ns);

  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t non_ip_packets() const noexcept { return non_ip_; }
  /// IPv4-typed frames whose headers failed validation (bad version/IHL,
  /// truncated below the declared lengths) — counted and dropped instead
  /// of being parsed as garbage.
  std::uint64_t malformed_packets() const noexcept { return malformed_; }
  std::size_t active_flows() const noexcept { return flows_.size(); }
  const stats::Histogram& size_histogram() const noexcept { return size_hist_; }

  const FlowRecord* flow(const net::FiveTuple& tuple) const {
    return const_cast<net::CuckooTable<net::FiveTuple, FlowRecord, Hasher>&>(flows_).find_mut(
        tuple);
  }

  /// Top-k flows by packet count.
  std::vector<HeavyHitter> heavy_hitters(std::size_t k) const;

  /// Attach the monitor's aggregate observables to `set` under `prefix`
  /// (packet/byte/non-IP counters and the size histogram; setup only).
  void register_metrics(stats::MetricSet& set, const std::string& prefix) {
    set.attach_counter(prefix + ".packets", total_packets_);
    set.attach_counter(prefix + ".bytes", total_bytes_);
    set.attach_counter(prefix + ".non_ip", non_ip_);
    set.attach_counter(prefix + ".malformed", malformed_);
    set.attach_histogram(prefix + ".size_bytes", size_hist_);
  }

 private:
  struct Hasher {
    std::uint64_t operator()(const net::FiveTuple& t) const { return net::flow_hash(t); }
  };

  void observe_flow_impl(const net::FiveTuple& tuple, std::uint16_t bytes, std::int64_t now_ns);

  net::CuckooTable<net::FiveTuple, FlowRecord, Hasher> flows_;
  stats::Histogram size_hist_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t non_ip_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace metro::apps
