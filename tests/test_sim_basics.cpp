// Simulation kernel: clock, event ordering, coroutine processes, signals.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace metro::sim {
namespace {

TEST(TimeTest, LiteralsAndConversions) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_micros(2.5), 2500);
  EXPECT_DOUBLE_EQ(to_seconds(2_s), 2.0);
  EXPECT_DOUBLE_EQ(to_micros(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(2'500'000), 2.5);
}

TEST(TimeTest, FromSecondsRoundsToNearest) {
  EXPECT_EQ(from_seconds(1e-9), 1);
  EXPECT_EQ(from_seconds(1.4e-9), 1);
  EXPECT_EQ(from_seconds(1.6e-9), 2);
}

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulationTest, EqualTimestampsRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(101, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);  // clock advances to the requested end
}

TEST(SimulationTest, ScheduleInThePastClampsToNow) {
  Simulation sim;
  Time seen = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 50);
}

TEST(SimulationTest, NestedSchedulingWorks) {
  Simulation sim;
  std::vector<Time> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

Task sleeper(Simulation& sim, std::vector<Time>& log) {
  log.push_back(sim.now());
  co_await sim.sleep_for(100);
  log.push_back(sim.now());
  co_await sim.sleep_for(50);
  log.push_back(sim.now());
}

TEST(TaskTest, CoroutineSleepAdvancesVirtualTime) {
  Simulation sim;
  std::vector<Time> log;
  sim.spawn(sleeper(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<Time>{0, 100, 150}));
}

Task incrementer(Simulation& sim, int& counter, Time period, int times) {
  for (int i = 0; i < times; ++i) {
    co_await sim.sleep_for(period);
    ++counter;
  }
}

TEST(TaskTest, ManyConcurrentProcesses) {
  Simulation sim;
  int counter = 0;
  for (int i = 0; i < 50; ++i) sim.spawn(incrementer(sim, counter, 10 + i, 20));
  sim.run();
  EXPECT_EQ(counter, 50 * 20);
}

TEST(TaskTest, UnfinishedProcessesAreReclaimedSafely) {
  // A process suspended mid-sleep when the Simulation dies must not leak
  // or crash (ASAN would flag it).
  int counter = 0;
  {
    Simulation sim;
    sim.spawn(incrementer(sim, counter, 1000, 1000000));
    sim.run_until(5000);
  }
  EXPECT_EQ(counter, 5);
}

Task wait_on(Simulation& sim, Signal& sig, std::vector<Time>& wakes) {
  co_await sig.wait();
  wakes.push_back(sim.now());
}

TEST(SignalTest, NotifyAllWakesEveryWaiter) {
  Simulation sim;
  Signal sig(sim);
  std::vector<Time> wakes;
  for (int i = 0; i < 3; ++i) sim.spawn(wait_on(sim, sig, wakes));
  sim.schedule_at(500, [&] { sig.notify_all(); });
  sim.run();
  EXPECT_EQ(wakes, (std::vector<Time>{500, 500, 500}));
}

TEST(SignalTest, NotifyWithNoWaitersIsNoop) {
  Simulation sim;
  Signal sig(sim);
  sig.notify_all();
  sim.run();
  EXPECT_TRUE(sim.idle());
}

Task timed_wait(Simulation& sim, Signal& sig, Time timeout, bool& notified, Time& at) {
  notified = co_await sig.wait_for(timeout);
  at = sim.now();
}

TEST(SignalTest, WaitForTimesOut) {
  Simulation sim;
  Signal sig(sim);
  bool notified = true;
  Time at = -1;
  sim.spawn(timed_wait(sim, sig, 200, notified, at));
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(at, 200);
}

TEST(SignalTest, WaitForNotifiedBeforeTimeout) {
  Simulation sim;
  Signal sig(sim);
  bool notified = false;
  Time at = -1;
  sim.spawn(timed_wait(sim, sig, 200, notified, at));
  sim.schedule_at(50, [&] { sig.notify_all(); });
  sim.run();  // the stale timeout event at 200 must be harmless
  EXPECT_TRUE(notified);
  EXPECT_EQ(at, 50);
}

TEST(SignalTest, TimeoutThenLaterNotifyDoesNotDoubleResume) {
  Simulation sim;
  Signal sig(sim);
  bool notified = true;
  Time at = -1;
  sim.spawn(timed_wait(sim, sig, 100, notified, at));
  sim.schedule_at(300, [&] { sig.notify_all(); });  // after the timeout
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(at, 100);
}

TEST(SignalTest, DestroyedSignalWithArmedTimeoutIsSafe) {
  // A Signal torn down mid-run must cancel its armed timeout timers; the
  // still-queued waiter never resumes and nothing dangles.
  Simulation sim;
  auto sig = std::make_unique<Signal>(sim);
  bool resumed = false;
  sim.spawn([](Signal& g, bool& r) -> Task {
    (void)co_await g.wait_for(1000);
    r = true;
  }(*sig, resumed));
  sim.run_until(10);  // waiter queued, timeout armed at t=1000
  sig.reset();
  sim.run();  // the cancelled timer must not fire into freed memory
  EXPECT_FALSE(resumed);
}

Task stress_waiter(Simulation& sim, Signal& sig, Time timeout, std::uint64_t rounds,
                   std::uint64_t& resumes, std::uint64_t& notified_count) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    const bool notified = co_await sig.wait_for(timeout);
    ++resumes;  // exactly one resume per wait, however the race lands
    if (notified) ++notified_count;
    (void)sim;
  }
}

TEST(SignalStressTest, NotifyRacingTimeoutNeverDoubleResumes) {
  // Many waiters with staggered timeouts racing a notifier whose period
  // deliberately collides with some of them. Every wait must resume
  // exactly once: resumes == waiters * rounds, no more, no fewer.
  Simulation sim;
  Signal sig(sim);
  constexpr std::uint64_t kWaiters = 16;
  constexpr std::uint64_t kRounds = 2000;
  std::uint64_t resumes = 0, notified_count = 0;
  for (std::uint64_t w = 0; w < kWaiters; ++w) {
    // Timeouts from 200 ns to 3.2 us; the notifier fires every 1 us, so
    // some waits time out, some are notified, and some collide at the
    // exact same timestamp.
    sim.spawn(stress_waiter(sim, sig, static_cast<Time>(200 * (w + 1)), kRounds, resumes,
                            notified_count));
  }
  sim.spawn([](Simulation& s, Signal& g) -> Task {
    for (;;) {
      co_await s.sleep_for(1000);
      g.notify_all();
    }
  }(sim, sig));
  sim.run_until(10 * kMillisecond);
  EXPECT_EQ(resumes, kWaiters * kRounds);
  EXPECT_GT(notified_count, 0u);
  EXPECT_LT(notified_count, kWaiters * kRounds);
}

TEST(SignalStressTest, ZeroTimeoutRacesNotifyAtSameInstant) {
  // wait_for(0) arms a timeout at the current instant; a notify scheduled
  // at the same timestamp must still produce exactly one resume.
  Simulation sim;
  Signal sig(sim);
  std::uint64_t resumes = 0, notified_count = 0;
  sim.spawn(stress_waiter(sim, sig, 0, 1000, resumes, notified_count));
  sim.spawn([](Simulation& s, Signal& g) -> Task {
    for (;;) {
      g.notify_all();
      co_await s.sleep_for(1);
    }
  }(sim, sig));
  sim.run_until(100 * kMicrosecond);
  EXPECT_EQ(resumes, 1000u);
}

TEST(SignalStressTest, ReNotifyWithinSameInstantWakesReWaiters) {
  // A waiter that immediately re-waits must not be woken twice by the
  // notify that released it, but must be picked up by the next one.
  Simulation sim;
  Signal sig(sim);
  std::uint64_t resumes = 0, notified_count = 0;
  sim.spawn(stress_waiter(sim, sig, -1 /* wait forever */, 500, resumes, notified_count));
  sim.spawn([](Simulation& s, Signal& g) -> Task {
    for (;;) {
      g.notify_all();
      co_await s.sleep_for(10);
    }
  }(sim, sig));
  sim.run_until(100 * kMicrosecond);
  EXPECT_EQ(resumes, 500u);
  EXPECT_EQ(notified_count, 500u);
}

}  // namespace
}  // namespace metro::sim
