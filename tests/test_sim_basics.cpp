// Simulation kernel: clock, event ordering, coroutine processes, signals.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace metro::sim {
namespace {

TEST(TimeTest, LiteralsAndConversions) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(from_micros(2.5), 2500);
  EXPECT_DOUBLE_EQ(to_seconds(2_s), 2.0);
  EXPECT_DOUBLE_EQ(to_micros(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(2'500'000), 2.5);
}

TEST(TimeTest, FromSecondsRoundsToNearest) {
  EXPECT_EQ(from_seconds(1e-9), 1);
  EXPECT_EQ(from_seconds(1.4e-9), 1);
  EXPECT_EQ(from_seconds(1.6e-9), 2);
}

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulationTest, EqualTimestampsRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(101, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
  sim.run_until(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);  // clock advances to the requested end
}

TEST(SimulationTest, ScheduleInThePastClampsToNow) {
  Simulation sim;
  Time seen = -1;
  sim.schedule_at(50, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 50);
}

TEST(SimulationTest, NestedSchedulingWorks) {
  Simulation sim;
  std::vector<Time> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

Task sleeper(Simulation& sim, std::vector<Time>& log) {
  log.push_back(sim.now());
  co_await sim.sleep_for(100);
  log.push_back(sim.now());
  co_await sim.sleep_for(50);
  log.push_back(sim.now());
}

TEST(TaskTest, CoroutineSleepAdvancesVirtualTime) {
  Simulation sim;
  std::vector<Time> log;
  sim.spawn(sleeper(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<Time>{0, 100, 150}));
}

Task incrementer(Simulation& sim, int& counter, Time period, int times) {
  for (int i = 0; i < times; ++i) {
    co_await sim.sleep_for(period);
    ++counter;
  }
}

TEST(TaskTest, ManyConcurrentProcesses) {
  Simulation sim;
  int counter = 0;
  for (int i = 0; i < 50; ++i) sim.spawn(incrementer(sim, counter, 10 + i, 20));
  sim.run();
  EXPECT_EQ(counter, 50 * 20);
}

TEST(TaskTest, UnfinishedProcessesAreReclaimedSafely) {
  // A process suspended mid-sleep when the Simulation dies must not leak
  // or crash (ASAN would flag it).
  int counter = 0;
  {
    Simulation sim;
    sim.spawn(incrementer(sim, counter, 1000, 1000000));
    sim.run_until(5000);
  }
  EXPECT_EQ(counter, 5);
}

Task wait_on(Simulation& sim, Signal& sig, std::vector<Time>& wakes) {
  co_await sig.wait();
  wakes.push_back(sim.now());
}

TEST(SignalTest, NotifyAllWakesEveryWaiter) {
  Simulation sim;
  Signal sig(sim);
  std::vector<Time> wakes;
  for (int i = 0; i < 3; ++i) sim.spawn(wait_on(sim, sig, wakes));
  sim.schedule_at(500, [&] { sig.notify_all(); });
  sim.run();
  EXPECT_EQ(wakes, (std::vector<Time>{500, 500, 500}));
}

TEST(SignalTest, NotifyWithNoWaitersIsNoop) {
  Simulation sim;
  Signal sig(sim);
  sig.notify_all();
  sim.run();
  EXPECT_TRUE(sim.idle());
}

Task timed_wait(Simulation& sim, Signal& sig, Time timeout, bool& notified, Time& at) {
  notified = co_await sig.wait_for(timeout);
  at = sim.now();
}

TEST(SignalTest, WaitForTimesOut) {
  Simulation sim;
  Signal sig(sim);
  bool notified = true;
  Time at = -1;
  sim.spawn(timed_wait(sim, sig, 200, notified, at));
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(at, 200);
}

TEST(SignalTest, WaitForNotifiedBeforeTimeout) {
  Simulation sim;
  Signal sig(sim);
  bool notified = false;
  Time at = -1;
  sim.spawn(timed_wait(sim, sig, 200, notified, at));
  sim.schedule_at(50, [&] { sig.notify_all(); });
  sim.run();  // the stale timeout event at 200 must be harmless
  EXPECT_TRUE(notified);
  EXPECT_EQ(at, 50);
}

TEST(SignalTest, TimeoutThenLaterNotifyDoesNotDoubleResume) {
  Simulation sim;
  Signal sig(sim);
  bool notified = true;
  Time at = -1;
  sim.spawn(timed_wait(sim, sig, 100, notified, at));
  sim.schedule_at(300, [&] { sig.notify_all(); });  // after the timeout
  sim.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(at, 100);
}

}  // namespace
}  // namespace metro::sim
