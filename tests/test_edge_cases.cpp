// Edge cases and failure injection across the stack.
#include <gtest/gtest.h>

#include <thread>

#include "apps/experiment.hpp"
#include "rt/metronome_rt.hpp"

namespace metro {
namespace {

TEST(EdgeCaseTest, SingleThreadMetronomeStillWorks) {
  // M = 1 degenerates to a lone poller with sleep pauses — no race, no
  // backups. The paper assumes M >= 2; the implementation must not.
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.met.n_threads = 1;
  cfg.n_cores = 1;
  cfg.workload.rate_mpps = 5.0;
  cfg.warmup = 50 * sim::kMillisecond;
  cfg.measure = 150 * sim::kMillisecond;
  const auto r = apps::run_experiment(cfg);
  EXPECT_NEAR(r.throughput_mpps, 5.0, 0.2);
  EXPECT_EQ(r.busy_tries_pct, 0.0);  // nobody to collide with
  // Eq. 13 with M = 1: TS = V-bar at every load.
  EXPECT_NEAR(r.ts_us, sim::to_micros(cfg.met.target_vacation), 0.5);
}

TEST(EdgeCaseTest, FewerThreadsThanQueuesCoversAllQueuesWhenIdle) {
  // The paper requires M >= N (every queue needs a primary to own it under
  // sustained load). Below that, the empty-drain hopping amendment must at
  // least keep *checking* every queue, so idle or bursty-idle deployments
  // never blackhole a queue.
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 4;
  cfg.n_cores = 2;
  cfg.met.n_threads = 2;
  cfg.workload.rate_mpps = 0.0;
  cfg.warmup = 0;
  cfg.measure = 300 * sim::kMillisecond;
  const auto r = apps::run_experiment(cfg);
  ASSERT_EQ(r.queues.size(), 4u);
  for (const auto& q : r.queues) EXPECT_GT(q.total_tries, 100u) << "unchecked queue";
}

TEST(EdgeCaseTest, MoreThreadsThanCores) {
  // 6 threads on 2 cores: processor sharing must not deadlock or lose the
  // conservation property.
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.met.n_threads = 6;
  cfg.n_cores = 2;
  cfg.workload.rate_mpps = 7.44;
  cfg.warmup = 50 * sim::kMillisecond;
  cfg.measure = 150 * sim::kMillisecond;
  const auto r = apps::run_experiment(cfg);
  EXPECT_NEAR(r.throughput_mpps, 7.44, 0.3);
  EXPECT_LE(r.cpu_percent, 200.5);  // can't exceed the two cores
}

TEST(EdgeCaseTest, TinyTargetVacation) {
  // V-bar below the sleep-service floor: the system must stay stable (the
  // floor dominates, CPU is high, but nothing breaks).
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.met.target_vacation = 500;  // 0.5 us
  cfg.workload.rate_mpps = 14.88;
  cfg.warmup = 50 * sim::kMillisecond;
  cfg.measure = 100 * sim::kMillisecond;
  const auto r = apps::run_experiment(cfg);
  EXPECT_NEAR(r.throughput_mpps, 14.88, 0.2);
  EXPECT_GT(r.vacation_us.mean(), 1.0);  // floor ~3.5 us overhead
}

TEST(EdgeCaseTest, SubMicrosecondFastReturnPatchUnderLoad) {
  // §V-C patched hr_sleep: sub-us requests return immediately. With a tiny
  // V-bar this turns Metronome into a near-poller: lowest latency, higher
  // CPU, still no loss.
  apps::ExperimentConfig base;
  base.driver = apps::DriverKind::kMetronome;
  base.met.target_vacation = 500;
  base.tx_batch = 1;
  base.workload.rate_mpps = 14.88;
  base.warmup = 50 * sim::kMillisecond;
  base.measure = 100 * sim::kMillisecond;
  auto patched = base;
  patched.met.sleep.sub_us_fast_return = true;
  const auto r_base = apps::run_experiment(base);
  const auto r_patched = apps::run_experiment(patched);
  EXPECT_LT(r_patched.latency_us.mean, r_base.latency_us.mean);
  EXPECT_GT(r_patched.cpu_percent, r_base.cpu_percent);
  // The paper reports 7.21 us mean vs DPDK's 6.83 with this setup; we
  // only require getting within ~25% of the pure poller's latency.
  auto dpdk = base;
  dpdk.driver = apps::DriverKind::kStaticPolling;
  const auto r_dpdk = apps::run_experiment(dpdk);
  EXPECT_LT(r_patched.latency_us.mean, r_dpdk.latency_us.mean * 1.25);
}

TEST(EdgeCaseTest, BurstAfterLongIdleIsAbsorbed) {
  // Metronome keeps periodically checking its queues, so a sudden burst
  // after a silent stretch is caught within ~TS (§V-D: unlike XDP, no
  // adaptation loss).
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.workload.rate_mpps = 0.0;
  cfg.warmup = 0;
  cfg.measure = sim::kSecond;
  apps::Testbed bed(cfg);
  bed.start();
  bed.run_until(300 * sim::kMillisecond);  // long idle
  // Inject a 400-packet burst directly.
  for (int i = 0; i < 400; ++i) {
    nic::PacketDesc p;
    p.arrival = bed.sim().now();
    bed.port().rx(p);
  }
  bed.run_until(301 * sim::kMillisecond);  // 1 ms later
  EXPECT_EQ(bed.port().total_dropped(), 0u);
  EXPECT_EQ(bed.packets_processed(), 400u);
}

TEST(EdgeCaseTest, RtReportsCpuAndWallTime) {
  rt::RtConfig cfg;
  cfg.rate_pps = 100e3;
  rt::MetronomeRt runtime(cfg);
  runtime.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto r = runtime.stop();
  EXPECT_GT(r.wall_seconds, 0.15);
  EXPECT_GT(r.cpu_seconds, 0.0);
  // Producer spins + M sleepy workers: bounded by (M+1) cores' worth.
  EXPECT_LT(r.cpu_seconds, r.wall_seconds * (cfg.n_threads + 2));
}

TEST(EdgeCaseTest, ZeroMeasureWindowYieldsEmptyResult) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.warmup = 10 * sim::kMillisecond;
  cfg.measure = 0;
  const auto r = apps::run_experiment(cfg);
  EXPECT_EQ(r.cpu_percent, 0.0);
  EXPECT_EQ(r.throughput_mpps, 0.0);
}

TEST(EdgeCaseTest, HugeBurstOverflowsRingExactlyOnce) {
  // Failure injection: a burst larger than the ring must drop exactly the
  // overflow, not corrupt accounting.
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.workload.rate_mpps = 0.0;
  cfg.warmup = 0;
  cfg.measure = sim::kSecond;
  apps::Testbed bed(cfg);
  bed.start();
  bed.run_until(100 * sim::kMillisecond);
  const auto ring_size = static_cast<std::uint64_t>(bed.port().config().rx_ring_size);
  const std::uint64_t burst = ring_size + 300;
  for (std::uint64_t i = 0; i < burst; ++i) {
    nic::PacketDesc p;
    p.arrival = bed.sim().now();
    bed.port().rx(p);
  }
  EXPECT_EQ(bed.port().total_dropped(), 300u);
  bed.run_until(105 * sim::kMillisecond);
  EXPECT_EQ(bed.packets_processed(), ring_size);
}

}  // namespace
}  // namespace metro
