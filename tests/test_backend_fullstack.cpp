// App-level cross-backend determinism.
//
// The kernel guarantees bit-identical *event traces* across event-queue
// backends (test_determinism.cpp). Since PR 3 the full app stack — Core,
// SleepService, rings, Port, drivers, Metronome, feeder, Testbed — is
// generic over the backend, so the same guarantee must hold one level up:
// an identical ExperimentConfig run on BasicTestbed<Simulation>,
// BasicTestbed<LadderSimulation> and BasicTestbed<WheelSimulation> must
// produce identical packet counters, identical driver statistics and an
// identical latency histogram, bin for bin. This is what lets the figure
// benches treat --backend as a pure speed knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/experiment.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace metro::apps {
namespace {

struct FullstackFingerprint {
  // Full-telemetry digest: every registered metric of every layer, in one
  // order-sensitive value (stats::MetricSet::fingerprint).
  std::uint64_t telemetry = 0;
  // Port / ring counters over the whole run.
  std::uint64_t rx = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tx = 0;
  std::uint64_t processed = 0;
  std::uint64_t events = 0;
  sim::Time final_clock = 0;
  // Measurement-window result counters.
  std::uint64_t wakeups = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t latency_overflow = 0;
  // Raw latency histogram bins (the full distribution, not summaries).
  std::vector<std::uint64_t> latency_bins;
  // Continuous observables; bit-identical runs produce bit-identical
  // doubles (same arithmetic on the same operand sequence).
  double throughput_mpps = 0.0;
  double cpu_percent = 0.0;
  double package_watts = 0.0;
  double rho = 0.0;

  bool operator==(const FullstackFingerprint&) const = default;
};

template <typename Sim>
FullstackFingerprint run_fullstack(const ExperimentConfig& cfg) {
  BasicTestbed<Sim> bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  bed.begin_measurement();
  bed.run_until(cfg.warmup + cfg.measure);
  const ExperimentResult r = bed.finish_measurement();

  FullstackFingerprint fp;
  fp.telemetry = bed.telemetry().fingerprint();
  fp.rx = bed.port().total_rx();
  fp.dropped = bed.port().total_dropped();
  fp.tx = bed.port().tx().total_transmitted();
  fp.processed = bed.packets_processed();
  fp.events = bed.sim().events_processed();
  fp.final_clock = bed.sim().now();
  fp.wakeups = r.wakeups;
  const stats::Histogram& h = bed.latency_histogram();
  fp.latency_count = h.count();
  fp.latency_overflow = h.overflow();
  fp.latency_bins.reserve(h.n_bins());
  for (std::size_t i = 0; i < h.n_bins(); ++i) fp.latency_bins.push_back(h.bin_count(i));
  fp.throughput_mpps = r.throughput_mpps;
  fp.cpu_percent = r.cpu_percent;
  fp.package_watts = r.package_watts;
  fp.rho = r.rho;
  return fp;
}

ExperimentConfig small_metronome_config() {
  // Metronome driver, 2 queues — small enough for tier-1, big enough to
  // exercise RSS dispatch, trylock contention, Tx batching and the
  // latency-recording path.
  ExperimentConfig cfg;
  cfg.driver = DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 3;
  cfg.met.n_threads = 3;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 20.0;
  cfg.workload.n_flows = 512;
  cfg.warmup = 10 * sim::kMillisecond;
  cfg.measure = 30 * sim::kMillisecond;
  return cfg;
}

TEST(BackendFullstackTest, MetronomeCountersIdenticalAcrossBackends) {
  const auto cfg = small_metronome_config();
  const auto heap = run_fullstack<sim::Simulation>(cfg);
  const auto ladder = run_fullstack<sim::LadderSimulation>(cfg);
  const auto wheel = run_fullstack<sim::WheelSimulation>(cfg);
  ASSERT_GT(heap.processed, 100000u) << "scenario must do real work";
  ASSERT_GT(heap.latency_count, 0u) << "latency histogram must record";
  EXPECT_EQ(heap, ladder);
  EXPECT_EQ(heap, wheel);
}

TEST(BackendFullstackTest, StaticPollingCountersIdenticalAcrossBackends) {
  auto cfg = small_metronome_config();
  cfg.driver = DriverKind::kStaticPolling;
  cfg.governor = sim::Governor::kOndemand;  // governor-tick timers too
  const auto heap = run_fullstack<sim::Simulation>(cfg);
  const auto ladder = run_fullstack<sim::LadderSimulation>(cfg);
  const auto wheel = run_fullstack<sim::WheelSimulation>(cfg);
  ASSERT_GT(heap.processed, 100000u);
  EXPECT_EQ(heap, ladder);
  EXPECT_EQ(heap, wheel);
}

TEST(BackendFullstackTest, PerFlowSourcesIdenticalAcrossBackends) {
  // The large-pending-population workload mode (one timer per flow) —
  // the regime the ladder backend targets — must also be trace-identical.
  auto cfg = small_metronome_config();
  cfg.workload.model = ArrivalModel::kPerFlow;
  cfg.workload.n_flows = 2048;
  cfg.workload.rate_mpps = 10.0;
  cfg.measure = 15 * sim::kMillisecond;
  const auto heap = run_fullstack<sim::Simulation>(cfg);
  const auto ladder = run_fullstack<sim::LadderSimulation>(cfg);
  const auto wheel = run_fullstack<sim::WheelSimulation>(cfg);
  ASSERT_GT(heap.processed, 50000u);
  EXPECT_EQ(heap, ladder);
  EXPECT_EQ(heap, wheel);
}

TEST(BackendFullstackTest, LadderRunsFasterRegimeHasLargePopulation) {
  // Sanity-check the per-flow mode actually creates the pending population
  // it exists for (one armed timer per flow).
  auto cfg = small_metronome_config();
  cfg.workload.model = ArrivalModel::kPerFlow;
  cfg.workload.n_flows = 2048;
  cfg.workload.rate_mpps = 10.0;
  cfg.warmup = sim::kMillisecond;
  cfg.measure = sim::kMillisecond;
  BasicTestbed<sim::LadderSimulation> bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  EXPECT_GE(bed.sim().pending_events(), 2048u);
}

}  // namespace
}  // namespace metro::apps
