// Bit-for-bit determinism of full simulation runs.
//
// Two runs of an identical configuration must produce identical packet
// counters, drop counters, event counts and final clocks — equal-timestamp
// events run in insertion order, the RNG is owned by the Simulation, and
// nothing on the event path depends on host state.
//
// The same guarantee holds *across event-queue backends*: the binary heap
// and the ladder queue implement the same total (at, seq) order, so an
// identical script must produce a bit-identical execution trace on both.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/experiment.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace metro::apps {
namespace {

struct RunFingerprint {
  std::uint64_t rx = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tx = 0;
  std::uint64_t processed = 0;
  std::uint64_t events = 0;
  sim::Time final_clock = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_scenario(const ExperimentConfig& cfg) {
  Testbed bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup + cfg.measure);
  RunFingerprint fp;
  fp.rx = bed.port().total_rx();
  fp.dropped = bed.port().total_dropped();
  fp.tx = bed.port().tx().total_transmitted();
  fp.processed = bed.packets_processed();
  fp.events = bed.sim().events_processed();
  fp.final_clock = bed.sim().now();
  return fp;
}

ExperimentConfig multiqueue_config() {
  // Fig. 13-style: XL710, 2 queues, 4 Metronome threads, 37 Mpps offered.
  ExperimentConfig cfg;
  cfg.driver = DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 4;
  cfg.met.n_threads = 4;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 37.0;
  cfg.workload.n_flows = 1024;
  cfg.warmup = 20 * sim::kMillisecond;
  cfg.measure = 60 * sim::kMillisecond;
  return cfg;
}

TEST(DeterminismTest, MultiqueueMetronomeRunsAreBitIdentical) {
  const auto cfg = multiqueue_config();
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_GT(a.processed, 100000u) << "scenario must do real work";
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, StaticPollingRunsAreBitIdentical) {
  auto cfg = multiqueue_config();
  cfg.driver = DriverKind::kStaticPolling;
  cfg.governor = sim::Governor::kOndemand;  // exercise governor-tick timers
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_GT(a.processed, 100000u);
  EXPECT_EQ(a, b);
}

// One record per executed event: (virtual time, tag, kernel RNG draw).
// Including an RNG draw makes the trace sensitive to *any* reordering —
// two swapped handlers would consume each other's random numbers.
using TraceRecord = std::tuple<sim::Time, int, std::uint64_t>;

template <typename Backend>
std::vector<TraceRecord> kernel_trace() {
  sim::BasicSimulation<Backend> kernel(1234);
  sim::BasicSignal<sim::BasicSimulation<Backend>> sig(kernel);
  std::vector<TraceRecord> trace;
  const auto record = [&](int tag) {
    trace.emplace_back(kernel.now(), tag, kernel.rng().uniform_u64(1u << 30));
  };

  // Mixed workload: equal-timestamp callback floods, coroutine sleeps,
  // timed signal waits raced by notifies, and mid-run cancellations.
  struct Tick {
    sim::BasicSimulation<Backend>* kernel;
    const std::function<void(int)>* record;
    int left;
    int tag;
    void operator()() const {
      (*record)(tag);
      if (left > 0) {
        kernel->schedule_after(700 + (tag % 5) * 100, Tick{kernel, record, left - 1, tag});
      }
    }
  };
  const std::function<void(int)> recorder = record;
  for (int i = 0; i < 40; ++i) {
    kernel.schedule_at(100, Tick{&kernel, &recorder, 50, i});  // same instant
  }
  struct Proc {
    static sim::Task sleeper(sim::BasicSimulation<Backend>& kernel,
                             const std::function<void(int)>& record, int tag) {
      for (int i = 0; i < 200; ++i) {
        co_await kernel.sleep_for(900 + (tag % 7) * 150);
        record(10000 + tag);
      }
    }
    static sim::Task waiter(sim::BasicSimulation<Backend>& kernel,
                            sim::BasicSignal<sim::BasicSimulation<Backend>>& sig,
                            const std::function<void(int)>& record, int tag) {
      for (int i = 0; i < 150; ++i) {
        const bool notified = co_await sig.wait_for(3'000);
        record(20000 + tag + (notified ? 0 : 500));
        (void)kernel;
      }
    }
    static sim::Task notifier(sim::BasicSimulation<Backend>& kernel,
                              sim::BasicSignal<sim::BasicSimulation<Backend>>& sig) {
      for (int i = 0; i < 120; ++i) {
        co_await kernel.sleep_for(2'500);
        sig.notify_all();
      }
    }
  };
  for (int i = 0; i < 8; ++i) kernel.spawn(Proc::sleeper(kernel, recorder, i));
  for (int i = 0; i < 6; ++i) kernel.spawn(Proc::waiter(kernel, sig, recorder, i));
  kernel.spawn(Proc::notifier(kernel, sig));
  // Cancellation pressure: arm timers and cancel most of them mid-run.
  std::vector<typename sim::BasicSimulation<Backend>::EventId> armed;
  for (int i = 0; i < 300; ++i) {
    armed.push_back(
        kernel.schedule_at(5'000 + i * 37, [&record, i] { record(30000 + i); }));
  }
  kernel.schedule_at(4'999, [&] {
    for (std::size_t i = 0; i < armed.size(); i += 3) kernel.cancel(armed[i]);
  });
  kernel.run();
  EXPECT_TRUE(kernel.idle());
  return trace;
}

TEST(DeterminismTest, BackendsProduceBitIdenticalTraces) {
  const auto heap = kernel_trace<sim::BinaryHeapBackend>();
  const auto ladder = kernel_trace<sim::LadderQueueBackend>();
  const auto wheel = kernel_trace<sim::TimingWheelBackend>();
  EXPECT_GT(heap.size(), 4000u) << "trace must cover real work";
  EXPECT_EQ(heap, ladder);
  EXPECT_EQ(heap, wheel);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  auto cfg = multiqueue_config();
  const auto a = run_scenario(cfg);
  cfg.workload.seed = 43;
  const auto b = run_scenario(cfg);
  EXPECT_NE(a.events, b.events) << "seed must actually steer the workload";
}

}  // namespace
}  // namespace metro::apps
