// Bit-for-bit determinism of full simulation runs.
//
// Two runs of an identical configuration must produce identical packet
// counters, drop counters, event counts and final clocks — equal-timestamp
// events run in insertion order, the RNG is owned by the Simulation, and
// nothing on the event path depends on host state.
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "sim/time.hpp"

namespace metro::apps {
namespace {

struct RunFingerprint {
  std::uint64_t rx = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tx = 0;
  std::uint64_t processed = 0;
  std::uint64_t events = 0;
  sim::Time final_clock = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_scenario(const ExperimentConfig& cfg) {
  Testbed bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup + cfg.measure);
  RunFingerprint fp;
  fp.rx = bed.port().total_rx();
  fp.dropped = bed.port().total_dropped();
  fp.tx = bed.port().tx().total_transmitted();
  fp.processed = bed.packets_processed();
  fp.events = bed.sim().events_processed();
  fp.final_clock = bed.sim().now();
  return fp;
}

ExperimentConfig multiqueue_config() {
  // Fig. 13-style: XL710, 2 queues, 4 Metronome threads, 37 Mpps offered.
  ExperimentConfig cfg;
  cfg.driver = DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 4;
  cfg.met.n_threads = 4;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 37.0;
  cfg.workload.n_flows = 1024;
  cfg.warmup = 20 * sim::kMillisecond;
  cfg.measure = 60 * sim::kMillisecond;
  return cfg;
}

TEST(DeterminismTest, MultiqueueMetronomeRunsAreBitIdentical) {
  const auto cfg = multiqueue_config();
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_GT(a.processed, 100000u) << "scenario must do real work";
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, StaticPollingRunsAreBitIdentical) {
  auto cfg = multiqueue_config();
  cfg.driver = DriverKind::kStaticPolling;
  cfg.governor = sim::Governor::kOndemand;  // exercise governor-tick timers
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_GT(a.processed, 100000u);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  auto cfg = multiqueue_config();
  const auto a = run_scenario(cfg);
  cfg.workload.seed = 43;
  const auto b = run_scenario(cfg);
  EXPECT_NE(a.events, b.events) << "seed must actually steer the workload";
}

}  // namespace
}  // namespace metro::apps
