// Real-thread runtime: actual pthreads, atomics and clock_nanosleep.
// Timing assertions are deliberately loose — this runs in shared CI
// containers; the discrete-event twin carries the quantitative claims.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rt/hr_sleep.hpp"
#include "rt/metronome_rt.hpp"
#include "rt/spsc_ring.hpp"
#include "rt/trylock.hpp"

namespace metro::rt {
namespace {

TEST(HrSleepTest, SleepsAtLeastTheRequestedTime) {
  set_min_timer_slack();
  for (const std::int64_t ns : {10'000L, 100'000L, 1'000'000L}) {
    const auto actual = measure_sleep_latency(ns);
    EXPECT_GE(actual, ns);
  }
}

TEST(HrSleepTest, ZeroAndNegativeReturnImmediately) {
  const auto t0 = monotonic_ns();
  hr_sleep(0);
  hr_sleep(-5);
  EXPECT_LT(monotonic_ns() - t0, 1'000'000);
}

TEST(HrSleepTest, MonotonicClockAdvances) {
  const auto a = monotonic_ns();
  const auto b = monotonic_ns();
  EXPECT_GE(b, a);
}

TEST(TryLockTest, BasicAcquireRelease) {
  TryLock lock;
  EXPECT_FALSE(lock.locked());
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.locked());
  EXPECT_FALSE(lock.try_lock());  // second acquire fails
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TryLockTest, MutualExclusionUnderContention) {
  TryLock lock;
  std::atomic<int> in_critical{0};
  std::atomic<bool> violation{false};
  std::atomic<std::uint64_t> acquisitions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200000; ++i) {
        if (lock.try_lock()) {
          if (in_critical.fetch_add(1, std::memory_order_acq_rel) != 0) violation.store(true);
          in_critical.fetch_sub(1, std::memory_order_acq_rel);
          acquisitions.fetch_add(1, std::memory_order_relaxed);
          lock.unlock();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(acquisitions.load(), 100000u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.push(i));
  int out[16];
  const int n = ring.pop_burst(out, 16);
  ASSERT_EQ(n, 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRingTest, FullRingDrops) {
  SpscRing<int> ring(4);
  std::size_t pushed = 0;
  for (int i = 0; i < 100; ++i) {
    if (ring.push(i)) ++pushed;
  }
  EXPECT_EQ(pushed, ring.capacity());  // every slot usable
  EXPECT_EQ(ring.dropped(), 100 - pushed);
}

TEST(SpscRingTest, CapacityRoundedToPowerOfTwo) {
  SpscRing<int> ring(1000);
  EXPECT_GE(ring.capacity(), 1024u);
  EXPECT_EQ(ring.capacity() & (ring.capacity() - 1), 0u);
}

TEST(SpscRingTest, ProducerConsumerIntegrity) {
  SpscRing<std::uint64_t> ring(1024);
  constexpr std::uint64_t kCount = 500000;
  std::atomic<bool> done{false};
  std::uint64_t sum_consumed = 0, n_consumed = 0;
  std::uint64_t expected_next = 0;
  bool order_ok = true;

  std::thread consumer([&] {
    std::uint64_t buf[64];
    while (!done.load(std::memory_order_acquire) || !ring.empty()) {
      const int n = ring.pop_burst(buf, 64);
      for (int i = 0; i < n; ++i) {
        if (buf[i] < expected_next) order_ok = false;  // must be increasing
        expected_next = buf[i];
        sum_consumed += buf[i];
        ++n_consumed;
      }
      if (n == 0) std::this_thread::yield();
    }
  });
  std::uint64_t sum_pushed = 0, n_pushed = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    if (ring.push(i)) {
      sum_pushed += i;
      ++n_pushed;
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(n_consumed, n_pushed);
  EXPECT_EQ(sum_consumed, sum_pushed);
}

TEST(MetronomeRtTest, ConsumesEverythingAtModestRate) {
  RtConfig cfg;
  cfg.rate_pps = 100e3;
  cfg.n_threads = 3;
  MetronomeRt rt(cfg);
  rt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto r = rt.stop();
  EXPECT_GT(r.producer_pushed, 10000u);
  // Exact packet conservation: consumed + leftover + drops == pushed.
  EXPECT_EQ(r.packets_consumed + r.leftover_in_rings + r.producer_drops, r.producer_pushed);
  EXPECT_LT(r.producer_drops, r.producer_pushed / 100 + 1);
}

TEST(MetronomeRtTest, RhoStaysInUnitInterval) {
  RtConfig cfg;
  cfg.rate_pps = 200e3;
  MetronomeRt rt(cfg);
  rt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto r = rt.stop();
  EXPECT_GE(r.final_rho, 0.0);
  EXPECT_LE(r.final_rho, 1.0);
  EXPECT_GT(r.final_ts_us, 0.0);
  EXPECT_GT(r.vacation_us.count(), 50u);
}

TEST(MetronomeRtTest, AdaptsTsWhenRateRises) {
  RtConfig cfg;
  cfg.rate_pps = 20e3;
  cfg.target_vacation_us = 100.0;
  MetronomeRt rt(cfg);
  rt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const double ts_low_load = rt.current_ts_us();
  rt.set_rate_pps(2e6);  // 100x the load
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const double ts_high_load = rt.current_ts_us();
  const double rho_high = rt.current_rho();
  rt.stop();
  // Eq. 13: TS shrinks from ~M*target toward ~target as rho grows.
  EXPECT_LT(ts_high_load, ts_low_load);
  EXPECT_GT(rho_high, 0.005);
}

TEST(MetronomeRtTest, BusyTriesAccountedUnderManyThreads) {
  RtConfig cfg;
  cfg.rate_pps = 500e3;
  cfg.n_threads = 4;
  cfg.long_timeout_us = 300.0;
  MetronomeRt rt(cfg);
  rt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto r = rt.stop();
  EXPECT_GT(r.total_tries, r.busy_tries);
  EXPECT_GT(r.total_tries, 100u);
}

TEST(MetronomeRtTest, MultiQueueDrainsAllQueues) {
  RtConfig cfg;
  cfg.n_queues = 2;
  cfg.n_threads = 3;
  cfg.rate_pps = 200e3;
  MetronomeRt rt(cfg);
  rt.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto r = rt.stop();
  EXPECT_EQ(r.packets_consumed + r.leftover_in_rings + r.producer_drops, r.producer_pushed);
  EXPECT_GT(r.packets_consumed, r.producer_pushed / 2);
}

TEST(MetronomeRtTest, StopIsIdempotentViaDestructor) {
  RtConfig cfg;
  cfg.rate_pps = 50e3;
  {
    MetronomeRt rt(cfg);
    rt.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // destructor stops
  }
  SUCCEED();
}

}  // namespace
}  // namespace metro::rt
