// Traffic generation: CBR/Poisson streams, ramp profile, flow mixes, feeder.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "nic/port.hpp"
#include "sim/simulation.hpp"
#include "tgen/bursty.hpp"
#include "tgen/feeder.hpp"
#include "tgen/generator.hpp"
#include "tgen/trace.hpp"

namespace metro::tgen {
namespace {

using sim::Time;

TEST(FlowSetTest, DeterministicAndDistinct) {
  FlowSet a(64, 5), b(64, 5), c(64, 6);
  EXPECT_EQ(a.tuple(3), b.tuple(3));
  EXPECT_EQ(a.rss_hash(3), b.rss_hash(3));
  EXPECT_NE(a.tuple(3), c.tuple(3));
  // Flows are (statistically) distinct from each other.
  int distinct = 0;
  for (std::uint32_t i = 1; i < 64; ++i) {
    if (!(a.tuple(i) == a.tuple(0))) ++distinct;
  }
  EXPECT_EQ(distinct, 63);
}

TEST(StreamGeneratorTest, CbrGapsAreExact) {
  FlowSet flows(8, 1);
  StreamConfig cfg;
  cfg.rate_pps = 1e6;  // 1 us gap
  cfg.duration = 100 * sim::kMicrosecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(8));
  Time prev = -1;
  int count = 0;
  while (auto pkt = gen.next()) {
    if (prev >= 0) {
      EXPECT_EQ(pkt->arrival - prev, 1000);
    }
    prev = pkt->arrival;
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(StreamGeneratorTest, PoissonMeanRateMatches) {
  FlowSet flows(8, 1);
  StreamConfig cfg;
  cfg.rate_pps = 1e6;
  cfg.poisson = true;
  cfg.duration = 100 * sim::kMillisecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(8));
  int count = 0;
  while (gen.next()) ++count;
  EXPECT_NEAR(count, 100000, 2000);
}

TEST(StreamGeneratorTest, ZeroRateProducesNothing) {
  FlowSet flows(8, 1);
  StreamConfig cfg;
  cfg.rate_pps = 0.0;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(8));
  EXPECT_FALSE(gen.next().has_value());
}

TEST(StreamGeneratorTest, RssHashMatchesFlowSet) {
  FlowSet flows(4, 1);
  StreamConfig cfg;
  cfg.duration = 10 * sim::kMicrosecond;
  cfg.rate_pps = 1e6;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(4));
  while (auto pkt = gen.next()) {
    EXPECT_EQ(pkt->rss_hash, flows.rss_hash(pkt->flow_id));
  }
}

TEST(UnbalancedPickerTest, HeavyShareRespected) {
  sim::Rng rng(2);
  UnbalancedFlowPicker picker(0, 0.3, 1000);
  int heavy = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (picker.pick(rng) == 0) ++heavy;
  }
  // 30% direct + ~0.1% of the uniform remainder.
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.3, 0.01);
}

TEST(RampProfileTest, RisesThenFalls) {
  // 60 s ramp, 2 s steps, peak 14 Mpps at the midpoint (§V-B).
  RampProfile ramp(0.5e6, 14e6, 2 * sim::kSecond, 60 * sim::kSecond);
  const double early = ramp.rate_at(2 * sim::kSecond);
  const double mid = ramp.rate_at(30 * sim::kSecond);
  const double late = ramp.rate_at(55 * sim::kSecond);
  EXPECT_LT(early, mid);
  EXPECT_GT(mid, late);
  EXPECT_NEAR(mid, 14e6, 1e6);
  EXPECT_EQ(ramp.rate_at(-1), 0.0);
  EXPECT_EQ(ramp.rate_at(61 * sim::kSecond), 0.0);
}

TEST(RampProfileTest, StepwiseConstantWithinStep) {
  RampProfile ramp(1e6, 10e6, 2 * sim::kSecond, 60 * sim::kSecond);
  EXPECT_EQ(ramp.rate_at(4 * sim::kSecond + 1), ramp.rate_at(5 * sim::kSecond));
}

TEST(ProfileGeneratorTest, FollowsProfileRate) {
  FlowSet flows(8, 1);
  RampProfile ramp(1e6, 5e6, 100 * sim::kMillisecond, sim::kSecond);
  ProfileGenerator gen(ramp, sim::kSecond, 64, flows, std::make_unique<UniformFlowPicker>(8));
  // Count packets in the first 100 ms (low rate) vs around the peak.
  std::map<int, int> per_bucket;
  while (auto pkt = gen.next()) {
    per_bucket[static_cast<int>(pkt->arrival / (100 * sim::kMillisecond))]++;
  }
  EXPECT_GT(per_bucket[5], per_bucket[0] * 2);
}

sim::Task consume_all(sim::Simulation&, nic::RxRing& ring, int& received) {
  nic::PacketDesc buf[32];
  for (;;) {
    const int n = ring.pop_burst(buf, 32);
    received += n;
    if (n == 0) co_await ring.arrival_signal().wait();
  }
}

TEST(FeederTest, DeliversEverythingToThePort) {
  sim::Simulation sim;
  nic::Port port(sim, nic::x520_config(1));
  FlowSet flows(16, 1);
  StreamConfig cfg;
  cfg.rate_pps = 2e6;
  cfg.duration = 50 * sim::kMillisecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(16));
  int received = 0;
  sim.spawn(consume_all(sim, port.rx_queue(0), received));
  attach(sim, port, gen);
  sim.run_until(60 * sim::kMillisecond);
  EXPECT_EQ(received, 100000);
  EXPECT_EQ(port.total_dropped(), 0u);
}

TEST(FeederTest, ArrivalTimestampsNeverExceedDeliveryTime) {
  // The feeder groups packets but must deliver them only after their wire
  // arrival time, so consumers can never see "future" packets.
  sim::Simulation sim;
  nic::Port port(sim, nic::x520_config(1));
  FlowSet flows(4, 1);
  StreamConfig cfg;
  cfg.rate_pps = 14.88e6;
  cfg.duration = 5 * sim::kMillisecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(4));
  attach(sim, port, gen);
  bool violated = false;
  sim.spawn([](sim::Simulation& s, nic::RxRing& ring, bool& bad) -> sim::Task {
    nic::PacketDesc buf[32];
    for (;;) {
      const int n = ring.pop_burst(buf, 32);
      for (int i = 0; i < n; ++i) {
        if (buf[i].arrival > s.now()) bad = true;
      }
      if (n == 0) co_await ring.arrival_signal().wait();
    }
  }(sim, port.rx_queue(0), violated));
  sim.run_until(6 * sim::kMillisecond);
  EXPECT_FALSE(violated);
}

// --- next_batch() equivalence ------------------------------------------
//
// The batched arrival path is an amortisation, never a different
// workload: for every generator, next_batch() must emit the exact packet
// stream next() emits — same arrivals, same flows, same sizes — for any
// chunk size and even when the two entry points are interleaved
// mid-stream.

void expect_same_stream(const std::vector<nic::PacketDesc>& got,
                        const std::vector<nic::PacketDesc>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].arrival, want[i].arrival) << what << " packet " << i;
    ASSERT_EQ(got[i].flow_id, want[i].flow_id) << what << " packet " << i;
    ASSERT_EQ(got[i].rss_hash, want[i].rss_hash) << what << " packet " << i;
    ASSERT_EQ(got[i].wire_size, want[i].wire_size) << what << " packet " << i;
  }
}

/// `make` builds a fresh, identically-seeded generator on every call.
void check_batched_equivalence(const std::function<std::unique_ptr<Generator>()>& make) {
  std::vector<nic::PacketDesc> reference;
  {
    auto gen = make();
    while (auto pkt = gen->next()) reference.push_back(*pkt);
  }
  ASSERT_GT(reference.size(), 100u) << "workload too small to exercise batching";

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    auto gen = make();
    std::vector<nic::PacketDesc> got;
    while (gen->next_batch(got, chunk) > 0) {
    }
    expect_same_stream(got, reference, "batched");
    ASSERT_EQ(gen->next_batch(got, chunk), 0u) << "exhausted generator must stay exhausted";
  }

  // Switching entry points mid-stream continues the same stream.
  auto gen = make();
  std::vector<nic::PacketDesc> mixed;
  for (;;) {
    auto pkt = gen->next();
    if (!pkt.has_value()) break;
    mixed.push_back(*pkt);
    if (gen->next_batch(mixed, 5) == 0) break;
  }
  expect_same_stream(mixed, reference, "interleaved");
}

TEST(NextBatchTest, StreamCbrMatchesUnbatched) {
  FlowSet flows(32, 3);
  check_batched_equivalence([&] {
    StreamConfig cfg;
    cfg.rate_pps = 1e6;
    cfg.duration = 2 * sim::kMillisecond;
    return std::make_unique<StreamGenerator>(cfg, flows,
                                             std::make_unique<UniformFlowPicker>(32));
  });
}

TEST(NextBatchTest, StreamPoissonImixMatchesUnbatched) {
  FlowSet flows(32, 3);
  check_batched_equivalence([&] {
    StreamConfig cfg;
    cfg.rate_pps = 1e6;
    cfg.duration = 2 * sim::kMillisecond;
    cfg.poisson = true;
    cfg.imix = true;
    return std::make_unique<StreamGenerator>(
        cfg, flows, std::make_unique<UnbalancedFlowPicker>(0, 0.3, 32));
  });
}

TEST(NextBatchTest, ProfileMatchesUnbatched) {
  FlowSet flows(16, 3);
  static const RampProfile ramp(0.2e6, 2e6, 2 * sim::kMillisecond, 10 * sim::kMillisecond);
  check_batched_equivalence([&] {
    return std::make_unique<ProfileGenerator>(ramp, 10 * sim::kMillisecond, 64, flows,
                                              std::make_unique<UniformFlowPicker>(16));
  });
}

TEST(NextBatchTest, MmppMatchesUnbatched) {
  FlowSet flows(32, 3);
  check_batched_equivalence([&] {
    MmppConfig cfg;
    cfg.mean_rate_pps = 1e6;
    cfg.duration = 2 * sim::kMillisecond;
    return std::make_unique<MmppGenerator>(cfg, flows, std::make_unique<UniformFlowPicker>(32));
  });
}

TEST(NextBatchTest, ParetoTrainMatchesUnbatched) {
  FlowSet flows(32, 3);
  check_batched_equivalence([&] {
    ParetoTrainConfig cfg;
    cfg.rate_pps = 1e6;
    cfg.duration = 2 * sim::kMillisecond;
    return std::make_unique<ParetoTrainGenerator>(cfg, flows);
  });
}

TEST(NextBatchTest, IncastMatchesUnbatched) {
  FlowSet flows(64, 3);
  check_batched_equivalence([&] {
    IncastConfig cfg;
    cfg.rate_pps = 1e6;
    cfg.duration = 2 * sim::kMillisecond;
    return std::make_unique<IncastGenerator>(cfg, flows);
  });
}

TEST(NextBatchTest, TraceMatchesUnbatched) {
  std::vector<TraceEntry> entries;
  for (std::uint32_t i = 0; i < 5; ++i) {
    TraceEntry e;
    e.tuple.src_ip = net::ipv4_addr(198, 18, 0, i);
    e.tuple.dst_ip = net::ipv4_addr(10, 0, 0, 1);
    e.tuple.src_port = static_cast<std::uint16_t>(2000 + i);
    e.tuple.dst_port = 443;
    e.rss_hash = 0x1000u + i;
    e.wire_size = static_cast<std::uint16_t>(64 + 10 * i);
    entries.push_back(e);
  }
  check_batched_equivalence([&] {
    return std::make_unique<TraceGenerator>(entries, 1e6, 2 * sim::kMillisecond);
  });
}

// --- arena vs coroutine per-flow sources --------------------------------
//
// PerFlowSourceArena is the million-flow form of attach_per_flow_sources:
// packed records and pooled callback timers instead of one coroutine
// frame per flow. The contract is bit-identical execution — the consumer
// below digests every delivered packet (fields and delivery instant), and
// the digest, the delivery count and the kernel event count must match
// between the two attach paths, on every backend.

template <typename Sim>
sim::Task digest_all(Sim& s, nic::BasicRxRing<Sim>& ring, std::uint64_t& digest,
                     std::uint64_t& count) {
  nic::PacketDesc buf[32];
  for (;;) {
    const int n = ring.pop_burst(buf, 32);
    for (int i = 0; i < n; ++i) {
      digest = digest * 1099511628211ull + static_cast<std::uint64_t>(buf[i].arrival);
      digest = digest * 1099511628211ull + buf[i].flow_id;
      digest = digest * 1099511628211ull + buf[i].rss_hash;
      digest = digest * 1099511628211ull + buf[i].wire_size;
      digest = digest * 1099511628211ull + static_cast<std::uint64_t>(s.now());
      ++count;
    }
    if (n == 0) co_await ring.arrival_signal().wait();
  }
}

struct PerFlowRun {
  std::uint64_t digest = 0;
  std::uint64_t count = 0;
  std::uint64_t events = 0;
  bool operator==(const PerFlowRun&) const = default;
};

template <typename Sim, typename AttachFn>
PerFlowRun run_per_flow(AttachFn&& attach_fn) {
  Sim sim(7);
  nic::BasicPort<Sim> port(sim, nic::x520_config(1));
  FlowSet flows(256, 11);
  PerFlowSourceConfig cfg;
  cfg.total_rate_pps = 2e6;
  cfg.poisson = true;
  cfg.duration = 20 * sim::kMillisecond;
  PerFlowRun r;
  sim.spawn(digest_all(sim, port.rx_queue(0), r.digest, r.count));
  attach_fn(sim, port, flows, cfg);
  sim.run_until(25 * sim::kMillisecond);
  r.events = sim.events_processed();
  return r;
}

TEST(PerFlowArenaTest, MatchesCoroutineSourcesExactly) {
  const auto coroutine = run_per_flow<sim::Simulation>(
      [](auto& sim, auto& port, const FlowSet& flows, PerFlowSourceConfig cfg) {
        attach_per_flow_sources(sim, port, flows, cfg);
      });
  std::size_t arena_flows = 0;
  std::size_t arena_armed = ~std::size_t{0};
  std::uint64_t arena_fired = 0;
  const auto arena = run_per_flow<sim::Simulation>(
      [&](auto& sim, auto& port, const FlowSet& flows, PerFlowSourceConfig cfg) {
        static std::unique_ptr<PerFlowSourceArena<sim::Simulation>> holder;
        holder = std::make_unique<PerFlowSourceArena<sim::Simulation>>(sim, port, flows, cfg);
        sim.schedule_at(24 * sim::kMillisecond, [&] {
          arena_flows = holder->flow_count();
          arena_armed = holder->armed();
          arena_fired = holder->fired();
        });
      });
  EXPECT_GT(coroutine.count, 10000u);
  // The delivered packet stream — fields and delivery instants — is
  // bit-identical. events_processed legitimately differs: one bootstrap
  // event replaces the n per-flow spawn resumes.
  EXPECT_EQ(arena.digest, coroutine.digest);
  EXPECT_EQ(arena.count, coroutine.count);
  EXPECT_LT(arena.events, coroutine.events);
  EXPECT_EQ(arena_flows, 256u);
  EXPECT_EQ(arena_armed, 0u) << "all timers must retire once every flow passed its end";
  EXPECT_EQ(arena_fired, arena.count) << "nothing dropped: fired == delivered";
}

TEST(PerFlowArenaTest, BitIdenticalAcrossBackends) {
  const auto attach_arena = [](auto& sim, auto& port, const FlowSet& flows,
                               PerFlowSourceConfig cfg) {
    using SimT = std::remove_reference_t<decltype(sim)>;
    static std::unique_ptr<PerFlowSourceArena<SimT>> holder;
    holder = std::make_unique<PerFlowSourceArena<SimT>>(sim, port, flows, cfg);
  };
  const auto heap = run_per_flow<sim::Simulation>(attach_arena);
  const auto ladder = run_per_flow<sim::LadderSimulation>(attach_arena);
  const auto wheel = run_per_flow<sim::WheelSimulation>(attach_arena);
  EXPECT_EQ(heap, ladder);
  EXPECT_EQ(heap, wheel);
}

TEST(PerFlowArenaTest, LaneAccountingInvariantsAtScale) {
  // 2^18 flows on the wheel backend: big enough that most flows never
  // fire inside the window (the million-flow regime in miniature — mean
  // per-flow gap 66 ms vs a 20 ms duration). The SoA lanes must stay
  // mutually consistent both mid-run, with tens of thousands of timers in
  // flight, and after every flow retires.
  using Sim = sim::WheelSimulation;
  Sim sim(13);
  nic::BasicPort<Sim> port(sim, nic::x520_config(1));
  const std::size_t n = std::size_t{1} << 18;
  FlowSet flows(n, 11);
  PerFlowSourceConfig cfg;
  cfg.total_rate_pps = 4e6;
  cfg.poisson = true;
  cfg.duration = 20 * sim::kMillisecond;
  std::uint64_t digest = 0;
  std::uint64_t count = 0;
  sim.spawn(digest_all(sim, port.rx_queue(0), digest, count));
  PerFlowSourceArena<Sim> arena(sim, port, flows, cfg);
  EXPECT_EQ(arena.flow_count(), n);
  EXPECT_EQ(arena.armed(), 0u) << "bootstrap has not run yet";
  EXPECT_EQ(arena.fired(), 0u);
  std::uint64_t mid_fired = 0;
  sim.schedule_at(10 * sim::kMillisecond, [&] {
    std::size_t armed_flows = 0;
    std::uint64_t emitted_sum = 0;
    for (std::uint32_t f = 0; f < n; ++f) {
      if (arena.flow_armed(f)) {
        ++armed_flows;
        // A pending timer is never in the past (same-instant sampling is
        // safe: this probe was scheduled before bootstrap, so it holds
        // the lower sequence number and runs first).
        EXPECT_GE(arena.next_fire_at(f), sim.now());
      } else {
        EXPECT_EQ(arena.next_fire_at(f), (PerFlowSourceArena<Sim>::kIdle));
      }
      emitted_sum += arena.flow_fired(f);
    }
    EXPECT_EQ(armed_flows, arena.armed()) << "armed() == live next-fire lane entries";
    EXPECT_GT(armed_flows, 0u) << "mid-run: timers must be in flight";
    EXPECT_EQ(emitted_sum, arena.fired()) << "fired() == sum of the draw-state lane";
    mid_fired = arena.fired();
  });
  sim.run_until(25 * sim::kMillisecond);
  EXPECT_GT(arena.fired(), mid_fired) << "the second half of the window kept firing";
  std::size_t armed_flows = 0;
  std::uint64_t emitted_sum = 0;
  for (std::uint32_t f = 0; f < n; ++f) {
    if (arena.flow_armed(f)) ++armed_flows;
    emitted_sum += arena.flow_fired(f);
  }
  EXPECT_EQ(arena.armed(), 0u) << "every flow retired past its end";
  EXPECT_EQ(armed_flows, 0u);
  EXPECT_EQ(emitted_sum, arena.fired());
  EXPECT_EQ(arena.fired(), count) << "nothing dropped: fired == delivered";
  EXPECT_GT(count, 10000u);
}

}  // namespace
}  // namespace metro::tgen
