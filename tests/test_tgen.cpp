// Traffic generation: CBR/Poisson streams, ramp profile, flow mixes, feeder.
#include <gtest/gtest.h>

#include <map>

#include "nic/port.hpp"
#include "sim/simulation.hpp"
#include "tgen/feeder.hpp"
#include "tgen/generator.hpp"

namespace metro::tgen {
namespace {

using sim::Time;

TEST(FlowSetTest, DeterministicAndDistinct) {
  FlowSet a(64, 5), b(64, 5), c(64, 6);
  EXPECT_EQ(a.tuple(3), b.tuple(3));
  EXPECT_EQ(a.rss_hash(3), b.rss_hash(3));
  EXPECT_NE(a.tuple(3), c.tuple(3));
  // Flows are (statistically) distinct from each other.
  int distinct = 0;
  for (std::uint32_t i = 1; i < 64; ++i) {
    if (!(a.tuple(i) == a.tuple(0))) ++distinct;
  }
  EXPECT_EQ(distinct, 63);
}

TEST(StreamGeneratorTest, CbrGapsAreExact) {
  FlowSet flows(8, 1);
  StreamConfig cfg;
  cfg.rate_pps = 1e6;  // 1 us gap
  cfg.duration = 100 * sim::kMicrosecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(8));
  Time prev = -1;
  int count = 0;
  while (auto pkt = gen.next()) {
    if (prev >= 0) {
      EXPECT_EQ(pkt->arrival - prev, 1000);
    }
    prev = pkt->arrival;
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(StreamGeneratorTest, PoissonMeanRateMatches) {
  FlowSet flows(8, 1);
  StreamConfig cfg;
  cfg.rate_pps = 1e6;
  cfg.poisson = true;
  cfg.duration = 100 * sim::kMillisecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(8));
  int count = 0;
  while (gen.next()) ++count;
  EXPECT_NEAR(count, 100000, 2000);
}

TEST(StreamGeneratorTest, ZeroRateProducesNothing) {
  FlowSet flows(8, 1);
  StreamConfig cfg;
  cfg.rate_pps = 0.0;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(8));
  EXPECT_FALSE(gen.next().has_value());
}

TEST(StreamGeneratorTest, RssHashMatchesFlowSet) {
  FlowSet flows(4, 1);
  StreamConfig cfg;
  cfg.duration = 10 * sim::kMicrosecond;
  cfg.rate_pps = 1e6;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(4));
  while (auto pkt = gen.next()) {
    EXPECT_EQ(pkt->rss_hash, flows.rss_hash(pkt->flow_id));
  }
}

TEST(UnbalancedPickerTest, HeavyShareRespected) {
  sim::Rng rng(2);
  UnbalancedFlowPicker picker(0, 0.3, 1000);
  int heavy = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (picker.pick(rng) == 0) ++heavy;
  }
  // 30% direct + ~0.1% of the uniform remainder.
  EXPECT_NEAR(static_cast<double>(heavy) / n, 0.3, 0.01);
}

TEST(RampProfileTest, RisesThenFalls) {
  // 60 s ramp, 2 s steps, peak 14 Mpps at the midpoint (§V-B).
  RampProfile ramp(0.5e6, 14e6, 2 * sim::kSecond, 60 * sim::kSecond);
  const double early = ramp.rate_at(2 * sim::kSecond);
  const double mid = ramp.rate_at(30 * sim::kSecond);
  const double late = ramp.rate_at(55 * sim::kSecond);
  EXPECT_LT(early, mid);
  EXPECT_GT(mid, late);
  EXPECT_NEAR(mid, 14e6, 1e6);
  EXPECT_EQ(ramp.rate_at(-1), 0.0);
  EXPECT_EQ(ramp.rate_at(61 * sim::kSecond), 0.0);
}

TEST(RampProfileTest, StepwiseConstantWithinStep) {
  RampProfile ramp(1e6, 10e6, 2 * sim::kSecond, 60 * sim::kSecond);
  EXPECT_EQ(ramp.rate_at(4 * sim::kSecond + 1), ramp.rate_at(5 * sim::kSecond));
}

TEST(ProfileGeneratorTest, FollowsProfileRate) {
  FlowSet flows(8, 1);
  RampProfile ramp(1e6, 5e6, 100 * sim::kMillisecond, sim::kSecond);
  ProfileGenerator gen(ramp, sim::kSecond, 64, flows, std::make_unique<UniformFlowPicker>(8));
  // Count packets in the first 100 ms (low rate) vs around the peak.
  std::map<int, int> per_bucket;
  while (auto pkt = gen.next()) {
    per_bucket[static_cast<int>(pkt->arrival / (100 * sim::kMillisecond))]++;
  }
  EXPECT_GT(per_bucket[5], per_bucket[0] * 2);
}

sim::Task consume_all(sim::Simulation&, nic::RxRing& ring, int& received) {
  nic::PacketDesc buf[32];
  for (;;) {
    const int n = ring.pop_burst(buf, 32);
    received += n;
    if (n == 0) co_await ring.arrival_signal().wait();
  }
}

TEST(FeederTest, DeliversEverythingToThePort) {
  sim::Simulation sim;
  nic::Port port(sim, nic::x520_config(1));
  FlowSet flows(16, 1);
  StreamConfig cfg;
  cfg.rate_pps = 2e6;
  cfg.duration = 50 * sim::kMillisecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(16));
  int received = 0;
  sim.spawn(consume_all(sim, port.rx_queue(0), received));
  attach(sim, port, gen);
  sim.run_until(60 * sim::kMillisecond);
  EXPECT_EQ(received, 100000);
  EXPECT_EQ(port.total_dropped(), 0u);
}

TEST(FeederTest, ArrivalTimestampsNeverExceedDeliveryTime) {
  // The feeder groups packets but must deliver them only after their wire
  // arrival time, so consumers can never see "future" packets.
  sim::Simulation sim;
  nic::Port port(sim, nic::x520_config(1));
  FlowSet flows(4, 1);
  StreamConfig cfg;
  cfg.rate_pps = 14.88e6;
  cfg.duration = 5 * sim::kMillisecond;
  StreamGenerator gen(cfg, flows, std::make_unique<UniformFlowPicker>(4));
  attach(sim, port, gen);
  bool violated = false;
  sim.spawn([](sim::Simulation& s, nic::RxRing& ring, bool& bad) -> sim::Task {
    nic::PacketDesc buf[32];
    for (;;) {
      const int n = ring.pop_burst(buf, 32);
      for (int i = 0; i < n; ++i) {
        if (buf[i].arrival > s.now()) bad = true;
      }
      if (n == 0) co_await ring.arrival_signal().wait();
    }
  }(sim, port.rx_queue(0), violated));
  sim.run_until(6 * sim::kMillisecond);
  EXPECT_FALSE(violated);
}

}  // namespace
}  // namespace metro::tgen
