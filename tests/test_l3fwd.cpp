// l3fwd application: functional forwarding correctness.
#include <gtest/gtest.h>

#include "apps/l3fwd.hpp"

namespace metro::apps {
namespace {

using namespace metro::net;

L3Forwarder::OutPort port0() {
  return {0, MacAddress{0xaa, 0, 0, 0, 0, 1}, MacAddress{0xbb, 0, 0, 0, 0, 1}};
}
L3Forwarder::OutPort port1() {
  return {1, MacAddress{0xaa, 0, 0, 0, 0, 2}, MacAddress{0xbb, 0, 0, 0, 0, 2}};
}

FiveTuple test_tuple() {
  return FiveTuple{ipv4_addr(198, 18, 0, 1), ipv4_addr(10, 1, 2, 3), 1000, 2000, kIpProtoUdp};
}

TEST(L3fwdTest, ForwardsWithLpmRoute) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_port(port1());
  ASSERT_TRUE(fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 1));

  Packet pkt;
  build_udp_packet(pkt, test_tuple());
  const auto out = fwd.process(pkt);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 1);
  EXPECT_EQ(fwd.stats().forwarded, 1u);
}

TEST(L3fwdTest, DecrementsTtlAndKeepsChecksumValid) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 0);
  Packet pkt;
  build_udp_packet(pkt, test_tuple(), 64, 17);
  ASSERT_TRUE(fwd.process(pkt).has_value());
  const auto* ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  EXPECT_EQ(ip->ttl, 16);
  EXPECT_TRUE(ipv4_checksum_ok(*ip));
}

TEST(L3fwdTest, RewritesMacs) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port1());
  fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 0);
  Packet pkt;
  build_udp_packet(pkt, test_tuple());
  ASSERT_TRUE(fwd.process(pkt).has_value());
  const auto* eth = pkt.at<EthernetHeader>(0);
  EXPECT_EQ(eth->src, port1().src_mac);
  EXPECT_EQ(eth->dst, port1().dst_mac);
}

TEST(L3fwdTest, LongestPrefixPreferred) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_port(port1());
  fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 0);
  fwd.add_route(ipv4_addr(10, 1, 0, 0), 16, 1);
  Packet pkt;
  build_udp_packet(pkt, test_tuple());  // dst 10.1.2.3
  EXPECT_EQ(fwd.process(pkt).value(), 1);
}

TEST(L3fwdTest, DropsNoRoute) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_route(ipv4_addr(192, 168, 0, 0), 16, 0);
  Packet pkt;
  build_udp_packet(pkt, test_tuple());
  EXPECT_FALSE(fwd.process(pkt).has_value());
  EXPECT_EQ(fwd.stats().drop_reason[static_cast<std::size_t>(L3fwdDrop::kNoRoute)], 1u);
}

TEST(L3fwdTest, DropsTtlExpired) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 0);
  Packet pkt;
  build_udp_packet(pkt, test_tuple(), 64, 1);
  EXPECT_FALSE(fwd.process(pkt).has_value());
  EXPECT_EQ(fwd.stats().drop_reason[static_cast<std::size_t>(L3fwdDrop::kTtlExpired)], 1u);
}

TEST(L3fwdTest, DropsBadChecksum) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 0);
  Packet pkt;
  build_udp_packet(pkt, test_tuple());
  pkt.at<Ipv4Header>(sizeof(EthernetHeader))->checksum ^= 0xffff;
  EXPECT_FALSE(fwd.process(pkt).has_value());
  EXPECT_EQ(fwd.stats().drop_reason[static_cast<std::size_t>(L3fwdDrop::kBadChecksum)], 1u);
}

TEST(L3fwdTest, DropsNonIpv4) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  Packet pkt;
  build_udp_packet(pkt, test_tuple());
  pkt.at<EthernetHeader>(0)->ether_type = host_to_be16(0x86dd);  // IPv6
  EXPECT_FALSE(fwd.process(pkt).has_value());
  EXPECT_EQ(fwd.stats().drop_reason[static_cast<std::size_t>(L3fwdDrop::kNotIpv4)], 1u);
}

TEST(L3fwdTest, DropsRuntPacket) {
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  Packet pkt;
  pkt.fill(0, 10);
  EXPECT_FALSE(fwd.process(pkt).has_value());
  EXPECT_EQ(fwd.stats().drop_reason[static_cast<std::size_t>(L3fwdDrop::kMalformed)], 1u);
}

TEST(L3fwdTest, ExactMatchModeRoutesByTuple) {
  L3Forwarder fwd(L3Forwarder::Mode::kExactMatch);
  fwd.add_port(port0());
  fwd.add_port(port1());
  const auto t = test_tuple();
  ASSERT_TRUE(fwd.add_em_route(t, 1));

  Packet pkt;
  build_udp_packet(pkt, t);
  EXPECT_EQ(fwd.process(pkt).value(), 1);

  // A different flow (same dst prefix!) has no exact-match entry.
  auto other = t;
  other.src_port = 4242;
  Packet pkt2;
  build_udp_packet(pkt2, other);
  EXPECT_FALSE(fwd.process(pkt2).has_value());
}

TEST(L3fwdTest, ForwardedPacketCanBeForwardedAgain) {
  // The rewritten packet must still be a valid IPv4 packet (chain of hops).
  L3Forwarder fwd(L3Forwarder::Mode::kLpm);
  fwd.add_port(port0());
  fwd.add_route(ipv4_addr(10, 0, 0, 0), 8, 0);
  Packet pkt;
  build_udp_packet(pkt, test_tuple(), 64, 10);
  for (int hop = 0; hop < 9; ++hop) {
    ASSERT_TRUE(fwd.process(pkt).has_value()) << "hop " << hop;
  }
  EXPECT_FALSE(fwd.process(pkt).has_value());  // TTL exhausted at 1
}

TEST(L3fwdTest, BuildUdpPacketIsWellFormed) {
  Packet pkt;
  build_udp_packet(pkt, test_tuple(), 128);
  EXPECT_EQ(pkt.size(), 124u);  // wire size minus FCS
  const auto* ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  EXPECT_TRUE(ipv4_checksum_ok(*ip));
  FiveTuple t;
  ASSERT_TRUE(extract_five_tuple(pkt, t));
  EXPECT_EQ(t, test_tuple());
}

}  // namespace
}  // namespace metro::apps
