// Core model: processor sharing, CFS weights, governors, power accounting.
#include <gtest/gtest.h>

#include "sim/cpu.hpp"
#include "sim/simulation.hpp"

namespace metro::sim {
namespace {

TEST(NiceToWeightTest, KernelTableAnchors) {
  EXPECT_EQ(nice_to_weight(0), 1024);
  EXPECT_EQ(nice_to_weight(-20), 88761);
  EXPECT_EQ(nice_to_weight(19), 15);
  EXPECT_EQ(nice_to_weight(5), 335);
}

TEST(NiceToWeightTest, ClampsOutOfRange) {
  EXPECT_EQ(nice_to_weight(-100), 88761);
  EXPECT_EQ(nice_to_weight(100), 15);
}

Task run_job(Simulation& sim, Core& core, Core::EntityId ent, Time work, Time& finished) {
  co_await core.run_for(ent, work);
  finished = sim.now();
}

TEST(CoreTest, SingleJobRunsAtFullSpeed) {
  Simulation sim;
  Core core(sim, 0);
  const auto ent = core.add_entity("a");
  Time finished = -1;
  sim.spawn(run_job(sim, core, ent, 1000, finished));
  sim.run();
  EXPECT_EQ(finished, 1000);
  EXPECT_EQ(core.on_cpu_time(ent), 1000);
  EXPECT_EQ(core.busy_time(), 1000);
}

TEST(CoreTest, TwoEqualJobsShareTheCore) {
  Simulation sim;
  Core core(sim, 0);
  const auto a = core.add_entity("a", 0);
  const auto b = core.add_entity("b", 0);
  Time fa = -1, fb = -1;
  sim.spawn(run_job(sim, core, a, 1000, fa));
  sim.spawn(run_job(sim, core, b, 1000, fb));
  sim.run();
  // Each gets 50%: both finish around t = 2000.
  EXPECT_NEAR(static_cast<double>(fa), 2000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(fb), 2000.0, 2.0);
}

TEST(CoreTest, WeightsBiasTheShare) {
  Simulation sim;
  Core core(sim, 0);
  const auto fast = core.add_entity("fast", -20);  // weight 88761
  const auto slow = core.add_entity("slow", 19);   // weight 15
  Time ff = -1, fs = -1;
  sim.spawn(run_job(sim, core, fast, 100000, ff));
  sim.spawn(run_job(sim, core, slow, 100000, fs));
  sim.run();
  // The -20 job barely notices the nice-19 one.
  EXPECT_LT(ff, 100100);
  EXPECT_GT(fs, 150000);
}

TEST(CoreTest, SequentialJobsFromOneEntity) {
  Simulation sim;
  Core core(sim, 0);
  const auto ent = core.add_entity("a");
  Time f1 = -1, f2 = -1;
  sim.spawn([](Simulation& s, Core& c, Core::EntityId e, Time& t1, Time& t2) -> Task {
    co_await c.run_for(e, 500);
    t1 = s.now();
    co_await s.sleep_for(100);
    co_await c.run_for(e, 500);
    t2 = s.now();
  }(sim, core, ent, f1, f2));
  sim.run();
  EXPECT_EQ(f1, 500);
  EXPECT_EQ(f2, 1100);
  EXPECT_EQ(core.on_cpu_time(ent), 1000);
  EXPECT_EQ(core.busy_time(), 1000);  // idle gap not counted busy
}

TEST(CoreTest, SpinningEntityAccruesCpuWithoutWork) {
  Simulation sim;
  Core core(sim, 0);
  const auto spin = core.add_entity("spin");
  core.set_spinning(spin, true);
  sim.schedule_at(10000, [] {});
  sim.run();
  core.snapshot();  // settle
  EXPECT_EQ(core.on_cpu_time(spin), 10000);
  EXPECT_EQ(core.busy_time(), 10000);
}

TEST(CoreTest, SpinnerSlowsJobByHalf) {
  Simulation sim;
  Core core(sim, 0);
  const auto spin = core.add_entity("spin", 0);
  const auto worker = core.add_entity("worker", 0);
  core.set_spinning(spin, true);
  Time finished = -1;
  sim.spawn(run_job(sim, core, worker, 1000, finished));
  sim.run();
  EXPECT_NEAR(static_cast<double>(finished), 2000.0, 2.0);
}

TEST(CoreTest, ZeroWorkCompletesImmediately) {
  Simulation sim;
  Core core(sim, 0);
  const auto ent = core.add_entity("a");
  Time finished = -1;
  sim.spawn(run_job(sim, core, ent, 0, finished));
  sim.run();
  EXPECT_EQ(finished, 0);
}

TEST(CoreTest, OndemandStartsAtMinFrequency) {
  Simulation sim;
  CoreConfig cfg;
  cfg.governor = Governor::kOndemand;
  Core core(sim, 0, cfg);
  EXPECT_NEAR(core.freq_ratio(), cfg.min_freq_ratio, 1e-9);
}

TEST(CoreTest, OndemandRampsUpUnderLoad) {
  Simulation sim;
  CoreConfig cfg;
  cfg.governor = Governor::kOndemand;
  Core core(sim, 0, cfg);
  const auto spin = core.add_entity("spin");
  core.set_spinning(spin, true);
  sim.schedule_at(50 * kMillisecond, [] {});
  sim.run_until(50 * kMillisecond);
  // After a few 10 ms samples at 100% load, frequency must be pinned max.
  EXPECT_DOUBLE_EQ(core.freq_ratio(), 1.0);
}

TEST(CoreTest, OndemandDropsWhenIdle) {
  Simulation sim;
  CoreConfig cfg;
  cfg.governor = Governor::kOndemand;
  Core core(sim, 0, cfg);
  const auto spin = core.add_entity("spin");
  core.set_spinning(spin, true);
  sim.run_until(50 * kMillisecond);
  core.set_spinning(spin, false);
  sim.run_until(120 * kMillisecond);
  EXPECT_NEAR(core.freq_ratio(), cfg.min_freq_ratio, 1e-9);
}

TEST(CoreTest, FrequencyScalesJobDuration) {
  Simulation sim;
  CoreConfig cfg;
  cfg.governor = Governor::kOndemand;  // starts at min freq
  Core core(sim, 0, cfg);
  const auto ent = core.add_entity("a");
  Time finished = -1;
  sim.spawn(run_job(sim, core, ent, 1000, finished));
  sim.run_until(kMillisecond);
  // At min frequency the 1000 ns job takes 1000/min_ratio wall ns.
  const double expect = 1000.0 / cfg.min_freq_ratio;
  EXPECT_NEAR(static_cast<double>(finished), expect, 3.0);
}

TEST(CoreTest, BusyCoreConsumesMorePowerThanIdle) {
  Simulation sim1;
  Core busy(sim1, 0);
  const auto spin = busy.add_entity("spin");
  busy.set_spinning(spin, true);
  sim1.schedule_at(kSecond, [] {});
  sim1.run();
  busy.snapshot();

  Simulation sim2;
  Core idle(sim2, 0);
  sim2.schedule_at(kSecond, [] {});
  sim2.run();
  idle.snapshot();

  EXPECT_GT(busy.energy_joules(), idle.energy_joules() * 5.0);
  // Sanity: 1 s of a fully busy core at nominal f = static + dynamic watts.
  EXPECT_NEAR(busy.energy_joules(), calib::kCoreStaticWatts + calib::kCoreDynamicWatts, 0.01);
  EXPECT_NEAR(idle.energy_joules(), calib::kCoreIdleWatts, 0.01);
}

TEST(MachineTest, WindowStatsAggregateCoresAndPackage) {
  Simulation sim;
  Machine machine(sim, 2);
  const auto spin = machine.core(0).add_entity("spin");
  machine.core(0).set_spinning(spin, true);
  const auto start = machine.snapshot_all();
  sim.run_until(kSecond);
  const auto end = machine.snapshot_all();
  const auto ws = machine.window_stats(start, end);
  // One of two cores busy: 100% total CPU (out of 200 possible).
  EXPECT_NEAR(ws.total_cpu_usage_percent, 100.0, 0.5);
  const double expect_watts = calib::kPackageBaseWatts + calib::kCoreStaticWatts +
                              calib::kCoreDynamicWatts + calib::kCoreIdleWatts;
  EXPECT_NEAR(ws.avg_package_watts, expect_watts, 0.05);
}

TEST(MachineTest, EmptyWindowIsZero) {
  Simulation sim;
  Machine machine(sim, 2);
  const auto snap = machine.snapshot_all();
  const auto ws = machine.window_stats(snap, snap);
  EXPECT_EQ(ws.avg_package_watts, 0.0);
  EXPECT_EQ(ws.total_cpu_usage_percent, 0.0);
}

}  // namespace
}  // namespace metro::sim
