// Steady-state allocation freedom of the simulation kernel.
//
// This binary replaces the global allocator with a counting shim (which is
// why it is built separately from metro_tests, see CMakeLists.txt) and
// asserts that a hot-loop window of the event kernel — coroutine sleeps,
// SleepService two-phase wake-ups, Signal waits racing timeouts, Core job
// completions — performs ZERO heap allocations once the pools are warm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/cpu.hpp"
#include "sim/simulation.hpp"
#include "sim/sleep_service.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "stats/metric_set.hpp"
#include "stats/time_series.hpp"
#include "stats/trace.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace metro::sim {
namespace {

template <typename Sim>
Task sleeper(Sim& sim, Time period) {
  for (;;) co_await sim.sleep_for(period);
}

Task service_sleeper(SleepService& svc, Time period) {
  for (;;) co_await svc.sleep(period);
}

template <typename Sig>
Task waiter(Sig& sig, Time timeout, std::uint64_t& resumes) {
  for (;;) {
    (void)co_await sig.wait_for(timeout);
    ++resumes;
  }
}

template <typename Sim, typename Sig>
Task notifier(Sim& sim, Sig& sig, Time period) {
  for (;;) {
    co_await sim.sleep_for(period);
    sig.notify_all();
  }
}

Task core_worker(Core& core, Core::EntityId ent, Simulation& sim, Time work, Time pause) {
  for (;;) {
    co_await core.run_for(ent, work);
    co_await sim.sleep_for(pause);
  }
}

TEST(AllocFreeTest, SteadyStateKernelDoesNotAllocate) {
  Simulation sim(7);
  Signal sig(sim);
  Core core(sim, 0);
  SleepService svc(sim, SleepServiceConfig{}, &core);
  const auto ent_a = core.add_entity("worker-a");
  const auto ent_b = core.add_entity("worker-b", 5);
  std::uint64_t resumes = 0;

  for (int i = 0; i < 8; ++i) sim.spawn(sleeper(sim, 3_us + i * 100));
  for (int i = 0; i < 4; ++i) sim.spawn(waiter(sig, 5_us + i * 500, resumes));
  sim.spawn(notifier(sim, sig, 2_us));
  sim.spawn(service_sleeper(svc, 10_us));
  sim.spawn(core_worker(core, ent_a, sim, 1_us, 2_us));
  sim.spawn(core_worker(core, ent_b, sim, 500, 1_us));

  // Warm-up: pools, heap vector, FIFO buffer and token pools reach their
  // steady-state sizes.
  sim.run_until(20 * kMillisecond);

  const std::uint64_t before = g_allocations.load();
  const std::uint64_t resumes_before = resumes;
  sim.run_until(60 * kMillisecond);
  const std::uint64_t after = g_allocations.load();

  EXPECT_GT(resumes - resumes_before, 10000u) << "window did real work";
  EXPECT_EQ(after - before, 0u)
      << "event kernel allocated on the hot path during the steady-state window";
}

// Kernel-only steady-state allocation freedom, parameterized over both
// event-queue backends. The ladder queue recycles rungs, buckets, bottom
// and top storage, so once every container has seen its peak it must be
// exactly as allocation-free as the heap.
template <typename Backend>
class AllocFreeBackendTest : public ::testing::Test {
 public:
  using Sim = BasicSimulation<Backend>;
  using Sig = BasicSignal<Sim>;
};

using Backends = ::testing::Types<BinaryHeapBackend, LadderQueueBackend, TimingWheelBackend>;
TYPED_TEST_SUITE(AllocFreeBackendTest, Backends);

TYPED_TEST(AllocFreeBackendTest, SteadyStateKernelDoesNotAllocate) {
  typename TestFixture::Sim sim(7);
  typename TestFixture::Sig sig(sim);
  std::uint64_t resumes = 0;

  // Telemetry enabled on the measured window: registration happens here
  // (setup), after which the hot loop only increments attached fields and
  // feeds distributions — none of which may allocate.
  std::uint64_t ticks = 0;
  metro::stats::MetricSet metrics;
  metrics.attach_counter("ticks", ticks);
  metro::stats::Summary& tick_gap_us = metrics.summary("tick_gap_us");
  metro::stats::Histogram& tick_hist = metrics.histogram("tick_gap_hist", 0.5, 100.0);

  // Periodic timer churn exercising schedule/cancel on the backend, with
  // per-tick telemetry recording. One indirection keeps the callable
  // within the kernel's 24-byte inline budget (three words).
  struct TickStats {
    std::uint64_t* count;
    metro::stats::Summary* gap_us;
    metro::stats::Histogram* hist;
  };
  TickStats tick_stats{&ticks, &tick_gap_us, &tick_hist};
  struct Tick {
    typename TestFixture::Sim* sim;
    TickStats* stats;
    Time period;
    void operator()() const {
      ++*stats->count;
      const double us = static_cast<double>(period) * 1e-3;
      stats->gap_us->add(us);
      stats->hist->add(us);
      sim->schedule_after(period, *this);
    }
  };
  for (int i = 0; i < 64; ++i) {
    sim.schedule_after(i, Tick{&sim, &tick_stats, 2_us + i * 50});
  }
  for (int i = 0; i < 16; ++i) sim.spawn(sleeper(sim, 3_us + i * 100));
  for (int i = 0; i < 8; ++i) sim.spawn(waiter(sig, 5_us + i * 500, resumes));
  sim.spawn(notifier(sim, sig, 2_us));

  // Tracing on from the start: the ring is pre-sized and recording is
  // noexcept, so the tracer may watch warm-up and window alike.
  metro::trace::Tracer tracer(1u << 12);
  sim.set_tracer(&tracer);

  // Warm-up: backend storage, FIFO buffer and pools reach steady state.
  // (Longer than the heap's: the ladder's per-bucket capacities converge
  // over a few epochs rather than one pass.)
  sim.run_until(40 * kMillisecond);

  // The series recorder arms here (pre-window: prime() preallocates its
  // ring; sampling then refreshes in place) at an 8 us cadence — inside
  // the scheduling-horizon band this workload already exercises, which
  // the warm-up above has taken to peak. The backends' allocation-freedom
  // guarantee is "after every container has seen its peak": a far-future
  // cadence (say 1 ms) would make the sampler the lone event class at a
  // horizon the warm-up never visits, and the wheel/ladder would keep
  // sizing virgin slots and buckets for it mid-window.
  metro::stats::SeriesConfig series_cfg;
  series_cfg.interval = 8_us;
  series_cfg.capacity = 5100;
  metro::stats::SeriesRecorder series(metrics, series_cfg);
  series.arm(sim);

  const auto window_baseline = metrics.window_start();  // pre-window; may allocate

  const std::uint64_t before = g_allocations.load();
  const std::uint64_t resumes_before = resumes;
  sim.run_until(80 * kMillisecond);
  // Reading the window fingerprint is part of the measured hot window:
  // it walks the live values without snapshotting.
  const std::uint64_t fp = metrics.fingerprint();
  const std::uint64_t after = g_allocations.load();

  EXPECT_GT(resumes - resumes_before, 10000u) << "window did real work";
  EXPECT_EQ(after - before, 0u)
      << "event kernel, telemetry, series sampling or tracing allocated on "
         "the hot path during the steady-state window";
  EXPECT_NE(fp, 0u);
  const auto d = metrics.delta(window_baseline);
  EXPECT_GT(d.counter("ticks"), 1000u) << "telemetry recorded the window";
  EXPECT_EQ(d.summary("tick_gap_us").count(), d.counter("ticks"))
      << "every tick fed the summary";

  // Both observers recorded real data across the alloc-free window (the
  // windows-sum-to-run-delta algebra itself is pinned in
  // test_timeseries.cpp; this test's claim is allocation freedom).
  series.finish(sim.now());
  EXPECT_GT(series.size(), 4900u) << "a window per 8 us of the measured window";
  EXPECT_EQ(series.dropped(), 0u);
  EXPECT_GT(tracer.size(), 0u) << "sampled kernel fires were traced";
  sim.set_tracer(nullptr);
}

TEST(AllocFreeTest, OversizedCallbacksStillWork) {
  // Callables above the inline budget take the documented heap fallback —
  // correctness first; this is the rare path.
  Simulation sim;
  struct Big {
    char pad[64];
    int* hit;
    void operator()() const { ++*hit; }
  };
  int hit = 0;
  Big big{};
  big.hit = &hit;
  sim.schedule_after(10, big);
  sim.run();
  EXPECT_EQ(hit, 1);
}

}  // namespace
}  // namespace metro::sim
