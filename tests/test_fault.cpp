// Fault-injection plane (src/fault/) and hardened sweep execution.
//
// Three layers of coverage:
//   1. FaultInjector unit behaviour: the ingress pipeline's decisions are
//      a pure function of (spec, seed, packet sequence); window math and
//      counter accounting are exact.
//   2. App-level graceful degradation: the byte-level apps count-and-drop
//      packets whose bytes the injector has mangled, instead of crashing
//      (the suite runs under ASan/UBSan in CI).
//   3. The registered fault scenarios hold the same cross-backend and
//      cross-jobs fingerprint identity as healthy ones, and the hardened
//      SweepRunner captures throwing/wedged shards into ShardResult
//      instead of letting a worker thread std::terminate the process.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "apps/flowatcher.hpp"
#include "apps/ipsec.hpp"
#include "apps/l3fwd.hpp"
#include "fault/fault.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "util/seed_mix.hpp"

namespace metro {
namespace {

using fault::FaultInjector;
using fault::FaultSpec;
using scenario::BackendKind;

nic::PacketDesc desc_at(sim::Time t, std::uint32_t flow = 1) {
  nic::PacketDesc pkt;
  pkt.arrival = t;
  pkt.rss_hash = 0x9e3779b9u * flow;
  pkt.flow_id = flow;
  pkt.wire_size = 64;
  return pkt;
}

/// Feed `n` evenly spaced packets through the injector, collecting every
/// delivered descriptor in order.
std::vector<nic::PacketDesc> deliver_all(FaultInjector& inj, std::size_t n,
                                         sim::Time gap = 100) {
  std::vector<nic::PacketDesc> out;
  for (std::size_t i = 0; i < n; ++i) {
    inj.ingress(desc_at(static_cast<sim::Time>(i) * gap, static_cast<std::uint32_t>(i)),
                [&](const nic::PacketDesc& p) { out.push_back(p); });
  }
  return out;
}

bool same_desc(const nic::PacketDesc& a, const nic::PacketDesc& b) {
  return a.arrival == b.arrival && a.rss_hash == b.rss_hash && a.flow_id == b.flow_id &&
         a.wire_size == b.wire_size;
}

// --- spec / seed derivation -------------------------------------------------

TEST(FaultSpecTest, DefaultSpecIsInert) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  // A one-sided window (period without duration, or vice versa) stays off.
  FaultSpec half;
  half.link_down_every = sim::kMillisecond;
  EXPECT_FALSE(half.any());
  half.link_down_every = 0;
  half.stall_for = sim::kMicrosecond;
  EXPECT_FALSE(half.any());
}

TEST(FaultSpecTest, AnyFiresPerAxis) {
  FaultSpec s;
  s.drop_prob = 0.01;
  EXPECT_TRUE(s.any());
  s = FaultSpec{};
  s.link_down_every = sim::kMillisecond;
  s.link_down_for = 100 * sim::kMicrosecond;
  EXPECT_TRUE(s.any());
  s = FaultSpec{};
  s.stall_every = sim::kMillisecond;
  s.stall_for = 100 * sim::kMicrosecond;
  EXPECT_TRUE(s.any());
}

TEST(FaultInjectorTest, DerivedSeedIsItsOwnStream) {
  // The fault stream must never alias the workload stream
  // (mix_seed(seed, 1)) or the raw shard seed.
  const std::uint64_t shard_seed = 42;
  const std::uint64_t derived = FaultInjector::derive_seed(shard_seed);
  EXPECT_NE(derived, shard_seed);
  EXPECT_NE(derived, util::mix_seed(shard_seed, 1));
  EXPECT_EQ(derived, FaultInjector::derive_seed(shard_seed)) << "derivation must be stable";
  EXPECT_NE(FaultInjector::derive_seed(42), FaultInjector::derive_seed(43));
}

// --- ingress pipeline -------------------------------------------------------

TEST(FaultInjectorTest, InertSpecDeliversEverythingUntouched) {
  FaultInjector inj(FaultSpec{}, 1);
  const auto delivered = deliver_all(inj, 1000);
  ASSERT_EQ(delivered.size(), 1000u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_TRUE(same_desc(delivered[i], desc_at(static_cast<sim::Time>(i) * 100,
                                                static_cast<std::uint32_t>(i))));
  }
  const auto& c = inj.counters();
  EXPECT_EQ(c.dropped + c.corrupted + c.dup + c.reordered + c.link_down_ns + c.stall_ns, 0u);
}

TEST(FaultInjectorTest, SameSpecAndSeedMakeIdenticalDecisions) {
  FaultSpec spec;
  spec.drop_prob = 0.1;
  spec.corrupt_prob = 0.05;
  spec.dup_prob = 0.02;
  spec.reorder_prob = 0.03;
  FaultInjector a(spec, 99);
  FaultInjector b(spec, 99);
  const auto da = deliver_all(a, 20000);
  const auto db = deliver_all(b, 20000);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    ASSERT_TRUE(same_desc(da[i], db[i])) << "at delivery " << i;
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_EQ(a.counters().corrupted, b.counters().corrupted);
  EXPECT_EQ(a.counters().dup, b.counters().dup);
  EXPECT_EQ(a.counters().reordered, b.counters().reordered);

  FaultInjector c(spec, 100);
  const auto dc = deliver_all(c, 20000);
  EXPECT_NE(dc.size(), da.size()) << "a different seed must make different decisions";
}

TEST(FaultInjectorTest, DropProbabilityIsHonored) {
  FaultSpec spec;
  spec.drop_prob = 0.25;
  FaultInjector inj(spec, 7);
  const std::size_t n = 40000;
  const auto delivered = deliver_all(inj, n);
  EXPECT_EQ(delivered.size() + inj.counters().dropped, n) << "every packet lands somewhere";
  EXPECT_NEAR(static_cast<double>(inj.counters().dropped), 0.25 * n, 0.02 * n);
}

TEST(FaultInjectorTest, DuplicationDeliversTwice) {
  FaultSpec spec;
  spec.dup_prob = 1.0;
  FaultInjector inj(spec, 7);
  const auto delivered = deliver_all(inj, 100);
  ASSERT_EQ(delivered.size(), 200u);
  EXPECT_EQ(inj.counters().dup, 100u);
  for (std::size_t i = 0; i < delivered.size(); i += 2) {
    EXPECT_TRUE(same_desc(delivered[i], delivered[i + 1])) << "copies must be identical";
  }
}

TEST(FaultInjectorTest, ReorderSwapsAdjacentPackets) {
  // With reorder_prob = 1 and one hold slot: packet 0 is held, packet 1
  // is delivered first and releases it — delivery order 1,0,3,2,5,4,...
  FaultSpec spec;
  spec.reorder_prob = 1.0;
  FaultInjector inj(spec, 7);
  const auto delivered = deliver_all(inj, 10);
  ASSERT_EQ(delivered.size(), 10u);
  for (std::size_t i = 0; i < 10; i += 2) {
    EXPECT_EQ(delivered[i].flow_id, i + 1);
    EXPECT_EQ(delivered[i + 1].flow_id, i);
  }
  EXPECT_EQ(inj.counters().reordered, 5u);
}

TEST(FaultInjectorTest, CorruptionFlipsHeaderBitsButKeepsDescriptorValid) {
  FaultSpec spec;
  spec.corrupt_prob = 1.0;
  FaultInjector inj(spec, 7);
  const std::size_t n = 1000;
  const auto delivered = deliver_all(inj, n);
  ASSERT_EQ(delivered.size(), n);
  EXPECT_EQ(inj.counters().corrupted, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto original = desc_at(static_cast<sim::Time>(i) * 100,
                                  static_cast<std::uint32_t>(i));
    EXPECT_FALSE(same_desc(delivered[i], original)) << "packet " << i << " must be mangled";
    // Exactly one rss bit flips; wire_size stays in the representable
    // range (zero clamps to 1, one flipped bit of 11 keeps it < 2048).
    EXPECT_EQ(__builtin_popcount(delivered[i].rss_hash ^ original.rss_hash), 1);
    EXPECT_GT(delivered[i].wire_size, 0u);
    EXPECT_LT(delivered[i].wire_size, 2048u);
    // Timing identity is sacred: corruption must never move a packet.
    EXPECT_EQ(delivered[i].arrival, original.arrival);
  }
}

// --- link-flap and stall windows --------------------------------------------

TEST(FaultInjectorTest, LinkFlapDropsOnlyInsideDownWindows) {
  FaultSpec spec;
  spec.link_down_every = sim::kMillisecond;        // up for 1 ms...
  spec.link_down_for = 100 * sim::kMicrosecond;    // ...then down for 100 us
  FaultInjector inj(spec, 7);
  std::size_t delivered = 0;
  const auto feed = [&](sim::Time t) {
    inj.ingress(desc_at(t), [&](const nic::PacketDesc&) { ++delivered; });
  };
  feed(0);                                           // up
  feed(999 * sim::kMicrosecond);                     // still up
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(inj.counters().dropped, 0u);
  feed(1050 * sim::kMicrosecond);                    // down window 0
  feed(1099 * sim::kMicrosecond);                    // same window
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(inj.counters().dropped, 2u);
  // Witnessed down-time accounts once per window, not once per packet.
  EXPECT_EQ(inj.counters().link_down_ns,
            static_cast<std::uint64_t>(100 * sim::kMicrosecond));
  feed(1100 * sim::kMicrosecond);                    // next period: up again
  EXPECT_EQ(delivered, 3u);
  feed(2150 * sim::kMicrosecond);                    // down window 1
  EXPECT_EQ(inj.counters().dropped, 3u);
  EXPECT_EQ(inj.counters().link_down_ns,
            static_cast<std::uint64_t>(200 * sim::kMicrosecond));
}

TEST(FaultInjectorTest, StallWindowsMirrorFlapMath) {
  FaultSpec spec;
  spec.stall_every = 2 * sim::kMillisecond;
  spec.stall_for = 200 * sim::kMicrosecond;
  FaultInjector inj(spec, 7);
  EXPECT_FALSE(inj.rx_stalled(0));
  EXPECT_FALSE(inj.rx_stalled(1999 * sim::kMicrosecond));
  EXPECT_EQ(inj.counters().stall_ns, 0u);
  EXPECT_TRUE(inj.rx_stalled(2100 * sim::kMicrosecond));
  EXPECT_TRUE(inj.rx_stalled(2199 * sim::kMicrosecond));
  EXPECT_EQ(inj.counters().stall_ns, static_cast<std::uint64_t>(200 * sim::kMicrosecond));
  EXPECT_FALSE(inj.rx_stalled(2200 * sim::kMicrosecond));
  EXPECT_TRUE(inj.rx_stalled(4300 * sim::kMicrosecond));
  EXPECT_EQ(inj.counters().stall_ns, static_cast<std::uint64_t>(400 * sim::kMicrosecond));
}

TEST(FaultInjectorTest, FlipBitsFlipsWithinBounds) {
  FaultSpec spec;
  FaultInjector a(spec, 5);
  FaultInjector b(spec, 5);
  std::vector<std::uint8_t> buf_a(64, 0), buf_b(64, 0);
  a.flip_bits(buf_a.data(), buf_a.size(), 1);
  b.flip_bits(buf_b.data(), buf_b.size(), 1);
  EXPECT_EQ(buf_a, buf_b) << "same seed, same flip";
  int set_bits = 0;
  for (const auto byte : buf_a) set_bits += __builtin_popcount(byte);
  EXPECT_EQ(set_bits, 1) << "exactly one bit flips";
  // Zero-length buffers are a no-op, not UB.
  a.flip_bits(buf_a.data(), 0, 8);
}

// --- app-level graceful degradation under corrupted bytes -------------------

net::FiveTuple test_tuple(std::uint32_t n = 0) {
  return net::FiveTuple{net::ipv4_addr(10, 0, 0, 1) + n, net::ipv4_addr(10, 1, 0, 1), 1000,
                        static_cast<std::uint16_t>(2000 + n), net::kIpProtoUdp};
}

TEST(FaultCorruptionTest, L3fwdCountsAndDropsMangledPackets) {
  // Random byte-level corruption must never crash the forwarder (this
  // suite runs under ASan/UBSan in CI) and every packet must be accounted
  // as either forwarded or dropped-with-reason.
  apps::L3Forwarder fwd(apps::L3Forwarder::Mode::kLpm);
  fwd.add_port({0, net::MacAddress{}, net::MacAddress{}});
  fwd.add_route(net::ipv4_addr(10, 1, 0, 0), 16, 0);
  FaultInjector inj(FaultSpec{}, 2026);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    net::Packet pkt;
    net::build_udp_packet(pkt, test_tuple(static_cast<std::uint32_t>(i % 16)), 64);
    inj.flip_bits(pkt.data(), pkt.size(), 1 + (i % 8));
    fwd.process(pkt);
  }
  const auto& st = fwd.stats();
  EXPECT_EQ(st.forwarded + st.dropped, static_cast<std::uint64_t>(n));
  // A single flipped bit usually breaks the IP checksum; mangled packets
  // must overwhelmingly be *rejected*, not mis-forwarded.
  EXPECT_GT(st.dropped, static_cast<std::uint64_t>(n) / 2);
  EXPECT_GT(st.drop_reason[static_cast<std::size_t>(apps::L3fwdDrop::kBadChecksum)] +
                st.drop_reason[static_cast<std::size_t>(apps::L3fwdDrop::kMalformed)] +
                st.drop_reason[static_cast<std::size_t>(apps::L3fwdDrop::kNotIpv4)],
            0u);
}

TEST(FaultCorruptionTest, L3fwdRejectsBadVersionAndLyingTotalLength) {
  apps::L3Forwarder fwd(apps::L3Forwarder::Mode::kLpm);
  fwd.add_port({0, net::MacAddress{}, net::MacAddress{}});
  fwd.add_route(net::ipv4_addr(10, 1, 0, 0), 16, 0);

  net::Packet v6;
  net::build_udp_packet(v6, test_tuple(), 64);
  v6.at<net::Ipv4Header>(sizeof(net::EthernetHeader))->version_ihl = 0x65;  // "IPv6", IHL 20
  EXPECT_FALSE(fwd.process(v6).has_value());

  net::Packet lying;
  net::build_udp_packet(lying, test_tuple(), 64);
  // total_length far beyond the buffer: parsing it as truth would read
  // out of bounds downstream.
  lying.at<net::Ipv4Header>(sizeof(net::EthernetHeader))->total_length =
      net::host_to_be16(4000);
  EXPECT_FALSE(fwd.process(lying).has_value());

  EXPECT_EQ(fwd.stats().drop_reason[static_cast<std::size_t>(apps::L3fwdDrop::kMalformed)], 2u);
}

TEST(FaultCorruptionTest, FloWatcherCountsMalformedSeparately) {
  apps::FloWatcher fw;
  net::Packet good;
  net::build_udp_packet(good, test_tuple(), 64);
  EXPECT_TRUE(fw.observe(good, 0));

  // Truncated below the IPv4 header: malformed, not non-IP.
  net::Packet trunc;
  net::build_udp_packet(trunc, test_tuple(), 64);
  trunc.trim(trunc.size() - (sizeof(net::EthernetHeader) + 10));
  EXPECT_FALSE(fw.observe(trunc, 1));

  net::Packet badver;
  net::build_udp_packet(badver, test_tuple(), 64);
  badver.at<net::Ipv4Header>(sizeof(net::EthernetHeader))->version_ihl = 0x95;
  EXPECT_FALSE(fw.observe(badver, 2));

  EXPECT_EQ(fw.total_packets(), 3u);
  EXPECT_EQ(fw.malformed_packets(), 2u);
  EXPECT_EQ(fw.non_ip_packets(), 0u);
  EXPECT_EQ(fw.active_flows(), 1u);
}

TEST(FaultCorruptionTest, IpsecDecapSurvivesTamperedTunnelPackets) {
  apps::SecurityAssociation sa;
  sa.tunnel_src = net::ipv4_addr(203, 0, 113, 1);
  sa.tunnel_dst = net::ipv4_addr(203, 0, 113, 2);
  apps::IpsecGateway egress(sa);
  apps::IpsecGateway ingress(sa);
  FaultInjector inj(FaultSpec{}, 31);

  std::uint64_t rejected = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    net::Packet pkt;
    net::build_udp_packet(pkt, test_tuple(), 128);
    ASSERT_TRUE(egress.encap(pkt));
    inj.flip_bits(pkt.data(), pkt.size(), 1 + (i % 4));
    if (!ingress.decap(pkt)) ++rejected;
  }
  // HMAC-SHA1-96 catches every flip that touches the authenticated
  // region; flips confined to the outer header fail the malformed /
  // checksum gates instead. The handful that land in bytes nobody
  // validates (the Ethernet MACs) decap successfully — the point is that
  // every packet is *accounted*, nothing crashes, and failures land in
  // counters.
  const auto& st = ingress.stats();
  EXPECT_EQ(rejected + st.decapsulated, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.auth_failures + st.malformed + st.replay_drops, rejected);
  EXPECT_GT(st.auth_failures, 0u);
  EXPECT_GT(st.malformed, 0u);
  EXPECT_GT(rejected, static_cast<std::uint64_t>(n) * 9 / 10)
      << "the unvalidated surface is 12 MAC bytes out of a ~200-byte frame";
}

// --- registered fault scenarios: determinism contract -----------------------

const char* const kFaultScenarios[] = {"cbr_lossy", "imix_corrupt", "poisson_linkflap",
                                       "incast_stall"};

TEST(FaultScenarioTest, RegistryCarriesActiveFaultSpecs) {
  for (const char* name : kFaultScenarios) {
    const auto* spec = scenario::find_scenario(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_TRUE(spec->config.workload.fault.any()) << name << " must declare faults";
  }
  // Healthy scenarios stay inert — the fault plane must cost them nothing.
  EXPECT_FALSE(scenario::find_scenario("cbr_uniform")->config.workload.fault.any());
}

struct Fingerprint {
  std::uint64_t telemetry = 0;
  scenario::ShardCounters counters;
  std::uint64_t events = 0;
  sim::Time final_clock = 0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint_of(const scenario::ShardResult& r) {
  return Fingerprint{r.fingerprint, r.counters, r.events, r.final_clock};
}

scenario::SweepMatrix fault_matrix() {
  scenario::SweepMatrix m;
  m.scenarios.assign(std::begin(kFaultScenarios), std::end(kFaultScenarios));
  m.backends = {BackendKind::kHeap, BackendKind::kLadder, BackendKind::kWheel};
  m.warmup = 2 * sim::kMillisecond;
  m.measure = 5 * sim::kMillisecond;
  m.base_seed = 99;
  return m;
}

TEST(FaultScenarioTest, BitIdenticalAcrossBackendsAndWorkerCounts) {
  const auto shards = scenario::SweepRunner::expand(fault_matrix());
  ASSERT_EQ(shards.size(), 12u);  // 4 scenarios x 3 backends
  const auto serial = scenario::SweepRunner(1).run(shards);
  const auto parallel = scenario::SweepRunner(4).run(shards);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].failed) << shards[i].scenario << ": " << serial[i].error;
    EXPECT_EQ(fingerprint_of(serial[i]), fingerprint_of(parallel[i]))
        << "jobs=1 vs jobs=4, shard " << i;
  }
  // Cross-backend: shards of one scenario are adjacent (heap, ladder, wheel).
  for (std::size_t i = 0; i < serial.size(); i += 3) {
    EXPECT_EQ(fingerprint_of(serial[i]), fingerprint_of(serial[i + 1]))
        << shards[i].scenario << ": heap vs ladder under faults";
    EXPECT_EQ(fingerprint_of(serial[i]), fingerprint_of(serial[i + 2]))
        << shards[i].scenario << ": heap vs wheel under faults";
  }
  EXPECT_EQ(scenario::report_json(shards, serial, false),
            scenario::report_json(shards, parallel, false));
}

TEST(FaultScenarioTest, FaultCountersReachTelemetry) {
  scenario::SweepMatrix m = fault_matrix();
  m.backends = {BackendKind::kHeap};
  const auto shards = scenario::SweepRunner::expand(m);
  const auto results = scenario::SweepRunner(2).run(shards);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ASSERT_FALSE(results[i].failed) << results[i].error;
    const auto& t = results[i].telemetry;
    ASSERT_NE(t.find("fault.dropped"), nullptr)
        << shards[i].scenario << ": fault counters must be registered";
    const std::uint64_t activity = t.counter("fault.dropped") + t.counter("fault.corrupted") +
                                   t.counter("fault.dup") + t.counter("fault.reordered") +
                                   t.counter("fault.link_down_ns") + t.counter("fault.stall_ns");
    EXPECT_GT(activity, 0u) << shards[i].scenario << " must witness its declared faults";
  }
  // The report's fault_matrix block lists exactly the fault-bearing shards.
  const std::string json = scenario::report_json(shards, results, false);
  const std::size_t block = json.find("\"fault_matrix\"");
  ASSERT_NE(block, std::string::npos);
  // The block is populated: each fault shard contributes a row carrying
  // the six plane counters.
  EXPECT_NE(json.find("\"corrupted\"", block), std::string::npos);
  EXPECT_NE(json.find("\"stall_ns\"", block), std::string::npos);
}

TEST(FaultScenarioTest, HealthyScenarioUnchangedByFaultPlane) {
  // The inert spec short-circuits: a healthy scenario must fingerprint
  // identically whether or not the fault subsystem exists — guarded here
  // by an explicitly zeroed spec vs the registry default.
  scenario::SweepMatrix m;
  m.scenarios = {"cbr_uniform"};
  m.backends = {BackendKind::kHeap};
  m.warmup = 2 * sim::kMillisecond;
  m.measure = 5 * sim::kMillisecond;
  m.base_seed = 7;
  auto shards = scenario::SweepRunner::expand(m);
  auto with_default = scenario::SweepRunner(1).run(shards);
  shards[0].config.workload.fault = FaultSpec{};  // explicit no-op
  auto with_zeroed = scenario::SweepRunner(1).run(shards);
  EXPECT_EQ(fingerprint_of(with_default[0]), fingerprint_of(with_zeroed[0]));
}

// --- hardened sweep runner --------------------------------------------------

std::vector<scenario::Shard> shards_with_poisoned_trace() {
  // A kTrace shard with a nonexistent pcap path throws "cannot open trace
  // file" from the testbed constructor — a deterministic configuration
  // failure, the exact class the hardened runner must contain.
  scenario::SweepMatrix m;
  m.scenarios = {"cbr_uniform", "trace_replay_unbalanced", "mmpp_bursty"};
  m.backends = {BackendKind::kHeap};
  m.warmup = 2 * sim::kMillisecond;
  m.measure = 5 * sim::kMillisecond;
  m.base_seed = 11;
  auto shards = scenario::SweepRunner::expand(m);
  shards[1].config.workload.trace.path = "/nonexistent/metro_no_such_trace.pcap";
  return shards;
}

TEST(SweepHardeningTest, ThrowingShardIsCapturedNotFatal) {
  const auto shards = shards_with_poisoned_trace();
  const auto results = scenario::SweepRunner(2).run(shards);
  ASSERT_EQ(results.size(), 3u);

  EXPECT_TRUE(results[1].failed);
  EXPECT_NE(results[1].error.find("cannot open trace file"), std::string::npos)
      << results[1].error;
  EXPECT_EQ(results[1].attempts, 2) << "default policy: one deterministic retry";

  // The healthy shards around it ran to completion.
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[2].failed);
  EXPECT_GT(results[0].counters.processed, 1000u);
  EXPECT_GT(results[2].counters.processed, 1000u);

  EXPECT_EQ(scenario::failed_count(results), 1u);
  const std::string summary = scenario::failure_summary(shards, results);
  EXPECT_NE(summary.find("trace_replay_unbalanced"), std::string::npos);
  EXPECT_NE(summary.find("2 attempt"), std::string::npos);

  const std::string json = scenario::report_json(shards, results, false);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
  EXPECT_NE(json.find("cannot open trace file"), std::string::npos);
  EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
}

TEST(SweepHardeningTest, FailureReportIdenticalAcrossWorkerCounts) {
  const auto shards = shards_with_poisoned_trace();
  const auto serial = scenario::SweepRunner(1).run(shards);
  const auto parallel = scenario::SweepRunner(4).run(shards);
  EXPECT_EQ(scenario::report_json(shards, serial, false),
            scenario::report_json(shards, parallel, false))
      << "failure capture must be as deterministic as success";
}

TEST(SweepHardeningTest, MergeSkipsFailedShards) {
  const auto shards = shards_with_poisoned_trace();
  const auto results = scenario::SweepRunner(1).run(shards);
  const auto merged = scenario::merge_telemetry(results);
  // Totals reflect the two healthy shards; the failed shard's empty
  // telemetry neither contributes nor throws.
  EXPECT_EQ(merged.counter("port.rx"),
            results[0].telemetry.counter("port.rx") + results[2].telemetry.counter("port.rx"));
}

TEST(SweepHardeningTest, DeadlineWatchdogFailsWedgedShards) {
  scenario::SweepMatrix m;
  m.scenarios = {"cbr_uniform"};
  m.backends = {BackendKind::kHeap};
  m.warmup = 2 * sim::kMillisecond;
  m.measure = 5 * sim::kMillisecond;
  m.base_seed = 3;
  const auto shards = scenario::SweepRunner::expand(m);

  scenario::SweepRunner runner(1);
  runner.set_shard_deadline(1e-9);  // no real shard fits in a nanosecond
  runner.set_max_retries(0);
  const auto results = runner.run(shards);
  ASSERT_TRUE(results[0].failed);
  EXPECT_NE(results[0].error.find("deadline exceeded"), std::string::npos) << results[0].error;
  EXPECT_EQ(results[0].attempts, 1) << "set_max_retries(0) must disable the retry";
  // Deterministic error text: no timing values that would differ across
  // reruns (the report must stay byte-identical across worker counts).
  EXPECT_NE(results[0].error.find("cbr_uniform"), std::string::npos);
  EXPECT_EQ(results[0].error.find("0."), std::string::npos);

  // A generous deadline never perturbs results: slicing run_until is
  // execution-equivalent.
  scenario::SweepRunner relaxed(1);
  relaxed.set_shard_deadline(300.0);
  const auto timed = relaxed.run(shards);
  const auto plain = scenario::SweepRunner(1).run(shards);
  ASSERT_FALSE(timed[0].failed) << timed[0].error;
  EXPECT_EQ(fingerprint_of(timed[0]), fingerprint_of(plain[0]));
}

TEST(SweepHardeningTest, MergeErrorsNameTheMetricAndShard) {
  // Two snapshots that disagree on a histogram geometry: the merge error
  // must carry the metric name (MetricSnapshot::merge) and, through
  // merge_telemetry, the shard index — the difference between a fixable
  // bug report and an anonymous abort in a 200-shard sweep.
  stats::MetricSet a, b;
  a.histogram("latency_us", 1.0, 100.0);
  b.histogram("latency_us", 2.0, 100.0);
  auto sa = a.snapshot();
  const auto sb = b.snapshot();
  try {
    sa.merge(sb);
    FAIL() << "geometry mismatch must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("latency_us"), std::string::npos) << e.what();
  }

  scenario::ShardResult r0, r1;
  r0.telemetry = a.snapshot();
  r1.telemetry = b.snapshot();
  try {
    scenario::merge_telemetry({r0, r1});
    FAIL() << "merge_telemetry must propagate the mismatch";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("latency_us"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace metro
