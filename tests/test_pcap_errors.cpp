// PcapReader error paths: every way a trace file can be malformed must
// surface as a typed exception with a diagnosable message — never a
// silent short read, never an attacker-controlled allocation. The
// fault-plane scenarios replay traces under adverse conditions, so the
// reader is part of the hardened surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "net/pcap.hpp"

namespace metro::net {
namespace {

void put_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), 4);
}
void put_u16(std::ostream& out, std::uint16_t v) {
  out.write(reinterpret_cast<const char*>(&v), 2);
}

/// A well-formed classic (microsecond) global header.
std::string global_header(std::uint32_t snaplen = 65535) {
  std::ostringstream out;
  put_u32(out, 0xa1b2c3d4);
  put_u16(out, 2);
  put_u16(out, 4);
  put_u32(out, 0);        // thiszone
  put_u32(out, 0);        // sigfigs
  put_u32(out, snaplen);
  put_u32(out, 1);        // LINKTYPE_ETHERNET
  return out.str();
}

/// One record header (+ optionally short payload bytes).
std::string record(std::uint32_t caplen, std::uint32_t payload_bytes) {
  std::ostringstream out;
  put_u32(out, 1);  // ts seconds
  put_u32(out, 2);  // ts micros
  put_u32(out, caplen);
  put_u32(out, caplen);  // origlen
  for (std::uint32_t i = 0; i < payload_bytes; ++i) out.put('\0');
  return out.str();
}

void expect_throw_containing(const std::string& bytes, const std::string& needle) {
  std::istringstream in(bytes);
  try {
    PcapReader::read_all(in);
    FAIL() << "expected a throw mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(PcapErrorTest, RoundTripStillWorks) {
  // Baseline: the writer's output parses cleanly (the error paths below
  // must not have broken the healthy one).
  std::stringstream io;
  PcapWriter writer(io);
  PcapPacket pkt;
  pkt.timestamp_ns = 5'000'000;
  pkt.data.assign(60, 0xab);
  writer.write(pkt);
  const auto packets = PcapReader::read_all(io);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].data.size(), 60u);
  EXPECT_EQ(packets[0].timestamp_ns, 5'000'000);
}

TEST(PcapErrorTest, EmptyStreamIsTruncatedHeader) {
  expect_throw_containing("", "truncated global header");
}

TEST(PcapErrorTest, ShortGlobalHeader) {
  expect_throw_containing(global_header().substr(0, 17), "truncated global header");
}

TEST(PcapErrorTest, BadMagic) {
  std::string bytes = global_header();
  bytes[0] = 'G';
  bytes[1] = 'E';
  bytes[2] = 'T';
  bytes[3] = ' ';  // an HTTP response fed to the trace loader, say
  expect_throw_containing(bytes, "bad magic");
}

TEST(PcapErrorTest, TruncatedRecordHeader) {
  expect_throw_containing(global_header() + record(60, 60).substr(0, 7),
                          "truncated record header");
}

TEST(PcapErrorTest, TruncatedPacketData) {
  // Header promises 60 bytes, file ends after 10.
  expect_throw_containing(global_header() + record(60, 10), "truncated packet data");
}

TEST(PcapErrorTest, CaplenBeyondSnaplenRejectedBeforeAllocating) {
  // A corrupted caplen of ~1 GiB must be rejected up front (no attempt to
  // allocate or read it): no record can exceed the declared snaplen.
  expect_throw_containing(global_header(1500) + record(1u << 30, 0),
                          "caplen exceeds snaplen");
}

TEST(PcapErrorTest, HugeSnaplenStillCapped) {
  // Even a file whose *header* declares an absurd snaplen can't make the
  // reader swallow a multi-megabyte "record": the cap is min(snaplen,
  // 256 KiB).
  expect_throw_containing(global_header(0xffffffffu) + record(1u << 20, 0),
                          "caplen exceeds snaplen");
}

TEST(PcapErrorTest, RecordsBeforeTheCorruptionAreReturnedOnThrow) {
  // next() is incremental: valid leading records parse fine and the throw
  // happens exactly at the corrupt one.
  std::istringstream in(global_header() + record(8, 8) + record(60, 10));
  PcapReader reader(in);
  PcapPacket pkt;
  ASSERT_TRUE(reader.next(pkt));
  EXPECT_EQ(pkt.data.size(), 8u);
  EXPECT_THROW(reader.next(pkt), std::runtime_error);
}

TEST(PcapErrorTest, ByteSwappedFilesParse) {
  // Opposite-endian capture: magic, snaplen and record fields all swap.
  const auto swap = [](std::uint32_t v) {
    return ((v & 0xffu) << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) | (v >> 24);
  };
  std::ostringstream out;
  put_u32(out, 0xd4c3b2a1);
  put_u16(out, 0x0200);
  put_u16(out, 0x0400);
  put_u32(out, 0);
  put_u32(out, 0);
  put_u32(out, swap(65535));
  put_u32(out, swap(1));
  put_u32(out, swap(1));   // ts sec
  put_u32(out, swap(0));   // ts usec
  put_u32(out, swap(16));  // caplen
  put_u32(out, swap(16));  // origlen
  for (int i = 0; i < 16; ++i) out.put(static_cast<char>(i));
  std::istringstream in(out.str());
  PcapReader reader(in);
  EXPECT_TRUE(reader.byte_swapped());
  EXPECT_EQ(reader.snaplen(), 65535u);
  PcapPacket pkt;
  ASSERT_TRUE(reader.next(pkt));
  EXPECT_EQ(pkt.data.size(), 16u);
  EXPECT_EQ(pkt.timestamp_ns, 1'000'000'000);
  EXPECT_FALSE(reader.next(pkt));
}

}  // namespace
}  // namespace metro::net
