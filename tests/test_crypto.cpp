// Crypto: AES-128 (FIPS-197), CBC (NIST SP 800-38A), SHA-1 (FIPS 180),
// HMAC-SHA1 (RFC 2202).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "sim/rng.hpp"

namespace metro::crypto {
namespace {

std::array<std::uint8_t, 16> hex16(const char* hex) {
  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 16; ++i) {
    unsigned v;
    sscanf(hex + 2 * i, "%2x", &v);
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
  }
  return out;
}

std::vector<std::uint8_t> hexv(const std::string& hex) {
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    unsigned v;
    sscanf(hex.c_str() + 2 * i, "%2x", &v);
    out[i] = static_cast<std::uint8_t>(v);
  }
  return out;
}

TEST(AesTest, Fips197AppendixBVector) {
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = hex16("3243f6a8885a308d313198a2e0370734");
  const auto expect = hex16("3925841d02dc09fbdc118597196a0b32");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
}

TEST(AesTest, Fips197AppendixCVector) {
  const auto key = hex16("000102030405060708090a0b0c0d0e0f");
  const auto pt = hex16("00112233445566778899aabbccddeeff");
  const auto expect = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
}

TEST(AesTest, EncryptDecryptRoundTripRandom) {
  sim::Rng rng(1);
  std::array<std::uint8_t, 16> key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  for (int i = 0; i < 200; ++i) {
    std::uint8_t pt[16], ct[16], back[16];
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    ASSERT_EQ(std::memcmp(pt, back, 16), 0);
    ASSERT_NE(std::memcmp(pt, ct, 16), 0);
  }
}

TEST(AesCbcTest, NistSp80038aVector) {
  // SP 800-38A F.2.1 CBC-AES128.Encrypt, first two blocks.
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = hex16("000102030405060708090a0b0c0d0e0f");
  const auto pt = hexv(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const auto expect = hexv(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2");
  AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  std::vector<std::uint8_t> ct(pt.size());
  cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv), ct);
  EXPECT_EQ(ct, expect);
  std::vector<std::uint8_t> back(ct.size());
  cbc.decrypt(ct, std::span<const std::uint8_t, 16>(iv), back);
  EXPECT_EQ(back, pt);
}

TEST(AesCbcTest, InPlaceDecryptWorks) {
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = hex16("000102030405060708090a0b0c0d0e0f");
  std::vector<std::uint8_t> data(64, 0x42);
  const auto original = data;
  AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  cbc.encrypt(data, std::span<const std::uint8_t, 16>(iv), data);
  EXPECT_NE(data, original);
  cbc.decrypt(data, std::span<const std::uint8_t, 16>(iv), data);
  EXPECT_EQ(data, original);
}

TEST(AesCbcTest, DifferentIvDifferentCiphertext) {
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv1 = hex16("00000000000000000000000000000000");
  const auto iv2 = hex16("00000000000000000000000000000001");
  std::vector<std::uint8_t> pt(32, 0x11), c1(32), c2(32);
  AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv1), c1);
  cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv2), c2);
  EXPECT_NE(c1, c2);
}

TEST(Sha1Test, Fips180Vectors) {
  const auto d1 = Sha1::digest(hexv("616263"));  // "abc"
  EXPECT_EQ(std::memcmp(d1.data(), hexv("a9993e364706816aba3e25717850c26c9cd0d89d").data(), 20),
            0);
  const std::string msg2 = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const auto d2 = Sha1::digest(
      std::span(reinterpret_cast<const std::uint8_t*>(msg2.data()), msg2.size()));
  EXPECT_EQ(std::memcmp(d2.data(), hexv("84983e441c3bd26ebaae4aa1f95129e5e54670f1").data(), 20),
            0);
}

TEST(Sha1Test, EmptyMessage) {
  const auto d = Sha1::digest({});
  EXPECT_EQ(std::memcmp(d.data(), hexv("da39a3ee5e6b4b0d3255bfef95601890afd80709").data(), 20), 0);
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(std::memcmp(d.data(), hexv("34aa973cd4c4daa4f61eeb2bdbad27316534016f").data(), 20), 0);
}

TEST(Sha1Test, IncrementalEqualsOneShot) {
  sim::Rng rng(2);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  Sha1 h;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_u64(97), data.size() - off);
    h.update(std::span(data.data() + off, n));
    off += n;
  }
  EXPECT_EQ(h.finish(), Sha1::digest(data));
}

TEST(HmacSha1Test, Rfc2202Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  HmacSha1 h(key);
  const auto tag =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(tag.data(), hexv("b617318655057264e28bc0b6fb378c8ef146be00").data(), 20),
            0);
}

TEST(HmacSha1Test, Rfc2202Case2TextKey) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  HmacSha1 h(std::span(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  const auto tag =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(tag.data(), hexv("effcdf6ae5eb2fa2d27416d5f184df9c259a7c79").data(), 20),
            0);
}

TEST(HmacSha1Test, Rfc2202Case6LongKey) {
  std::vector<std::uint8_t> key(80, 0xaa);  // key longer than block size
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  HmacSha1 h(key);
  const auto tag =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(tag.data(), hexv("aa4ae5e15272d00e95705637ce8a3b55ed402112").data(), 20),
            0);
}

TEST(HmacSha1Test, Truncated96IsPrefix) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  HmacSha1 h(key);
  const auto full =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  const auto t96 =
      h.compute96(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(full.data(), t96.data(), 12), 0);
}

// Remaining RFC 2202 cases (3, 4, 5, 7), run against both the midstate
// implementation and the scalar oracle so the two can never drift apart on
// a published vector.
void check_rfc2202(const std::vector<std::uint8_t>& key, const std::vector<std::uint8_t>& msg,
                   const char* digest_hex) {
  const auto expect = hexv(digest_hex);
  HmacSha1 fast(key);
  ScalarHmacSha1 scalar(key);
  EXPECT_EQ(std::memcmp(fast.compute(msg).data(), expect.data(), 20), 0);
  EXPECT_EQ(std::memcmp(scalar.compute(msg).data(), expect.data(), 20), 0);
}

std::vector<std::uint8_t> str_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(HmacSha1Test, Rfc2202Case3) {
  check_rfc2202(std::vector<std::uint8_t>(20, 0xaa), std::vector<std::uint8_t>(50, 0xdd),
                "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, Rfc2202Case4) {
  check_rfc2202(hexv("0102030405060708090a0b0c0d0e0f10111213141516171819"),
                std::vector<std::uint8_t>(50, 0xcd), "4c9007f4026250c6bc8414f9bf50c86c2d7235da");
}

TEST(HmacSha1Test, Rfc2202Case5AndTruncation) {
  const std::vector<std::uint8_t> key(20, 0x0c);
  const auto msg = str_bytes("Test With Truncation");
  check_rfc2202(key, msg, "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04");
  // HMAC-SHA1-96 of case 5 is the RFC's truncation example.
  HmacSha1 fast(key);
  ScalarHmacSha1 scalar(key);
  const auto expect96 = hexv("4c1a03424b55e07fe7f27be1");
  EXPECT_EQ(std::memcmp(fast.compute96(msg).data(), expect96.data(), 12), 0);
  EXPECT_EQ(std::memcmp(scalar.compute96(msg).data(), expect96.data(), 12), 0);
}

TEST(HmacSha1Test, Rfc2202Case7) {
  check_rfc2202(std::vector<std::uint8_t>(80, 0xaa),
                str_bytes("Test Using Larger Than Block-Size Key and Larger "
                          "Than One Block-Size Data"),
                "e8e99d0f45237d786d6bbaa7965c7808bbff1a91");
}

// --- implementation matrix: every enabled AES path against the vectors ---

/// Every Aes128 implementation that can run on this machine, plus kAuto.
std::vector<Aes128::Impl> enabled_impls() {
  std::vector<Aes128::Impl> impls = {Aes128::Impl::kAuto, Aes128::Impl::kTables};
  if (Aes128::hardware_available()) impls.push_back(Aes128::Impl::kHardware);
  return impls;
}

TEST(AesTest, Fips197AppendixCAllImplementations) {
  const auto key = hex16("000102030405060708090a0b0c0d0e0f");
  const auto pt = hex16("00112233445566778899aabbccddeeff");
  const auto expect = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
  for (const auto impl : enabled_impls()) {
    Aes128 aes{std::span<const std::uint8_t, 16>(key), impl};
    std::uint8_t ct[16], back[16];
    aes.encrypt_block(pt.data(), ct);
    EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
  }
}

TEST(AesCbcTest, NistSp80038aFullFourBlocksAllImplementations) {
  // SP 800-38A F.2.1 (encrypt) / F.2.2 (decrypt), all four blocks.
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = hex16("000102030405060708090a0b0c0d0e0f");
  const auto pt = hexv(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const auto expect = hexv(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  const auto check = [&](const auto& cbc) {
    std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
    cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv), ct);
    EXPECT_EQ(ct, expect);
    cbc.decrypt(ct, std::span<const std::uint8_t, 16>(iv), back);
    EXPECT_EQ(back, pt);
  };
  for (const auto impl : enabled_impls()) {
    check(AesCbc{std::span<const std::uint8_t, 16>(key), impl});
  }
  check(ScalarAesCbc{std::span<const std::uint8_t, 16>(key)});
}

// --- differential fuzz: fast implementations vs the scalar oracle -------

TEST(AesFuzzTest, BlockMatchesScalarAllImplementations) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint8_t, 16> key{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
    const ScalarAes128 oracle{std::span<const std::uint8_t, 16>(key)};
    for (const auto impl : enabled_impls()) {
      const Aes128 fast{std::span<const std::uint8_t, 16>(key), impl};
      std::uint8_t pt[16], ct_fast[16], ct_oracle[16], back[16];
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
      fast.encrypt_block(pt, ct_fast);
      oracle.encrypt_block(pt, ct_oracle);
      ASSERT_EQ(std::memcmp(ct_fast, ct_oracle, 16), 0);
      fast.decrypt_block(ct_fast, back);
      ASSERT_EQ(std::memcmp(back, pt, 16), 0);
    }
  }
}

TEST(AesFuzzTest, CbcMatchesScalarRandomLengths) {
  sim::Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::array<std::uint8_t, 16> key{}, iv{};
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next_u64());
    const std::size_t n_blocks = 1 + rng.uniform_u64(128);
    std::vector<std::uint8_t> pt(16 * n_blocks);
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
    const ScalarAesCbc oracle{std::span<const std::uint8_t, 16>(key)};
    std::vector<std::uint8_t> ct_oracle(pt.size()), pt_oracle(pt.size());
    oracle.encrypt(pt, std::span<const std::uint8_t, 16>(iv), ct_oracle);
    oracle.decrypt(ct_oracle, std::span<const std::uint8_t, 16>(iv), pt_oracle);
    ASSERT_EQ(pt_oracle, pt);
    for (const auto impl : enabled_impls()) {
      const AesCbc fast{std::span<const std::uint8_t, 16>(key), impl};
      std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
      fast.encrypt(pt, std::span<const std::uint8_t, 16>(iv), ct);
      ASSERT_EQ(ct, ct_oracle);
      fast.decrypt(ct, std::span<const std::uint8_t, 16>(iv), back);
      ASSERT_EQ(back, pt);
    }
  }
}

TEST(HmacFuzzTest, MidstateMatchesScalarRandomKeysAndLengths) {
  sim::Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<std::uint8_t> key(1 + rng.uniform_u64(99));
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
    std::vector<std::uint8_t> msg(rng.uniform_u64(301));
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    const HmacSha1 fast(key);
    const ScalarHmacSha1 oracle(key);
    ASSERT_EQ(fast.compute(msg), oracle.compute(msg));
    ASSERT_EQ(fast.compute96(msg), oracle.compute96(msg));
  }
}

}  // namespace
}  // namespace metro::crypto
