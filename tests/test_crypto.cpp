// Crypto: AES-128 (FIPS-197), CBC (NIST SP 800-38A), SHA-1 (FIPS 180),
// HMAC-SHA1 (RFC 2202).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "sim/rng.hpp"

namespace metro::crypto {
namespace {

std::array<std::uint8_t, 16> hex16(const char* hex) {
  std::array<std::uint8_t, 16> out{};
  for (int i = 0; i < 16; ++i) {
    unsigned v;
    sscanf(hex + 2 * i, "%2x", &v);
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
  }
  return out;
}

std::vector<std::uint8_t> hexv(const std::string& hex) {
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    unsigned v;
    sscanf(hex.c_str() + 2 * i, "%2x", &v);
    out[i] = static_cast<std::uint8_t>(v);
  }
  return out;
}

TEST(AesTest, Fips197AppendixBVector) {
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = hex16("3243f6a8885a308d313198a2e0370734");
  const auto expect = hex16("3925841d02dc09fbdc118597196a0b32");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
}

TEST(AesTest, Fips197AppendixCVector) {
  const auto key = hex16("000102030405060708090a0b0c0d0e0f");
  const auto pt = hex16("00112233445566778899aabbccddeeff");
  const auto expect = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(std::memcmp(ct, expect.data(), 16), 0);
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(std::memcmp(back, pt.data(), 16), 0);
}

TEST(AesTest, EncryptDecryptRoundTripRandom) {
  sim::Rng rng(1);
  std::array<std::uint8_t, 16> key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  for (int i = 0; i < 200; ++i) {
    std::uint8_t pt[16], ct[16], back[16];
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u64());
    aes.encrypt_block(pt, ct);
    aes.decrypt_block(ct, back);
    ASSERT_EQ(std::memcmp(pt, back, 16), 0);
    ASSERT_NE(std::memcmp(pt, ct, 16), 0);
  }
}

TEST(AesCbcTest, NistSp80038aVector) {
  // SP 800-38A F.2.1 CBC-AES128.Encrypt, first two blocks.
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = hex16("000102030405060708090a0b0c0d0e0f");
  const auto pt = hexv(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const auto expect = hexv(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2");
  AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  std::vector<std::uint8_t> ct(pt.size());
  cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv), ct);
  EXPECT_EQ(ct, expect);
  std::vector<std::uint8_t> back(ct.size());
  cbc.decrypt(ct, std::span<const std::uint8_t, 16>(iv), back);
  EXPECT_EQ(back, pt);
}

TEST(AesCbcTest, InPlaceDecryptWorks) {
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv = hex16("000102030405060708090a0b0c0d0e0f");
  std::vector<std::uint8_t> data(64, 0x42);
  const auto original = data;
  AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  cbc.encrypt(data, std::span<const std::uint8_t, 16>(iv), data);
  EXPECT_NE(data, original);
  cbc.decrypt(data, std::span<const std::uint8_t, 16>(iv), data);
  EXPECT_EQ(data, original);
}

TEST(AesCbcTest, DifferentIvDifferentCiphertext) {
  const auto key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto iv1 = hex16("00000000000000000000000000000000");
  const auto iv2 = hex16("00000000000000000000000000000001");
  std::vector<std::uint8_t> pt(32, 0x11), c1(32), c2(32);
  AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv1), c1);
  cbc.encrypt(pt, std::span<const std::uint8_t, 16>(iv2), c2);
  EXPECT_NE(c1, c2);
}

TEST(Sha1Test, Fips180Vectors) {
  const auto d1 = Sha1::digest(hexv("616263"));  // "abc"
  EXPECT_EQ(std::memcmp(d1.data(), hexv("a9993e364706816aba3e25717850c26c9cd0d89d").data(), 20),
            0);
  const std::string msg2 = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const auto d2 = Sha1::digest(
      std::span(reinterpret_cast<const std::uint8_t*>(msg2.data()), msg2.size()));
  EXPECT_EQ(std::memcmp(d2.data(), hexv("84983e441c3bd26ebaae4aa1f95129e5e54670f1").data(), 20),
            0);
}

TEST(Sha1Test, EmptyMessage) {
  const auto d = Sha1::digest({});
  EXPECT_EQ(std::memcmp(d.data(), hexv("da39a3ee5e6b4b0d3255bfef95601890afd80709").data(), 20), 0);
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(std::memcmp(d.data(), hexv("34aa973cd4c4daa4f61eeb2bdbad27316534016f").data(), 20), 0);
}

TEST(Sha1Test, IncrementalEqualsOneShot) {
  sim::Rng rng(2);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  Sha1 h;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_u64(97), data.size() - off);
    h.update(std::span(data.data() + off, n));
    off += n;
  }
  EXPECT_EQ(h.finish(), Sha1::digest(data));
}

TEST(HmacSha1Test, Rfc2202Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  HmacSha1 h(key);
  const auto tag =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(tag.data(), hexv("b617318655057264e28bc0b6fb378c8ef146be00").data(), 20),
            0);
}

TEST(HmacSha1Test, Rfc2202Case2TextKey) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  HmacSha1 h(std::span(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  const auto tag =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(tag.data(), hexv("effcdf6ae5eb2fa2d27416d5f184df9c259a7c79").data(), 20),
            0);
}

TEST(HmacSha1Test, Rfc2202Case6LongKey) {
  std::vector<std::uint8_t> key(80, 0xaa);  // key longer than block size
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  HmacSha1 h(key);
  const auto tag =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(tag.data(), hexv("aa4ae5e15272d00e95705637ce8a3b55ed402112").data(), 20),
            0);
}

TEST(HmacSha1Test, Truncated96IsPrefix) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  HmacSha1 h(key);
  const auto full =
      h.compute(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  const auto t96 =
      h.compute96(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(std::memcmp(full.data(), t96.data(), 12), 0);
}

}  // namespace
}  // namespace metro::crypto
