// Telemetry layer: MetricSet registration/window/merge/fingerprint
// semantics, the JsonWriter emission path, and the end-to-end claim the
// refactor makes: the full-set fingerprint catches divergences the old
// hand-picked counter comparison was blind to.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "apps/experiment.hpp"
#include "core/planner.hpp"
#include "scenario/sweep.hpp"
#include "sim/rng.hpp"
#include "stats/json_writer.hpp"
#include "stats/metric_set.hpp"

namespace metro {
namespace {

// --- registration & lookup --------------------------------------------------

TEST(MetricSetTest, OwnedAndAttachedMetricsInRegistrationOrder) {
  stats::MetricSet set;
  std::uint64_t external = 7;
  std::uint64_t& owned = set.counter("owned");
  set.attach_counter("external", external);
  double& g = set.gauge("level");
  stats::Summary& s = set.summary("samples");
  set.histogram("dist", 1.0, 10.0);

  owned = 3;
  external = 11;
  g = 2.5;
  s.add(4.0);

  ASSERT_EQ(set.size(), 5u);
  EXPECT_EQ(set.name(0), "owned");
  EXPECT_EQ(set.name(1), "external");
  EXPECT_EQ(set.kind(4), stats::MetricKind::kHistogram);

  const auto snap = set.snapshot();
  EXPECT_EQ(snap.counter("owned"), 3u);
  EXPECT_EQ(snap.counter("external"), 11u);
  EXPECT_DOUBLE_EQ(snap.gauge("level"), 2.5);
  EXPECT_EQ(snap.summary("samples").count(), 1u);
  EXPECT_EQ(snap.find("no_such_metric"), nullptr);
  EXPECT_THROW(snap.counter("level"), std::invalid_argument);  // kind mismatch
  EXPECT_THROW(snap.counter("missing"), std::out_of_range);
}

TEST(MetricSetTest, DuplicateNameThrows) {
  stats::MetricSet set;
  set.counter("x");
  EXPECT_THROW(set.counter("x"), std::invalid_argument);
  EXPECT_THROW(set.gauge("x"), std::invalid_argument);
}

// --- window semantics -------------------------------------------------------

TEST(MetricSetTest, WindowDeltaSubtractsCountersAndResetsDistributions) {
  stats::MetricSet set;
  std::uint64_t& c = set.counter("events");
  stats::Summary& s = set.summary("lat");
  stats::Histogram& h = set.histogram("hist", 1.0, 10.0);

  c = 100;
  s.add(1.0);
  h.add(2.0);

  const auto start = set.window_start();
  EXPECT_EQ(start.counter("events"), 100u) << "baseline keeps the lifetime total";
  EXPECT_EQ(s.count(), 0u) << "window_start resets summaries";
  EXPECT_EQ(h.count(), 0u) << "window_start resets histograms";

  c += 42;
  s.add(5.0);
  h.add(3.0);

  const auto d = set.delta(start);
  EXPECT_EQ(d.counter("events"), 42u) << "delta is window-relative";
  EXPECT_EQ(d.summary("lat").count(), 1u);
  EXPECT_DOUBLE_EQ(d.summary("lat").mean(), 5.0);
  EXPECT_EQ(d.histogram("hist").count(), 1u);

  // Shape mismatches must fail loudly, not misattribute values.
  stats::MetricSet other;
  other.counter("events");
  EXPECT_THROW(other.delta(start), std::invalid_argument);
}

// --- merge ------------------------------------------------------------------

TEST(MetricSnapshotTest, MergeUnionsByNameAndCombines) {
  stats::MetricSet a;
  a.counter("shared") = 10;
  a.summary("s").add(1.0);

  stats::MetricSet b;
  b.counter("shared") = 5;
  b.summary("s").add(3.0);
  b.counter("only_b") = 2;

  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("shared"), 15u);
  EXPECT_EQ(merged.summary("s").count(), 2u);
  EXPECT_DOUBLE_EQ(merged.summary("s").mean(), 2.0);
  EXPECT_EQ(merged.counter("only_b"), 2u) << "unmatched entries append";
  EXPECT_EQ(merged.size(), 3u);

  // Same name, different kind: refuse rather than fabricate.
  stats::MetricSet c;
  c.gauge("shared");
  EXPECT_THROW(merged.merge(c.snapshot()), std::invalid_argument);
}

TEST(MetricSnapshotTest, HistogramMergeGeometryMismatchThrows) {
  stats::MetricSet a;
  a.histogram("h", 1.0, 10.0);
  stats::MetricSet b;
  b.histogram("h", 2.0, 10.0);  // different bin width
  auto snap = a.snapshot();
  EXPECT_THROW(snap.merge(b.snapshot()), std::invalid_argument);
}

// --- fingerprint ------------------------------------------------------------

TEST(MetricSetTest, FingerprintMatchesSnapshotAndSeesEveryValue) {
  stats::MetricSet set;
  std::uint64_t& c = set.counter("c");
  double& g = set.gauge("g");
  stats::Summary& s = set.summary("s");
  stats::Histogram& h = set.histogram("h", 1.0, 10.0);
  c = 1;
  g = 2.0;
  s.add(3.0);
  h.add(4.0);

  const std::uint64_t base = set.fingerprint();
  EXPECT_EQ(base, set.snapshot().fingerprint())
      << "live set and its snapshot must digest identically";

  ++c;
  const std::uint64_t after_counter = set.fingerprint();
  EXPECT_NE(base, after_counter);
  g = 2.5;
  EXPECT_NE(after_counter, set.fingerprint());
  const std::uint64_t before_hist = set.fingerprint();
  h.add(9.0);
  EXPECT_NE(before_hist, set.fingerprint()) << "histogram bins are covered";
  const std::uint64_t before_summary = set.fingerprint();
  s.add(3.0);
  EXPECT_NE(before_summary, set.fingerprint());
}

TEST(MetricSetTest, FingerprintIsOrderAndNameSensitive) {
  stats::MetricSet ab;
  ab.counter("a") = 1;
  ab.counter("b") = 2;
  stats::MetricSet ba;
  ba.counter("b") = 2;
  ba.counter("a") = 1;
  EXPECT_NE(ab.fingerprint(), ba.fingerprint()) << "registration order is identity";

  stats::MetricSet renamed;
  renamed.counter("a") = 1;
  renamed.counter("c") = 2;
  EXPECT_NE(ab.fingerprint(), renamed.fingerprint()) << "names are identity";
}

// --- planner gauges ---------------------------------------------------------

TEST(MetricSetTest, PlannerPredictionsRegisterAsGauges) {
  core::PlannerInput in;
  core::PlannerOutput out = core::plan(in);
  stats::MetricSet set;
  out.register_metrics(set, "plan");
  const auto snap = set.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge("plan.rho"), out.rho);
  EXPECT_DOUBLE_EQ(snap.gauge("plan.cpu_percent"), out.cpu_percent);
  EXPECT_GT(snap.gauge("plan.wakeups_per_sec"), 0.0);
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriterTest, NestedStructureCommasAndEscaping) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.kv("name", "line\nbreak \"quoted\"");
  w.kv("n", std::uint64_t{3});
  w.key("arr").begin_array().value(1).value(2.5).end_array();
  w.key("empty").begin_object().end_object();
  w.end_object();
  w.finish();
  EXPECT_TRUE(w.done());
  const std::string s = os.str();
  EXPECT_NE(s.find("\"line\\nbreak \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(s.find("\"arr\": [\n"), std::string::npos);
  EXPECT_NE(s.find("\"empty\": {}"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
  // Array elements separated by exactly one comma.
  EXPECT_NE(s.find("1,\n    2.5"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  stats::JsonWriter w(os);
  w.begin_object();
  w.kv("inf", 1.0 / 0.0);
  w.kv("nan", 0.0 / 0.0);
  w.end_object();
  const std::string s = os.str();
  EXPECT_NE(s.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(s.find("\"nan\": null"), std::string::npos);
  EXPECT_EQ(s.find("inf,"), std::string::npos);
}

TEST(JsonWriterTest, DoublesRoundTripDeterministically) {
  std::ostringstream a, b;
  stats::JsonWriter wa(a), wb(b);
  const double v = 0.1 + 0.2;  // not representable exactly
  wa.value(v);
  wb.value(v);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(std::stod(a.str()), v) << "printed text must round-trip the exact double";
}

TEST(MetricSnapshotTest, WriteJsonEmitsEveryKind) {
  stats::MetricSet set;
  set.counter("c") = 5;
  set.gauge("g") = 1.5;
  set.summary("s").add(2.0);
  set.histogram("h", 1.0, 4.0).add(1.0);
  std::ostringstream os;
  stats::JsonWriter w(os);
  set.snapshot().write_json(w);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"c\": 5"), std::string::npos);
  EXPECT_NE(s.find("\"g\": 1.5"), std::string::npos);
  EXPECT_NE(s.find("\"mean\""), std::string::npos);
  EXPECT_NE(s.find("\"digest\""), std::string::npos);
  EXPECT_TRUE(w.done());
}

// --- the refactor's end-to-end claim ----------------------------------------
// A seeded single-counter perturbation that leaves rx/dropped/tx/processed
// untouched: invisible to the old hand-picked ShardCounters comparison,
// caught by the full-set fingerprint.

scenario::ShardCounters counters_view(const stats::MetricSnapshot& snap, int n_queues,
                                      std::uint64_t processed) {
  std::uint64_t dropped = snap.counter("port.cap_drops");
  for (int q = 0; q < n_queues; ++q) {
    dropped += snap.counter("port.q" + std::to_string(q) + ".dropped");
  }
  return scenario::ShardCounters{snap.counter("port.rx"), dropped,
                                 snap.counter("port.tx.transmitted"), processed};
}

TEST(TelemetryDivergenceTest, FingerprintCatchesWhatHandPickedCountersMissed) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 3;
  cfg.met.n_threads = 3;
  cfg.workload.rate_mpps = 8.0;
  cfg.workload.n_flows = 128;
  cfg.warmup = 2 * sim::kMillisecond;
  cfg.measure = 5 * sim::kMillisecond;

  const scenario::Shard shard{"t", scenario::BackendKind::kHeap, cfg};
  const auto r = scenario::SweepRunner(1).run({shard}).at(0);
  ASSERT_GT(r.counters.processed, 1000u) << "shard must do real work";
  ASSERT_GT(r.telemetry.counter("met.q0.busy_tries") + r.telemetry.counter("met.q1.busy_tries"),
            0u)
      << "contended 2-queue setup must record busy tries";

  // Seed the perturbation: one busy-try miscount on queue 0 — the kind of
  // divergence a backend bug in the trylock path would produce.
  auto perturbed = r.telemetry;
  perturbed.set_counter("met.q0.busy_tries", perturbed.counter("met.q0.busy_tries") + 1);

  // The old check (rx/dropped/tx/processed equality) is blind to it...
  EXPECT_EQ(counters_view(perturbed, cfg.n_queues, r.counters.processed), r.counters)
      << "hand-picked counters cannot see a busy-try divergence";
  // ...the full-set fingerprint is not.
  EXPECT_NE(perturbed.fingerprint(), r.fingerprint)
      << "full-telemetry fingerprint must catch a single-counter perturbation";
}

// The testbed registers every layer it assembles: spot-check the tree for
// a metronome shard (port + per-ring + per-queue driver stats + latency).
TEST(TelemetryDivergenceTest, TestbedTelemetryCoversAllLayers) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.n_queues = 1;
  cfg.n_cores = 2;
  cfg.met.n_threads = 2;
  cfg.workload.rate_mpps = 2.0;
  cfg.competitor.n_workers = 1;
  cfg.warmup = sim::kMillisecond;
  cfg.measure = 2 * sim::kMillisecond;
  apps::Testbed bed(cfg);
  bed.start();
  const auto& t = bed.telemetry();
  for (const char* name :
       {"port.rx", "port.cap_drops", "port.q0.received", "port.q0.dropped",
        "port.tx.transmitted", "latency_us", "met.q0.total_tries", "met.q0.busy_tries",
        "met.q0.vacation_us", "competitor.0.chunks_done"}) {
    EXPECT_TRUE(t.contains(name)) << name << " missing from the testbed telemetry set";
  }
}

}  // namespace
}  // namespace metro
