// Baseline drivers: static-polling DPDK and the XDP model, plus the
// ferret competitor and the experiment harness glue.
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "apps/ferret.hpp"

namespace metro {
namespace {

using apps::DriverKind;
using apps::ExperimentConfig;
using apps::run_experiment;

ExperimentConfig config_for(DriverKind kind, double rate_mpps) {
  ExperimentConfig cfg;
  cfg.driver = kind;
  cfg.workload.rate_mpps = rate_mpps;
  cfg.warmup = 100 * sim::kMillisecond;
  cfg.measure = 300 * sim::kMillisecond;
  return cfg;
}

TEST(StaticPollingTest, AlwaysBurnsOneFullCore) {
  for (const double rate : {14.88, 1.0, 0.0}) {
    const auto r = run_experiment(config_for(DriverKind::kStaticPolling, rate));
    EXPECT_NEAR(r.cpu_percent, 100.0, 0.5) << "rate " << rate;
  }
}

TEST(StaticPollingTest, ForwardsLineRateWithoutLoss) {
  const auto r = run_experiment(config_for(DriverKind::kStaticPolling, 14.88));
  EXPECT_NEAR(r.throughput_mpps, 14.88, 0.1);
  EXPECT_LT(r.loss_permille, 0.01);
}

TEST(StaticPollingTest, LatencyBelowMetronome) {
  const auto stat = run_experiment(config_for(DriverKind::kStaticPolling, 14.88));
  auto met_cfg = config_for(DriverKind::kMetronome, 14.88);
  const auto met = run_experiment(met_cfg);
  EXPECT_LT(stat.latency_us.mean, met.latency_us.mean);
}

TEST(StaticPollingTest, TxDrainBoundsLowRateLatency) {
  // l3fwd's 100 us Tx drain caps the batching delay even at tiny rates.
  const auto r = run_experiment(config_for(DriverKind::kStaticPolling, 0.1));
  EXPECT_LT(r.latency_us.whisker_hi, 120.0);
  EXPECT_NEAR(r.throughput_mpps, 0.1, 0.01);
}

TEST(XdpTest, ZeroCpuAtZeroTraffic) {
  auto cfg = config_for(DriverKind::kXdp, 0.0);
  cfg.n_queues = 1;
  cfg.n_cores = 1;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.cpu_percent, 0.0);  // the paper's one clear XDP win
}

TEST(XdpTest, NeedsFourCoresNearLineRate) {
  // With 4 queues/cores XDP keeps up (cf. §V-D: 13.57 Mpps max on ixgbe).
  auto cfg = config_for(DriverKind::kXdp, 13.5);
  cfg.n_queues = 4;
  cfg.n_cores = 4;
  const auto r4 = run_experiment(cfg);
  EXPECT_GT(r4.throughput_mpps, 13.0);
  // A single queue/core saturates and drops heavily.
  auto cfg1 = config_for(DriverKind::kXdp, 13.5);
  cfg1.n_queues = 1;
  cfg1.n_cores = 1;
  const auto r1 = run_experiment(cfg1);
  EXPECT_LT(r1.throughput_mpps, 6.0);
  EXPECT_GT(r1.loss_permille, 100.0);
}

TEST(XdpTest, CpuAboveMetronomeUnderLoad) {
  // Fig. 10b: per-interrupt housekeeping makes XDP's total CPU much higher.
  auto xdp = config_for(DriverKind::kXdp, 13.5);
  xdp.n_queues = 4;
  xdp.n_cores = 4;
  const auto rx = run_experiment(xdp);
  const auto rm = run_experiment(config_for(DriverKind::kMetronome, 13.5));
  EXPECT_GT(rx.cpu_percent, rm.cpu_percent * 1.5);
}

TEST(XdpTest, RequiresCorePerQueue) {
  auto cfg = config_for(DriverKind::kXdp, 1.0);
  cfg.n_queues = 4;
  cfg.n_cores = 2;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(FerretTest, RunsAtFullSpeedAlone) {
  sim::Simulation sim;
  sim::Machine machine(sim, 1);
  apps::FerretConfig fc;
  fc.total_work = sim::kSecond;
  const auto result = apps::spawn_ferret(sim, machine.core(0), fc);
  sim.run_until(10 * sim::kSecond);
  ASSERT_TRUE(result->done());
  EXPECT_NEAR(result->elapsed_seconds(), 1.0, 0.01);
}

TEST(FerretTest, EqualNiceCompetitorDoublesRuntime) {
  sim::Simulation sim;
  sim::Machine machine(sim, 1);
  apps::FerretConfig fc;
  fc.total_work = sim::kSecond;
  fc.nice = 0;
  const auto a = apps::spawn_ferret(sim, machine.core(0), fc, "a");
  const auto b = apps::spawn_ferret(sim, machine.core(0), fc, "b");
  sim.run_until(10 * sim::kSecond);
  ASSERT_TRUE(a->done());
  ASSERT_TRUE(b->done());
  EXPECT_NEAR(a->elapsed_seconds(), 2.0, 0.05);
  EXPECT_NEAR(b->elapsed_seconds(), 2.0, 0.05);
}

TEST(FerretTest, NicePriorityProtectsTheImportantTask) {
  sim::Simulation sim;
  sim::Machine machine(sim, 1);
  apps::FerretConfig high;
  high.total_work = sim::kSecond;
  high.nice = -20;
  apps::FerretConfig low;
  low.total_work = sim::kSecond;
  low.nice = 19;
  const auto h = apps::spawn_ferret(sim, machine.core(0), high, "high");
  const auto l = apps::spawn_ferret(sim, machine.core(0), low, "low");
  sim.run_until(30 * sim::kSecond);
  ASSERT_TRUE(h->done());
  ASSERT_TRUE(l->done());
  EXPECT_LT(h->elapsed_seconds(), 1.01);  // barely affected
  EXPECT_GT(l->elapsed_seconds(), 1.9);   // waited out the -20 task
}

// --- §V-E: CPU-sharing experiments (Table II behaviour) -------------------

TEST(CpuSharingTest, StaticPollingCollapsesUnderContention) {
  auto cfg = config_for(DriverKind::kStaticPolling, 14.88);
  cfg.n_cores = 1;
  cfg.competitor.n_workers = 1;
  cfg.competitor.nice = 0;  // the static baseline runs untuned
  const auto r = run_experiment(cfg);
  // Table II: static DPDK falls below line rate and drops packets (our
  // calibrated drain rate halves to ~13.2 Mpps; the paper measured 7.34 —
  // same collapse, different magnitude, see EXPERIMENTS.md).
  EXPECT_LT(r.throughput_mpps, 13.8);
  EXPECT_GT(r.loss_permille, 50.0);
}

TEST(CpuSharingTest, MetronomeHoldsLineRateUnderContention) {
  auto cfg = config_for(DriverKind::kMetronome, 14.88);
  cfg.n_cores = 3;
  cfg.competitor.n_workers = 3;  // ferret on all three shared cores
  const auto r = run_experiment(cfg);
  // Table II: Metronome keeps 14.88 Mpps (nice -20 wakes preempt nice 19).
  EXPECT_NEAR(r.throughput_mpps, 14.88, 0.15);
  EXPECT_LT(r.loss_permille, 1.0);
}

TEST(ExperimentHarnessTest, ResultFieldsConsistent) {
  const auto r = run_experiment(config_for(DriverKind::kMetronome, 5.0));
  EXPECT_GT(r.package_watts, sim::calib::kPackageBaseWatts);
  EXPECT_GT(r.latency_us.count, 100000u);
  EXPECT_GE(r.latency_us.p75, r.latency_us.p25);
  EXPECT_EQ(r.offered_mpps, 5.0);
  EXPECT_GT(r.wakeups, 0u);
  ASSERT_EQ(r.queues.size(), 1u);
}

TEST(ExperimentHarnessTest, DeterministicAcrossRuns) {
  const auto a = run_experiment(config_for(DriverKind::kMetronome, 7.0));
  const auto b = run_experiment(config_for(DriverKind::kMetronome, 7.0));
  EXPECT_DOUBLE_EQ(a.cpu_percent, b.cpu_percent);
  EXPECT_DOUBLE_EQ(a.latency_us.mean, b.latency_us.mean);
  EXPECT_EQ(a.wakeups, b.wakeups);
}

TEST(ExperimentHarnessTest, SeedChangesRealisationNotShape) {
  auto cfg = config_for(DriverKind::kMetronome, 7.0);
  cfg.seed = 2;
  const auto a = run_experiment(cfg);
  cfg.seed = 3;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.wakeups, b.wakeups);                      // different realisation
  EXPECT_NEAR(a.cpu_percent, b.cpu_percent, 3.0);       // same physics
  EXPECT_NEAR(a.latency_us.mean, b.latency_us.mean, 3.0);
}

}  // namespace
}  // namespace metro
