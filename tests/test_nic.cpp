// NIC model: Toeplitz RSS, rings, port dispatch, device caps.
#include <gtest/gtest.h>

#include "nic/port.hpp"
#include "nic/rings.hpp"
#include "nic/rss.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace metro::nic {
namespace {

using sim::Time;

// Microsoft RSS verification suite vectors (IPv4 with ports, default key).
TEST(ToeplitzTest, MicrosoftReferenceVectors) {
  // 66.9.149.187:2794 -> 161.142.100.80:1766  => 0x51ccc178
  EXPECT_EQ(rss_hash_ipv4(0x420995bbu, 0xa18e6450u, 2794, 1766), 0x51ccc178u);
  // 199.92.111.2:14230 -> 65.69.140.83:4739   => 0xc626b0ea
  EXPECT_EQ(rss_hash_ipv4(0xc75c6f02u, 0x41458c53u, 14230, 4739), 0xc626b0eau);
  // 24.19.198.95:12898 -> 12.22.207.184:38024 => 0x5c2b394a
  EXPECT_EQ(rss_hash_ipv4(0x1813c65fu, 0x0c16cfb8u, 12898, 38024), 0x5c2b394au);
}

TEST(ToeplitzTest, DeterministicAndSensitive) {
  const auto h1 = rss_hash_ipv4(0x01020304, 0x05060708, 100, 200);
  EXPECT_EQ(h1, rss_hash_ipv4(0x01020304, 0x05060708, 100, 200));
  EXPECT_NE(h1, rss_hash_ipv4(0x01020304, 0x05060708, 100, 201));
}

TEST(RetaTest, RoundRobinInitialization) {
  RssReta reta(4);
  int counts[4] = {0, 0, 0, 0};
  for (std::uint32_t h = 0; h < RssReta::kSize; ++h) counts[reta.queue_for(h)]++;
  for (int c : counts) EXPECT_EQ(c, static_cast<int>(RssReta::kSize) / 4);
}

TEST(RxRingTest, FifoOrder) {
  sim::Simulation sim;
  RxRing ring(sim, 8);
  for (int i = 0; i < 5; ++i) {
    PacketDesc p;
    p.flow_id = static_cast<std::uint32_t>(i);
    EXPECT_TRUE(ring.push(p));
  }
  PacketDesc out[8];
  const int n = ring.pop_burst(out, 8);
  ASSERT_EQ(n, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i].flow_id, static_cast<std::uint32_t>(i));
  EXPECT_TRUE(ring.empty());
}

TEST(RxRingTest, TailDropWhenFull) {
  sim::Simulation sim;
  RxRing ring(sim, 4);
  PacketDesc p;
  for (int i = 0; i < 6; ++i) ring.push(p);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_received(), 4u);
  EXPECT_EQ(ring.total_dropped(), 2u);
}

TEST(RxRingTest, BurstLimitRespected) {
  sim::Simulation sim;
  RxRing ring(sim, 64);
  PacketDesc p;
  for (int i = 0; i < 50; ++i) ring.push(p);
  PacketDesc out[32];
  EXPECT_EQ(ring.pop_burst(out, 32), 32);
  EXPECT_EQ(ring.pop_burst(out, 32), 18);
  EXPECT_EQ(ring.pop_burst(out, 32), 0);
}

TEST(RxRingTest, WrapAroundKeepsIntegrity) {
  sim::Simulation sim;
  RxRing ring(sim, 4);
  PacketDesc out[4];
  std::uint32_t next = 0, expect = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) {
      PacketDesc p;
      p.flow_id = next++;
      ring.push(p);
    }
    const int n = ring.pop_burst(out, 3);
    for (int i = 0; i < n; ++i) ASSERT_EQ(out[i].flow_id, expect++);
  }
}

TEST(TxRingTest, BatchThresholdDefersFlush) {
  sim::Simulation sim;
  std::vector<Time> tx_times;
  // TxCallback is non-owning: the callable must be a named object that
  // outlives the ring (here, declared before it).
  auto record = [&](const PacketDesc&, Time t) { tx_times.push_back(t); };
  TxRing tx(sim, 4, record);
  PacketDesc p;
  for (int i = 0; i < 3; ++i) tx.send(p);
  EXPECT_TRUE(tx_times.empty());
  EXPECT_EQ(tx.pending(), 3u);
  tx.send(p);  // fourth fills the batch
  EXPECT_EQ(tx_times.size(), 4u);
  EXPECT_EQ(tx.pending(), 0u);
}

TEST(TxRingTest, BatchOfOneTransmitsImmediately) {
  sim::Simulation sim;
  int sent = 0;
  auto record = [&](const PacketDesc&, Time) { ++sent; };
  TxRing tx(sim, 1, record);
  PacketDesc p;
  tx.send(p);
  EXPECT_EQ(sent, 1);
}

TEST(TxRingTest, ExplicitFlushDrainsPending) {
  sim::Simulation sim;
  int sent = 0;
  auto record = [&](const PacketDesc&, Time) { ++sent; };
  TxRing tx(sim, 32, record);
  PacketDesc p;
  tx.send(p);
  tx.send(p);
  tx.flush();
  EXPECT_EQ(sent, 2);
  EXPECT_EQ(tx.total_transmitted(), 2u);
}

// Regression for the edge-triggered arrival notification: push() now
// notifies only on the empty->non-empty transition. A driver-style waiter
// (wait only when the ring is empty, then drain completely) must still see
// every packet, and the wake count must equal the number of edges, not the
// number of packets.
sim::Task draining_waiter(sim::Simulation& sim, RxRing& ring, std::uint64_t& drained,
                          std::uint64_t& wakes, const std::uint64_t target) {
  PacketDesc out[64];
  while (drained < target) {
    if (ring.empty()) {
      co_await ring.arrival_signal().wait();
      ++wakes;
    }
    int n;
    while ((n = ring.pop_burst(out, 64)) > 0) drained += static_cast<std::uint64_t>(n);
  }
  (void)sim;
}

TEST(RxRingTest, EdgeTriggeredNotifyStillDrainsEverything) {
  sim::Simulation sim;
  RxRing ring(sim, 256);
  std::uint64_t drained = 0, wakes = 0;
  constexpr std::uint64_t kBursts = 50;
  constexpr std::uint64_t kPerBurst = 8;  // depth 2..8 pushes must not notify
  sim.spawn(draining_waiter(sim, ring, drained, wakes, kBursts * kPerBurst));
  // One burst every microsecond; the waiter drains the ring in between, so
  // every burst starts from an empty ring: exactly one edge per burst.
  for (std::uint64_t b = 0; b < kBursts; ++b) {
    sim.schedule_at(static_cast<Time>(1000 * (b + 1)), [&ring] {
      for (std::uint64_t i = 0; i < kPerBurst; ++i) {
        PacketDesc p;
        ring.push(p);
      }
    });
  }
  sim.run();
  EXPECT_EQ(drained, kBursts * kPerBurst) << "edge-triggered notify lost packets";
  EXPECT_EQ(wakes, kBursts) << "one wake per empty->non-empty edge, not per packet";
  EXPECT_TRUE(ring.empty());
}

TEST(RxRingTest, NoNotifyWithoutWaiterStillDeliversLater) {
  // Packets arriving while nobody waits must simply sit in the ring; a
  // waiter that checks emptiness before waiting (as every driver does)
  // never blocks on a non-empty ring.
  sim::Simulation sim;
  RxRing ring(sim, 16);
  PacketDesc p;
  ring.push(p);
  ring.push(p);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_FALSE(ring.arrival_signal().has_waiters());
  PacketDesc out[4];
  EXPECT_EQ(ring.pop_burst(out, 4), 2);
}

// rx_burst(group) must be observationally identical to rx() per packet:
// same RSS dispatch, same cap accounting, same drop counters. Exercised on
// both rx_burst branches: device-capped (XL710) and uncapped (X520, the
// path every 10 GbE figure bench feeds).
void expect_rx_burst_matches_rx(PortConfig cfg) {
  sim::Simulation sim_a, sim_b;
  cfg.rx_ring_size = 32;  // force ring-full drops too
  Port a(sim_a, cfg), b(sim_b, cfg);
  sim::Rng rng(11);
  std::vector<PacketDesc> group;
  Time t = 0;
  for (int g = 0; g < 200; ++g) {
    group.clear();
    const int n = 1 + static_cast<int>(rng.uniform_u64(32));
    for (int i = 0; i < n; ++i) {
      PacketDesc p;
      p.arrival = t;
      t += static_cast<Time>(rng.uniform_u64(40));  // some below the cap gap
      p.rss_hash = static_cast<std::uint32_t>(rng.next_u64());
      group.push_back(p);
    }
    for (const auto& p : group) a.rx(p);
    b.rx_burst(group.data(), static_cast<int>(group.size()));
  }
  EXPECT_EQ(a.total_rx(), b.total_rx());
  EXPECT_EQ(a.total_dropped(), b.total_dropped());
  EXPECT_EQ(a.device_cap_drops(), b.device_cap_drops());
  for (int q = 0; q < cfg.n_rx_queues; ++q) {
    EXPECT_EQ(a.rx_queue(q).total_received(), b.rx_queue(q).total_received()) << "queue " << q;
    EXPECT_EQ(a.rx_queue(q).size(), b.rx_queue(q).size()) << "queue " << q;
  }
}

TEST(PortTest, RxBurstMatchesPerPacketRxCapped) { expect_rx_burst_matches_rx(xl710_config(4)); }

TEST(PortTest, RxBurstMatchesPerPacketRxUncapped) { expect_rx_burst_matches_rx(x520_config(4)); }

TEST(PortTest, RssSpreadsFlowsAcrossQueues) {
  sim::Simulation sim;
  PortConfig cfg = x520_config(4);
  cfg.rx_ring_size = 4096;  // nobody drains in this test
  Port port(sim, cfg);
  sim::Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    PacketDesc p;
    p.rss_hash = static_cast<std::uint32_t>(rng.next_u64());
    port.rx(p);
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(port.rx_queue(q).total_received(), 800u) << "queue " << q;
  }
  EXPECT_EQ(port.total_rx(), 4000u);
}

TEST(PortTest, SameFlowAlwaysSameQueue) {
  sim::Simulation sim;
  Port port(sim, x520_config(3));
  PacketDesc p;
  p.rss_hash = 0xdeadbeef;
  for (int i = 0; i < 100; ++i) port.rx(p);
  int nonzero_queues = 0;
  for (int q = 0; q < 3; ++q) {
    if (port.rx_queue(q).total_received() > 0) ++nonzero_queues;
  }
  EXPECT_EQ(nonzero_queues, 1);
}

TEST(PortTest, DeviceCapDropsAboveMaxPps) {
  sim::Simulation sim;
  PortConfig cfg = xl710_config(1);
  Port port(sim, cfg);
  // Offer 74 Mpps (13.5 ns gap) for 1 ms: the 37 Mpps cap must drop ~half.
  const Time gap = 13;
  Time t = 0;
  const int n = 74000;
  for (int i = 0; i < n; ++i) {
    PacketDesc p;
    p.arrival = t;
    t += gap;
    port.rx(p);
  }
  const double accept_ratio =
      static_cast<double>(port.total_rx()) / static_cast<double>(n);
  EXPECT_NEAR(accept_ratio, 0.5, 0.05);
  EXPECT_GT(port.device_cap_drops(), 0u);
}

TEST(PortTest, X520HasNoDeviceCap) {
  sim::Simulation sim;
  Port port(sim, x520_config(1));
  PacketDesc p;
  p.arrival = 0;
  for (int i = 0; i < 100; ++i) port.rx(p);  // same instant: fine, ring drops only
  EXPECT_EQ(port.device_cap_drops(), 0u);
}

TEST(PortTest, TotalDroppedAggregatesRings) {
  sim::Simulation sim;
  PortConfig cfg = x520_config(1);
  cfg.rx_ring_size = 4;
  Port port(sim, cfg);
  PacketDesc p;
  for (int i = 0; i < 10; ++i) port.rx(p);
  EXPECT_EQ(port.total_dropped(), 6u);
}

}  // namespace
}  // namespace metro::nic
