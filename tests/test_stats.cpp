// Statistics substrate: Summary, Histogram, Ewma, Table.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/ewma.hpp"
#include "sim/rng.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace metro {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  stats::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  stats::Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, MergeEqualsCombinedStream) {
  sim::Rng rng(3);
  stats::Summary all, a, b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmptySides) {
  stats::Summary a, b;
  a.add(1.0);
  a.add(3.0);
  stats::Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SummaryTest, NumericallyStableForLargeOffsets) {
  stats::Summary s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), 1e9, 1e-3);
  EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(HistogramTest, PercentilesOfUniformRamp) {
  stats::Histogram h(1.0, 100.0);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.05), 5.0, 1.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(0.25), 25.0, 1.0);
}

TEST(HistogramTest, BoxplotFields) {
  stats::Histogram h(0.1, 100.0);
  sim::Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.normal(50.0, 5.0));
  const auto b = h.boxplot();
  EXPECT_EQ(b.count, 100000u);
  EXPECT_NEAR(b.median, 50.0, 0.3);
  EXPECT_NEAR(b.mean, 50.0, 0.2);
  EXPECT_NEAR(b.p75 - b.p25, 2.0 * 0.6745 * 5.0, 0.3);  // IQR of a normal
  EXPECT_NEAR(b.stddev, 5.0, 0.2);
  EXPECT_LT(b.whisker_lo, b.p25);
  EXPECT_GT(b.whisker_hi, b.p75);
}

TEST(HistogramTest, OverflowCountedNotBinned) {
  stats::Histogram h(1.0, 10.0);
  h.add(5.0);
  h.add(500.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.summary().max(), 500.0);  // exact extremes kept
}

TEST(HistogramTest, DensityIntegratesToOne) {
  stats::Histogram h(0.5, 50.0);
  sim::Rng rng(9);
  for (int i = 0; i < 50000; ++i) h.add(rng.uniform(0.0, 40.0));
  const auto d = h.density();
  double integral = 0.0;
  for (const double v : d) integral += v * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, ResetClearsEverything) {
  stats::Histogram h(1.0, 10.0);
  h.add(3.0);
  h.add(100.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramTest, NegativeValuesClampToFirstBin) {
  stats::Histogram h(1.0, 10.0);
  h.add(-5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
}

// Property: filling N shards with disjoint sub-streams and merging them
// must reproduce the single-pass fill bin for bin — the guarantee the
// sweep runner's shard merge rests on. (Pairs with
// SummaryTest.MergeEqualsCombinedStream: the embedded Summary merges by
// the parallel-moments rule, exact for count/min/max/sum, near-exact for
// mean/variance.)
TEST(HistogramTest, MergeOfSplitShardsBitIdenticalToSinglePass) {
  sim::Rng rng(17);
  stats::Histogram all(0.5, 50.0);
  constexpr int kShards = 4;
  std::vector<stats::Histogram> shards(kShards, stats::Histogram(0.5, 50.0));
  for (int i = 0; i < 40000; ++i) {
    // Mixture with mass beyond max_value so the overflow bin is exercised.
    const double x = (i % 5 == 0) ? rng.uniform(45.0, 80.0) : rng.normal(20.0, 8.0);
    all.add(x);
    shards[static_cast<std::size_t>(i % kShards)].add(x);
  }
  stats::Histogram merged = shards[0];
  for (int s = 1; s < kShards; ++s) merged.merge(shards[static_cast<std::size_t>(s)]);

  ASSERT_EQ(merged.n_bins(), all.n_bins());
  for (std::size_t b = 0; b < all.n_bins(); ++b) {
    ASSERT_EQ(merged.bin_count(b), all.bin_count(b)) << "bin " << b;
  }
  EXPECT_EQ(merged.overflow(), all.overflow());
  EXPECT_EQ(merged.count(), all.count());
  // Exact side-summary fields (order-independent ones are bit-identical).
  EXPECT_DOUBLE_EQ(merged.summary().min(), all.summary().min());
  EXPECT_DOUBLE_EQ(merged.summary().max(), all.summary().max());
  // Moments via the parallel rule: equal to tight tolerance.
  EXPECT_NEAR(merged.summary().mean(), all.summary().mean(), 1e-9);
  EXPECT_NEAR(merged.summary().variance(), all.summary().variance(), 1e-6);
}

TEST(HistogramTest, MergeEmptyAndSelfConsistency) {
  stats::Histogram a(1.0, 10.0), empty(1.0, 10.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.bin_count(3), 1u);
}

TEST(HistogramTest, MergeRejectsGeometryMismatch) {
  stats::Histogram a(1.0, 10.0);
  EXPECT_THROW(a.merge(stats::Histogram(2.0, 10.0)), std::invalid_argument);  // width
  EXPECT_THROW(a.merge(stats::Histogram(1.0, 20.0)), std::invalid_argument);  // bin count
  stats::Histogram same(1.0, 10.0);
  a.merge(same);  // identical geometry is fine
}

TEST(EwmaTest, FirstSamplePrimes) {
  core::Ewma e(0.1);
  e.update(5.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);  // not 0.9*0 + 0.1*5
}

TEST(EwmaTest, ConvergesToConstantInput) {
  core::Ewma e(0.2, 0.0);
  for (int i = 0; i < 200; ++i) e.update(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(EwmaTest, StepResponseTimeConstant) {
  core::Ewma e(0.1);
  e.update(0.0);
  int steps = 0;
  while (e.value() < 0.63 && steps < 1000) {
    e.update(1.0);
    ++steps;
  }
  // ~1/alpha samples to reach 1 - 1/e of a unit step.
  EXPECT_NEAR(steps, 10, 3);
}

TEST(EwmaTest, ResetUnprimes) {
  core::Ewma e(0.5);
  e.update(10.0);
  e.reset();
  e.update(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(TableTest, AlignedOutputContainsCells) {
  stats::Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  stats::Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(stats::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(stats::Table::num(3.0, 0), "3");
}

}  // namespace
}  // namespace metro
