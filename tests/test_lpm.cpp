// DIR-24-8 LPM table: longest-prefix semantics, tbl8 management, deletion.
#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "net/lpm.hpp"
#include "sim/rng.hpp"

namespace metro::net {
namespace {

TEST(LpmTest, EmptyTableMisses) {
  LpmTable lpm;
  EXPECT_FALSE(lpm.lookup(ipv4_addr(10, 0, 0, 1)).has_value());
}

TEST(LpmTest, SlashSixteenCoversItsRange) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 1, 0, 0), 16, 7));
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 1, 0, 1)).value(), 7);
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 1, 255, 255)).value(), 7);
  EXPECT_FALSE(lpm.lookup(ipv4_addr(10, 2, 0, 1)).has_value());
}

TEST(LpmTest, LongestPrefixWinsAtTbl24Level) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 8, 1));
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 1, 0, 0), 16, 2));
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 1, 2, 0), 24, 3));
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 9, 9, 9)).value(), 1);
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 1, 9, 9)).value(), 2);
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 1, 2, 9)).value(), 3);
}

TEST(LpmTest, InsertionOrderDoesNotMatter) {
  LpmTable a, b;
  a.add(ipv4_addr(10, 0, 0, 0), 8, 1);
  a.add(ipv4_addr(10, 1, 0, 0), 16, 2);
  b.add(ipv4_addr(10, 1, 0, 0), 16, 2);
  b.add(ipv4_addr(10, 0, 0, 0), 8, 1);
  for (const auto ip : {ipv4_addr(10, 0, 0, 1), ipv4_addr(10, 1, 0, 1), ipv4_addr(10, 1, 2, 3)}) {
    EXPECT_EQ(a.lookup(ip), b.lookup(ip));
  }
}

TEST(LpmTest, DeepPrefixesUseTbl8) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(192, 168, 1, 128), 25, 10));
  ASSERT_TRUE(lpm.add(ipv4_addr(192, 168, 1, 0), 25, 11));
  EXPECT_EQ(lpm.tbl8_groups_in_use(), 1u);
  EXPECT_EQ(lpm.lookup(ipv4_addr(192, 168, 1, 200)).value(), 10);
  EXPECT_EQ(lpm.lookup(ipv4_addr(192, 168, 1, 5)).value(), 11);
  EXPECT_FALSE(lpm.lookup(ipv4_addr(192, 168, 2, 5)).has_value());
}

TEST(LpmTest, HostRoute) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(8, 8, 8, 8), 32, 42));
  EXPECT_EQ(lpm.lookup(ipv4_addr(8, 8, 8, 8)).value(), 42);
  EXPECT_FALSE(lpm.lookup(ipv4_addr(8, 8, 8, 9)).has_value());
}

TEST(LpmTest, DeepPrefixInheritsShallowBackground) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 8, 1));     // background
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 64), 26, 2));   // carve-out
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 0, 70)).value(), 2);
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 0, 1)).value(), 1);   // same tbl8, background
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 1, 1)).value(), 1);   // other tbl24 slot
}

TEST(LpmTest, ShallowAddRepaintsTbl8Background) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 64), 26, 2));  // tbl8 first
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 8, 1));    // then the cover
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 0, 70)).value(), 2);  // carve-out survives
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 0, 1)).value(), 1);   // background painted
}

TEST(LpmTest, UpdateExistingRuleChangesNextHop) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 16, 1));
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 16, 9));
  EXPECT_EQ(lpm.rule_count(), 1u);
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 1, 1)).value(), 9);
}

TEST(LpmTest, RemoveRestoresCoveringRule) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 8, 1));
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 1, 0, 0), 16, 2));
  ASSERT_TRUE(lpm.remove(ipv4_addr(10, 1, 0, 0), 16));
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 1, 0, 1)).value(), 1);  // backfilled
}

TEST(LpmTest, RemoveWithoutCoverInvalidates) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 1, 0, 0), 16, 2));
  ASSERT_TRUE(lpm.remove(ipv4_addr(10, 1, 0, 0), 16));
  EXPECT_FALSE(lpm.lookup(ipv4_addr(10, 1, 0, 1)).has_value());
  EXPECT_EQ(lpm.rule_count(), 0u);
}

TEST(LpmTest, RemoveNonexistentFails) {
  LpmTable lpm;
  EXPECT_FALSE(lpm.remove(ipv4_addr(10, 0, 0, 0), 16));
}

TEST(LpmTest, RemoveDeepPrefixCollapsesTbl8) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 0), 16, 1));
  ASSERT_TRUE(lpm.add(ipv4_addr(10, 0, 0, 128), 25, 2));
  EXPECT_EQ(lpm.tbl8_groups_in_use(), 1u);
  ASSERT_TRUE(lpm.remove(ipv4_addr(10, 0, 0, 128), 25));
  EXPECT_EQ(lpm.tbl8_groups_in_use(), 0u);  // group collapsed back
  EXPECT_EQ(lpm.lookup(ipv4_addr(10, 0, 0, 200)).value(), 1);
}

TEST(LpmTest, InvalidDepthRejected) {
  LpmTable lpm;
  EXPECT_FALSE(lpm.add(ipv4_addr(10, 0, 0, 0), 0, 1));
  EXPECT_FALSE(lpm.add(ipv4_addr(10, 0, 0, 0), 33, 1));
  EXPECT_FALSE(lpm.remove(ipv4_addr(10, 0, 0, 0), 0));
}

TEST(LpmTest, Tbl8ExhaustionRollsBack)  {
  LpmTable lpm(2);  // only two tbl8 groups
  EXPECT_TRUE(lpm.add(ipv4_addr(1, 0, 0, 0), 25, 1));
  EXPECT_TRUE(lpm.add(ipv4_addr(2, 0, 0, 0), 25, 2));
  EXPECT_FALSE(lpm.add(ipv4_addr(3, 0, 0, 0), 25, 3));  // exhausted
  EXPECT_EQ(lpm.rule_count(), 2u);  // failed rule not retained
  EXPECT_TRUE(lpm.add(ipv4_addr(3, 0, 0, 0), 24, 3));   // <= /24 still fine
}

TEST(LpmTest, DefaultRouteMatchesEverything) {
  LpmTable lpm;
  ASSERT_TRUE(lpm.add(0, 1, 5));  // 0.0.0.0/1 covers half the space
  ASSERT_TRUE(lpm.add(ipv4_addr(128, 0, 0, 0), 1, 6));
  EXPECT_EQ(lpm.lookup(ipv4_addr(1, 2, 3, 4)).value(), 5);
  EXPECT_EQ(lpm.lookup(ipv4_addr(200, 2, 3, 4)).value(), 6);
}

TEST(LpmTest, RandomizedAgainstReferenceImplementation) {
  // Property test: LPM lookups must equal a brute-force scan of the rules.
  sim::Rng rng(123);
  LpmTable lpm;
  struct Rule {
    std::uint32_t prefix;
    int depth;
    std::uint16_t hop;
  };
  std::vector<Rule> rules;
  for (int i = 0; i < 300; ++i) {
    const int depth = static_cast<int>(rng.uniform_int(1, 28));
    // Confine to 10.0.0.0/8 + depth mask so prefixes overlap heavily.
    const auto ip = ipv4_addr(10, static_cast<std::uint8_t>(rng.uniform_u64(4)),
                              static_cast<std::uint8_t>(rng.uniform_u64(4)),
                              static_cast<std::uint8_t>(rng.uniform_u64(256)));
    const std::uint32_t mask = depth == 0 ? 0 : ~std::uint32_t{0} << (32 - depth);
    const auto hop = static_cast<std::uint16_t>(i);
    if (lpm.add(ip & mask, depth, hop)) {
      // Replace any previous identical (prefix, depth).
      std::erase_if(rules, [&](const Rule& r) { return r.prefix == (ip & mask) && r.depth == depth; });
      rules.push_back(Rule{ip & mask, depth, hop});
    }
  }
  for (int i = 0; i < 20000; ++i) {
    const auto probe = ipv4_addr(10, static_cast<std::uint8_t>(rng.uniform_u64(4)),
                                 static_cast<std::uint8_t>(rng.uniform_u64(4)),
                                 static_cast<std::uint8_t>(rng.uniform_u64(256)));
    // Brute force: longest matching rule wins.
    int best_depth = -1;
    std::uint16_t best_hop = 0;
    for (const auto& r : rules) {
      const std::uint32_t mask = ~std::uint32_t{0} << (32 - r.depth);
      if ((probe & mask) == r.prefix && r.depth > best_depth) {
        best_depth = r.depth;
        best_hop = r.hop;
      }
    }
    const auto got = lpm.lookup(probe);
    if (best_depth < 0) {
      ASSERT_FALSE(got.has_value()) << "probe " << probe;
    } else {
      ASSERT_TRUE(got.has_value()) << "probe " << probe;
      ASSERT_EQ(*got, best_hop) << "probe " << probe;
    }
  }
}

}  // namespace
}  // namespace metro::net
