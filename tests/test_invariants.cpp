// Property sweep: system invariants that must hold at every operating
// point of the (M, V-bar, rate, arrival-process) grid.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/experiment.hpp"

namespace metro {
namespace {

using Params = std::tuple<int, double, double, bool>;  // M, V-bar us, Mpps, poisson

class InvariantSweep : public ::testing::TestWithParam<Params> {};

TEST_P(InvariantSweep, HoldAtEveryOperatingPoint) {
  const auto [m, vbar, mpps, poisson] = GetParam();

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.met.n_threads = m;
  cfg.n_cores = std::max(3, m);
  cfg.met.target_vacation = sim::from_micros(vbar);
  cfg.workload.rate_mpps = mpps;
  cfg.workload.poisson = poisson;
  cfg.warmup = 80 * sim::kMillisecond;
  cfg.measure = 150 * sim::kMillisecond;
  const auto r = apps::run_experiment(cfg);

  // Load estimate is a probability.
  EXPECT_GE(r.rho, 0.0);
  EXPECT_LE(r.rho, 1.0);

  // CPU usage is positive (threads always wake periodically) and bounded
  // by the thread count.
  EXPECT_GT(r.cpu_percent, 0.0);
  EXPECT_LE(r.cpu_percent, 100.0 * m + 1.0);

  // Throughput can never exceed the offer; loss is a fraction.
  EXPECT_LE(r.throughput_mpps, mpps * 1.02 + 0.01);
  EXPECT_GE(r.loss_permille, 0.0);
  EXPECT_LE(r.loss_permille, 1000.0);

  // Vacation periods are positive and at least the sleep floor; the
  // adaptive rule keeps TS within [V-bar, M * V-bar] (eq. 13 envelope).
  EXPECT_GT(r.vacation_us.count(), 0u);
  EXPECT_GT(r.vacation_us.min(), 0.0);
  EXPECT_GE(r.ts_us, vbar * 0.99);
  EXPECT_LE(r.ts_us, vbar * m * 1.01);

  // Latency includes the fixed path and orders correctly.
  EXPECT_GE(r.latency_us.whisker_lo, sim::to_micros(sim::calib::kFixedPathLatency) * 0.99);
  EXPECT_LE(r.latency_us.p25, r.latency_us.median);
  EXPECT_LE(r.latency_us.median, r.latency_us.p75);

  // Busy-try accounting: failures are a subset of tries.
  EXPECT_GE(r.busy_tries_pct, 0.0);
  EXPECT_LE(r.busy_tries_pct, 100.0);

  // N_V consistency (Little): packets per vacation ~= rate * mean V —
  // valid only while the backlog fits the ring (beyond that N_V saturates
  // at the ring size and the surplus shows up as loss, cf. Table I).
  const double expected_nv = mpps * r.vacation_us.mean();
  if (mpps > 1.0 && expected_nv < sim::calib::kX520DefaultRingSize / 2.0) {
    EXPECT_NEAR(r.nv.mean(), expected_nv, expected_nv * 0.35 + 1.0);
  } else if (expected_nv >= sim::calib::kX520DefaultRingSize) {
    EXPECT_LE(r.nv.mean(), sim::calib::kX520DefaultRingSize + 1.0);  // saturated
    EXPECT_GT(r.loss_permille, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantSweep,
    ::testing::Combine(::testing::Values(2, 3, 5),            // M
                       ::testing::Values(5.0, 20.0),          // V-bar (us)
                       ::testing::Values(1.0, 7.44, 14.88),   // rate (Mpps)
                       ::testing::Values(false, true)),       // CBR / Poisson
    [](const ::testing::TestParamInfo<Params>& info) {
      return "M" + std::to_string(std::get<0>(info.param)) + "_V" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) + "_R" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
             (std::get<3>(info.param) ? "_poisson" : "_cbr");
    });

class MultiqueueInvariantSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiqueueInvariantSweep, QueueAccountingConsistent) {
  const auto [queues, threads] = GetParam();

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = queues;
  cfg.n_cores = threads;
  cfg.met.n_threads = threads;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 25.0;
  cfg.workload.n_flows = 4096;
  cfg.warmup = 80 * sim::kMillisecond;
  cfg.measure = 150 * sim::kMillisecond;
  const auto r = apps::run_experiment(cfg);

  ASSERT_EQ(r.queues.size(), static_cast<std::size_t>(queues));
  std::uint64_t total_tries = 0;
  for (const auto& q : r.queues) {
    EXPECT_GT(q.total_tries, 0u);
    EXPECT_GE(q.rho, 0.0);
    EXPECT_LE(q.rho, 1.0);
    total_tries += q.total_tries;
  }
  EXPECT_EQ(total_tries, r.wakeups);
  EXPECT_NEAR(r.throughput_mpps, 25.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Grid, MultiqueueInvariantSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),   // queues
                                            ::testing::Values(4, 6, 8)),  // threads
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
                           return "Q" + std::to_string(std::get<0>(info.param)) + "_M" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace metro
