// Packet substrate: byte order, headers, checksums, packet buffer, mempool,
// flow extraction.
#include <gtest/gtest.h>

#include <cstring>

#include "net/byteorder.hpp"
#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/mempool.hpp"
#include "net/packet.hpp"

namespace metro::net {
namespace {

TEST(ByteOrderTest, Swaps) {
  EXPECT_EQ(bswap16(0x1234), 0x3412);
  EXPECT_EQ(bswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(be16_to_host(host_to_be16(0xabcd)), 0xabcd);
  EXPECT_EQ(be32_to_host(host_to_be32(0xdeadbeefu)), 0xdeadbeefu);
}

TEST(ChecksumTest, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 §3: 0x0001 f203 f4f5 f6f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // One's-complement sum is 0xddf2; checksum is its complement.
  EXPECT_EQ(internet_checksum(data, sizeof(data)), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0xab};
  EXPECT_EQ(internet_checksum(data, 1), static_cast<std::uint16_t>(~0xab00 & 0xffff));
}

TEST(ChecksumTest, Ipv4HeaderRoundTrip) {
  Ipv4Header ip{};
  ip.version_ihl = 0x45;
  ip.total_length = host_to_be16(60);
  ip.ttl = 64;
  ip.protocol = kIpProtoUdp;
  ip.src = host_to_be32(ipv4_addr(192, 168, 0, 1));
  ip.dst = host_to_be32(ipv4_addr(10, 0, 0, 1));
  ipv4_set_checksum(ip);
  EXPECT_TRUE(ipv4_checksum_ok(ip));
  ip.ttl = 63;  // corrupt
  EXPECT_FALSE(ipv4_checksum_ok(ip));
}

TEST(ChecksumTest, IncrementalUpdateMatchesRecompute) {
  Ipv4Header ip{};
  ip.version_ihl = 0x45;
  ip.total_length = host_to_be16(60);
  ip.ttl = 64;
  ip.protocol = kIpProtoUdp;
  ip.src = host_to_be32(ipv4_addr(1, 2, 3, 4));
  ip.dst = host_to_be32(ipv4_addr(5, 6, 7, 8));
  ipv4_set_checksum(ip);

  // Decrement TTL via RFC 1624 on the shared ttl/protocol word.
  const std::uint16_t old_word =
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(ip.ttl) << 8) | ip.protocol);
  ip.ttl = 63;
  const std::uint16_t new_word =
      static_cast<std::uint16_t>((static_cast<std::uint16_t>(ip.ttl) << 8) | ip.protocol);
  ip.checksum = host_to_be16(checksum_update16(be16_to_host(ip.checksum), old_word, new_word));
  EXPECT_TRUE(ipv4_checksum_ok(ip));
}

TEST(ChecksumTest, IncrementalUpdateManyValues) {
  for (std::uint16_t oldv = 0; oldv < 64; ++oldv) {
    std::uint8_t buf[4] = {0x12, 0x34, static_cast<std::uint8_t>(oldv >> 8),
                           static_cast<std::uint8_t>(oldv)};
    const std::uint16_t c_old = internet_checksum(buf, 4);
    const std::uint16_t newv = static_cast<std::uint16_t>(oldv * 7 + 123);
    buf[2] = static_cast<std::uint8_t>(newv >> 8);
    buf[3] = static_cast<std::uint8_t>(newv);
    const std::uint16_t c_new = internet_checksum(buf, 4);
    EXPECT_EQ(checksum_update16(c_old, oldv, newv), c_new);
  }
}

TEST(PacketTest, AssignAndAccess) {
  Packet p;
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  p.assign(payload, sizeof(payload));
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(std::memcmp(p.data(), payload, 5), 0);
  EXPECT_EQ(p.headroom(), Packet::kHeadroom);
}

TEST(PacketTest, PrependAndAdjRoundTrip) {
  Packet p;
  p.fill(0xaa, 100);
  auto* hdr = p.prepend(20);
  std::memset(hdr, 0xbb, 20);
  EXPECT_EQ(p.size(), 120u);
  EXPECT_EQ(p.data()[0], 0xbb);
  p.adj(20);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_EQ(p.data()[0], 0xaa);
}

TEST(PacketTest, AppendAndTrim) {
  Packet p;
  p.fill(0x11, 10);
  auto* tail = p.append(6);
  std::memset(tail, 0x22, 6);
  EXPECT_EQ(p.size(), 16u);
  EXPECT_EQ(p.data()[15], 0x22);
  p.trim(6);
  EXPECT_EQ(p.size(), 10u);
}

TEST(PacketTest, ResetRestoresHeadroom) {
  Packet p;
  p.fill(1, 50);
  p.prepend(10);
  p.reset();
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.headroom(), Packet::kHeadroom);
}

TEST(MempoolTest, AllocFreeCycle) {
  Mempool pool(4);
  EXPECT_EQ(pool.available(), 4u);
  Packet* a = pool.alloc();
  Packet* b = pool.alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_use(), 2u);
  pool.free(a);
  pool.free(b);
  EXPECT_EQ(pool.available(), 4u);
}

TEST(MempoolTest, ExhaustionReturnsNull) {
  Mempool pool(2);
  Packet* a = pool.alloc();
  Packet* b = pool.alloc();
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  pool.free(a);
  EXPECT_NE(pool.alloc(), nullptr);
}

TEST(MempoolTest, FreeResetsBuffer) {
  Mempool pool(1);
  Packet* p = pool.alloc();
  p->fill(7, 99);
  pool.free(p);
  Packet* again = pool.alloc();
  EXPECT_EQ(again, p);
  EXPECT_EQ(again->size(), 0u);
}

TEST(FlowTest, ExtractFiveTupleFromUdp) {
  Packet p;
  p.fill(0, 64);
  auto* eth = p.at<EthernetHeader>(0);
  eth->ether_type = host_to_be16(kEtherTypeIpv4);
  auto* ip = p.at<Ipv4Header>(sizeof(EthernetHeader));
  ip->version_ihl = 0x45;
  // The hardened classifier validates total_length; a zeroed field is a
  // malformed frame, so hand-built packets must fill it in.
  ip->total_length = host_to_be16(50);  // 64 B frame minus the Ethernet header
  ip->protocol = kIpProtoUdp;
  ip->src = host_to_be32(ipv4_addr(1, 1, 1, 1));
  ip->dst = host_to_be32(ipv4_addr(2, 2, 2, 2));
  auto* udp = p.at<UdpHeader>(sizeof(EthernetHeader) + sizeof(Ipv4Header));
  udp->src_port = host_to_be16(1111);
  udp->dst_port = host_to_be16(2222);

  FiveTuple t;
  ASSERT_TRUE(extract_five_tuple(p, t));
  EXPECT_EQ(t.src_ip, ipv4_addr(1, 1, 1, 1));
  EXPECT_EQ(t.dst_ip, ipv4_addr(2, 2, 2, 2));
  EXPECT_EQ(t.src_port, 1111);
  EXPECT_EQ(t.dst_port, 2222);
  EXPECT_EQ(t.protocol, kIpProtoUdp);
}

TEST(FlowTest, NonIpv4Rejected) {
  Packet p;
  p.fill(0, 64);
  p.at<EthernetHeader>(0)->ether_type = host_to_be16(0x0806);  // ARP
  FiveTuple t;
  EXPECT_FALSE(extract_five_tuple(p, t));
}

TEST(FlowTest, NonL4ProtocolHasZeroPorts) {
  Packet p;
  p.fill(0, 64);
  p.at<EthernetHeader>(0)->ether_type = host_to_be16(kEtherTypeIpv4);
  auto* ip = p.at<Ipv4Header>(sizeof(EthernetHeader));
  ip->version_ihl = 0x45;
  ip->total_length = host_to_be16(50);
  ip->protocol = 1;  // ICMP
  FiveTuple t;
  ASSERT_TRUE(extract_five_tuple(p, t));
  EXPECT_EQ(t.src_port, 0);
  EXPECT_EQ(t.dst_port, 0);
}

TEST(FlowTest, HashDistinguishesTuples) {
  FiveTuple a{1, 2, 3, 4, 17};
  FiveTuple b = a;
  EXPECT_EQ(flow_hash(a), flow_hash(b));
  b.src_port = 5;
  EXPECT_NE(flow_hash(a), flow_hash(b));
  b = a;
  b.protocol = 6;
  EXPECT_NE(flow_hash(a), flow_hash(b));
}

}  // namespace
}  // namespace metro::net
