// IPsec gateway: ESP tunnel encap/decap, integrity, anti-replay.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/ipsec.hpp"
#include "apps/l3fwd.hpp"

namespace metro::apps {
namespace {

using namespace metro::net;

SecurityAssociation test_sa() {
  SecurityAssociation sa;
  sa.spi = 0xabcd0001;
  for (std::size_t i = 0; i < sa.cipher_key.size(); ++i) {
    sa.cipher_key[i] = static_cast<std::uint8_t>(i);
  }
  for (std::size_t i = 0; i < sa.auth_key.size(); ++i) {
    sa.auth_key[i] = static_cast<std::uint8_t>(0xa0 + i);
  }
  sa.tunnel_src = ipv4_addr(203, 0, 113, 1);
  sa.tunnel_dst = ipv4_addr(203, 0, 113, 2);
  return sa;
}

FiveTuple inner_tuple() {
  return FiveTuple{ipv4_addr(192, 168, 1, 5), ipv4_addr(192, 168, 2, 9), 5555, 6666, kIpProtoUdp};
}

class IpsecRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IpsecRoundTripTest, EncapThenDecapRestoresPacket) {
  IpsecGateway egress(test_sa());
  IpsecGateway ingress(test_sa());

  Packet pkt;
  build_udp_packet(pkt, inner_tuple(), GetParam());
  std::vector<std::uint8_t> original(pkt.data(), pkt.data() + pkt.size());

  ASSERT_TRUE(egress.encap(pkt));
  // The tunnel packet must itself be a valid ESP-in-IPv4 frame.
  const auto* outer_ip = pkt.at<Ipv4Header>(sizeof(EthernetHeader));
  EXPECT_EQ(outer_ip->protocol, kIpProtoEsp);
  EXPECT_TRUE(ipv4_checksum_ok(*outer_ip));
  EXPECT_EQ(be32_to_host(outer_ip->src), test_sa().tunnel_src);
  // Ciphertext must hide the inner payload.
  EXPECT_GT(pkt.size(), original.size());

  ASSERT_TRUE(ingress.decap(pkt));
  ASSERT_EQ(pkt.size(), original.size());
  EXPECT_EQ(std::memcmp(pkt.data(), original.data(), original.size()), 0);
  EXPECT_EQ(ingress.stats().decapsulated, 1u);
}

INSTANTIATE_TEST_SUITE_P(PacketSizes, IpsecRoundTripTest,
                         ::testing::Values(64u, 65u, 80u, 128u, 256u, 512u, 1024u, 1500u));

TEST(IpsecTest, SequenceNumbersIncrease) {
  IpsecGateway gw(test_sa());
  for (int i = 1; i <= 5; ++i) {
    Packet pkt;
    build_udp_packet(pkt, inner_tuple());
    ASSERT_TRUE(gw.encap(pkt));
    EXPECT_EQ(gw.tx_sequence(), static_cast<std::uint32_t>(i));
  }
}

TEST(IpsecTest, TamperedCiphertextFailsAuth) {
  IpsecGateway egress(test_sa());
  IpsecGateway ingress(test_sa());
  Packet pkt;
  build_udp_packet(pkt, inner_tuple());
  ASSERT_TRUE(egress.encap(pkt));
  // Flip one ciphertext bit (after outer headers + ESP + IV).
  pkt.data()[sizeof(EthernetHeader) + sizeof(Ipv4Header) + 8 + 16 + 3] ^= 0x01;
  EXPECT_FALSE(ingress.decap(pkt));
  EXPECT_EQ(ingress.stats().auth_failures, 1u);
}

TEST(IpsecTest, WrongKeyFailsAuth) {
  IpsecGateway egress(test_sa());
  auto sa2 = test_sa();
  sa2.auth_key[0] ^= 0xff;
  IpsecGateway ingress(sa2);
  Packet pkt;
  build_udp_packet(pkt, inner_tuple());
  ASSERT_TRUE(egress.encap(pkt));
  EXPECT_FALSE(ingress.decap(pkt));
  EXPECT_EQ(ingress.stats().auth_failures, 1u);
}

TEST(IpsecTest, WrongSpiRejected) {
  IpsecGateway egress(test_sa());
  auto sa2 = test_sa();
  sa2.spi = 0x9999;
  IpsecGateway ingress(sa2);  // same keys, different SPI
  sa2.spi = test_sa().spi;
  Packet pkt;
  build_udp_packet(pkt, inner_tuple());
  ASSERT_TRUE(egress.encap(pkt));
  EXPECT_FALSE(ingress.decap(pkt));
}

TEST(IpsecTest, ReplayedPacketDropped) {
  IpsecGateway egress(test_sa());
  IpsecGateway ingress(test_sa());
  Packet pkt;
  build_udp_packet(pkt, inner_tuple());
  ASSERT_TRUE(egress.encap(pkt));
  // Keep a copy of the tunnel packet and present it twice.
  Packet replay;
  replay.assign(pkt.data(), pkt.size());
  ASSERT_TRUE(ingress.decap(pkt));
  EXPECT_FALSE(ingress.decap(replay));
  EXPECT_EQ(ingress.stats().replay_drops, 1u);
}

TEST(IpsecTest, OutOfOrderWithinWindowAccepted) {
  IpsecGateway egress(test_sa());
  IpsecGateway ingress(test_sa());
  std::vector<Packet> tunnel(3);
  for (auto& t : tunnel) {
    Packet pkt;
    build_udp_packet(pkt, inner_tuple());
    ASSERT_TRUE(egress.encap(pkt));
    t.assign(pkt.data(), pkt.size());
  }
  // Deliver 3, then 1, then 2: all within the 64-packet window.
  EXPECT_TRUE(ingress.decap(tunnel[2]));
  EXPECT_TRUE(ingress.decap(tunnel[0]));
  EXPECT_TRUE(ingress.decap(tunnel[1]));
  EXPECT_EQ(ingress.stats().decapsulated, 3u);
}

TEST(IpsecTest, TruncatedPacketRejected) {
  IpsecGateway ingress(test_sa());
  Packet pkt;
  pkt.fill(0, 40);
  EXPECT_FALSE(ingress.decap(pkt));
  EXPECT_EQ(ingress.stats().malformed, 1u);
}

TEST(IpsecTest, EncapRejectsNonIpv4) {
  IpsecGateway gw(test_sa());
  Packet pkt;
  build_udp_packet(pkt, inner_tuple());
  pkt.at<EthernetHeader>(0)->ether_type = host_to_be16(0x0806);
  EXPECT_FALSE(gw.encap(pkt));
}

TEST(IpsecTest, CiphertextLengthIsBlockAligned) {
  IpsecGateway gw(test_sa());
  for (const std::size_t size : {64u, 70u, 99u, 200u}) {
    Packet pkt;
    build_udp_packet(pkt, inner_tuple(), size);
    ASSERT_TRUE(gw.encap(pkt));
    // total = eth + outer ip + esp(8) + iv(16) + ciphertext + tag(12)
    const std::size_t ct = pkt.size() - sizeof(EthernetHeader) - sizeof(Ipv4Header) - 8 - 16 - 12;
    EXPECT_EQ(ct % 16, 0u) << "size " << size;
  }
}

TEST(IpsecTest, BurstRoundTrip) {
  IpsecGateway egress(test_sa());
  IpsecGateway ingress(test_sa());
  std::vector<Packet> pkts(37);  // not a multiple of any internal batch
  std::vector<std::vector<std::uint8_t>> originals;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    build_udp_packet(pkts[i], inner_tuple(), 64 + i);
    originals.emplace_back(pkts[i].data(), pkts[i].data() + pkts[i].size());
  }
  EXPECT_EQ(egress.encap_burst(pkts), pkts.size());
  EXPECT_EQ(ingress.decap_burst(pkts), pkts.size());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    ASSERT_EQ(pkts[i].size(), originals[i].size()) << "packet " << i;
    EXPECT_EQ(std::memcmp(pkts[i].data(), originals[i].data(), originals[i].size()), 0)
        << "packet " << i;
  }
  EXPECT_EQ(ingress.stats().decapsulated, pkts.size());
}

// The fast and scalar gateways implement the same wire protocol, so a
// tunnel built by one must decap cleanly on the other — in both directions.
TEST(IpsecTest, ScalarAndFastGatewaysInteroperate) {
  const auto check = [](auto& egress, auto& ingress) {
    Packet pkt;
    build_udp_packet(pkt, inner_tuple(), 200);
    const std::vector<std::uint8_t> original(pkt.data(), pkt.data() + pkt.size());
    ASSERT_TRUE(egress.encap(pkt));
    ASSERT_TRUE(ingress.decap(pkt));
    ASSERT_EQ(pkt.size(), original.size());
    EXPECT_EQ(std::memcmp(pkt.data(), original.data(), original.size()), 0);
  };
  IpsecGateway fast_eg(test_sa()), fast_in(test_sa());
  ScalarIpsecGateway scalar_eg(test_sa()), scalar_in(test_sa());
  check(fast_eg, scalar_in);
  check(scalar_eg, fast_in);
}

TEST(IpsecTest, DistinctIvsPerPacket) {
  IpsecGateway gw(test_sa());
  Packet a, b;
  build_udp_packet(a, inner_tuple());
  build_udp_packet(b, inner_tuple());
  ASSERT_TRUE(gw.encap(a));
  ASSERT_TRUE(gw.encap(b));
  const std::size_t iv_off = sizeof(EthernetHeader) + sizeof(Ipv4Header) + 8;
  EXPECT_NE(std::memcmp(a.data() + iv_off, b.data() + iv_off, 16), 0);
  // Identical plaintext + distinct IV => distinct ciphertext.
  EXPECT_NE(std::memcmp(a.data() + iv_off + 16, b.data() + iv_off + 16, 16), 0);
}

}  // namespace
}  // namespace metro::apps
