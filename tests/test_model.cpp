// The analytical model of §IV: properties and limits of eqs. 3-14.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"

namespace metro::core::model {
namespace {

// --- eq. 3 / eq. 4 ------------------------------------------------------

TEST(ModelTest, BusyGivenVacationGrowsWithLoad) {
  EXPECT_DOUBLE_EQ(busy_given_vacation(10.0, 0.0), 0.0);
  EXPECT_NEAR(busy_given_vacation(10.0, 0.5), 10.0, 1e-12);
  EXPECT_GT(busy_given_vacation(10.0, 0.9), busy_given_vacation(10.0, 0.5));
}

TEST(ModelTest, RhoEstimateInvertsEq3) {
  // rho -> B -> rho must round-trip (eq. 4 is the inverse of eq. 3).
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double v = 10.0;
    const double b = busy_given_vacation(v, rho);
    EXPECT_NEAR(rho_estimate(b, v), rho, 1e-12);
  }
}

TEST(ModelTest, RhoEstimateEdgeCases) {
  EXPECT_DOUBLE_EQ(rho_estimate(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(rho_estimate(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rho_estimate(10.0, 0.0), 1.0);
}

// --- eq. 5 / eq. 9: vacation distribution at high load -------------------

class VacationCdfTest : public ::testing::TestWithParam<int> {};

TEST_P(VacationCdfTest, IsAValidCdf) {
  const int m = GetParam();
  const double ts = 50.0, tl = 500.0;
  double prev = 0.0;
  for (double x = 0.0; x <= ts; x += 0.5) {
    const double c = vacation_cdf(x, ts, tl, m);
    ASSERT_GE(c, prev - 1e-12) << "CDF must be non-decreasing at x=" << x;
    ASSERT_GE(c, 0.0);
    ASSERT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(vacation_cdf(ts, ts, tl, m), 1.0);
  EXPECT_DOUBLE_EQ(vacation_cdf(-1.0, ts, tl, m), 0.0);
}

TEST_P(VacationCdfTest, PdfPlusMassIntegratesToOne) {
  const int m = GetParam();
  const double ts = 50.0, tl = 500.0;
  // Numerical integral of eq. (9) over (0, TS) plus the mass at TS.
  double integral = 0.0;
  const int steps = 200000;
  const double dx = ts / steps;
  for (int i = 0; i < steps; ++i) {
    integral += vacation_pdf((i + 0.5) * dx, ts, tl, m) * dx;
  }
  integral += vacation_mass_at_ts(ts, tl, m);
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST_P(VacationCdfTest, MeanMatchesEq6) {
  const int m = GetParam();
  const double ts = 50.0, tl = 500.0;
  // E[V] by numerically integrating x dF plus TS * mass.
  double mean = 0.0;
  const int steps = 200000;
  const double dx = ts / steps;
  for (int i = 0; i < steps; ++i) {
    const double x = (i + 0.5) * dx;
    mean += x * vacation_pdf(x, ts, tl, m) * dx;
  }
  mean += ts * vacation_mass_at_ts(ts, tl, m);
  EXPECT_NEAR(mean, mean_vacation_high_load(ts, tl, m), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, VacationCdfTest, ::testing::Values(2, 3, 4, 5, 8));

TEST(ModelTest, MoreThreadsShortenTheVacation) {
  double prev = 1e9;
  for (int m = 2; m <= 8; ++m) {
    const double v = mean_vacation_high_load(50.0, 500.0, m);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(ModelTest, MeanVacationEqualTimeouts) {
  // With TS = TL the high-load formula gives TL/M (1 - (1-1)^M) = TS... no:
  // TS/TL = 1 -> E[V] = TL/M. This is the Fig. 4 configuration.
  for (int m = 2; m <= 5; ++m) {
    EXPECT_NEAR(mean_vacation_high_load(50.0, 50.0, m), 50.0 / m, 1e-12);
  }
}

// --- eq. 7 ----------------------------------------------------------------

TEST(ModelTest, BackupSuccessProbabilityBounds) {
  for (int m = 2; m <= 8; ++m) {
    const double p = backup_success_prob(10.0, 500.0, m);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0 / (m - 1) + 1e-12);
  }
}

TEST(ModelTest, BackupSuccessShrinksWithLongerTl) {
  double prev = 1.0;
  for (const double tl : {100.0, 300.0, 500.0, 700.0}) {
    const double p = backup_success_prob(10.0, tl, 3);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

// --- eq. 10: general load -------------------------------------------------

TEST(ModelTest, GeneralMeanVacationLimits) {
  const double ts = 30.0, tl = 3000.0;
  const int m = 3;
  // p -> 1 (all primary, low load): E[V] -> TS / M.
  EXPECT_NEAR(mean_vacation_general_approx(ts, m, 1.0), ts / m, 1e-9);
  // p -> 0 (others all backup, high load): E[V] -> TS.
  EXPECT_NEAR(mean_vacation_general_approx(ts, m, 1e-7), ts, 1e-4);
  // Exact form limits: p = 0 recovers eq. (6); p = 1 gives TS/M.
  EXPECT_NEAR(mean_vacation_general(ts, tl, m, 0.0), mean_vacation_high_load(ts, tl, m), 1e-9);
  EXPECT_NEAR(mean_vacation_general(ts, tl, m, 1.0), ts / m, 1e-9);
  // Exact form agrees with the approximation when TL >> TS.
  for (const double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(mean_vacation_general(ts, tl, m, p), mean_vacation_general_approx(ts, m, p),
                0.02 * ts);
  }
}

TEST(ModelTest, GeneralMeanVacationMonotoneInP) {
  // More primaries -> shorter vacations.
  double prev = 1e9;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double v = mean_vacation_general_approx(30.0, 3, p);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

// --- eq. 13 / eq. 14: the adaptive rule ------------------------------------

class TsRuleTest : public ::testing::TestWithParam<int> {};

TEST_P(TsRuleTest, LimitsMatchEq12) {
  const int m = GetParam();
  const double target = 10.0;
  EXPECT_NEAR(ts_for_target(target, 0.0, m), target * m, 1e-12);   // low load
  EXPECT_NEAR(ts_for_target(target, 1.0, m), target, 1e-12);       // high load
  EXPECT_NEAR(ts_for_target(target, 0.999999, m), target, 1e-3);
}

TEST_P(TsRuleTest, MonotoneDecreasingInRho) {
  const int m = GetParam();
  double prev = 1e18;
  for (double rho = 0.0; rho < 1.0; rho += 0.01) {
    const double ts = ts_for_target(10.0, rho, m);
    ASSERT_LE(ts, prev + 1e-12) << "rho=" << rho;
    prev = ts;
  }
}

TEST_P(TsRuleTest, SeriesFormMatchesClosedForm) {
  const int m = GetParam();
  for (const double rho : {0.1, 0.4, 0.7, 0.95}) {
    const double closed = 10.0 * m * (1.0 - rho) / (1.0 - std::pow(rho, m));
    EXPECT_NEAR(ts_for_target(10.0, rho, m), closed, 1e-9);
  }
}

TEST_P(TsRuleTest, FixedPointConsistency) {
  // If the system converges to rho and applies eq. 13, the resulting mean
  // vacation (eq. 10 with p = 1 - rho) equals the target.
  const int m = GetParam();
  const double target = 10.0;
  for (const double rho : {0.05, 0.3, 0.6, 0.9}) {
    const double ts = ts_for_target(target, rho, m);
    const double v = mean_vacation_general_approx(ts, m, 1.0 - rho);
    EXPECT_NEAR(v, target, 1e-9) << "rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TsRuleTest, ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(ModelTest, MultiqueueReducesToSingleQueue) {
  for (const double rho : {0.0, 0.2, 0.6, 0.95}) {
    EXPECT_NEAR(ts_for_target_multiqueue(10.0, rho, 3, 1), ts_for_target(10.0, rho, 3), 1e-9);
  }
}

TEST(ModelTest, MultiqueueUsesThreadsPerQueue) {
  // M=6, N=2 behaves like M/N=3 threads on one queue.
  for (const double rho : {0.0, 0.5, 0.9}) {
    EXPECT_NEAR(ts_for_target_multiqueue(10.0, rho, 6, 2), ts_for_target(10.0, rho, 3), 1e-9);
  }
}

TEST(ModelTest, MultiqueueFractionalThreadsPerQueue) {
  // M=5, N=4: M/N = 1.25; the rule must interpolate smoothly between the
  // integer cases and stay within their envelope.
  const double rho = 0.5;
  const double ts = ts_for_target_multiqueue(10.0, rho, 5, 4);
  const double lo = ts_for_target(10.0, rho, 1);
  const double hi = ts_for_target(10.0, rho, 2);
  EXPECT_GT(ts, std::min(lo, hi));
  EXPECT_LT(ts, std::max(lo, hi));
}

TEST(ModelTest, MultiqueueHighLoadStillTarget) {
  EXPECT_NEAR(ts_for_target_multiqueue(15.0, 1.0, 8, 4), 15.0, 1e-12);
}

}  // namespace
}  // namespace metro::core::model
