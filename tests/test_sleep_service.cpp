// Sleep-service models: calibrated overheads, slack, dispatch jitter.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "sim/sleep_service.hpp"
#include "stats/summary.hpp"

namespace metro::sim {
namespace {

stats::Summary sample_latencies(SleepServiceConfig cfg, Time requested, int n = 20000) {
  Simulation sim(99);
  SleepService svc(sim, cfg);
  stats::Summary s;
  for (int i = 0; i < n; ++i) s.add(to_micros(svc.sample_timer_latency(requested)));
  return s;
}

TEST(SleepServiceTest, HrSleepAnchorsMatchCalibration) {
  // Fig. 1 anchors: ~3.85 us actual for a 1 us request, ~13.46 for 10 us,
  // ~108.45 for 100 us.
  SleepServiceConfig cfg;
  cfg.kind = SleepKind::kHrSleep;
  EXPECT_NEAR(sample_latencies(cfg, 1_us).mean(), 3.85, 0.05);
  EXPECT_NEAR(sample_latencies(cfg, 10_us).mean(), 13.46, 0.05);
  EXPECT_NEAR(sample_latencies(cfg, 100_us).mean(), 108.45, 0.10);
}

TEST(SleepServiceTest, NanosleepSlightlyWorseThanHrSleep) {
  SleepServiceConfig hr;
  hr.kind = SleepKind::kHrSleep;
  SleepServiceConfig ns;
  ns.kind = SleepKind::kNanosleep;
  ns.timer_slack = 1_us;
  for (const Time req : {1_us, 10_us, 100_us}) {
    const auto h = sample_latencies(hr, req);
    const auto n = sample_latencies(ns, req);
    EXPECT_GT(n.mean(), h.mean()) << "requested " << req;
    EXPECT_GT(n.stddev(), h.stddev()) << "requested " << req;
  }
}

TEST(SleepServiceTest, DefaultSlackAddsTensOfMicroseconds) {
  SleepServiceConfig tuned;
  tuned.kind = SleepKind::kNanosleep;
  tuned.timer_slack = 1_us;
  SleepServiceConfig vanilla;
  vanilla.kind = SleepKind::kNanosleep;
  vanilla.timer_slack = calib::kDefaultTimerSlack;  // 50 us
  const auto t = sample_latencies(tuned, 10_us);
  const auto v = sample_latencies(vanilla, 10_us);
  EXPECT_GT(v.mean() - t.mean(), 10.0);  // far worse without prctl tuning
}

TEST(SleepServiceTest, OverheadInterpolatesBetweenAnchors) {
  SleepServiceConfig cfg;
  cfg.kind = SleepKind::kHrSleep;
  const double at_1 = sample_latencies(cfg, 1_us).mean() - 1.0;
  const double at_10 = sample_latencies(cfg, 10_us).mean() - 10.0;
  const double at_3 = sample_latencies(cfg, 3_us).mean() - 3.0;
  EXPECT_GT(at_3, std::min(at_1, at_10) - 0.05);
  EXPECT_LT(at_3, std::max(at_1, at_10) + 0.05);
}

TEST(SleepServiceTest, SubMicrosecondFastReturnPatch) {
  SleepServiceConfig cfg;
  cfg.kind = SleepKind::kHrSleep;
  cfg.sub_us_fast_return = true;
  const auto s = sample_latencies(cfg, 500);  // 0.5 us request
  EXPECT_LT(s.mean(), 0.5);  // returns in ~150 ns, no timer
  // At or above 1 us the normal path applies.
  const auto normal = sample_latencies(cfg, 1_us);
  EXPECT_GT(normal.mean(), 3.0);
}

TEST(SleepServiceTest, LatencyNeverNonPositive) {
  SleepServiceConfig cfg;
  cfg.kind = SleepKind::kHrSleep;
  Simulation sim(5);
  SleepService svc(sim, cfg);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(svc.sample_timer_latency(1), 0);
}

TEST(SleepServiceTest, DispatchTailCanBeDisabled) {
  Simulation sim(7);
  SleepServiceConfig cfg;
  cfg.dispatch_tail = false;
  SleepService svc(sim, cfg);
  for (int i = 0; i < 200000; ++i) {
    ASSERT_LE(svc.sample_dispatch_latency(), calib::kDispatchBase);
  }
}

TEST(SleepServiceTest, DispatchTailFiresRarely) {
  Simulation sim(7);
  SleepServiceConfig cfg;
  cfg.dispatch_tail = true;
  SleepService svc(sim, cfg);
  int tails = 0;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    if (svc.sample_dispatch_latency() > calib::kDispatchTailMin) ++tails;
  }
  const double rate = static_cast<double>(tails) / n;
  EXPECT_NEAR(rate, calib::kDispatchTailProb, calib::kDispatchTailProb);
  EXPECT_GT(tails, 0);
}

Task do_sleep(Simulation& sim, SleepService& svc, Time req, Time& woke) {
  co_await svc.sleep(req);
  woke = sim.now();
}

TEST(SleepServiceTest, AwaitableSleepResumesNearRequestPlusOverhead) {
  Simulation sim(11);
  SleepServiceConfig cfg;
  cfg.dispatch_tail = false;
  SleepService svc(sim, cfg);
  Time woke = -1;
  sim.spawn(do_sleep(sim, svc, 10_us, woke));
  sim.run();
  EXPECT_GT(woke, 10_us);
  EXPECT_LT(woke, 20_us);
}

TEST(SleepServiceTest, ContendedCoreAddsDispatchLatency) {
  Simulation sim(13);
  Core core(sim, 0);
  const auto spin = core.add_entity("competitor");
  core.set_spinning(spin, true);
  SleepServiceConfig cfg;
  cfg.dispatch_tail = false;
  SleepService contended(sim, cfg, &core);
  SleepService isolated(sim, cfg, nullptr);
  stats::Summary c, i;
  for (int k = 0; k < 20000; ++k) {
    c.add(static_cast<double>(contended.sample_dispatch_latency()));
    i.add(static_cast<double>(isolated.sample_dispatch_latency()));
  }
  EXPECT_GT(c.mean(), i.mean() + static_cast<double>(calib::kDispatchContendedMean) * 0.5);
}

}  // namespace
}  // namespace metro::sim
