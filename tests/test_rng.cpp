// Deterministic RNG: reproducibility and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace metro::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformU64Unbiased) {
  Rng rng(11);
  // n = 3 exercises the Lemire rejection path.
  std::array<int, 3> counts{};
  const int draws = 300000;
  for (int i = 0; i < draws; ++i) counts[rng.uniform_u64(3)]++;
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c), draws / 3.0, draws * 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ChanceFrequencyMatches) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(RngTest, ParetoBoundedBelowByScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

}  // namespace
}  // namespace metro::sim
