// Scenario subsystem: registry sanity, generator determinism,
// cross-backend bit-identity of every new workload shape, and
// SweepRunner merge determinism across worker counts.
//
// The identity fingerprints here are deliberately deep (counters, event
// totals, final clock, raw latency-histogram digest) — the same level the
// fullstack backend test uses — because the scenario layer's whole claim
// is that a scenario is a pure function of its config, on any backend,
// under any parallelism.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "apps/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "tgen/bursty.hpp"
#include "util/seed_mix.hpp"

namespace metro {
namespace {

using apps::ArrivalModel;
using scenario::BackendKind;

// --- seed mixer -------------------------------------------------------------

TEST(SeedMixTest, MatchesSplitMix64Reference) {
  // Reference values of the SplitMix64 stream seeded with 0 (Vigna's
  // splitmix64.c): the mixer must reproduce the published algorithm.
  EXPECT_EQ(util::splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(util::splitmix64(0x9e3779b97f4a7c15ULL), 0x6e789e6aa1b965f4ULL);
}

TEST(SeedMixTest, DerivedSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL, 1000ULL}) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(util::mix_seed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 3u * 64u) << "adjacent bases/streams must not collide";
  EXPECT_EQ(util::mix_seed(42, 7), util::mix_seed(42, 7));
}

// --- registry ---------------------------------------------------------------

TEST(ScenarioRegistryTest, RegistersDiverseScenarios) {
  const auto& reg = scenario::all_scenarios();
  ASSERT_GE(reg.size(), 5u) << "the matrix bench needs at least 5 scenarios";
  std::set<std::string> names;
  std::set<ArrivalModel> models;
  for (const auto& s : reg) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty());
    EXPECT_GT(s.config.workload.rate_mpps, 0.0) << s.name << " must offer traffic";
    names.insert(s.name);
    models.insert(s.config.workload.model);
  }
  EXPECT_EQ(names.size(), reg.size()) << "names must be unique";
  // Every arrival model ships at least one registered scenario.
  EXPECT_TRUE(models.count(ArrivalModel::kStream));
  EXPECT_TRUE(models.count(ArrivalModel::kPerFlow));
  EXPECT_TRUE(models.count(ArrivalModel::kMmpp));
  EXPECT_TRUE(models.count(ArrivalModel::kParetoTrain));
  EXPECT_TRUE(models.count(ArrivalModel::kIncast));
  EXPECT_TRUE(models.count(ArrivalModel::kTrace));
}

TEST(ScenarioRegistryTest, FindByName) {
  EXPECT_NE(scenario::find_scenario("mmpp_bursty"), nullptr);
  EXPECT_EQ(scenario::find_scenario("no_such_scenario"), nullptr);
}

// --- generator determinism --------------------------------------------------

template <typename Gen>
void expect_identical_streams(Gen& a, Gen& b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    ASSERT_EQ(pa.has_value(), pb.has_value()) << "at packet " << i;
    if (!pa.has_value()) return;
    EXPECT_EQ(pa->arrival, pb->arrival);
    EXPECT_EQ(pa->flow_id, pb->flow_id);
    EXPECT_EQ(pa->rss_hash, pb->rss_hash);
    EXPECT_EQ(pa->wire_size, pb->wire_size);
  }
}

template <typename Gen>
void expect_monotone_arrivals(Gen& g, std::size_t n) {
  sim::Time last = -1;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = g.next();
    if (!p.has_value()) return;
    EXPECT_GE(p->arrival, last) << "arrivals must be non-decreasing (packet " << i << ")";
    last = p->arrival;
  }
}

TEST(BurstyGeneratorTest, MmppIsDeterministicAndMonotone) {
  tgen::FlowSet flows(64, 9);
  tgen::MmppConfig cfg;
  cfg.mean_rate_pps = 5e6;
  cfg.duration = 20 * sim::kMillisecond;
  cfg.seed = 77;
  tgen::MmppGenerator a(cfg, flows, std::make_unique<tgen::UniformFlowPicker>(64));
  tgen::MmppGenerator b(cfg, flows, std::make_unique<tgen::UniformFlowPicker>(64));
  expect_identical_streams(a, b, 20000);
  tgen::MmppGenerator c(cfg, flows, std::make_unique<tgen::UniformFlowPicker>(64));
  expect_monotone_arrivals(c, 20000);
}

TEST(BurstyGeneratorTest, MmppLongRunRateTracksMean) {
  tgen::FlowSet flows(64, 9);
  tgen::MmppConfig cfg;
  cfg.mean_rate_pps = 5e6;
  cfg.duration = 200 * sim::kMillisecond;
  cfg.seed = 5;
  tgen::MmppGenerator g(cfg, flows, std::make_unique<tgen::UniformFlowPicker>(64));
  std::uint64_t n = 0;
  while (g.next().has_value()) ++n;
  const double measured = static_cast<double>(n) / sim::to_seconds(cfg.duration);
  // Defaults keep the configured mean exactly (3.7 * 0.25 + 0.1 * 0.75 = 1);
  // ~500 dwell cycles over the 200 ms horizon leave a few percent of
  // noise, so 8% both catches a biased shape and stays stable.
  EXPECT_NEAR(measured, cfg.mean_rate_pps, 0.08 * cfg.mean_rate_pps);
}

TEST(BurstyGeneratorTest, ParetoTrainsAreDeterministicAndHeavyTailed) {
  tgen::FlowSet flows(256, 9);
  tgen::ParetoTrainConfig cfg;
  cfg.rate_pps = 10e6;
  cfg.duration = 50 * sim::kMillisecond;
  cfg.seed = 123;
  tgen::ParetoTrainGenerator a(cfg, flows);
  tgen::ParetoTrainGenerator b(cfg, flows);
  expect_identical_streams(a, b, 50000);

  // Train lengths: count runs of equal flow_id. Heavy tail => max run far
  // above the mean run.
  tgen::ParetoTrainGenerator c(cfg, flows);
  std::uint64_t runs = 0, packets = 0, cur = 0, max_run = 0;
  std::uint32_t last_flow = 0xffffffffu;
  while (auto p = c.next()) {
    ++packets;
    if (p->flow_id == last_flow) {
      ++cur;
    } else {
      if (cur > 0) ++runs;
      max_run = std::max(max_run, cur);
      cur = 1;
      last_flow = p->flow_id;
    }
  }
  max_run = std::max(max_run, cur);
  ASSERT_GT(runs, 100u);
  const double mean_run = static_cast<double>(packets) / static_cast<double>(runs);
  EXPECT_GT(max_run, static_cast<std::uint64_t>(10.0 * mean_run))
      << "Pareto(1.3) trains should produce elephants well above the mean";
}

TEST(BurstyGeneratorTest, IncastEpochsAreSynchronizedBursts) {
  tgen::FlowSet flows(256, 9);
  tgen::IncastConfig cfg;
  cfg.rate_pps = 5e6;
  cfg.duration = 10 * sim::kMillisecond;
  cfg.seed = 11;
  tgen::IncastGenerator a(cfg, flows);
  tgen::IncastGenerator b(cfg, flows);
  expect_identical_streams(a, b, 30000);

  tgen::IncastGenerator c(cfg, flows);
  expect_monotone_arrivals(c, 30000);

  // Structure: epochs of fan_in * burst_per_sender packets spaced
  // intra_gap apart, separated by long silences.
  tgen::IncastGenerator d(cfg, flows);
  const std::uint32_t per_epoch = cfg.shape.fan_in * cfg.shape.burst_per_sender;
  auto first = d.next();
  ASSERT_TRUE(first.has_value());
  sim::Time prev = first->arrival;
  std::uint32_t in_epoch = 1;
  for (std::uint32_t i = 1; i < 4 * per_epoch; ++i) {
    const auto p = d.next();
    ASSERT_TRUE(p.has_value());
    const sim::Time gap = p->arrival - prev;
    if (gap == cfg.shape.intra_gap) {
      ++in_epoch;
    } else {
      EXPECT_EQ(in_epoch, per_epoch) << "burst must span the whole fan-in";
      EXPECT_GT(gap, 100 * cfg.shape.intra_gap) << "epochs must be separated by silence";
      in_epoch = 1;
    }
    prev = p->arrival;
  }
}

// --- cross-backend bit-identity for every arrival model --------------------

struct Fingerprint {
  std::uint64_t telemetry = 0;  ///< full MetricSet digest (all layers)
  scenario::ShardCounters counters;
  std::uint64_t events = 0;
  sim::Time final_clock = 0;
  std::uint64_t latency_count = 0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint_of(const scenario::ShardResult& r) {
  return Fingerprint{r.fingerprint, r.counters, r.events, r.final_clock, r.latency_count};
}

apps::ExperimentConfig small_config(ArrivalModel model) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 3;
  cfg.met.n_threads = 3;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.model = model;
  cfg.workload.rate_mpps = 8.0;
  cfg.workload.n_flows = 256;
  cfg.warmup = 4 * sim::kMillisecond;
  cfg.measure = 10 * sim::kMillisecond;
  return cfg;
}

Fingerprint run_model(ArrivalModel model, BackendKind backend) {
  const scenario::Shard shard{"t", backend, small_config(model)};
  const auto results = scenario::SweepRunner(1).run({shard});
  return fingerprint_of(results.at(0));
}

class ArrivalModelBackendTest : public ::testing::TestWithParam<ArrivalModel> {};

TEST_P(ArrivalModelBackendTest, BitIdenticalAcrossBackends) {
  const auto heap = run_model(GetParam(), BackendKind::kHeap);
  const auto ladder = run_model(GetParam(), BackendKind::kLadder);
  const auto wheel = run_model(GetParam(), BackendKind::kWheel);
  ASSERT_GT(heap.counters.processed, 10000u) << "scenario must do real work";
  EXPECT_EQ(heap, ladder);
  EXPECT_EQ(heap, wheel);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ArrivalModelBackendTest,
                         ::testing::Values(ArrivalModel::kMmpp, ArrivalModel::kParetoTrain,
                                           ArrivalModel::kIncast, ArrivalModel::kTrace),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArrivalModel::kMmpp: return "Mmpp";
                             case ArrivalModel::kParetoTrain: return "ParetoTrain";
                             case ArrivalModel::kIncast: return "Incast";
                             case ArrivalModel::kTrace: return "Trace";
                             default: return "Other";
                           }
                         });

// --- sweep runner -----------------------------------------------------------

scenario::SweepMatrix small_matrix() {
  scenario::SweepMatrix m;
  m.scenarios = {"cbr_uniform", "mmpp_bursty", "incast_sync"};
  m.backends = {BackendKind::kHeap, BackendKind::kLadder, BackendKind::kWheel};
  m.warmup = 2 * sim::kMillisecond;
  m.measure = 5 * sim::kMillisecond;
  m.base_seed = 99;
  return m;
}

TEST(SweepRunnerTest, ExpandDerivesPointSeedsSharedAcrossBackends) {
  const auto shards = scenario::SweepRunner::expand(small_matrix());
  ASSERT_EQ(shards.size(), 9u);  // 3 scenarios x 3 backends
  std::set<std::uint64_t> point_seeds;
  for (std::size_t i = 0; i < shards.size(); i += 3) {
    EXPECT_EQ(shards[i].config.seed, shards[i + 1].config.seed)
        << "backends of one point must share the seed";
    EXPECT_EQ(shards[i].config.seed, shards[i + 2].config.seed)
        << "backends of one point must share the seed";
    EXPECT_EQ(shards[i].scenario, shards[i + 1].scenario);
    EXPECT_EQ(shards[i].scenario, shards[i + 2].scenario);
    point_seeds.insert(shards[i].config.seed);
  }
  EXPECT_EQ(point_seeds.size(), 3u) << "distinct points get distinct seeds";
}

TEST(SweepRunnerTest, ExpandRejectsUnknownScenario) {
  scenario::SweepMatrix m = small_matrix();
  m.scenarios.push_back("no_such_scenario");
  EXPECT_THROW(scenario::SweepRunner::expand(m), std::invalid_argument);
}

TEST(SweepRunnerTest, MergedResultsIdenticalForAnyWorkerCount) {
  const auto shards = scenario::SweepRunner::expand(small_matrix());
  const auto serial = scenario::SweepRunner(1).run(shards);
  const auto parallel = scenario::SweepRunner(4).run(shards);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(fingerprint_of(serial[i]), fingerprint_of(parallel[i])) << "shard " << i;
  }
  // And the merged JSON (timing excluded) is byte-identical.
  EXPECT_EQ(scenario::report_json(shards, serial, false),
            scenario::report_json(shards, parallel, false));
}

TEST(SweepRunnerTest, LadderGeometryIsAPureSpeedKnob) {
  // Different rung/spill geometries must reproduce the same execution.
  scenario::SweepMatrix m;
  m.scenarios = {"perflow_poisson"};
  m.backends = {BackendKind::kLadder};
  m.ladder_geometries = {sim::LadderConfig{16, 16, 32}, sim::LadderConfig{64, 32, 128}};
  m.warmup = 2 * sim::kMillisecond;
  m.measure = 5 * sim::kMillisecond;
  m.base_seed = 7;
  const auto shards = scenario::SweepRunner::expand(m);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].config.seed, shards[1].config.seed)
      << "geometry is part of the point axes: same point seed everywhere";
  const auto results = scenario::SweepRunner(2).run(shards);
  ASSERT_GT(results[0].counters.processed, 1000u);
  EXPECT_EQ(fingerprint_of(results[0]), fingerprint_of(results[1]));
}

TEST(SweepRunnerTest, WheelGeometryIsAPureSpeedKnob) {
  // Same contract as the ladder: slot/tick/level geometry may change how
  // fast the wheel simulates, never what it simulates.
  auto cfg = small_config(ArrivalModel::kPerFlow);
  const scenario::Shard coarse{"w", BackendKind::kWheel, cfg};
  cfg.wheel = sim::WheelConfig{4, 6, 8};  // 16-slot levels, 64 ns tick
  const scenario::Shard fine{"w", BackendKind::kWheel, cfg};
  const auto results = scenario::SweepRunner(2).run({coarse, fine});
  ASSERT_GT(results[0].counters.processed, 1000u);
  EXPECT_EQ(fingerprint_of(results[0]), fingerprint_of(results[1]));
}

}  // namespace
}  // namespace metro
