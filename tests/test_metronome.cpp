// Metronome runtime (simulated): protocol behaviour and adaptivity.
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "core/metronome.hpp"

namespace metro {
namespace {

using apps::DriverKind;
using apps::ExperimentConfig;
using apps::run_experiment;

ExperimentConfig base_config(double rate_mpps) {
  ExperimentConfig cfg;
  cfg.driver = DriverKind::kMetronome;
  cfg.workload.rate_mpps = rate_mpps;
  cfg.warmup = 100 * sim::kMillisecond;
  cfg.measure = 300 * sim::kMillisecond;
  return cfg;
}

TEST(MetronomeTest, LineRateNoLossAtDefaultSettings) {
  // Table I anchor: V-bar = 10 us, M = 3, TL = 500 us -> no loss at
  // 14.88 Mpps line rate.
  const auto r = run_experiment(base_config(14.88));
  EXPECT_NEAR(r.throughput_mpps, 14.88, 0.1);
  EXPECT_LT(r.loss_permille, 0.05);
}

TEST(MetronomeTest, CpuScalesWithLoad) {
  const auto high = run_experiment(base_config(14.88));
  const auto mid = run_experiment(base_config(7.44));
  const auto low = run_experiment(base_config(0.744));
  EXPECT_GT(high.cpu_percent, mid.cpu_percent);
  EXPECT_GT(mid.cpu_percent, low.cpu_percent);
  EXPECT_LT(high.cpu_percent, 100.0);  // the headline: less than one core
  EXPECT_LT(low.cpu_percent, 25.0);
}

TEST(MetronomeTest, RhoTracksOfferedLoad) {
  // rho = lambda/mu with mu ~= 1/38 ns: at 14.88 Mpps rho ~= 0.57.
  const auto r = run_experiment(base_config(14.88));
  const double mu = 1e9 / static_cast<double>(sim::calib::kL3fwdPerPacketCost);
  const double expect = 14.88e6 / mu;
  EXPECT_NEAR(r.rho, expect, 0.08);
  const auto low = run_experiment(base_config(1.0));
  EXPECT_LT(low.rho, 0.15);
}

TEST(MetronomeTest, VacationTracksTargetAtHighLoad) {
  auto cfg = base_config(14.88);
  cfg.met.target_vacation = 10 * sim::kMicrosecond;
  const auto r = run_experiment(cfg);
  // Table I: measured V overshoots the target because of the sleep-service
  // overhead (~19.5 us measured for a 10 us target); it must land between
  // the target and ~3x the target.
  EXPECT_GT(r.vacation_us.mean(), 10.0);
  EXPECT_LT(r.vacation_us.mean(), 30.0);
}

TEST(MetronomeTest, LargerTargetVacationLowersCpu) {
  auto small = base_config(14.88);
  small.met.target_vacation = 2 * sim::kMicrosecond;
  auto large = base_config(14.88);
  large.met.target_vacation = 10 * sim::kMicrosecond;
  const auto rs = run_experiment(small);
  const auto rl = run_experiment(large);
  EXPECT_GT(rs.cpu_percent, rl.cpu_percent);          // Fig. 5 trade-off
  EXPECT_LT(rs.latency_us.mean, rl.latency_us.mean);  // and its other side
}

TEST(MetronomeTest, TsAdaptsToLoadPerEq13) {
  // Low load: TS -> M * V-bar; high load: TS -> V-bar.
  auto cfg = base_config(0.1);
  cfg.met.target_vacation = 10 * sim::kMicrosecond;
  const auto low = run_experiment(cfg);
  EXPECT_NEAR(low.ts_us, 30.0, 3.0);
  const auto high = run_experiment(base_config(14.88));
  EXPECT_LT(high.ts_us, 20.0);
  EXPECT_GT(high.ts_us, 10.0);
}

TEST(MetronomeTest, BusyTriesGrowWithThreads) {
  // Fig. 7: more threads -> linearly more wasted wake-ups.
  double prev = -1.0;
  for (const int m : {2, 4, 6}) {
    auto cfg = base_config(14.88);
    cfg.met.n_threads = m;
    const auto r = run_experiment(cfg);
    EXPECT_GT(r.busy_tries_pct, prev) << "M=" << m;
    prev = r.busy_tries_pct;
  }
}

TEST(MetronomeTest, BusyTriesShrinkWithLongerTl) {
  // Fig. 6: longer TL -> fewer wasted wake-ups.
  auto short_tl = base_config(14.88);
  short_tl.met.long_timeout = 100 * sim::kMicrosecond;
  auto long_tl = base_config(14.88);
  long_tl.met.long_timeout = 700 * sim::kMicrosecond;
  const auto rs = run_experiment(short_tl);
  const auto rl = run_experiment(long_tl);
  EXPECT_GT(rs.busy_tries_pct, rl.busy_tries_pct);
}

TEST(MetronomeTest, EqualTimeoutsBurnMoreCpuAtHighLoad) {
  // §IV-A's motivation: without the primary/backup diversity, threads keep
  // waking into ongoing busy periods.
  auto diverse = base_config(14.88);
  auto equal = base_config(14.88);
  equal.met.primary_backup = false;
  const auto rd = run_experiment(diverse);
  const auto re = run_experiment(equal);
  EXPECT_GT(re.cpu_percent, rd.cpu_percent * 1.15);
  EXPECT_GT(re.busy_tries_pct, rd.busy_tries_pct);
}

TEST(MetronomeTest, MoreThreadsRaiseLatency) {
  // Fig. 8: larger M -> longer sleeps for primaries (eq. 13) -> latency up.
  auto m2 = base_config(14.88);
  m2.met.n_threads = 2;
  auto m6 = base_config(14.88);
  m6.met.n_threads = 6;
  m6.n_cores = 6;
  const auto r2 = run_experiment(m2);
  const auto r6 = run_experiment(m6);
  EXPECT_GT(r6.latency_us.mean, r2.latency_us.mean);
}

TEST(MetronomeTest, NvMatchesLittlesLaw) {
  // N_V = lambda * E[V] (packets accumulating over a vacation).
  const auto r = run_experiment(base_config(14.88));
  const double expect = 14.88 * r.vacation_us.mean();  // Mpps * us = packets
  EXPECT_NEAR(r.nv.mean(), expect, expect * 0.15);
}

TEST(MetronomeTest, TxBatchOneCutsLowRateLatency) {
  // §V-C: batch = 1 removes the stranded-in-Tx-buffer latency tail.
  auto batched = base_config(0.744);
  batched.tx_batch = 32;
  auto immediate = base_config(0.744);
  immediate.tx_batch = 1;
  const auto rb = run_experiment(batched);
  const auto ri = run_experiment(immediate);
  EXPECT_LT(ri.latency_us.mean, rb.latency_us.mean - 5.0);
  EXPECT_LT(ri.latency_us.stddev, rb.latency_us.stddev);
}

TEST(MetronomeTest, MultiqueueServesAllQueuesEvenly) {
  auto cfg = base_config(30.0);
  cfg.xl710 = true;
  cfg.n_queues = 4;
  cfg.n_cores = 5;
  cfg.met.n_threads = 5;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  const auto r = run_experiment(cfg);
  EXPECT_NEAR(r.throughput_mpps, 30.0, 0.5);
  ASSERT_EQ(r.queues.size(), 4u);
  for (const auto& q : r.queues) {
    EXPECT_GT(q.total_tries, 0u);
    EXPECT_GT(q.rho, 0.05);
  }
}

TEST(MetronomeTest, UnbalancedQueueHasHigherRhoAndFewerTries) {
  // Table III: the hot queue (30% single flow + its share of the rest)
  // shows higher rho, higher busy-try %, fewer total tries.
  auto cfg = base_config(14.0);
  cfg.xl710 = true;
  cfg.n_queues = 3;
  cfg.n_cores = 4;
  cfg.met.n_threads = 4;
  cfg.workload.heavy_share = 0.30;
  cfg.workload.n_flows = 1000;
  const auto r = run_experiment(cfg);
  ASSERT_EQ(r.queues.size(), 3u);
  // Identify the hot queue as the one with max rho.
  std::size_t hot = 0;
  for (std::size_t q = 1; q < 3; ++q) {
    if (r.queues[q].rho > r.queues[hot].rho) hot = q;
  }
  for (std::size_t q = 0; q < 3; ++q) {
    if (q == hot) continue;
    EXPECT_GT(r.queues[hot].rho, r.queues[q].rho);
    EXPECT_LT(r.queues[hot].total_tries, r.queues[q].total_tries);
  }
}

TEST(MetronomeTest, SurvivesZeroTraffic) {
  auto cfg = base_config(0.0);
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.throughput_mpps, 0.0);
  EXPECT_GT(r.cpu_percent, 0.0);   // periodic wake-ups still poll
  EXPECT_LT(r.cpu_percent, 30.0);
  EXPECT_LT(r.rho, 0.05);
}

TEST(MetronomeTest, StatsResetClearsCounters) {
  sim::Simulation sim;
  sim::Machine machine(sim, 1);
  nic::Port port(sim, nic::x520_config(1));
  core::MetronomeConfig mc;
  mc.n_threads = 2;
  core::Metronome met(sim, port, {&machine.core(0)}, mc);
  met.start();
  sim.run_until(50 * sim::kMillisecond);
  EXPECT_GT(met.total_tries(), 0u);
  met.reset_stats();
  EXPECT_EQ(met.total_tries(), 0u);
  EXPECT_EQ(met.packets_processed(), 0u);
}

}  // namespace
}  // namespace metro
