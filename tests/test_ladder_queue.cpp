// Ladder-queue backend edge cases.
//
// The ladder queue (src/sim/event_queue.hpp) routes events between an
// unsorted far-future "top", a stack of bucketed rungs and a sorted
// imminent "bottom"; epochs roll over whenever the rungs drain and top is
// spilled into a fresh rung 0. These tests drive exactly the transitions
// where a bucketed structure can lose the total (at, seq) order — epoch
// rollover, bottom spill, single-timestamp floods, tombstones surfacing at
// bucket boundaries — and compare every firing against the binary heap
// running the identical script.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "util/seed_mix.hpp"

namespace metro::sim {
namespace {

using Firing = std::pair<Time, int>;  // (virtual time, event tag)

/// Run `script(sim, trace)` to completion on one backend and return every
/// firing in execution order.
template <typename Backend, typename Script>
std::vector<Firing> run_trace(Script script) {
  BasicSimulation<Backend> sim;
  std::vector<Firing> trace;
  script(sim, trace);
  sim.run();
  EXPECT_TRUE(sim.idle());
  return trace;
}

/// The heap backend is the oracle: identical scripts must produce
/// bit-identical traces on the ladder.
template <typename Script>
void expect_backends_agree(Script script) {
  const auto heap = run_trace<BinaryHeapBackend>(script);
  const auto ladder = run_trace<LadderQueueBackend>(script);
  EXPECT_EQ(heap, ladder);
  EXPECT_FALSE(heap.empty());
}

/// Coverage counters for the ladder machinery a script engages: the peak
/// number of simultaneously active rungs and how often the epoch floor
/// moved (spawn_from_top rollovers). A sampling callback rides along with
/// the script; it does not touch the trace.
struct LadderStats {
  unsigned max_rungs = 0;
  unsigned floor_changes = 0;
};

template <typename Script>
LadderStats ladder_stats_during(Script script) {
  BasicSimulation<LadderQueueBackend> sim;
  std::vector<Firing> trace;
  LadderStats stats;
  struct Probe {
    BasicSimulation<LadderQueueBackend>* s;
    LadderStats* stats;
    Time last_floor;
    void operator()() const {
      stats->max_rungs = std::max(stats->max_rungs, s->backend().rungs_in_use());
      Time floor = s->backend().top_floor();
      if (floor != last_floor) ++stats->floor_changes;
      if (s->pending_events() > 0) {
        s->schedule_after(500, Probe{s, stats, floor});
      }
    }
  };
  script(sim, trace);
  sim.schedule_at(0, Probe{&sim, &stats, 0});
  sim.run();
  return stats;
}

template <typename Sim>
void tag_at(Sim& sim, std::vector<Firing>& trace, Time t, int tag) {
  sim.schedule_at(t, [&sim, &trace, tag] { trace.emplace_back(sim.now(), tag); });
}

TEST(LadderQueueTest, EpochRolloverKeepsTotalOrder) {
  // Three waves of far-future events, each scheduled only after the
  // previous epoch's rungs have fully drained, with near events landing
  // *below* the previous epoch's top floor (they must route into bottom or
  // live rungs, never be misfiled into the stale epoch's range).
  const auto script = [](auto& sim, std::vector<Firing>& trace) {
    using SimT = std::remove_reference_t<decltype(sim)>;
    // Each wave is seeded from the *last handler of the previous wave*, so
    // by the time it is scheduled the previous epoch's rungs have drained
    // and the spill out of top opens a fresh epoch.
    struct SeedWave {
      SimT* s;
      std::vector<Firing>* tr;
      int wave;
      void operator()() const {
        tr->emplace_back(s->now(), -wave);
        if (wave >= 3) return;
        const Time base = s->now() + 500'000;
        // Spread enough events to force a rung spawn (> sort threshold).
        for (int i = 0; i < 200; ++i) {
          const int tag = wave * 1000 + i;
          const Time t = base + (i * 37) % 9'000;
          s->schedule_at(t, [s = this->s, tr = this->tr, tag] {
            tr->emplace_back(s->now(), tag);
          });
        }
        s->schedule_at(base + 400'000, SeedWave{s, tr, wave + 1});
      }
    };
    sim.schedule_at(0, SeedWave{&sim, &trace, 0});
  };
  expect_backends_agree(script);
  // The machinery under test must actually engage: at least one rung per
  // epoch, and several epoch floors (one per spawn_from_top rollover).
  const auto stats = ladder_stats_during(script);
  EXPECT_GE(stats.max_rungs, 1u);
  EXPECT_GE(stats.floor_changes, 3u) << "waves must open fresh epochs";
}

TEST(LadderQueueTest, ImminentInsertsBelowTheConsumedBucketGoToBottom) {
  // Handlers scheduling a few ns ahead land inside the bucket range that
  // is currently being consumed — below the innermost rung's boundary —
  // and must be merged into bottom in (at, seq) order.
  expect_backends_agree([](auto& sim, std::vector<Firing>& trace) {
    using SimT = std::remove_reference_t<decltype(sim)>;
    struct Chain {
      SimT* s;
      std::vector<Firing>* tr;
      int left;
      int tag;
      void operator()() const {
        tr->emplace_back(s->now(), tag);
        if (left > 0) s->schedule_after(3, Chain{s, tr, left - 1, tag + 1});
      }
    };
    // A wide field forces rungs; the chains then crawl through it.
    for (int i = 0; i < 300; ++i) {
      tag_at(sim, trace, 50 + (i * 101) % 40'000, 100'000 + i);
    }
    sim.schedule_at(40, Chain{&sim, &trace, 400, 0});
  });
}

TEST(LadderQueueTest, SameTimestampFloodRunsInInsertionOrder) {
  // A single-timestamp bucket cannot be subdivided (width 1); the whole
  // flood must still fire in insertion order via the seq tiebreak.
  expect_backends_agree([](auto& sim, std::vector<Firing>& trace) {
    for (int i = 0; i < 500; ++i) tag_at(sim, trace, 1000, i);
    for (int i = 0; i < 100; ++i) tag_at(sim, trace, 999, 1000 + i);
    for (int i = 0; i < 100; ++i) tag_at(sim, trace, 1001, 2000 + i);
  });
}

TEST(LadderQueueTest, BottomSpillPreservesOrder) {
  // More sorted-insert traffic than kBottomSpill within a narrow span, so
  // bottom overflows into a fresh innermost rung mid-run.
  const auto script = [](auto& sim, std::vector<Firing>& trace) {
    // Far anchor keeps a rung alive so the spill rung is capped by an
    // outer boundary rather than the top floor.
    for (int i = 0; i < 100; ++i) {
      tag_at(sim, trace, 500'000 + i * 211, 50'000 + i);
    }
    using SimT = std::remove_reference_t<decltype(sim)>;
    // 100 parallel chains stepping a few ns at a time keep ~100 pending
    // events inside a single bucket's span — bottom exceeds kBottomSpill
    // and must spill into a fresh innermost rung repeatedly, mid-run.
    struct Chain {
      SimT* s;
      std::vector<Firing>* tr;
      int left;
      int tag;
      void operator()() const {
        tr->emplace_back(s->now(), tag);
        if (left > 0) {
          s->schedule_after(3 + (tag % 11), Chain{s, tr, left - 1, tag + 1});
        }
      }
    };
    for (int c = 0; c < 100; ++c) {
      sim.schedule_at(10 + c, Chain{&sim, &trace, 200, c * 1000});
    }
  };
  expect_backends_agree(script);
  // A spill must really have pushed an inner rung under the far-anchor
  // rung — two active rungs at some instant.
  EXPECT_GE(ladder_stats_during(script).max_rungs, 2u);
}

TEST(LadderQueueTest, CancelAcrossEpochRollover) {
  // Ids issued in one epoch stay cancellable after the structure has gone
  // through spills and re-spawns, and tombstones surfacing at bucket
  // boundaries never fire.
  BasicSimulation<LadderQueueBackend> sim;
  Rng rng(99);
  std::vector<BasicSimulation<LadderQueueBackend>::EventId> ids;
  std::uint64_t fired = 0;
  for (int i = 0; i < 3000; ++i) {
    const Time t = static_cast<Time>(rng.uniform_u64(5'000'000));
    ids.push_back(sim.schedule_at(t, [&fired] { ++fired; }));
  }
  // Cancel half of them, spread over the whole range.
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    if (sim.cancel(ids[i])) ++cancelled;
  }
  EXPECT_EQ(sim.pending_events(), ids.size() - cancelled);
  sim.run();
  EXPECT_EQ(fired, ids.size() - cancelled);
  EXPECT_TRUE(sim.idle());
}

TEST(LadderQueueTest, CancelEverythingThenReuse) {
  // All-cancelled ladder: live count hits zero while tombstones fill the
  // rungs; the structure must report idle and absorb a fresh workload.
  BasicSimulation<LadderQueueBackend> sim;
  std::vector<BasicSimulation<LadderQueueBackend>::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(sim.schedule_at(100 + i * 97, [&fired] { ++fired; }));
  }
  for (const auto id : ids) EXPECT_TRUE(sim.cancel(id));
  EXPECT_TRUE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0);

  std::vector<Firing> trace;
  for (int i = 0; i < 100; ++i) tag_at(sim, trace, 10 + i * 31, i);
  sim.run();
  ASSERT_EQ(trace.size(), 100u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].first, trace[i].first);
  }
  EXPECT_EQ(fired, 0) << "tombstoned handlers must never fire";
}

TEST(LadderQueueTest, ExtremeFarFutureTimestampsDoNotOverflowRungGeometry) {
  // Timestamps spanning the whole int64 range: rung end/width arithmetic
  // must saturate instead of overflowing, and ordering must survive.
  expect_backends_agree([](auto& sim, std::vector<Firing>& trace) {
    constexpr Time kHuge = INT64_MAX;
    tag_at(sim, trace, 10, 0);
    tag_at(sim, trace, kHuge - 1, 90);
    tag_at(sim, trace, kHuge / 2, 50);
    tag_at(sim, trace, 1'000'000, 10);
    tag_at(sim, trace, kHuge - 1'000'000, 80);
    for (int i = 0; i < 100; ++i) {
      tag_at(sim, trace, 2'000'000 + i * 999, 100 + i);
    }
  });
}

TEST(LadderQueueTest, RandomisedMirrorAgainstHeap) {
  // Randomised schedule/cancel interleavings mirrored on both backends,
  // including handler-side scheduling: the strongest order oracle.
  for (std::uint64_t seed : {1u, 42u, 1234u}) {
    expect_backends_agree([seed](auto& sim, std::vector<Firing>& trace) {
      using SimT = std::remove_reference_t<decltype(sim)>;
      struct Spawner {
        SimT* s;
        std::vector<Firing>* tr;
        std::uint64_t state;
        int left;
        int tag;
        void operator()() const {
          tr->emplace_back(s->now(), tag);
          if (left <= 0) return;
          std::uint64_t x = state;
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          s->schedule_after(static_cast<Time>(x % 20'000),
                            Spawner{s, tr, x, left - 1, tag + 1});
        }
      };
      Rng rng(seed);
      for (int i = 0; i < 128; ++i) {
        const auto spawn_seed = util::mix_seed(seed, static_cast<std::uint64_t>(i));
        sim.schedule_at(static_cast<Time>(rng.uniform_u64(100'000)),
                        Spawner{&sim, &trace, spawn_seed, 60, i * 1000});
      }
    });
  }
}

}  // namespace
}  // namespace metro::sim
