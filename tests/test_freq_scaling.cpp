// The frequency-scaling poller baseline and the userspace governor.
#include <gtest/gtest.h>

#include "dpdk/freq_scaling.hpp"
#include "dpdk/static_polling.hpp"
#include "nic/port.hpp"
#include "sim/cpu.hpp"
#include "tgen/feeder.hpp"
#include "tgen/generator.hpp"

namespace metro {
namespace {

using sim::Time;

TEST(UserspaceGovernorTest, RequestFreqHonoredAndClamped) {
  sim::Simulation sim;
  sim::CoreConfig cfg;
  cfg.governor = sim::Governor::kUserspace;
  sim::Core core(sim, 0, cfg);
  core.request_freq(0.5);
  EXPECT_DOUBLE_EQ(core.freq_ratio(), 0.5);
  core.request_freq(0.01);  // below the floor
  EXPECT_DOUBLE_EQ(core.freq_ratio(), cfg.min_freq_ratio);
  core.request_freq(2.0);  // above nominal
  EXPECT_DOUBLE_EQ(core.freq_ratio(), 1.0);
}

TEST(UserspaceGovernorTest, IgnoredUnderOtherGovernors) {
  sim::Simulation sim;
  sim::Core core(sim, 0, sim::CoreConfig{});  // performance
  core.request_freq(0.5);
  EXPECT_DOUBLE_EQ(core.freq_ratio(), 1.0);
}

struct FreqScalingBed {
  sim::Simulation sim{1};
  sim::CoreConfig core_cfg;
  std::unique_ptr<sim::Core> core;
  nic::Port port;
  tgen::FlowSet flows{64, 1};
  dpdk::FreqScalingStats stats;
  sim::Core::EntityId ent;

  explicit FreqScalingBed(double rate_mpps)
      : core_cfg{[] {
          sim::CoreConfig c;
          c.governor = sim::Governor::kUserspace;
          return c;
        }()},
        core(std::make_unique<sim::Core>(sim, 0, core_cfg)),
        port(sim, nic::x520_config(1)) {
    ent = dpdk::spawn_freq_scaling_lcore(sim, port, 0, *core, dpdk::FreqScalingConfig{}, stats);
    if (rate_mpps > 0) {
      auto gen = std::make_unique<tgen::StreamGenerator>(
          [&] {
            tgen::StreamConfig s;
            s.rate_pps = rate_mpps * 1e6;
            s.duration = 2 * sim::kSecond;
            return s;
          }(),
          flows, std::make_unique<tgen::UniformFlowPicker>(64));
      generator = std::move(gen);
      tgen::attach(sim, port, *generator);
    }
  }
  std::unique_ptr<tgen::Generator> generator;
};

TEST(FreqScalingTest, DownclocksWhenIdle) {
  FreqScalingBed bed(0.0);
  bed.sim.run_until(500 * sim::kMillisecond);
  EXPECT_NEAR(bed.core->freq_ratio(), bed.core_cfg.min_freq_ratio, 1e-9);
  EXPECT_GT(bed.stats.freq_steps_down, 0u);
  // But the core still reads 100% busy — the paper's §II criticism.
  bed.core->snapshot();
  EXPECT_NEAR(static_cast<double>(bed.core->busy_time()), 500e6, 1e6);
}

TEST(FreqScalingTest, RampsUpUnderLineRate) {
  FreqScalingBed bed(14.88);
  bed.sim.run_until(500 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(bed.core->freq_ratio(), 1.0);
  EXPECT_EQ(bed.port.total_dropped(), 0u);
  EXPECT_GT(bed.stats.packets_processed, 7'000'000u);
}

TEST(FreqScalingTest, SavesEnergyAtLowLoadVsPlainPolling) {
  // 0.05 Mpps: inter-arrival gaps (20 us ~= 570 empty polls) exceed the
  // 256-poll hysteresis, so the loop downclocks between packets. (At
  // 0.5 Mpps it faithfully does NOT: packets arrive before the threshold.)
  FreqScalingBed scaled(0.05);
  scaled.sim.run_until(500 * sim::kMillisecond);
  scaled.core->snapshot();

  // Plain static poller at full frequency for the same workload.
  sim::Simulation sim2(1);
  sim::Core plain(sim2, 0);
  nic::Port port2(sim2, nic::x520_config(1));
  tgen::FlowSet flows2(64, 1);
  tgen::StreamConfig s;
  s.rate_pps = 0.05e6;
  s.duration = 2 * sim::kSecond;
  tgen::StreamGenerator gen(s, flows2, std::make_unique<tgen::UniformFlowPicker>(64));
  dpdk::DriverStats pstats;
  dpdk::spawn_static_lcore(sim2, port2, 0, plain, dpdk::StaticPollingConfig{}, pstats);
  tgen::attach(sim2, port2, gen);
  sim2.run_until(500 * sim::kMillisecond);
  plain.snapshot();

  EXPECT_LT(scaled.core->energy_joules(), plain.energy_joules() * 0.8);
  // Both forwarded everything; both burned the whole core.
  EXPECT_EQ(scaled.port.total_dropped(), 0u);
  EXPECT_NEAR(static_cast<double>(scaled.core->busy_time()),
              static_cast<double>(plain.busy_time()), 2e6);
}

TEST(FreqScalingTest, BurstTriggersJumpToMax) {
  FreqScalingBed bed(0.0);
  bed.sim.run_until(200 * sim::kMillisecond);  // fully downclocked
  ASSERT_NEAR(bed.core->freq_ratio(), bed.core_cfg.min_freq_ratio, 1e-9);
  // Inject a burst well above the busy threshold.
  for (int i = 0; i < 256; ++i) {
    nic::PacketDesc p;
    p.arrival = bed.sim.now();
    bed.port.rx(p);
  }
  // Probe right after the burst is drained (a longer idle stretch would
  // legitimately step the frequency back down).
  bed.sim.run_until(bed.sim.now() + 200 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(bed.core->freq_ratio(), 1.0);
  EXPECT_GT(bed.stats.freq_jumps_up, 0u);
}

}  // namespace
}  // namespace metro
