// The deployment planner: closed-form predictions vs the simulator.
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "core/planner.hpp"

namespace metro::core {
namespace {

TEST(PlannerTest, RhoMatchesRateRatio) {
  PlannerInput in;
  in.rate_pps = 7.44e6;
  const auto out = plan(in);
  EXPECT_NEAR(out.rho, 7.44e6 / in.service_rate_pps, 1e-9);
}

TEST(PlannerTest, SaturationDetected) {
  PlannerInput in;
  in.rate_pps = in.service_rate_pps * 2.0;
  const auto out = plan(in);
  EXPECT_EQ(out.rho, 1.0);
  EXPECT_NEAR(out.cpu_percent, 100.0, 1e-9);
}

TEST(PlannerTest, CpuGrowsWithLoad) {
  PlannerInput in;
  double prev = -1.0;
  for (const double mpps : {0.5, 2.0, 7.44, 14.88}) {
    in.rate_pps = mpps * 1e6;
    const auto out = plan(in);
    EXPECT_GT(out.cpu_percent, prev);
    prev = out.cpu_percent;
  }
}

TEST(PlannerTest, WorstCaseExceedsMeanVacation) {
  PlannerInput in;
  const auto out = plan(in);
  EXPECT_GT(out.worst_case_delay_us, out.mean_vacation_us);
}

TEST(PlannerTest, MultiqueueSplitsLoad) {
  PlannerInput one;
  one.rate_pps = 30e6;
  one.n_queues = 1;
  one.n_threads = 4;
  PlannerInput four = one;
  four.n_queues = 4;
  // One queue at 30 Mpps is saturated; four queues are not.
  EXPECT_EQ(plan(one).rho, 1.0);
  EXPECT_LT(plan(four).rho, 0.5);
}

class PlannerVsSimTest : public ::testing::TestWithParam<double> {};

TEST_P(PlannerVsSimTest, PredictionsTrackSimulation) {
  const double mpps = GetParam();

  PlannerInput in;
  in.rate_pps = mpps * 1e6;
  const auto predicted = plan(in);

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.workload.rate_mpps = mpps;
  cfg.warmup = 100 * sim::kMillisecond;
  cfg.measure = 300 * sim::kMillisecond;
  const auto simulated = apps::run_experiment(cfg);

  // The planner is a coarse model: require agreement, not equality.
  EXPECT_NEAR(predicted.rho, simulated.rho, 0.10) << "rho";
  EXPECT_NEAR(predicted.ts_us, simulated.ts_us, 0.25 * predicted.ts_us) << "TS";
  EXPECT_NEAR(predicted.cpu_percent, simulated.cpu_percent,
              0.40 * predicted.cpu_percent + 4.0)
      << "CPU";
  // Vacation: the point prediction must land inside the model envelope
  // [TS_eff/M, TS_eff] together with the simulated value (the two can
  // differ by the residual thread-platooning the decorrelation assumption
  // ignores — see planner.hpp).
  const double ts_eff = predicted.ts_us + in.sleep_overhead_us;
  EXPECT_GE(simulated.vacation_us.mean(), ts_eff / in.n_threads * 0.8);
  EXPECT_LE(simulated.vacation_us.mean(), ts_eff * 1.3);
  EXPECT_NEAR(predicted.mean_vacation_us, simulated.vacation_us.mean(),
              0.75 * predicted.mean_vacation_us)
      << "vacation";
}

INSTANTIATE_TEST_SUITE_P(Loads, PlannerVsSimTest, ::testing::Values(1.0, 5.0, 10.0, 14.88));

}  // namespace
}  // namespace metro::core
