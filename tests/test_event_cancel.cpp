// The event-ID API: O(log n) timer cancellation and id staleness.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace metro::sim {
namespace {

TEST(EventCancelTest, CancelledEventNeverFires) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(10, [&] { fired.push_back(1); });
  const auto id = sim.schedule_at(20, [&] { fired.push_back(2); });
  sim.schedule_at(30, [&] { fired.push_back(3); });
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventCancelTest, CancelIsIdempotentAndStaleAfterFire) {
  Simulation sim;
  int fired = 0;
  const auto id = sim.schedule_at(10, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id)) << "double cancel must be a no-op";
  sim.run();
  EXPECT_EQ(fired, 0);

  const auto id2 = sim.schedule_after(10, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(id2)) << "fired events are stale";
  EXPECT_FALSE(sim.cancel(Simulation::kInvalidEvent));
}

TEST(EventCancelTest, StaleIdCannotAliasReusedSlot) {
  Simulation sim;
  int first = 0, second = 0;
  const auto id = sim.schedule_at(10, [&] { ++first; });
  ASSERT_TRUE(sim.cancel(id));
  // The freed slot is reused by the next callback; the old id must not
  // cancel the new event.
  sim.schedule_at(10, [&] { ++second; });
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(EventCancelTest, CancelFromInsideAHandler) {
  Simulation sim;
  int fired = 0;
  const auto doomed = sim.schedule_at(50, [&] { ++fired; });
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(doomed)); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 10);
}

TEST(EventCancelTest, CancelMiddleOfManyKeepsOrdering) {
  Simulation sim;
  std::vector<int> order;
  std::vector<Simulation::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(5 + (i % 10), [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event.
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
    } else {
      expected.push_back(i);
    }
  }
  sim.run();
  // Survivors still run in (time, insertion) order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](int a, int b) { return a % 10 < b % 10; });
  EXPECT_EQ(order, expected);
}

TEST(EventCancelTest, HeapStaysConsistentUnderChurn) {
  // Deterministic schedule/cancel churn; the run must execute exactly the
  // surviving events in order.
  Simulation sim;
  Rng rng(123);
  std::vector<Simulation::EventId> live;
  std::uint64_t scheduled = 0, cancelled = 0, fired = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto t = static_cast<Time>(rng.uniform_u64(10000));
    live.push_back(sim.schedule_at(t, [&fired] { ++fired; }));
    ++scheduled;
    if (!live.empty() && rng.chance(0.4)) {
      const auto pick = rng.uniform_u64(live.size());
      if (sim.cancel(live[pick])) ++cancelled;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  sim.run();
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace metro::sim
