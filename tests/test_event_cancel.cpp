// The event-ID API: stable-id timer cancellation and id staleness,
// parameterized over both event-queue backends (eager positional erase on
// the binary heap, lazy tombstoning on the ladder queue). The observable
// contract is identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace metro::sim {
namespace {

template <typename Backend>
class EventCancelTest : public ::testing::Test {
 public:
  using Sim = BasicSimulation<Backend>;
};

using Backends = ::testing::Types<BinaryHeapBackend, LadderQueueBackend, TimingWheelBackend>;
TYPED_TEST_SUITE(EventCancelTest, Backends);

TYPED_TEST(EventCancelTest, CancelledEventNeverFires) {
  typename TestFixture::Sim sim;
  std::vector<int> fired;
  sim.schedule_at(10, [&] { fired.push_back(1); });
  const auto id = sim.schedule_at(20, [&] { fired.push_back(2); });
  sim.schedule_at(30, [&] { fired.push_back(3); });
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TYPED_TEST(EventCancelTest, CancelIsIdempotentAndStaleAfterFire) {
  typename TestFixture::Sim sim;
  int fired = 0;
  const auto id = sim.schedule_at(10, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id)) << "double cancel must be a no-op";
  sim.run();
  EXPECT_EQ(fired, 0);

  const auto id2 = sim.schedule_after(10, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(id2)) << "fired events are stale";
  EXPECT_FALSE(sim.cancel(TestFixture::Sim::kInvalidEvent));
}

TYPED_TEST(EventCancelTest, StaleIdCannotAliasReusedSlot) {
  typename TestFixture::Sim sim;
  int first = 0, second = 0;
  const auto id = sim.schedule_at(10, [&] { ++first; });
  ASSERT_TRUE(sim.cancel(id));
  // The freed slot is reused by the next callback; the old id must not
  // cancel the new event.
  sim.schedule_at(10, [&] { ++second; });
  EXPECT_FALSE(sim.cancel(id));
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TYPED_TEST(EventCancelTest, CancelFromInsideAHandler) {
  typename TestFixture::Sim sim;
  int fired = 0;
  const auto doomed = sim.schedule_at(50, [&] { ++fired; });
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(doomed)); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 10);
}

TYPED_TEST(EventCancelTest, CancelLastPendingEventLeavesKernelIdle) {
  // The edge case tombstoning backends must get right: cancelling the only
  // pending event must report the kernel idle even though the tombstone
  // still occupies internal storage, and a later schedule must work.
  typename TestFixture::Sim sim;
  int fired = 0;
  const auto id = sim.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(sim.idle());
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.run(), 0) << "no live event may advance the clock";
  EXPECT_EQ(fired, 0);

  // The kernel must remain fully usable past the all-cancelled state —
  // including an event scheduled *earlier* than the dead one.
  sim.schedule_at(50, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_TRUE(sim.idle());
}

TYPED_TEST(EventCancelTest, CancelMiddleOfManyKeepsOrdering) {
  typename TestFixture::Sim sim;
  std::vector<int> order;
  std::vector<typename TestFixture::Sim::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(5 + (i % 10), [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event.
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
    } else {
      expected.push_back(i);
    }
  }
  sim.run();
  // Survivors still run in (time, insertion) order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](int a, int b) { return a % 10 < b % 10; });
  EXPECT_EQ(order, expected);
}

TYPED_TEST(EventCancelTest, QueueStaysConsistentUnderChurn) {
  // Deterministic schedule/cancel churn; the run must execute exactly the
  // surviving events in order.
  typename TestFixture::Sim sim;
  Rng rng(123);
  std::vector<typename TestFixture::Sim::EventId> live;
  std::uint64_t scheduled = 0, cancelled = 0, fired = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto t = static_cast<Time>(rng.uniform_u64(10000));
    live.push_back(sim.schedule_at(t, [&fired] { ++fired; }));
    ++scheduled;
    if (!live.empty() && rng.chance(0.4)) {
      const auto pick = rng.uniform_u64(live.size());
      if (sim.cancel(live[pick])) ++cancelled;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  sim.run();
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_TRUE(sim.idle());
}

TYPED_TEST(EventCancelTest, ChurnWhileRunning) {
  // Cancels issued from inside handlers while the queue is mid-drain, with
  // reschedules that reuse freed slots across the full range of pending
  // times.
  typename TestFixture::Sim sim;
  Rng rng(7);
  std::vector<typename TestFixture::Sim::EventId> live;
  std::uint64_t fired = 0, cancelled = 0, scheduled = 0;
  struct Churn {
    typename TestFixture::Sim* sim;
    Rng* rng;
    std::vector<typename TestFixture::Sim::EventId>* live;
    std::uint64_t *fired, *cancelled, *scheduled;
    int depth;
    void operator()() const {
      ++*fired;
      if (depth <= 0) return;
      auto id = sim->schedule_after(static_cast<Time>(1 + rng->uniform_u64(5000)),
                                    Churn{sim, rng, live, fired, cancelled, scheduled,
                                          depth - 1});
      ++*scheduled;
      live->push_back(id);
      if (!live->empty() && rng->chance(0.3)) {
        const auto pick = rng->uniform_u64(live->size());
        if (sim->cancel((*live)[pick])) ++*cancelled;
        live->erase(live->begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  };
  for (int i = 0; i < 64; ++i) {
    live.push_back(sim.schedule_at(static_cast<Time>(rng.uniform_u64(1000)),
                                   Churn{&sim, &rng, &live, &fired, &cancelled,
                                         &scheduled, 50}));
    ++scheduled;
  }
  sim.run();
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_TRUE(sim.idle());
  EXPECT_GT(fired, 1000u) << "churn must do real work";
}

}  // namespace
}  // namespace metro::sim
