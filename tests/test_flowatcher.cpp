// FloWatcher: flow accounting, heavy hitters, size histogram.
#include <gtest/gtest.h>

#include "apps/flowatcher.hpp"
#include "apps/l3fwd.hpp"

namespace metro::apps {
namespace {

using namespace metro::net;

FiveTuple flow_n(std::uint32_t n) {
  return FiveTuple{ipv4_addr(10, 0, 0, 1) + n, ipv4_addr(10, 1, 0, 1), 1000,
                   static_cast<std::uint16_t>(2000 + n), kIpProtoUdp};
}

TEST(FloWatcherTest, CountsPacketsAndBytesPerFlow) {
  FloWatcher fw;
  for (int i = 0; i < 5; ++i) {
    Packet pkt;
    build_udp_packet(pkt, flow_n(1), 64);
    EXPECT_TRUE(fw.observe(pkt, 1000 * i));
  }
  Packet big;
  build_udp_packet(big, flow_n(2), 1500);
  fw.observe(big, 9999);

  EXPECT_EQ(fw.total_packets(), 6u);
  EXPECT_EQ(fw.active_flows(), 2u);
  const FlowRecord* r1 = fw.flow(flow_n(1));
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->packets, 5u);
  EXPECT_EQ(r1->bytes, 5u * 60u);  // 64 B wire = 60 B in buffer
  EXPECT_EQ(r1->first_seen_ns, 0);
  EXPECT_EQ(r1->last_seen_ns, 4000);
}

TEST(FloWatcherTest, DescriptorPathMatchesPacketPath) {
  FloWatcher a, b;
  Packet pkt;
  build_udp_packet(pkt, flow_n(7), 64);
  a.observe(pkt, 5);
  FiveTuple t;
  ASSERT_TRUE(extract_five_tuple(pkt, t));
  b.observe_flow(t, static_cast<std::uint16_t>(pkt.size()), 5);
  EXPECT_EQ(a.total_packets(), b.total_packets());
  EXPECT_EQ(a.flow(flow_n(7))->packets, b.flow(flow_n(7))->packets);
}

TEST(FloWatcherTest, HeavyHittersSortedByPackets) {
  FloWatcher fw;
  for (std::uint32_t f = 0; f < 10; ++f) {
    for (std::uint32_t i = 0; i <= f * 10; ++i) fw.observe_flow(flow_n(f), 64, 0);
  }
  const auto top = fw.heavy_hitters(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].packets, 91u);
  EXPECT_EQ(top[1].packets, 81u);
  EXPECT_EQ(top[2].packets, 71u);
  EXPECT_EQ(top[0].flow, flow_n(9));
}

TEST(FloWatcherTest, HeavyHittersKLargerThanFlows) {
  FloWatcher fw;
  fw.observe_flow(flow_n(0), 64, 0);
  const auto top = fw.heavy_hitters(10);
  EXPECT_EQ(top.size(), 1u);
}

TEST(FloWatcherTest, NonIpCountedSeparately) {
  FloWatcher fw;
  Packet pkt;
  build_udp_packet(pkt, flow_n(0));
  pkt.at<EthernetHeader>(0)->ether_type = host_to_be16(0x0806);
  EXPECT_FALSE(fw.observe(pkt, 0));
  EXPECT_EQ(fw.total_packets(), 1u);
  EXPECT_EQ(fw.non_ip_packets(), 1u);
  EXPECT_EQ(fw.active_flows(), 0u);
}

TEST(FloWatcherTest, SizeHistogramBinsBySize) {
  FloWatcher fw;
  for (int i = 0; i < 10; ++i) fw.observe_flow(flow_n(0), 64, 0);
  for (int i = 0; i < 5; ++i) fw.observe_flow(flow_n(1), 1500, 0);
  const auto& h = fw.size_histogram();
  EXPECT_EQ(h.count(), 15u);
  EXPECT_NEAR(h.summary().mean(), (10 * 64 + 5 * 1500) / 15.0, 0.01);
}

TEST(FloWatcherTest, ManyFlowsSurviveTableChurn) {
  FloWatcher fw(1 << 12);
  for (std::uint32_t f = 0; f < 2000; ++f) fw.observe_flow(flow_n(f), 64, 0);
  EXPECT_EQ(fw.active_flows(), 2000u);
  for (std::uint32_t f = 0; f < 2000; ++f) {
    ASSERT_NE(fw.flow(flow_n(f)), nullptr) << "flow " << f;
  }
}

}  // namespace
}  // namespace metro::apps
