// Bench CLI parsing policy (bench/common.hpp): strict, fail-at-launch.
//
// A typoed flag on an overnight sweep used to silently run defaults and
// produce wrong-but-plausible numbers; try_parse_args/try_parse_fast are
// the testable cores behind the exiting wrappers, so the policy is pinned
// here without spawning processes.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "bench/common.hpp"

namespace metro::bench {
namespace {

/// argv builder: parse("--fast", "--jobs=4") -> try_parse_args result.
struct Parsed {
  bool ok = false;
  Args args;
  std::string error;
};

Parsed parse(std::vector<std::string> flags,
             BackendChoice def_backend = BackendChoice::kBoth, int def_jobs = 2) {
  std::vector<char*> argv;
  std::string argv0 = "bench_test";
  argv.push_back(argv0.data());
  for (auto& f : flags) argv.push_back(f.data());
  Parsed p;
  p.ok = try_parse_args(static_cast<int>(argv.size()), argv.data(), def_backend, def_jobs,
                        p.args, p.error);
  return p;
}

TEST(BenchArgsTest, NoFlagsKeepsDefaults) {
  const auto p = parse({}, BackendChoice::kHeap, 3);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_FALSE(p.args.fast);
  EXPECT_FALSE(p.args.list);
  EXPECT_EQ(p.args.backend, BackendChoice::kHeap);
  EXPECT_EQ(p.args.jobs, 3);
  EXPECT_TRUE(p.args.trace.empty());
  EXPECT_TRUE(p.args.only.empty());
  EXPECT_EQ(p.args.deadline_s, 0.0);
}

TEST(BenchArgsTest, AllFlagsParse) {
  const auto p = parse({"--fast", "--backend=ladder", "--jobs=8", "--trace=cap.pcap",
                        "--only=cbr_lossy,imix_corrupt", "--deadline=30", "--list"});
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_TRUE(p.args.fast);
  EXPECT_TRUE(p.args.list);
  EXPECT_EQ(p.args.backend, BackendChoice::kLadder);
  EXPECT_EQ(p.args.jobs, 8);
  EXPECT_EQ(p.args.trace, "cap.pcap");
  ASSERT_EQ(p.args.only.size(), 2u);
  EXPECT_EQ(p.args.only[0], "cbr_lossy");
  EXPECT_EQ(p.args.only[1], "imix_corrupt");
  EXPECT_DOUBLE_EQ(p.args.deadline_s, 30.0);
}

TEST(BenchArgsTest, UnknownFlagRejectedWithTheOffendingSpelling) {
  // The motivating typo: --backed must not silently run both backends.
  const auto p = parse({"--backed=ladder"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("--backed=ladder"), std::string::npos) << p.error;
  ASSERT_FALSE(parse({"--fats"}).ok);
  ASSERT_FALSE(parse({"extra_positional"}).ok);
  ASSERT_FALSE(parse({"--fast", "--nonsense"}).ok) << "later flags are checked too";
}

TEST(BenchArgsTest, BackendValueValidated) {
  EXPECT_EQ(parse({"--backend=heap"}).args.backend, BackendChoice::kHeap);
  EXPECT_EQ(parse({"--backend=ladder"}).args.backend, BackendChoice::kLadder);
  EXPECT_EQ(parse({"--backend=wheel"}).args.backend, BackendChoice::kWheel);
  EXPECT_EQ(parse({"--backend=both"}).args.backend, BackendChoice::kBoth);
  EXPECT_EQ(parse({"--backend=all"}).args.backend, BackendChoice::kAll);
  const auto p = parse({"--backend=lader"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("lader"), std::string::npos);
  const auto q = parse({"--backend=wheeel"});
  ASSERT_FALSE(q.ok);
  EXPECT_NE(q.error.find("wheeel"), std::string::npos);
  EXPECT_NE(q.error.find("wheel"), std::string::npos) << "error lists the valid spellings";
}

TEST(BenchArgsTest, BackendSelectionsMapToKinds) {
  using scenario::BackendKind;
  EXPECT_EQ(backend_kinds(BackendChoice::kWheel),
            (std::vector<BackendKind>{BackendKind::kWheel}));
  EXPECT_EQ(backend_kinds(BackendChoice::kBoth),
            (std::vector<BackendKind>{BackendKind::kHeap, BackendKind::kLadder}));
  EXPECT_EQ(backend_kinds(BackendChoice::kAll),
            (std::vector<BackendKind>{BackendKind::kHeap, BackendKind::kLadder,
                                      BackendKind::kWheel}));
}

TEST(BenchArgsTest, JobsMustBeAWholeNumberInRange) {
  EXPECT_EQ(parse({"--jobs=1"}).args.jobs, 1);
  EXPECT_EQ(parse({"--jobs=1024"}).args.jobs, 1024);
  EXPECT_FALSE(parse({"--jobs=0"}).ok);
  EXPECT_FALSE(parse({"--jobs=-2"}).ok);
  EXPECT_FALSE(parse({"--jobs=1025"}).ok);
  EXPECT_FALSE(parse({"--jobs=abc"}).ok);
  EXPECT_FALSE(parse({"--jobs=4x"}).ok) << "trailing garbage is malformed, not ignored";
  EXPECT_FALSE(parse({"--jobs="}).ok);
}

TEST(BenchArgsTest, TraceNeedsAPath) {
  EXPECT_FALSE(parse({"--trace="}).ok);
}

TEST(BenchArgsTest, OnlySplitsOnCommasAndSkipsEmpties) {
  const auto p = parse({"--only=a,,b,"});
  ASSERT_TRUE(p.ok) << p.error;
  ASSERT_EQ(p.args.only.size(), 2u);
  EXPECT_EQ(p.args.only[0], "a");
  EXPECT_EQ(p.args.only[1], "b");
  EXPECT_FALSE(parse({"--only="}).ok);
  EXPECT_FALSE(parse({"--only=,,"}).ok);
}

TEST(BenchArgsTest, DeadlineMustBePositiveSeconds) {
  EXPECT_DOUBLE_EQ(parse({"--deadline=0.5"}).args.deadline_s, 0.5);
  EXPECT_FALSE(parse({"--deadline=0"}).ok);
  EXPECT_FALSE(parse({"--deadline=-1"}).ok);
  EXPECT_FALSE(parse({"--deadline=soon"}).ok);
  EXPECT_FALSE(parse({"--deadline=1.5s"}).ok);
  EXPECT_FALSE(parse({"--deadline="}).ok);
}

TEST(BenchArgsTest, CryptoModeValidated) {
  EXPECT_EQ(parse({}).args.crypto, CryptoMode::kCalibrated) << "calibrated is the default";
  EXPECT_EQ(parse({"--crypto=calibrated"}).args.crypto, CryptoMode::kCalibrated);
  EXPECT_EQ(parse({"--crypto=live"}).args.crypto, CryptoMode::kLive);
  const auto p = parse({"--crypto=lvie"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("lvie"), std::string::npos);
  EXPECT_NE(p.error.find("live"), std::string::npos) << "error lists the valid spellings";
  EXPECT_FALSE(parse({"--crypto="}).ok);
}

TEST(BenchArgsTest, SeriesMustBePositiveMicros) {
  EXPECT_DOUBLE_EQ(parse({}).args.series_us, 0.0) << "series sampling is off by default";
  EXPECT_DOUBLE_EQ(parse({"--series=5000"}).args.series_us, 5000.0);
  EXPECT_DOUBLE_EQ(parse({"--series=0.5"}).args.series_us, 0.5);
  EXPECT_FALSE(parse({"--series=0"}).ok);
  EXPECT_FALSE(parse({"--series=-100"}).ok);
  EXPECT_FALSE(parse({"--series=soon"}).ok);
  EXPECT_FALSE(parse({"--series=5000us"}).ok) << "trailing garbage is malformed";
  EXPECT_FALSE(parse({"--series="}).ok);
  const auto p = parse({"--series=abc"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("abc"), std::string::npos) << p.error;
}

TEST(BenchArgsTest, TraceOutNeedsAPath) {
  EXPECT_TRUE(parse({}).args.trace_out.empty()) << "tracing is off by default";
  EXPECT_EQ(parse({"--trace-out=t.json"}).args.trace_out, "t.json");
  EXPECT_FALSE(parse({"--trace-out="}).ok);
  // --trace-out must not be swallowed by the --trace= prefix (a pcap path
  // named "-out=t.json" would be silently wrong).
  EXPECT_TRUE(parse({"--trace-out=t.json"}).args.trace.empty());
  EXPECT_EQ(parse({"--trace=cap.pcap", "--trace-out=t.json"}).args.trace, "cap.pcap");
}

TEST(BenchArgsTest, FlowsMustBeAPositiveCount) {
  EXPECT_EQ(parse({}).args.flows, 0u) << "registry populations are the default";
  EXPECT_EQ(parse({"--flows=1"}).args.flows, 1u);
  EXPECT_EQ(parse({"--flows=4194304"}).args.flows, 4194304u);
  EXPECT_EQ(parse({"--flows=67108864"}).args.flows, 67108864u) << "2^26 is the ceiling";
  EXPECT_FALSE(parse({"--flows=67108865"}).ok) << "beyond 2^26 is rejected";
  EXPECT_FALSE(parse({"--flows=0"}).ok);
  EXPECT_FALSE(parse({"--flows=-5"}).ok);
  EXPECT_FALSE(parse({"--flows=many"}).ok);
  EXPECT_FALSE(parse({"--flows=1e6"}).ok) << "trailing garbage is malformed";
  EXPECT_FALSE(parse({"--flows="}).ok);
  const auto p = parse({"--flows=abc"});
  ASSERT_FALSE(p.ok);
  EXPECT_NE(p.error.find("abc"), std::string::npos) << p.error;
}

TEST(BenchArgsTest, UsageTextMentionsEveryFlag) {
  const std::string usage = usage_text();
  for (const char* flag : {"--fast", "--backend", "--jobs", "--trace", "--list", "--only",
                           "--deadline", "--crypto", "--series", "--trace-out", "--flows"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(BenchArgsTest, ParseFastAcceptsOnlyFast) {
  std::string argv0 = "bench_fig", f1 = "--fast";
  std::array<char*, 2> ok_argv{argv0.data(), f1.data()};
  bool fast = false;
  std::string error;
  ASSERT_TRUE(try_parse_fast(2, ok_argv.data(), fast, error));
  EXPECT_TRUE(fast);
  ASSERT_TRUE(try_parse_fast(1, ok_argv.data(), fast, error));
  EXPECT_FALSE(fast) << "no flags: full windows";

  // The single-flag benches reject sweep flags too — --jobs on a bench
  // whose headline is wall time would silently mean nothing.
  std::string f2 = "--jobs=4";
  std::array<char*, 2> bad_argv{argv0.data(), f2.data()};
  ASSERT_FALSE(try_parse_fast(2, bad_argv.data(), fast, error));
  EXPECT_NE(error.find("--jobs=4"), std::string::npos) << error;
}

}  // namespace
}  // namespace metro::bench
