// Cuckoo exact-match table: semantics and load behaviour.
#include <gtest/gtest.h>

#include <unordered_map>

#include "net/exact_match.hpp"
#include "net/flow.hpp"
#include "sim/rng.hpp"

namespace metro::net {
namespace {

struct TupleHasher {
  std::uint64_t operator()(const FiveTuple& t) const { return flow_hash(t); }
};
using Table = CuckooTable<FiveTuple, int, TupleHasher>;

FiveTuple tuple_of(std::uint32_t i) {
  return FiveTuple{i, ~i, static_cast<std::uint16_t>(i * 7), static_cast<std::uint16_t>(i * 13),
                   17};
}

TEST(CuckooTest, InsertAndFind) {
  Table t(64);
  EXPECT_TRUE(t.insert(tuple_of(1), 100));
  EXPECT_TRUE(t.insert(tuple_of(2), 200));
  EXPECT_EQ(t.find(tuple_of(1)).value(), 100);
  EXPECT_EQ(t.find(tuple_of(2)).value(), 200);
  EXPECT_FALSE(t.find(tuple_of(3)).has_value());
  EXPECT_EQ(t.size(), 2u);
}

TEST(CuckooTest, InsertUpdatesExistingKey) {
  Table t(64);
  EXPECT_TRUE(t.insert(tuple_of(1), 1));
  EXPECT_TRUE(t.insert(tuple_of(1), 2));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(tuple_of(1)).value(), 2);
}

TEST(CuckooTest, EraseRemoves) {
  Table t(64);
  t.insert(tuple_of(5), 50);
  EXPECT_TRUE(t.erase(tuple_of(5)));
  EXPECT_FALSE(t.find(tuple_of(5)).has_value());
  EXPECT_FALSE(t.erase(tuple_of(5)));
  EXPECT_EQ(t.size(), 0u);
}

TEST(CuckooTest, FindMutAllowsInPlaceUpdate) {
  Table t(64);
  t.insert(tuple_of(9), 1);
  int* v = t.find_mut(tuple_of(9));
  ASSERT_NE(v, nullptr);
  *v = 42;
  EXPECT_EQ(t.find(tuple_of(9)).value(), 42);
  EXPECT_EQ(t.find_mut(tuple_of(777)), nullptr);
}

TEST(CuckooTest, SurvivesHighLoadWithDisplacements) {
  // Fill to ~90% of the allocated slot count; displacements must keep all
  // earlier entries reachable.
  Table t(1000);
  const auto target = static_cast<std::uint32_t>(t.capacity() * 9 / 10);
  std::uint32_t inserted = 0;
  for (std::uint32_t i = 0; i < target; ++i) {
    if (!t.insert(tuple_of(i), static_cast<int>(i))) break;
    ++inserted;
  }
  EXPECT_GT(inserted, target * 8 / 10);
  for (std::uint32_t i = 0; i < inserted; ++i) {
    const auto v = t.find(tuple_of(i));
    ASSERT_TRUE(v.has_value()) << "lost key " << i << " of " << inserted;
    ASSERT_EQ(*v, static_cast<int>(i));
  }
}

TEST(CuckooTest, MatchesReferenceMapUnderChurn) {
  sim::Rng rng(77);
  Table t(512);
  std::unordered_map<FiveTuple, int> ref;
  for (int op = 0; op < 20000; ++op) {
    const auto key = tuple_of(static_cast<std::uint32_t>(rng.uniform_u64(300)));
    const int action = static_cast<int>(rng.uniform_u64(3));
    if (action == 0) {
      const int v = static_cast<int>(rng.uniform_u64(1 << 20));
      if (t.insert(key, v)) ref[key] = v;
    } else if (action == 1) {
      const bool a = t.erase(key);
      const bool b = ref.erase(key) > 0;
      ASSERT_EQ(a, b);
    } else {
      const auto got = t.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(got.has_value(), it != ref.end());
      if (got.has_value()) ASSERT_EQ(*got, it->second);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
}

TEST(CuckooTest, ForEachVisitsAllEntries) {
  Table t(128);
  for (std::uint32_t i = 0; i < 50; ++i) t.insert(tuple_of(i), static_cast<int>(i));
  int count = 0;
  long long sum = 0;
  t.for_each([&](const FiveTuple&, const int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 50);
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST(CuckooTest, CapacityRoundedUp) {
  Table t(100);
  EXPECT_GE(t.capacity(), 200u);  // 2x headroom, power-of-two buckets
}

}  // namespace
}  // namespace metro::net
