// pcap read/write and trace-based workload generation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "net/packet_builder.hpp"
#include "net/pcap.hpp"
#include "nic/port.hpp"
#include "scenario/sweep.hpp"
#include "tgen/trace.hpp"

namespace metro {
namespace {

using net::PcapPacket;
using net::PcapReader;
using net::PcapWriter;

PcapPacket make_record(std::int64_t ts, std::size_t len, std::uint8_t fill) {
  PcapPacket p;
  p.timestamp_ns = ts;
  p.data.assign(len, fill);
  return p;
}

TEST(PcapTest, WriteReadRoundTrip) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    writer.write(make_record(1'000'000, 60, 0xaa));
    writer.write(make_record(2'500'000, 128, 0xbb));
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  const auto packets = PcapReader::read_all(buf);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].timestamp_ns, 1'000'000);
  EXPECT_EQ(packets[0].data.size(), 60u);
  EXPECT_EQ(packets[0].data[10], 0xaa);
  EXPECT_EQ(packets[1].timestamp_ns, 2'500'000);
  EXPECT_EQ(packets[1].data.size(), 128u);
}

TEST(PcapTest, MicrosecondTimestampGranularity) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    writer.write(make_record(1234, 60, 0));  // 1234 ns -> 1 us file -> 1000 ns back
  }
  const auto packets = PcapReader::read_all(buf);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].timestamp_ns, 1000);
}

TEST(PcapTest, BadMagicRejected) {
  std::stringstream buf;
  buf.write("not a pcap file at all....", 24);
  EXPECT_THROW(PcapReader reader(buf), std::runtime_error);
}

TEST(PcapTest, TruncatedRecordRejected) {
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    writer.write(make_record(0, 60, 0));
  }
  std::string content = buf.str();
  content.resize(content.size() - 10);  // chop packet bytes
  std::stringstream cut(content);
  PcapReader reader(cut);
  PcapPacket pkt;
  EXPECT_THROW(reader.next(pkt), std::runtime_error);
}

TEST(PcapTest, SnaplenCapsCaplen) {
  std::stringstream buf;
  {
    PcapWriter writer(buf, 32);
    writer.write(make_record(0, 100, 0x7));
  }
  const auto packets = PcapReader::read_all(buf);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].data.size(), 32u);  // caplen, not original length
}

TEST(TraceTest, SynthesisedTraceHasRequestedMix) {
  const auto trace = tgen::synthesise_unbalanced_trace(1000, 0.30, 7);
  ASSERT_EQ(trace.size(), 1000u);
  const auto entries = tgen::parse_trace(trace);
  ASSERT_EQ(entries.size(), 1000u);
  // Count the dominant flow.
  std::size_t heavy = 0;
  for (const auto& e : entries) {
    if (e.tuple.dst_port == 8888) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / 1000.0, 0.30, 0.05);
}

TEST(TraceTest, TraceSurvivesPcapRoundTrip) {
  const auto trace = tgen::synthesise_unbalanced_trace(100, 0.3, 9);
  std::stringstream buf;
  {
    PcapWriter writer(buf);
    for (const auto& rec : trace) writer.write(rec);
  }
  const auto back = PcapReader::read_all(buf);
  const auto a = tgen::parse_trace(trace);
  const auto b = tgen::parse_trace(back);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].tuple, b[i].tuple);
    ASSERT_EQ(a[i].rss_hash, b[i].rss_hash);
  }
}

TEST(TraceTest, GeneratorLoopsTheTraceAtRate) {
  auto entries = tgen::parse_trace(tgen::synthesise_unbalanced_trace(10, 0.3, 3));
  ASSERT_EQ(entries.size(), 10u);
  tgen::TraceGenerator gen(entries, 1e6, 25 * sim::kMicrosecond);
  int count = 0;
  sim::Time prev = -1;
  std::uint32_t first_hash = entries[0].rss_hash;
  while (auto pkt = gen.next()) {
    if (count == 0) {
      EXPECT_EQ(pkt->rss_hash, first_hash);
    }
    if (count == 10) {
      EXPECT_EQ(pkt->rss_hash, first_hash);  // looped
    }
    if (prev >= 0) {
      EXPECT_EQ(pkt->arrival - prev, 1000);
    }
    prev = pkt->arrival;
    ++count;
  }
  EXPECT_EQ(count, 25);
}

// The --trace=<file> path: an *external* on-disk pcap replayed through the
// kTrace arrival model must drive a full experiment, and stay as
// cross-backend deterministic as the synthesised trace.
TEST(TraceTest, ExternalPcapFileReplaysThroughTestbed) {
  const std::string path = ::testing::TempDir() + "metro_external_trace.pcap";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    PcapWriter writer(out);
    for (const auto& rec : tgen::synthesise_unbalanced_trace(200, 0.4, 21)) writer.write(rec);
  }

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.n_queues = 1;
  cfg.n_cores = 2;
  cfg.met.n_threads = 2;
  cfg.workload.model = apps::ArrivalModel::kTrace;
  cfg.workload.trace.path = path;
  cfg.workload.rate_mpps = 2.0;
  cfg.warmup = sim::kMillisecond;
  cfg.measure = 4 * sim::kMillisecond;

  const auto run = [&](scenario::BackendKind backend) {
    return scenario::SweepRunner(1).run({scenario::Shard{"ext_trace", backend, cfg}}).at(0);
  };
  const auto heap = run(scenario::BackendKind::kHeap);
  const auto ladder = run(scenario::BackendKind::kLadder);
  EXPECT_GT(heap.counters.processed, 1000u) << "external trace must drive real traffic";
  EXPECT_EQ(heap.fingerprint, ladder.fingerprint);
  EXPECT_EQ(heap.final_clock, ladder.final_clock);
  std::remove(path.c_str());
}

TEST(TraceTest, MissingExternalPcapFailsLoudly) {
  apps::ExperimentConfig cfg;
  cfg.workload.model = apps::ArrivalModel::kTrace;
  cfg.workload.trace.path = "/nonexistent/metro_no_such_trace.pcap";
  EXPECT_THROW(apps::Testbed bed(cfg), std::runtime_error);
}

TEST(TraceTest, NonIpFramesSkippedByParser) {
  auto trace = tgen::synthesise_unbalanced_trace(5, 0.0, 1);
  PcapPacket arp;
  arp.data.assign(60, 0);
  arp.data[12] = 0x08;
  arp.data[13] = 0x06;  // ARP ethertype
  trace.push_back(arp);
  EXPECT_EQ(tgen::parse_trace(trace).size(), 5u);
}

TEST(TraceTest, RssHashesSpreadAcrossQueues) {
  // The synthetic trace's real headers must RSS-spread like the paper's:
  // heavy flow on one queue, the rest roughly uniform.
  const auto entries = tgen::parse_trace(tgen::synthesise_unbalanced_trace(1000, 0.30, 11));
  std::array<int, 3> counts{};
  for (const auto& e : entries) counts[e.rss_hash % 3]++;
  // The hot queue takes ~30% + ~23% = ~53%, others ~23% each (Table III).
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(counts[2], 400);
  EXPECT_LT(counts[0], 350);
}

TEST(ImixTest, MixMatchesNominalShares) {
  sim::Rng rng(5);
  tgen::ImixSizes imix;
  std::map<int, int> counts;
  const int n = 120000;
  for (int i = 0; i < n; ++i) counts[imix.next(rng)]++;
  EXPECT_NEAR(counts[64] / static_cast<double>(n), 7.0 / 12.0, 0.01);
  EXPECT_NEAR(counts[570] / static_cast<double>(n), 4.0 / 12.0, 0.01);
  EXPECT_NEAR(counts[1518] / static_cast<double>(n), 1.0 / 12.0, 0.01);
}

}  // namespace
}  // namespace metro
