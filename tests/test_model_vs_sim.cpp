// Model <-> simulator cross-validation (the paper's Fig. 4 methodology,
// kept as permanent regression tests).
//
// Fixed (non-adaptive) timeouts isolate the renewal process from the
// tuner, so the §IV formulas must predict what the simulator measures.
// All runs aggregate several seeds: the formulas describe the phase
// *ensemble* (see bench/fig4_vacation_pdf.cpp for the discussion).
#include <gtest/gtest.h>

#include "apps/experiment.hpp"
#include "core/model.hpp"
#include "stats/summary.hpp"
#include "util/seed_mix.hpp"

namespace metro {
namespace {

struct FixedTimeoutRun {
  stats::Summary vacation_us;
  double sleep_overhead_us = 0.0;  // measured effective - requested
  std::uint64_t lock_successes = 0;
  std::uint64_t total_tries = 0;
};

FixedTimeoutRun run_fixed(int m, double ts_us, double tl_us, double rate_mpps, int seeds) {
  FixedTimeoutRun out;
  for (int seed = 0; seed < seeds; ++seed) {
    apps::ExperimentConfig cfg;
    cfg.driver = apps::DriverKind::kMetronome;
    cfg.seed = util::mix_seed(100, static_cast<std::uint64_t>(seed));
    cfg.met.n_threads = m;
    cfg.n_cores = 3;
    cfg.met.adaptive = false;
    cfg.met.fixed_ts = sim::from_micros(ts_us);
    cfg.met.long_timeout = sim::from_micros(tl_us);
    cfg.met.sleep.dispatch_tail = false;  // pure analytical setting
    cfg.workload.rate_mpps = rate_mpps;
    cfg.workload.seed = cfg.seed;
    cfg.warmup = 30 * sim::kMillisecond;
    cfg.measure = 150 * sim::kMillisecond;
    const auto r = apps::run_experiment(cfg);
    out.vacation_us.merge(r.vacation_us);
    out.lock_successes += r.wakeups - static_cast<std::uint64_t>(
                              r.busy_tries_pct / 100.0 * static_cast<double>(r.wakeups) + 0.5);
    out.total_tries += r.wakeups;
  }
  return out;
}

// The sleep service adds ~6-7 us at the 50 us scale (Fig. 1 calibration);
// measure it once so the model formulas get *effective* timeouts.
double effective_timeout(double requested_us) {
  // anchors: +3.46 at 10 us, +8.45 at 100 us, log-interpolated, plus the
  // dispatch base. Use the same interpolation the model was fitted on.
  const double t = (std::log10(requested_us) - 1.0) / 1.0;  // within [10,100]
  return requested_us + 3.46 + t * (8.45 - 3.46) + 0.4;
}

TEST(ModelVsSimTest, EqualTimeoutsMeanVacationMatchesTlOverM) {
  // TS = TL: E[V] = TL_eff / M at any load (eq. 6 with TS = TL).
  for (const int m : {2, 3, 5}) {
    const auto run = run_fixed(m, 50.0, 50.0, 0.0, 8);
    const double tl_eff = effective_timeout(50.0);
    EXPECT_NEAR(run.vacation_us.mean(), tl_eff / m, 0.12 * tl_eff / m)
        << "M=" << m;
  }
}

TEST(ModelVsSimTest, HighLoadMeanVacationMatchesEq6) {
  // TS << TL at line rate: a single anchor primary + uniform backups.
  const double ts_us = 15.0, tl_us = 500.0;
  const auto run = run_fixed(3, ts_us, tl_us, 14.88, 6);
  const double expect =
      core::model::mean_vacation_high_load(effective_timeout(ts_us), effective_timeout(tl_us), 3);
  EXPECT_NEAR(run.vacation_us.mean(), expect, 0.15 * expect);
}

TEST(ModelVsSimTest, VacationNeverExceedsShortTimeoutPlusOverheadAtHighLoad) {
  // With no dispatch tail, the anchor primary bounds V by TS_eff (plus the
  // busy-try window of simultaneous wake-ups).
  const auto run = run_fixed(3, 15.0, 500.0, 14.88, 4);
  EXPECT_LE(run.vacation_us.max(), effective_timeout(15.0) * 1.35);
}

TEST(ModelVsSimTest, BackupSuccessProbabilityMatchesEq7Scale) {
  // Eq. (7): per backup wake-up, P(success) = (1-(1-TS/TL)^(M-1))/(M-1).
  // We can observe the aggregate: at high load every vacation ends with
  // exactly one success, and backups wake ~ (M-1)/TL per second. The
  // fraction of successes attributable to backups is P * (M-1) * cycles...
  // Simplest observable: total successes per second ~= 1 / E[cycle], and
  // backup wake rate * Ps must be <= that. Verify the rates are mutually
  // consistent within 25%.
  const double ts_us = 15.0, tl_us = 500.0;
  const int m = 3;
  const auto run = run_fixed(m, ts_us, tl_us, 14.88, 6);
  const double window_s = 6 * 0.150;
  const double cycles_per_s = static_cast<double>(run.vacation_us.count()) / window_s;
  // Every cycle = one success; tries - successes = busy tries from backups.
  const double success_rate = cycles_per_s;
  EXPECT_GT(success_rate, 1e4);  // sanity: the system is actually cycling
  // Ps from eq. (7) with effective timeouts; backups wake at (M-1)/TL_eff
  // (they hold the backup role almost always at line rate).
  const double ps = core::model::backup_success_prob(effective_timeout(ts_us),
                                                     effective_timeout(tl_us), m);
  const double backup_wake_rate = (m - 1) * 1e6 / effective_timeout(tl_us) / 1.0;
  const double backup_successes = backup_wake_rate * ps;
  // Backup takeovers are a small fraction of all successes; the anchor
  // primary supplies the rest. Consistency: takeovers < 10% of successes.
  EXPECT_LT(backup_successes, success_rate * 0.10);
  // And the busy-try rate implied by eq. 7 matches the measurement scale.
  const double measured_busy_rate =
      static_cast<double>(run.total_tries - run.vacation_us.count()) / window_s;
  const double predicted_busy_rate = backup_wake_rate * (1.0 - ps);
  EXPECT_NEAR(measured_busy_rate, predicted_busy_rate, predicted_busy_rate * 0.5 + 500.0);
}

TEST(ModelVsSimTest, RhoEstimatorUnbiasedAcrossLoads) {
  // The EWMA of eq. (4) samples must converge to lambda/mu at any load
  // (adaptive mode, the production configuration).
  const double mu = 1e9 / static_cast<double>(sim::calib::kL3fwdPerPacketCost);
  for (const double mpps : {2.0, 7.44, 13.0}) {
    apps::ExperimentConfig cfg;
    cfg.driver = apps::DriverKind::kMetronome;
    cfg.workload.rate_mpps = mpps;
    cfg.warmup = 100 * sim::kMillisecond;
    cfg.measure = 200 * sim::kMillisecond;
    const auto r = apps::run_experiment(cfg);
    EXPECT_NEAR(r.rho, mpps * 1e6 / mu, 0.05 + 0.1 * mpps * 1e6 / mu) << mpps;
  }
}

}  // namespace
}  // namespace metro
