// Observability layer: SeriesRecorder window algebra, sweep time-series
// determinism, tracer purity, and the Chrome trace export.
//
// The time series and the tracer are *pure observers* — the tests here pin
// the three properties that make them safe to leave on in CI:
//   1. the per-window deltas obey the documented per-kind algebra (window
//      sums reconstruct the run delta bit-exactly),
//   2. series and merged reports are bit-identical for any worker count,
//      and telemetry fingerprints do not move when tracing is armed,
//   3. recording is bounded (full rings count drops, never grow).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/experiment.hpp"
#include "scenario/sweep.hpp"
#include "sim/simulation.hpp"
#include "stats/metric_set.hpp"
#include "stats/time_series.hpp"
#include "stats/trace.hpp"

namespace metro {
namespace {

using scenario::BackendKind;
using scenario::SeriesWindow;
using scenario::ShardResult;
using scenario::ShardSeries;

// --- SeriesRecorder window algebra (synthetic registry) ---------------------

/// A registry with one metric of every kind, mutated by hand between
/// manual sample() calls so each window's expected delta is known exactly.
struct SyntheticMetrics {
  stats::MetricSet set;
  std::uint64_t hits = 0;
  double level = 0.0;
  stats::Summary& lat;
  stats::Histogram& hist;

  SyntheticMetrics()
      : lat(set.summary("lat_us")), hist(set.histogram("lat_hist", 1.0, 50.0)) {
    set.attach_counter("hits", hits);
    set.attach_gauge("level", level);
  }

  void record(std::uint64_t n, double value) {
    for (std::uint64_t i = 0; i < n; ++i) {
      ++hits;
      lat.add(value);
      hist.add(value);
    }
    level = value;
  }
};

TEST(SeriesRecorderTest, WindowDeltasObeyThePerKindAlgebra) {
  SyntheticMetrics m;
  stats::SeriesConfig cfg;
  cfg.interval = 1000;
  cfg.capacity = 8;
  stats::SeriesRecorder rec(m.set, cfg);

  rec.prime(0);
  m.record(10, 3.0);
  rec.sample(1000);
  m.record(25, 7.0);
  rec.sample(2000);
  m.record(5, 42.0);
  rec.finish(2500);  // partial tail window still closes

  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.window(0).t_end, 1000);
  EXPECT_EQ(rec.window(1).t_end, 2000);
  EXPECT_EQ(rec.window(2).t_end, 2500);

  // Counters: exact per-window deltas that sum to the run delta.
  EXPECT_EQ(rec.window(0).delta.counter("hits"), 10u);
  EXPECT_EQ(rec.window(1).delta.counter("hits"), 25u);
  EXPECT_EQ(rec.window(2).delta.counter("hits"), 5u);

  // Gauges: a level, not a total — each window reports the value at its
  // close, and the last window is the final level.
  EXPECT_DOUBLE_EQ(rec.window(0).delta.gauge("level"), 3.0);
  EXPECT_DOUBLE_EQ(rec.window(1).delta.gauge("level"), 7.0);
  EXPECT_DOUBLE_EQ(rec.window(2).delta.gauge("level"), 42.0);

  // Summaries: count and sum are window-exact (moment subtraction).
  std::uint64_t sum_count = 0;
  double sum_sum = 0.0;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    sum_count += rec.window(i).delta.summary("lat_us").count();
    sum_sum += rec.window(i).delta.summary("lat_us").sum();
  }
  EXPECT_EQ(sum_count, m.lat.count());
  EXPECT_DOUBLE_EQ(sum_sum, m.lat.sum());
  EXPECT_EQ(rec.window(1).delta.summary("lat_us").count(), 25u);
  EXPECT_DOUBLE_EQ(rec.window(1).delta.summary("lat_us").sum(), 25 * 7.0);
  EXPECT_DOUBLE_EQ(rec.window(1).delta.summary("lat_us").mean(), 7.0);

  // Histograms: bin-wise exact subtraction — summing every window's bins
  // reconstructs the run histogram bin for bin.
  const stats::Histogram& run = m.hist;
  for (std::size_t b = 0; b < run.n_bins(); ++b) {
    std::uint64_t windows_sum = 0;
    for (std::size_t i = 0; i < rec.size(); ++i) {
      windows_sum += rec.window(i).delta.histogram("lat_hist").bin_count(b);
    }
    ASSERT_EQ(windows_sum, run.bin_count(b)) << "bin " << b;
  }
  EXPECT_EQ(rec.window(2).delta.histogram("lat_hist").count(), 5u);

  // Each window's precomputed fingerprint is the fingerprint of its delta.
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.window(i).fingerprint, rec.window(i).delta.fingerprint()) << i;
  }
  EXPECT_NE(rec.window(0).fingerprint, rec.window(1).fingerprint)
      << "different window contents must fingerprint differently";
}

TEST(SeriesRecorderTest, FinishClosesATailOnlyWhenSomethingHappened) {
  SyntheticMetrics m;
  stats::SeriesRecorder rec(m.set, {1000, 4});
  rec.prime(0);
  m.record(3, 1.0);
  rec.sample(1000);
  rec.finish(1000);  // nothing since the last edge: no empty tail window
  EXPECT_EQ(rec.size(), 1u);

  // Same-timestamp work after the last sample still lands in a window: a
  // periodic tick fires before other events sharing its fire time, so the
  // tail must close on "registry moved", not just "time elapsed".
  stats::SeriesRecorder rec2(m.set, {1000, 4});
  rec2.prime(0);
  m.record(2, 1.0);
  rec2.sample(1000);
  m.record(4, 1.0);
  rec2.finish(1000);
  ASSERT_EQ(rec2.size(), 2u);
  EXPECT_EQ(rec2.window(1).delta.counter("hits"), 4u);
  EXPECT_EQ(rec2.window(1).t_end, 1000);
}

TEST(SeriesRecorderTest, FullRingCountsDropsInsteadOfGrowing) {
  SyntheticMetrics m;
  stats::SeriesRecorder rec(m.set, {1000, 2});
  rec.prime(0);
  for (int i = 1; i <= 5; ++i) {
    m.record(1, 1.0);
    rec.sample(i * 1000);
  }
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.capacity(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  // The surviving windows are the first two, untouched by the overflow.
  EXPECT_EQ(rec.window(0).t_end, 1000);
  EXPECT_EQ(rec.window(1).t_end, 2000);
}

TEST(SeriesRecorderTest, RejectsDegenerateConfig) {
  SyntheticMetrics m;
  EXPECT_THROW(stats::SeriesRecorder(m.set, {0, 8}), std::invalid_argument);
  EXPECT_THROW(stats::SeriesRecorder(m.set, {-5, 8}), std::invalid_argument);
  EXPECT_THROW(stats::SeriesRecorder(m.set, {1000, 0}), std::invalid_argument);
}

TEST(SeriesRecorderTest, ArmedSamplingTicksOnTheKernel) {
  SyntheticMetrics m;
  sim::Simulation sim;
  struct Bump {
    sim::Simulation* sim;
    SyntheticMetrics* m;
    void operator()() const {
      m->record(1, 2.0);
      sim->schedule_after(100, *this);
    }
  };
  sim.schedule_after(100, Bump{&sim, &m});

  stats::SeriesRecorder rec(m.set, {1000, 16});
  rec.arm(sim);
  EXPECT_TRUE(rec.armed());
  sim.run_until(10 * 1000);
  rec.finish(sim.now());
  EXPECT_FALSE(rec.armed());

  // 10 periodic windows, plus the same-timestamp tail: the bump sharing
  // the final tick's fire time lands after the tick, so finish() closes
  // one more window at the same t_end to keep the sum identity.
  ASSERT_EQ(rec.size(), 11u);
  EXPECT_EQ(rec.window(9).t_end, rec.window(10).t_end);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rec.size(); ++i) {
    total += rec.window(i).delta.counter("hits");
  }
  EXPECT_EQ(total, m.hits) << "armed windows sum to the run total";

  // Disarm is final: further kernel time adds no windows.
  sim.run_until(20 * 1000);
  EXPECT_EQ(rec.size(), 11u);
}

// --- sweep integration: series determinism, tracer purity -------------------

apps::ExperimentConfig series_config() {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 3;
  cfg.met.n_threads = 3;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 12.0;
  cfg.workload.n_flows = 256;
  cfg.warmup = 2 * sim::kMillisecond;
  cfg.measure = 5 * sim::kMillisecond;
  cfg.seed = 1234;
  cfg.series_interval = sim::kMillisecond;
  return cfg;
}

std::vector<scenario::Shard> series_shards() {
  std::vector<scenario::Shard> shards;
  for (const auto backend : {BackendKind::kHeap, BackendKind::kLadder, BackendKind::kWheel}) {
    auto cfg = series_config();
    shards.push_back({"series_point", backend, cfg});
  }
  return shards;
}

void expect_same_series(const ShardSeries& a, const ShardSeries& b, const char* what) {
  ASSERT_EQ(a.interval, b.interval) << what;
  ASSERT_EQ(a.dropped_windows, b.dropped_windows) << what;
  ASSERT_EQ(a.windows.size(), b.windows.size()) << what;
  for (std::size_t k = 0; k < a.windows.size(); ++k) {
    const SeriesWindow& x = a.windows[k];
    const SeriesWindow& y = b.windows[k];
    EXPECT_EQ(x.t_end, y.t_end) << what << " window " << k;
    EXPECT_EQ(x.fingerprint, y.fingerprint) << what << " window " << k;
    EXPECT_EQ(x.rx, y.rx) << what << " window " << k;
    EXPECT_EQ(x.tx, y.tx) << what << " window " << k;
    EXPECT_EQ(x.dropped, y.dropped) << what << " window " << k;
    EXPECT_EQ(x.latency_count, y.latency_count) << what << " window " << k;
    EXPECT_EQ(x.latency_sum_us, y.latency_sum_us) << what << " window " << k;
    EXPECT_EQ(x.wakeups, y.wakeups) << what << " window " << k;
  }
}

TEST(SweepSeriesTest, SeriesAndMergedReportIdenticalAcrossWorkerCounts) {
  const auto shards = series_shards();
  const auto serial = scenario::SweepRunner(1).run(shards);
  const auto parallel = scenario::SweepRunner(4).run(shards);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].failed) << serial[i].error;
    EXPECT_EQ(serial[i].fingerprint, parallel[i].fingerprint) << "shard " << i;
    ASSERT_GT(serial[i].series.windows.size(), 2u) << "series recorded";
    expect_same_series(serial[i].series, parallel[i].series,
                       ("shard " + std::to_string(i)).c_str());
  }
  expect_same_series(scenario::merge_timeseries(serial),
                     scenario::merge_timeseries(parallel), "merged");
  EXPECT_EQ(scenario::report_json(shards, serial, false),
            scenario::report_json(shards, parallel, false))
      << "timeseries blocks must not break report byte-identity";
}

TEST(SweepSeriesTest, WindowsSumToTheShardsMeasurementTotals) {
  const auto shards = series_shards();
  const auto results = scenario::SweepRunner(2).run(shards);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShardResult& r = results[i];
    ASSERT_FALSE(r.failed) << r.error;
    ASSERT_EQ(r.series.dropped_windows, 0u) << "shard " << i;
    std::uint64_t rx = 0, tx = 0, dropped = 0, lat = 0, wakeups = 0;
    for (const SeriesWindow& w : r.series.windows) {
      rx += w.rx;
      tx += w.tx;
      dropped += w.dropped;
      lat += w.latency_count;
      wakeups += w.wakeups;
    }
    // The series covers the measurement window, so it must reconstruct
    // the measurement-window totals exactly — not the whole-run counters
    // (those include warmup).
    EXPECT_EQ(rx, r.result.rx_packets) << "shard " << i;
    EXPECT_EQ(tx, r.result.tx_packets) << "shard " << i;
    EXPECT_EQ(dropped, r.result.dropped_packets) << "shard " << i;
    EXPECT_EQ(lat, r.latency_count) << "shard " << i;
    EXPECT_GT(wakeups, 0u) << "shard " << i << ": Metronome wake-ups sampled";
  }
}

TEST(SweepSeriesTest, MergeSumsWindowIndexWiseAndSkipsFailedShards) {
  const auto shards = series_shards();
  const auto results = scenario::SweepRunner(2).run(shards);
  const ShardSeries merged = scenario::merge_timeseries(results);
  ASSERT_EQ(merged.interval, results[0].series.interval);
  ASSERT_EQ(merged.windows.size(), results[0].series.windows.size());
  for (std::size_t k = 0; k < merged.windows.size(); ++k) {
    std::uint64_t rx = 0;
    sim::Time t_end = 0;
    for (const ShardResult& r : results) {
      rx += r.series.windows[k].rx;
      t_end = std::max(t_end, r.series.windows[k].t_end);
    }
    EXPECT_EQ(merged.windows[k].rx, rx) << "window " << k;
    EXPECT_EQ(merged.windows[k].t_end, t_end) << "window " << k;
  }
  // A failed shard contributes nothing (its series is empty).
  std::vector<ShardResult> with_failure = results;
  with_failure[1].failed = true;
  with_failure[1].series = ShardSeries{};
  const ShardSeries partial = scenario::merge_timeseries(with_failure);
  EXPECT_EQ(partial.windows[0].rx,
            results[0].series.windows[0].rx + results[2].series.windows[0].rx);
}

TEST(SweepSeriesTest, TracingIsAPureObserver) {
  const auto shards = series_shards();
  scenario::SweepRunner plain(2);
  scenario::SweepRunner traced(2);
  traced.set_tracing(1u << 14);
  const auto off = plain.run(shards);
  const auto on = traced.run(shards);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    // The full telemetry fingerprint and every per-window fingerprint are
    // bit-identical with tracing on or off: recording never feeds back.
    EXPECT_EQ(off[i].fingerprint, on[i].fingerprint) << "shard " << i;
    expect_same_series(off[i].series, on[i].series, "traced vs untraced");
    EXPECT_EQ(off[i].trace, nullptr);
    ASSERT_NE(on[i].trace, nullptr);
    EXPECT_GT(on[i].trace->size(), 0u) << "shard " << i << " recorded events";
    // The Metronome instrumentation fired: sleep spans exist in every shard.
    EXPECT_GT(on[i].trace->count(trace::id::kMetSleep), 0u) << "shard " << i;
    EXPECT_GT(on[i].trace->count(trace::id::kRxBurst), 0u) << "shard " << i;
  }
  // Wall lanes exist per worker while tracing; they are wall-clock only
  // and never part of the deterministic comparisons above.
  EXPECT_EQ(traced.wall_tracers().size(), 2u);
  EXPECT_TRUE(plain.wall_tracers().empty());
}

// --- tracer ring and Chrome export ------------------------------------------

TEST(TracerTest, FullRingDropsInsteadOfGrowing) {
  trace::Tracer t(4);
  for (int i = 0; i < 10; ++i) t.instant(trace::id::kKernelFire, i * 100, i);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.event(0).ts, 0);
  EXPECT_EQ(t.event(3).ts, 300);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, ChromeExportStructure) {
  trace::Tracer t(16);
  t.instant(trace::id::kKernelFire, 1500, 42);
  t.span(trace::id::kMetSleep, 2000, 500, 12345, /*tid=*/1, /*arg2=*/0);
  const std::uint32_t custom = t.intern("test", "custom_event", "payload");
  t.instant(custom, 3000, 7);

  std::ostringstream os;
  trace::write_chrome_trace(os, {{"lane-a", &t}});
  const std::string json = os.str();

  // Structure: one traceEvents array, a process_name metadata record, the
  // three events with their categories, phases and µs timestamps.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"lane-a\""), std::string::npos);
  EXPECT_NE(json.find("\"fire\""), std::string::npos);
  EXPECT_NE(json.find("\"sleep\""), std::string::npos);
  EXPECT_NE(json.find("\"custom_event\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"met\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << "span phase";
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos) << "instant phase";
  EXPECT_NE(json.find("1.5"), std::string::npos) << "1500 ns -> 1.5 us";
  // Balanced braces/brackets: the writer closed everything it opened.
  std::ptrdiff_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace
}  // namespace metro
