// Timing-wheel backend edge cases.
//
// The hierarchical timing wheel (src/sim/event_queue.hpp) hashes events
// into per-level slot grids, cascades a coarse slot one level down when
// the finer wheel drains past its boundary, keeps far-future events in an
// unsorted overflow pool and re-bases all cursors when the wheels empty
// (an epoch rollover). These tests drive exactly the transitions where a
// hashed structure can lose the total (at, seq) order — per-level
// cascades, same-tick floods, cancels surfacing as tombstones, overflow
// epochs, cursor arithmetic saturating near the clock limit — and compare
// every firing against the binary heap running the identical script.
//
// This suite lives in its own test binary (metro_wheel_test): the
// randomized mirrors are the longest-running unit tests in the tree, and
// a dedicated binary gets its own ctest TIMEOUT instead of eating into
// metro_tests' budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "util/seed_mix.hpp"

namespace metro::sim {
namespace {

using Firing = std::pair<Time, int>;  // (virtual time, event tag)

/// A deliberately tiny geometry: 4-slot levels, 16 ns base tick, 3 levels
/// (1024 ns total horizon). Scripts spanning microseconds force constant
/// cascading and several overflow epochs — the machinery a default-sized
/// wheel would only reach after days of virtual time.
WheelConfig tiny_geometry() {
  WheelConfig cfg;
  cfg.slot_bits = 2;
  cfg.tick_shift = 4;
  cfg.levels = 3;
  return cfg;
}

/// Run `script(sim, trace)` to completion on one backend and return every
/// firing in execution order.
template <typename Backend, typename Script>
std::vector<Firing> run_trace(Script script, Backend backend = Backend()) {
  BasicSimulation<Backend> sim(1, std::move(backend));
  std::vector<Firing> trace;
  script(sim, trace);
  sim.run();
  EXPECT_TRUE(sim.idle());
  return trace;
}

/// The heap backend is the oracle: identical scripts must produce
/// bit-identical traces on the wheel — under the default geometry and
/// under the tiny cascade-heavy one.
template <typename Script>
void expect_heap_agrees(Script script) {
  const auto heap = run_trace<BinaryHeapBackend>(script);
  EXPECT_EQ(heap, run_trace<TimingWheelBackend>(script));
  EXPECT_EQ(heap, run_trace<TimingWheelBackend>(script, TimingWheelBackend(tiny_geometry())));
  EXPECT_FALSE(heap.empty());
}

/// Coverage counters for the wheel machinery a script engages: the peak
/// per-level slot occupancy (a non-zero upper level means events really
/// were parked coarse and cascaded down) and how often the overflow floor
/// moved (one change per epoch re-base). A sampling callback rides along
/// with the script; it does not touch the trace.
struct WheelStats {
  std::vector<unsigned> max_occupancy;  // one entry per level
  unsigned epoch_changes = 0;
};

template <typename Script>
WheelStats wheel_stats_during(Script script, const WheelConfig& cfg) {
  BasicSimulation<TimingWheelBackend> sim(1, TimingWheelBackend(cfg));
  std::vector<Firing> trace;
  WheelStats stats;
  stats.max_occupancy.assign(cfg.levels, 0);
  struct Probe {
    BasicSimulation<TimingWheelBackend>* s;
    WheelStats* stats;
    Time last_floor;
    void operator()() const {
      const auto& wheel = s->backend();
      for (std::uint32_t k = 0; k < wheel.config().levels; ++k) {
        stats->max_occupancy[k] = std::max(stats->max_occupancy[k], wheel.occupancy(k));
      }
      Time floor = wheel.overflow_floor();
      if (floor != last_floor) ++stats->epoch_changes;
      if (s->pending_events() > 0) {
        s->schedule_after(50, Probe{s, stats, floor});
      }
    }
  };
  script(sim, trace);
  sim.schedule_at(0, Probe{&sim, &stats, sim.backend().overflow_floor()});
  sim.run();
  return stats;
}

template <typename Sim>
void tag_at(Sim& sim, std::vector<Firing>& trace, Time t, int tag) {
  sim.schedule_at(t, [&sim, &trace, tag] { trace.emplace_back(sim.now(), tag); });
}

TEST(TimingWheelTest, GeometryIsValidatedLoudly) {
  EXPECT_THROW(TimingWheelBackend(WheelConfig{0, 10, 5}), std::invalid_argument);
  EXPECT_THROW(TimingWheelBackend(WheelConfig{21, 10, 5}), std::invalid_argument);
  EXPECT_THROW(TimingWheelBackend(WheelConfig{8, 10, 0}), std::invalid_argument);
  // tick_shift + levels*slot_bits must stay under the sign bit.
  EXPECT_THROW(TimingWheelBackend(WheelConfig{8, 31, 4}), std::invalid_argument);
  EXPECT_NO_THROW(TimingWheelBackend{WheelConfig{}});
  EXPECT_NO_THROW(TimingWheelBackend{tiny_geometry()});
}

TEST(TimingWheelTest, ForPopulationPicksValidMonotoneGeometry) {
  // The per-population defaults come from bench_kernel_throughput's
  // wheel_geometry_sweep (see WheelConfig::for_population). Whatever the
  // measured winners are, three properties must hold:
  //   * every pick constructs without throwing (the ctor validation is
  //     the arbiter of "valid"),
  //   * the pick is a pure function of the population (same n, same
  //     geometry — callers bake it into scenario configs),
  //   * the level-0 horizon 2^(slot_bits + tick_shift) never shrinks as
  //     the population grows: larger populations mean longer per-flow
  //     re-arm gaps at a fixed aggregate rate, so a coarser/wider level 0
  //     is the only direction the sweep can move.
  std::uint64_t last_horizon_bits = 0;
  for (std::size_t bits = 0; bits <= 26; ++bits) {
    const std::size_t n = std::size_t{1} << bits;
    const WheelConfig cfg = WheelConfig::for_population(n);
    EXPECT_NO_THROW(TimingWheelBackend{cfg}) << "population 2^" << bits;
    const WheelConfig again = WheelConfig::for_population(n);
    EXPECT_EQ(cfg.slot_bits, again.slot_bits);
    EXPECT_EQ(cfg.tick_shift, again.tick_shift);
    EXPECT_EQ(cfg.levels, again.levels);
    const std::uint64_t horizon_bits = cfg.slot_bits + cfg.tick_shift;
    EXPECT_GE(horizon_bits, last_horizon_bits) << "population 2^" << bits;
    last_horizon_bits = horizon_bits;
  }
  // Small populations keep the shipped default: the picker must never
  // perturb the regime every pre-existing scenario runs in.
  const WheelConfig small = WheelConfig::for_population(1024);
  const WheelConfig def{};
  EXPECT_EQ(small.slot_bits, def.slot_bits);
  EXPECT_EQ(small.tick_shift, def.tick_shift);
  EXPECT_EQ(small.levels, def.levels);
}

TEST(TimingWheelTest, PerLevelCascadeKeepsTotalOrder) {
  // Events spread across several level-1 and level-2 slot spans: coarse
  // slots must cascade down exactly once per level and fire in (at, seq)
  // order, interleaved with imminent events inserted mid-consumption.
  const auto script = [](auto& sim, std::vector<Firing>& trace) {
    using SimT = std::remove_reference_t<decltype(sim)>;
    for (int i = 0; i < 400; ++i) {
      tag_at(sim, trace, 1 + (i * 7919) % 60'000, i);
    }
    // Chains crawling in small steps keep inserting below the consumption
    // floor while cascades are in flight.
    struct Chain {
      SimT* s;
      std::vector<Firing>* tr;
      int left;
      int tag;
      void operator()() const {
        tr->emplace_back(s->now(), tag);
        if (left > 0) s->schedule_after(3 + (tag % 13), Chain{s, tr, left - 1, tag + 1});
      }
    };
    for (int c = 0; c < 8; ++c) {
      sim.schedule_at(5 + c, Chain{&sim, &trace, 300, 10'000 + c * 1000});
    }
  };
  expect_heap_agrees(script);
  // The hierarchy must actually engage: with the tiny geometry the 60 us
  // field loads every level and the overflow pool (epoch re-bases).
  const auto stats = wheel_stats_during(script, tiny_geometry());
  ASSERT_EQ(stats.max_occupancy.size(), 3u);
  EXPECT_GT(stats.max_occupancy[1], 0u) << "level 1 never held a slot: no cascade tested";
  EXPECT_GT(stats.max_occupancy[2], 0u) << "level 2 never held a slot: no cascade tested";
  EXPECT_GE(stats.epoch_changes, 2u) << "the 60 us field must outrun the 1 us horizon";
}

TEST(TimingWheelTest, SameTickFloodRunsInInsertionOrder) {
  // A single timestamp hashes every event into one slot; the whole flood
  // must still fire in insertion order via the seq tiebreak, with the
  // neighbouring ticks unaffected.
  expect_heap_agrees([](auto& sim, std::vector<Firing>& trace) {
    for (int i = 0; i < 500; ++i) tag_at(sim, trace, 1000, i);
    for (int i = 0; i < 100; ++i) tag_at(sim, trace, 999, 1000 + i);
    for (int i = 0; i < 100; ++i) tag_at(sim, trace, 1001, 2000 + i);
  });
}

TEST(TimingWheelTest, CancelLastPendingEventLeavesWheelIdle) {
  // Tombstoning the only stored entry must drop live accounting to zero
  // without a peek ever surfacing the dead entry — and the structure must
  // absorb a fresh workload afterwards.
  BasicSimulation<TimingWheelBackend> sim;
  int fired = 0;
  const auto id = sim.schedule_at(5'000, [&fired] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_TRUE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0);

  std::vector<Firing> trace;
  for (int i = 0; i < 100; ++i) tag_at(sim, trace, 10 + i * 31, i);
  sim.run();
  ASSERT_EQ(trace.size(), 100u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].first, trace[i].first);
  }
  EXPECT_EQ(fired, 0) << "tombstoned handlers must never fire";
}

TEST(TimingWheelTest, CancelAcrossCascadesAndEpochs) {
  // Ids issued while events sit in coarse levels or overflow stay
  // cancellable after cascades and epoch re-bases have moved the entries
  // between containers; tombstones must never fire.
  BasicSimulation<TimingWheelBackend> sim(1, TimingWheelBackend(tiny_geometry()));
  Rng rng(99);
  std::vector<BasicSimulation<TimingWheelBackend>::EventId> ids;
  std::uint64_t fired = 0;
  for (int i = 0; i < 3000; ++i) {
    const Time t = static_cast<Time>(rng.uniform_u64(5'000'000));
    ids.push_back(sim.schedule_at(t, [&fired] { ++fired; }));
  }
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    if (sim.cancel(ids[i])) ++cancelled;
  }
  EXPECT_EQ(sim.pending_events(), ids.size() - cancelled);
  sim.run();
  EXPECT_EQ(fired, ids.size() - cancelled);
  EXPECT_TRUE(sim.idle());
}

TEST(TimingWheelTest, FarFutureTimersSitInOverflowUntilTheirEpoch) {
  // Timers far beyond the top level's horizon must park in the overflow
  // pool (no per-level storage cost), then fire in exact order once the
  // wheels drain and the epoch re-bases onto them.
  BasicSimulation<TimingWheelBackend> sim(1, TimingWheelBackend(tiny_geometry()));
  std::vector<Firing> trace;
  // Horizon with the tiny geometry is 1024 ns; everything below is wheel,
  // everything at/after is overflow this epoch.
  for (int i = 0; i < 20; ++i) tag_at(sim, trace, 10 + i * 40, i);
  for (int i = 0; i < 50; ++i) tag_at(sim, trace, 100'000 + i * 977, 100 + i);
  for (int i = 0; i < 10; ++i) tag_at(sim, trace, 50'000'000 + i * 3, 200 + i);
  EXPECT_GE(sim.backend().overflow_stored(), 60u)
      << "far-future timers must not occupy wheel slots";
  sim.run();
  ASSERT_EQ(trace.size(), 80u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].first, trace[i].first);
  }
  // Identical script against the heap oracle.
  expect_heap_agrees([](auto& s, std::vector<Firing>& tr) {
    for (int i = 0; i < 20; ++i) tag_at(s, tr, 10 + i * 40, i);
    for (int i = 0; i < 50; ++i) tag_at(s, tr, 100'000 + i * 977, 100 + i);
    for (int i = 0; i < 10; ++i) tag_at(s, tr, 50'000'000 + i * 3, 200 + i);
  });
}

TEST(TimingWheelTest, OverflowEpochInterleavesWithLaterWheelInserts) {
  // The ordering trap of a latched overflow region: an entry parked in
  // overflow, then — after the horizon has advanced — a *later-scheduled*
  // entry with a *smaller* timestamp entering the wheels. The overflow
  // entry must still fire strictly in (at, seq) order.
  expect_heap_agrees([](auto& sim, std::vector<Firing>& trace) {
    using SimT = std::remove_reference_t<decltype(sim)>;
    // Park timers at several far-future distances immediately.
    for (int i = 0; i < 30; ++i) {
      tag_at(sim, trace, 2'000'000 + i * 501, 500 + i);
    }
    // A chain that, as virtual time advances, keeps scheduling nearer
    // timestamps that undercut the parked ones.
    struct Wave {
      SimT* s;
      std::vector<Firing>* tr;
      int wave;
      void operator()() const {
        tr->emplace_back(s->now(), -wave);
        if (wave >= 40) return;
        tag_at(*s, *tr, s->now() + 47'000, 1000 + wave);
        s->schedule_after(49'000, Wave{s, tr, wave + 1});
      }
    };
    sim.schedule_at(0, Wave{&sim, &trace, 0});
  });
}

TEST(TimingWheelTest, EpochRolloverNearClockLimitSaturates) {
  // Timestamps spanning the whole non-negative int64 range: cursor and
  // horizon arithmetic must saturate at INT64_MAX instead of overflowing,
  // and entries *at* the saturated boundary must still drain (no infinite
  // re-base loop), in exact order.
  expect_heap_agrees([](auto& sim, std::vector<Firing>& trace) {
    constexpr Time kHuge = INT64_MAX;
    tag_at(sim, trace, 10, 0);
    tag_at(sim, trace, kHuge - 1, 90);
    tag_at(sim, trace, kHuge / 2, 50);
    tag_at(sim, trace, 1'000'000, 10);
    tag_at(sim, trace, kHuge - 1'000'000, 80);
    for (int i = 0; i < 100; ++i) {
      tag_at(sim, trace, 2'000'000 + i * 999, 100 + i);
    }
  });
  // The clock-limit edge proper: multiple entries exactly at INT64_MAX
  // (the saturated floor) must all fire; a miscomputed epoch would spin
  // or drop them.
  BasicSimulation<TimingWheelBackend> sim(1, TimingWheelBackend(tiny_geometry()));
  std::vector<Firing> trace;
  tag_at(sim, trace, 100, 0);
  for (int i = 0; i < 5; ++i) tag_at(sim, trace, INT64_MAX, 1 + i);
  tag_at(sim, trace, INT64_MAX - 3, -1);
  sim.run();
  ASSERT_EQ(trace.size(), 7u);
  EXPECT_EQ(trace[0], Firing(100, 0));
  EXPECT_EQ(trace[1], Firing(INT64_MAX - 3, -1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(trace[static_cast<std::size_t>(2 + i)], Firing(INT64_MAX, 1 + i));
  }
}

TEST(TimingWheelTest, RandomisedMirrorAgainstHeap) {
  // Randomised schedule/cancel interleavings mirrored on both backends,
  // including handler-side scheduling: the strongest order oracle. The
  // tiny-geometry run inside expect_heap_agrees crosses slot, level and
  // epoch boundaries constantly.
  for (std::uint64_t seed : {1u, 42u, 1234u}) {
    expect_heap_agrees([seed](auto& sim, std::vector<Firing>& trace) {
      using SimT = std::remove_reference_t<decltype(sim)>;
      struct Spawner {
        SimT* s;
        std::vector<Firing>* tr;
        std::uint64_t state;
        int left;
        int tag;
        void operator()() const {
          tr->emplace_back(s->now(), tag);
          if (left <= 0) return;
          std::uint64_t x = state;
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          s->schedule_after(static_cast<Time>(x % 20'000),
                            Spawner{s, tr, x, left - 1, tag + 1});
        }
      };
      Rng rng(seed);
      for (int i = 0; i < 128; ++i) {
        const auto spawn_seed = util::mix_seed(seed, static_cast<std::uint64_t>(i));
        sim.schedule_at(static_cast<Time>(rng.uniform_u64(100'000)),
                        Spawner{&sim, &trace, spawn_seed, 60, i * 1000});
      }
    });
  }
}

TEST(TimingWheelTest, RandomisedCancelMirrorAgainstHeap) {
  // Schedule-then-cancel churn mirrored against the heap: cancellation is
  // eager on the heap and lazy tombstoning on the wheel, yet the surviving
  // firings must be bit-identical.
  for (std::uint64_t seed : {7u, 321u}) {
    const auto script = [seed](auto& sim, std::vector<Firing>& trace) {
      using SimT = std::remove_reference_t<decltype(sim)>;
      std::vector<typename SimT::EventId> ids;
      Rng rng(seed);
      for (int i = 0; i < 600; ++i) {
        const Time t = static_cast<Time>(rng.uniform_u64(3'000'000));
        const int tag = i;
        ids.push_back(
            sim.schedule_at(t, [&sim, &trace, tag] { trace.emplace_back(sim.now(), tag); }));
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (rng.uniform_u64(3) == 0) sim.cancel(ids[i]);
      }
    };
    expect_heap_agrees(script);
  }
}

}  // namespace
}  // namespace metro::sim
