#!/usr/bin/env python3
"""Link check for the repo's markdown docs.

Verifies that every relative link in the root *.md files and docs/*.md
points at an existing file (and, for in-repo markdown targets, that a
referenced #anchor matches a heading in the target file). External
http(s) links are not fetched — CI must stay hermetic — only their
syntax is accepted. SNIPPETS.md is exempt: it quotes third-party code
and prose whose links are not ours to keep alive.

Exit code 0 when every link resolves, 1 otherwise (used by the CI docs
job).
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

# Matches inline links AND images, with or without a quoted title:
#   [text](path), ![alt](path), [text](path "title")
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces->dashes."""
    text = heading.strip().lower()
    text = re.sub(r"[`*]", "", text)         # inline formatting (GitHub
    #                                          keeps literal underscores)
    text = re.sub(r"[^\w\- ]", "", text)     # punctuation
    return text.replace(" ", "-")


def anchors_of(md_file: Path) -> set[str]:
    content = md_file.read_text(encoding="utf-8")
    return {github_slug(m.group(1)) for m in HEADING_RE.finditer(content)}


def check_file(md_file: Path, repo_root: Path) -> list[str]:
    errors = []
    content = md_file.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-file anchor
            if anchor and anchor not in anchors_of(md_file):
                errors.append(f"{md_file}: broken anchor '#{anchor}'")
            continue
        resolved = (md_file.parent / path_part).resolve()
        try:
            resolved.relative_to(repo_root)
        except ValueError:
            errors.append(f"{md_file}: link escapes the repo: {target}")
            continue
        if not resolved.exists():
            errors.append(f"{md_file}: broken link: {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                errors.append(
                    f"{md_file}: broken anchor: {target} "
                    f"(no heading slugs to '{anchor}' in {resolved.name})")
    return errors


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    root_md = sorted(p for p in repo_root.glob("*.md") if p.name != "SNIPPETS.md")
    files = root_md + sorted((repo_root / "docs").glob("*.md"))
    errors: list[str] = []
    checked = 0
    if repo_root / "README.md" not in root_md:
        errors.append(f"missing expected file: {repo_root / 'README.md'}")
    for md_file in files:
        if not md_file.exists():
            errors.append(f"missing expected file: {md_file}")
            continue
        errors.extend(check_file(md_file, repo_root))
        checked += 1
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
