#!/usr/bin/env python3
"""Noise-aware perf-regression gate for the tracked BENCH_*.json baselines.

Compares a freshly generated bench report (BENCH_kernel.json /
BENCH_crypto.json) against the tracked baseline and fails (exit 1) when a
metric regressed by more than the run-to-run noise the reports themselves
record. The point: on a 1-core CI box, "wall went from 1.91 s to 2.05 s"
is only a finding if 0.14 s clears the jitter — so the tolerance for every
metric is

    max(rel_tol * |baseline_median|, iqr_mult * max(baseline_IQR, fresh_IQR))

and only *trial-backed* metrics are gated at all: the walker arms itself
inside any JSON object that carries a "trials" key (the bench convention
for repeated-trial blocks) and pairs every `<name>_median` with its
`<name>_iqr` sibling (missing IQR => 0, i.e. the relative tolerance alone
governs). Single-shot numbers elsewhere in the report are never gated —
they carry no noise estimate.

Metric direction is inferred from the name, matching the benches' naming
convention (docs/BENCHMARKS.md):

    lower is better   *wall_seconds*, *_ns_median
    higher is better  *speedup*, *per_sec*, *_pps*
    anything else     not gated

Mode awareness: the reports record their window mode ("fast_mode" in the
kernel report, "mode" in the crypto report). When baseline and fresh
report modes differ (the tier-1 CI case: --fast fresh run vs tracked full
baseline), window-length-dependent metrics (*wall_seconds*,
*simulated_packets_per_sec*) are skipped and only window-independent ones
(speedups, per-op ns, crypto pps) are gated — combine with --loose for
the CI tolerances.

--ratios-only narrows the gate further to *speedup* metrics. Absolute
per-op numbers (ns, pps) are host-speed dependent: a tracked baseline
generated on one box compared against a fresh run on a CI runner (or on
the same box at a different turbo/thermal state) can shift every absolute
number by 40%+ while the scalar-vs-fast ratios barely move, because both
sides of a ratio slow down together. CI therefore gates with
--ratios-only --loose; the full metric set is for same-machine,
same-state comparisons (and the --self-test ctest entries, which prove
the full gate can fail).

Exit codes: 0 clean (improvements are reported, never fatal), 1 at least
one regression beyond tolerance, 2 usage/IO error.

--self-test ignores the fresh report, synthesises a degraded copy of the
baseline (lower-better metrics x2, higher-better x0.5) and exits 0 iff
the gate catches it — the CI proof that the gate can actually fail.
"""

import argparse
import copy
import json
import sys

LOWER_BETTER = ("wall_seconds",)
LOWER_BETTER_SUFFIX = ("ns_median",)
HIGHER_BETTER = ("speedup", "per_sec", "_pps")
MODE_DEPENDENT = ("wall_seconds", "simulated_packets_per_sec")
MODE_KEYS = ("fast_mode", "mode")


def direction(key):
    """'lower' / 'higher' / None (not gated) for a *_median key."""
    if any(t in key for t in HIGHER_BETTER):
        return "higher"
    if any(t in key for t in LOWER_BETTER) or key.endswith(LOWER_BETTER_SUFFIX):
        return "lower"
    return None


def collect_metrics(node, path="", armed=False):
    """Yield (path, key, median, iqr) for every trial-backed *_median leaf."""
    if isinstance(node, dict):
        armed = armed or "trials" in node
        for key, value in node.items():
            sub = f"{path}/{key}"
            if isinstance(value, (dict, list)):
                yield from collect_metrics(value, sub, armed)
            elif not armed or isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            elif key.endswith("_median"):
                iqr = node.get(key[: -len("_median")] + "_iqr", 0.0)
                if not isinstance(iqr, (int, float)):
                    iqr = 0.0
                yield sub, key, float(value), float(iqr)
            elif "speedup" in key and not key.endswith("_iqr"):
                # Ratio-of-medians keys (x-factor convention): no IQR
                # sibling, the relative tolerance alone governs.
                yield sub, key, float(value), 0.0
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from collect_metrics(value, f"{path}[{i}]", armed)


def report_mode(doc):
    for key in MODE_KEYS:
        if key in doc:
            return doc[key]
    return None


def compare(baseline, fresh, rel_tol, iqr_mult, strict_missing, out=sys.stdout,
            ratios_only=False):
    """Return (regressions, improvements, missing) metric lists."""
    modes_differ = report_mode(baseline) != report_mode(fresh)
    fresh_metrics = {p: (m, q) for p, _, m, q in collect_metrics(fresh)}
    regressions, improvements, missing = [], [], []
    gated = 0
    for path, key, base_med, base_iqr in collect_metrics(baseline):
        sense = direction(key)
        if sense is None:
            continue
        if ratios_only and "speedup" not in key:
            continue
        if modes_differ and any(t in key for t in MODE_DEPENDENT):
            continue
        if path not in fresh_metrics:
            missing.append(path)
            continue
        fresh_med, fresh_iqr = fresh_metrics[path]
        gated += 1
        worse = (fresh_med - base_med) if sense == "lower" else (base_med - fresh_med)
        tol = max(rel_tol * abs(base_med), iqr_mult * max(base_iqr, fresh_iqr))
        line = (
            f"{path}: {base_med:.6g} -> {fresh_med:.6g} "
            f"(tolerance {tol:.3g}, IQR base {base_iqr:.3g} / fresh {fresh_iqr:.3g})"
        )
        if worse > tol:
            regressions.append(line)
        elif -worse > tol:
            improvements.append(line)
    if modes_differ:
        print(
            "note: report modes differ "
            f"({report_mode(baseline)!r} vs {report_mode(fresh)!r}); "
            "window-length-dependent metrics skipped",
            file=out,
        )
    print(f"gated {gated} trial-backed metrics", file=out)
    for line in improvements:
        print(f"IMPROVED   {line}", file=out)
    for path in missing:
        print(f"MISSING    {path} (in baseline, absent from fresh report)", file=out)
    for line in regressions:
        print(f"REGRESSION {line}", file=out)
    if strict_missing and missing:
        regressions = regressions + [f"missing metric {p}" for p in missing]
    return regressions, improvements, missing


def degrade(doc):
    """Self-test fixture: every gated metric made decisively worse."""
    bad = copy.deepcopy(doc)

    def walk(node, armed=False):
        if isinstance(node, dict):
            armed = armed or "trials" in node
            for key, value in node.items():
                if isinstance(value, (dict, list)):
                    walk(value, armed)
                elif (
                    armed
                    and (key.endswith("_median") or "speedup" in key)
                    and not key.endswith("_iqr")
                    and not isinstance(value, bool)
                    and isinstance(value, (int, float))
                ):
                    sense = direction(key)
                    if sense == "lower":
                        node[key] = value * 2.0
                    elif sense == "higher":
                        node[key] = value * 0.5
        elif isinstance(node, list):
            for value in node:
                walk(value, armed)

    walk(bad)
    return bad


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, help="tracked BENCH_*.json")
    ap.add_argument("--fresh", help="freshly generated report (omit with --self-test)")
    ap.add_argument(
        "--rel-tol",
        type=float,
        default=0.10,
        help="relative tolerance on the baseline median (default 0.10)",
    )
    ap.add_argument(
        "--iqr-mult",
        type=float,
        default=3.0,
        help="IQR multiplier in the noise floor (default 3)",
    )
    ap.add_argument(
        "--loose",
        action="store_true",
        help="CI fast-mode tolerances (rel-tol 0.35, iqr-mult 6) unless "
        "overridden explicitly",
    )
    ap.add_argument(
        "--ratios-only",
        action="store_true",
        help="gate only *speedup* ratio metrics — the host-speed-robust "
        "subset; use when baseline and fresh report come from different "
        "machines or CPU states (the CI case)",
    )
    ap.add_argument(
        "--strict-missing",
        action="store_true",
        help="treat baseline metrics absent from the fresh report as regressions",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="synthesise a slowed-down report from the baseline and verify "
        "the gate catches it",
    )
    args = ap.parse_args()
    if args.loose:
        defaults = {"rel_tol": 0.10, "iqr_mult": 3.0}
        if args.rel_tol == defaults["rel_tol"]:
            args.rel_tol = 0.35
        if args.iqr_mult == defaults["iqr_mult"]:
            args.iqr_mult = 6.0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read baseline {args.baseline}: {e}", file=sys.stderr)
        return 2

    if args.self_test:
        regressions, _, _ = compare(
            baseline, degrade(baseline), args.rel_tol, args.iqr_mult, False
        )
        if regressions:
            print(f"self-test: gate caught {len(regressions)} synthetic regressions — OK")
            return 0
        print("self-test: gate FAILED to catch the synthetic slowdown", file=sys.stderr)
        return 1

    if not args.fresh:
        print("--fresh is required unless --self-test", file=sys.stderr)
        return 2
    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read fresh report {args.fresh}: {e}", file=sys.stderr)
        return 2

    regressions, improvements, _ = compare(
        baseline, fresh, args.rel_tol, args.iqr_mult, args.strict_missing,
        ratios_only=args.ratios_only,
    )
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond tolerance")
        return 1
    print(f"OK: no regressions beyond tolerance ({len(improvements)} improvement(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
