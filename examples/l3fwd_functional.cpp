// Functional L3 forwarding: the actual packet-processing code path.
//
// Builds a realistic routing table (a default route, several /16
// aggregates, a /24 customer prefix and one /32 host route), generates a
// mixed workload of real Ethernet/IPv4/UDP packets, forwards them through
// the LPM datapath, and prints per-port and per-drop-reason statistics.
// This is the code whose per-packet cost the simulator charges as
// calib::kL3fwdPerPacketCost.
//
// Run: ./l3fwd_functional

#include <iostream>

#include "apps/l3fwd.hpp"
#include "sim/rng.hpp"
#include "stats/table.hpp"

using namespace metro;
using namespace metro::net;

int main() {
  apps::L3Forwarder fwd(apps::L3Forwarder::Mode::kLpm);

  // Three output ports with distinct MAC pairs.
  for (std::uint16_t p = 0; p < 3; ++p) {
    fwd.add_port({p,
                  MacAddress{0x02, 0xaa, 0, 0, 0, static_cast<std::uint8_t>(p)},
                  MacAddress{0x02, 0xbb, 0, 0, 0, static_cast<std::uint8_t>(p)}});
  }

  // Routing table: most specific must win.
  fwd.add_route(ipv4_addr(0, 0, 0, 0), 1, 0);          // "default" low half
  fwd.add_route(ipv4_addr(128, 0, 0, 0), 1, 0);        // "default" high half
  fwd.add_route(ipv4_addr(10, 1, 0, 0), 16, 1);        // aggregate
  fwd.add_route(ipv4_addr(10, 2, 0, 0), 16, 1);
  fwd.add_route(ipv4_addr(10, 1, 7, 0), 24, 2);        // customer /24
  fwd.add_route(ipv4_addr(10, 1, 7, 99), 32, 0);       // host exception

  sim::Rng rng(2024);
  std::array<std::uint64_t, 3> per_port{};
  Packet pkt;
  const int kPackets = 200000;
  for (int i = 0; i < kPackets; ++i) {
    FiveTuple t;
    t.src_ip = ipv4_addr(198, 18, 0, 0) + static_cast<std::uint32_t>(rng.uniform_u64(1 << 16));
    // Mix: 25% to the /16s, 25% to the /24, a few to the host route, the
    // rest to the default halves; ~1% with an expired TTL.
    const double dice = rng.uniform();
    if (dice < 0.25) {
      t.dst_ip = ipv4_addr(10, dice < 0.125 ? 1 : 2, 3, static_cast<std::uint8_t>(i));
    } else if (dice < 0.5) {
      t.dst_ip = ipv4_addr(10, 1, 7, static_cast<std::uint8_t>(i == 99 ? 98 : i));
    } else if (dice < 0.51) {
      t.dst_ip = ipv4_addr(10, 1, 7, 99);
    } else {
      t.dst_ip = static_cast<std::uint32_t>(rng.next_u64());
    }
    t.src_port = 1000;
    t.dst_port = 2000;
    t.protocol = kIpProtoUdp;
    apps::build_udp_packet(pkt, t, 64, rng.chance(0.01) ? 1 : 64);
    const auto out = fwd.process(pkt);
    if (out.has_value()) per_port[*out]++;
  }

  const auto& s = fwd.stats();
  stats::Table table({"counter", "packets"});
  table.add_row({"forwarded", std::to_string(s.forwarded)});
  table.add_row({"  -> port 0 (default/host)", std::to_string(per_port[0])});
  table.add_row({"  -> port 1 (/16 aggregates)", std::to_string(per_port[1])});
  table.add_row({"  -> port 2 (customer /24)", std::to_string(per_port[2])});
  table.add_row({"dropped", std::to_string(s.dropped)});
  table.add_row({"  ttl expired",
                 std::to_string(s.drop_reason[static_cast<int>(apps::L3fwdDrop::kTtlExpired)])});
  table.add_row({"  no route",
                 std::to_string(s.drop_reason[static_cast<int>(apps::L3fwdDrop::kNoRoute)])});
  table.print();

  std::cout << "\nEvery forwarded packet had its TTL decremented, its IPv4 checksum\n"
               "incrementally updated (RFC 1624) and its MACs rewritten, as in DPDK's\n"
               "l3fwd sample.\n";
  return s.forwarded > 0 ? 0 : 1;
}
