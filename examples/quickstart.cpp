// Quickstart: Metronome vs static-polling DPDK on the simulated testbed.
//
// Builds the paper's default single-queue setup (Intel X520 model, 3
// Metronome threads, V-bar = 10 us, TL = 500 us), offers 64 B traffic at a
// few rates, and prints the headline trade-off: Metronome's CPU usage
// scales with load while the static poller burns a full core regardless,
// at the price of a few microseconds of extra latency.
//
// Run: ./quickstart

#include <iostream>

#include "apps/experiment.hpp"
#include "stats/table.hpp"

using namespace metro;

int main() {
  stats::Table table({"rate (Gbps)", "driver", "throughput (Mpps)", "CPU (%)", "mean lat (us)",
                      "p95 lat (us)", "loss (permille)"});

  for (const double gbps : {10.0, 5.0, 1.0, 0.5}) {
    const double mpps = 14.88 * gbps / 10.0;  // 64 B packets
    for (const bool metronome : {true, false}) {
      apps::ExperimentConfig cfg;
      cfg.driver = metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
      cfg.workload.rate_mpps = mpps;
      cfg.n_cores = 3;
      cfg.warmup = 100 * sim::kMillisecond;
      cfg.measure = 400 * sim::kMillisecond;
      const auto r = apps::run_experiment(cfg);
      table.add_row({stats::Table::num(gbps, 1), metronome ? "Metronome" : "static DPDK",
                     stats::Table::num(r.throughput_mpps), stats::Table::num(r.cpu_percent, 1),
                     stats::Table::num(r.latency_us.mean), stats::Table::num(r.latency_us.whisker_hi),
                     stats::Table::num(r.loss_permille, 3)});
    }
  }
  table.print();

  std::cout << "\nMetronome trades a few microseconds of latency for CPU usage that is\n"
               "proportional to load; static DPDK pins one full core at any rate.\n";
  return 0;
}
