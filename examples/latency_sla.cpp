// Tuning Metronome for a latency SLA.
//
// The paper's central trade-off: the target vacation period V-bar buys CPU
// savings at the price of buffering delay. This example answers the
// operational question "what is the largest (cheapest) V-bar that keeps
// p95 latency under my SLA?" by sweeping V-bar at the deployment's
// expected load, then validates the pick at two other loads.
//
// Run: ./latency_sla [sla_p95_us]   (default 30 us)

#include <cstdlib>
#include <iostream>

#include "apps/experiment.hpp"
#include "stats/table.hpp"

using namespace metro;

namespace {

apps::ExperimentResult run_at(double v_bar_us, double mpps) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.met.target_vacation = sim::from_micros(v_bar_us);
  cfg.tx_batch = 1;  // latency-sensitive deployment: no Tx batching (§V-C)
  cfg.workload.rate_mpps = mpps;
  cfg.warmup = 100 * sim::kMillisecond;
  cfg.measure = 300 * sim::kMillisecond;
  return apps::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const double sla_us = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double expected_mpps = 7.44;  // 5 Gbps of 64 B packets

  std::cout << "SLA: p95 latency <= " << sla_us << " us at " << expected_mpps << " Mpps\n\n";

  stats::Table sweep({"V-bar (us)", "p95 (us)", "mean (us)", "CPU (%)", "meets SLA"});
  double best = -1.0;
  for (const double v : {2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 18.0, 25.0}) {
    const auto r = run_at(v, expected_mpps);
    const bool ok = r.latency_us.whisker_hi <= sla_us;
    if (ok) best = v;  // sweep is ascending: keep the largest passing V-bar
    sweep.add_row({stats::Table::num(v, 0), stats::Table::num(r.latency_us.whisker_hi, 1),
                   stats::Table::num(r.latency_us.mean, 1), stats::Table::num(r.cpu_percent, 1),
                   ok ? "yes" : "no"});
  }
  sweep.print();

  if (best < 0.0) {
    std::cout << "\nNo V-bar meets the SLA: use standard DPDK polling for this "
                 "deployment, as §IV-D recommends for hard latency floors.\n";
    return 0;
  }

  std::cout << "\nchosen V-bar = " << best << " us; validation at other loads:\n";
  stats::Table val({"rate (Mpps)", "p95 (us)", "CPU (%)"});
  for (const double mpps : {1.488, 7.44, 14.88}) {
    const auto r = run_at(best, mpps);
    val.add_row({stats::Table::num(mpps, 2), stats::Table::num(r.latency_us.whisker_hi, 1),
                 stats::Table::num(r.cpu_percent, 1)});
  }
  val.print();
  std::cout << "\nThe adaptive TS rule (eq. 13) holds the vacation period -- and so the\n"
               "p95 -- roughly constant as load varies, while CPU scales with load.\n";
  return 0;
}
