// FloWatcher-style traffic monitoring on the simulated testbed.
//
// Runs Metronome as the retrieval engine for a flow monitor: an unbalanced
// workload (one heavy UDP flow at 30% + ~1000 background flows) is pushed
// through the NIC model, the timing side measures CPU/latency, and the
// functional FloWatcher accounts the same flow mix to report heavy hitters
// — the §V-F.4 scenario end to end.
//
// Run: ./flow_monitoring

#include <iostream>

#include "apps/experiment.hpp"
#include "apps/flowatcher.hpp"
#include "stats/table.hpp"

using namespace metro;

int main() {
  // Timing side: Metronome vs static polling for the monitor's cost model.
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.met.per_packet_cost = sim::calib::kFlowatcherPerPacketCost;
  cfg.workload.rate_mpps = 10.0;
  cfg.workload.n_flows = 1000;
  cfg.workload.heavy_share = 0.30;
  cfg.warmup = 100 * sim::kMillisecond;
  cfg.measure = 400 * sim::kMillisecond;
  const auto metro_result = apps::run_experiment(cfg);
  cfg.driver = apps::DriverKind::kStaticPolling;
  cfg.polling.per_packet_cost = sim::calib::kFlowatcherPerPacketCost;
  const auto static_result = apps::run_experiment(cfg);

  std::cout << "monitoring 10 Mpps (30% one UDP flow):\n";
  stats::Table timing({"driver", "CPU (%)", "mean latency (us)"});
  timing.add_row({"Metronome", stats::Table::num(metro_result.cpu_percent, 1),
                  stats::Table::num(metro_result.latency_us.mean, 1)});
  timing.add_row({"static DPDK", stats::Table::num(static_result.cpu_percent, 1),
                  stats::Table::num(static_result.latency_us.mean, 1)});
  timing.print();

  // Functional side: account the same flow mix and report heavy hitters.
  apps::FloWatcher monitor(1 << 14);
  tgen::FlowSet flows(1000, 42);
  sim::Rng rng(42);
  tgen::UnbalancedFlowPicker picker(0, 0.30, 1000);
  for (int i = 0; i < 500000; ++i) {
    const auto flow_id = picker.pick(rng);
    monitor.observe_flow(flows.tuple(flow_id), 64, i);
  }

  std::cout << "\ntop-5 heavy hitters over " << monitor.total_packets() << " packets ("
            << monitor.active_flows() << " active flows):\n";
  stats::Table hh({"rank", "flow (src -> dst)", "packets", "share (%)"});
  int rank = 1;
  for (const auto& h : monitor.heavy_hitters(5)) {
    const auto& t = h.flow;
    const auto ip_str = [](std::uint32_t ip) {
      return std::to_string(ip >> 24) + "." + std::to_string((ip >> 16) & 0xff) + "." +
             std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff);
    };
    hh.add_row({std::to_string(rank++),
                ip_str(t.src_ip) + ":" + std::to_string(t.src_port) + " -> " + ip_str(t.dst_ip) +
                    ":" + std::to_string(t.dst_port),
                std::to_string(h.packets),
                stats::Table::num(100.0 * static_cast<double>(h.packets) /
                                      static_cast<double>(monitor.total_packets()),
                                  1)});
  }
  hh.print();
  return 0;
}
