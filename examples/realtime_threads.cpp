// The real-thread Metronome runtime (src/rt) in action.
//
// Spawns a paced producer plus M = 3 worker threads running the actual
// Listing-2 protocol — CMPXCHG trylock, clock_nanosleep hr_sleep shim,
// adaptive TS from eq. 13 — and shows the load estimator and timeout
// adapting live as the offered rate changes. Real threads, real clocks:
// absolute numbers depend on this machine.
//
// Run: ./realtime_threads

#include <chrono>
#include <iostream>
#include <thread>

#include "rt/metronome_rt.hpp"
#include "stats/table.hpp"

using namespace metro;

int main() {
  rt::RtConfig cfg;
  cfg.n_threads = 3;
  cfg.rate_pps = 50e3;
  cfg.target_vacation_us = 100.0;
  cfg.long_timeout_us = 2000.0;

  rt::MetronomeRt runtime(cfg);
  runtime.start();

  stats::Table live({"phase", "rate (pps)", "rho", "TS (us)", "consumed"});
  const auto probe = [&](const char* phase, double rate) {
    live.add_row({phase, stats::Table::num(rate, 0), stats::Table::num(runtime.current_rho(), 4),
                  stats::Table::num(runtime.current_ts_us(), 1),
                  std::to_string(runtime.packets_consumed())});
  };

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  probe("low load", 50e3);

  runtime.set_rate_pps(1.5e6);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  probe("high load", 1.5e6);

  runtime.set_rate_pps(50e3);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  probe("low again", 50e3);

  const auto r = runtime.stop();
  live.print();

  std::cout << "\nrun summary: pushed=" << r.producer_pushed << " consumed=" << r.packets_consumed
            << " drops=" << r.producer_drops << " leftover=" << r.leftover_in_rings
            << "\nvacation mean=" << stats::Table::num(r.vacation_us.mean(), 1)
            << " us (n=" << r.vacation_us.count()
            << "), busy tries=" << r.busy_tries << "/" << r.total_tries
            << "\nretrieval latency mean=" << stats::Table::num(r.latency_us.mean(), 1)
            << " us\n\nTS shrinks when the load rises (eq. 13) and relaxes again when it "
               "falls:\nthe same adaptation the simulator reproduces quantitatively.\n";
  return 0;
}
