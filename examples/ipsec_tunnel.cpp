// IPsec ESP tunnel: the gateway application the paper ports to Metronome.
//
// Sets up two gateways sharing a security association and pushes traffic
// through a full encap -> (wire) -> decap round trip, with AES-CBC-128
// encryption and HMAC-SHA1-96 integrity computed for real. Demonstrates
// the tamper/replay protections along the way.
//
// Run: ./ipsec_tunnel

#include <cstring>
#include <iostream>
#include <vector>

#include "apps/ipsec.hpp"
#include "apps/l3fwd.hpp"
#include "sim/rng.hpp"

using namespace metro;
using namespace metro::net;

int main() {
  apps::SecurityAssociation sa;
  sa.spi = 0x2026;
  sim::Rng key_rng(7);
  for (auto& b : sa.cipher_key) b = static_cast<std::uint8_t>(key_rng.next_u64());
  for (auto& b : sa.auth_key) b = static_cast<std::uint8_t>(key_rng.next_u64());
  sa.tunnel_src = ipv4_addr(203, 0, 113, 1);
  sa.tunnel_dst = ipv4_addr(203, 0, 113, 2);

  apps::IpsecGateway egress(sa), ingress(sa);

  // 1. Bulk round trip across packet sizes.
  sim::Rng rng(99);
  int ok = 0;
  const int kPackets = 20000;
  for (int i = 0; i < kPackets; ++i) {
    FiveTuple t{ipv4_addr(192, 168, 1, 10), ipv4_addr(192, 168, 2, 20),
                static_cast<std::uint16_t>(1024 + i % 1000), 443, kIpProtoUdp};
    const std::size_t size = 64 + rng.uniform_u64(1400);
    Packet pkt;
    apps::build_udp_packet(pkt, t, size);
    std::vector<std::uint8_t> original(pkt.data(), pkt.data() + pkt.size());

    if (!egress.encap(pkt)) continue;
    if (!ingress.decap(pkt)) continue;
    if (pkt.size() == original.size() &&
        std::memcmp(pkt.data(), original.data(), original.size()) == 0) {
      ++ok;
    }
  }
  std::cout << "bulk round trip: " << ok << "/" << kPackets
            << " packets restored bit-exactly\n";

  // 2. A tampered ciphertext must fail authentication.
  Packet tampered;
  apps::build_udp_packet(tampered, {ipv4_addr(1, 1, 1, 1), ipv4_addr(2, 2, 2, 2), 1, 2,
                                    kIpProtoUdp});
  egress.encap(tampered);
  tampered.data()[tampered.size() / 2] ^= 0x80;
  std::cout << "tampered packet rejected: " << (ingress.decap(tampered) ? "NO (BUG)" : "yes")
            << "\n";

  // 3. A replayed packet must be dropped by the anti-replay window.
  Packet original;
  apps::build_udp_packet(original, {ipv4_addr(1, 1, 1, 1), ipv4_addr(2, 2, 2, 2), 3, 4,
                                    kIpProtoUdp});
  egress.encap(original);
  Packet replay;
  replay.assign(original.data(), original.size());
  ingress.decap(original);
  std::cout << "replayed packet rejected: " << (ingress.decap(replay) ? "NO (BUG)" : "yes")
            << "\n";

  const auto& st = ingress.stats();
  std::cout << "\ningress stats: decapsulated=" << st.decapsulated
            << " auth_failures=" << st.auth_failures << " replay_drops=" << st.replay_drops
            << " malformed=" << st.malformed << "\n";
  return ok == kPackets ? 0 : 1;
}
