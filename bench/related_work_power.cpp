// Related-work comparison (§II): frequency scaling is not CPU
// proportionality.
//
// The paper's core argument against the DVFS line of work ([22] Intel's
// l3fwd-power, [23] power-efficient packet I/O): downclocking a busy-wait
// core saves *power* but the core still reads 100% busy and cannot be
// shared. This bench puts four strategies side by side:
//   static polling (performance), static polling (ondemand governor),
//   l3fwd-power-style userspace frequency scaling, and Metronome.
#include "common.hpp"
#include "dpdk/freq_scaling.hpp"
#include "tgen/feeder.hpp"

using namespace metro;

namespace {

struct Row {
  double cpu = 0.0;
  double watts = 0.0;
  double throughput = 0.0;
};

Row run_freq_scaling(double mpps, const bench::Windows& w) {
  sim::Simulation sim(1);
  sim::CoreConfig core_cfg;
  core_cfg.governor = sim::Governor::kUserspace;
  sim::Machine machine(sim, 1, core_cfg);
  nic::Port port(sim, nic::x520_config(1));
  tgen::FlowSet flows(256, 42);
  tgen::StreamConfig stream;
  stream.rate_pps = mpps * 1e6;
  stream.duration = w.warmup + w.measure + 50 * sim::kMillisecond;
  tgen::StreamGenerator gen(stream, flows, std::make_unique<tgen::UniformFlowPicker>(256));
  dpdk::FreqScalingStats stats;
  const auto ent =
      dpdk::spawn_freq_scaling_lcore(sim, port, 0, machine.core(0), {}, stats);
  if (mpps > 0) tgen::attach(sim, port, gen);

  sim.run_until(w.warmup);
  const auto start = machine.snapshot_all();
  const auto cpu0 = machine.core(0).on_cpu_time(ent);
  const auto tx0 = port.tx().total_transmitted();
  sim.run_until(w.warmup + w.measure);
  const auto end = machine.snapshot_all();
  const auto ws = machine.window_stats(start, end);

  Row r;
  r.cpu = 100.0 * static_cast<double>(machine.core(0).on_cpu_time(ent) - cpu0) /
          static_cast<double>(w.measure);
  r.watts = ws.avg_package_watts;
  r.throughput =
      static_cast<double>(port.tx().total_transmitted() - tx0) / sim::to_seconds(w.measure) / 1e6;
  return r;
}

Row run_harness(apps::DriverKind kind, sim::Governor governor, double mpps,
                const bench::Windows& w) {
  apps::ExperimentConfig cfg;
  cfg.driver = kind;
  cfg.governor = governor;
  cfg.n_cores = kind == apps::DriverKind::kMetronome ? 3 : 1;
  cfg.workload.rate_mpps = mpps;
  cfg.warmup = w.warmup;
  cfg.measure = w.measure;
  const auto res = apps::run_experiment(cfg);
  return Row{res.cpu_percent, res.package_watts, res.throughput_mpps};
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Related work - DVFS vs CPU proportionality (§II argument)",
                "frequency scaling and the ondemand governor cut power but the "
                "polling core stays 100% busy; only Metronome frees CPU cycles");

  stats::Table table({"rate (Mpps)", "strategy", "CPU (%)", "power (W)", "throughput (Mpps)"});
  for (const double mpps : {14.88, 5.0, 1.0, 0.1, 0.0}) {
    const Row rows[] = {
        run_harness(apps::DriverKind::kStaticPolling, sim::Governor::kPerformance, mpps, w),
        run_harness(apps::DriverKind::kStaticPolling, sim::Governor::kOndemand, mpps, w),
        run_freq_scaling(mpps, w),
        run_harness(apps::DriverKind::kMetronome, sim::Governor::kPerformance, mpps, w),
    };
    const char* names[] = {"static (performance)", "static (ondemand)",
                           "freq scaling (l3fwd-power)", "Metronome"};
    for (int i = 0; i < 4; ++i) {
      table.add_row({bench::num(mpps, 2), names[i], bench::num(rows[i].cpu, 1),
                     bench::num(rows[i].watts, 2), bench::num(rows[i].throughput, 2)});
    }
  }
  table.print();
  std::cout << "\nNote how every polling variant pins its core at 100% regardless of\n"
               "power; Metronome's CPU column is the only one that tracks the load.\n";
  return 0;
}
