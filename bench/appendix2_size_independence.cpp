// Appendix II: the retrieval rate mu is independent of packet size.
//
// DPDK moves descriptors, not payloads, so Metronome's model treats mu as
// a constant in packets/s. This bench offers the same packet *rate* with
// three very different size profiles (64 B, 1518 B, simple IMIX) and shows
// the operating point — rho, CPU, vacation statistics — is unchanged,
// while the bit rate varies by ~20x.
#include "common.hpp"
#include "tgen/trace.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Appendix II - size-independent retrieval rate",
                "same pps -> same rho/CPU/vacation regardless of packet size mix");

  stats::Table table({"size profile", "offered (Mpps)", "~Gbit/s", "rho", "CPU (%)",
                      "mean V (us)", "loss (permille)"});
  const double mpps = 7.44;
  struct Profile {
    const char* name;
    std::uint16_t size;
    bool imix;
    double mean_size;
  };
  const Profile profiles[] = {
      {"64 B", 64, false, 64.0},
      {"1518 B", 1518, false, 1518.0},
      {"IMIX 7:4:1", 0, true, tgen::ImixSizes::mean_size()},
  };
  for (const auto& p : profiles) {
    apps::ExperimentConfig cfg;
    cfg.driver = apps::DriverKind::kMetronome;
    cfg.workload.rate_mpps = mpps;
    cfg.workload.wire_size = p.size;
    cfg.workload.imix = p.imix;
    cfg.warmup = w.warmup;
    cfg.measure = w.measure;
    const auto r = apps::run_experiment(cfg);
    table.add_row({p.name, bench::num(mpps, 2),
                   bench::num(mpps * p.mean_size * 8.0 / 1000.0, 1), bench::num(r.rho, 3),
                   bench::num(r.cpu_percent, 1), bench::num(r.vacation_us.mean(), 2),
                   bench::num(r.loss_permille, 3)});
  }
  table.print();
  return 0;
}
