// Kernel throughput benchmark: events/sec of the discrete-event core.
//
// Every figure bench and tier-1 test drives the kernel in
// src/sim/simulation.hpp, so its event throughput is the ceiling on how
// many scenarios we can simulate per CPU-second. This bench pins that
// number and emits BENCH_kernel.json so the trajectory is tracked PR over
// PR.
//
// Baseline: a faithful copy of the pre-refactor kernel (std::function
// events in a std::priority_queue, shared_ptr-token Signal) is embedded
// below under `legacy::` and run on the *same* scenarios, so the JSON
// records the speedup of the allocation-free kernel over its predecessor
// on the same machine, same build, same run.
//
// Scenarios (kernel-level, run on both implementations):
//   * timer_churn      — callback events rescheduling themselves,
//   * coroutine_sleep  — many processes looping over sleep_for,
//   * signal_timeout   — timed waits raced by notifications (the polling-
//                        driver idle pattern: every wait arms a timer that
//                        is then made stale/cancelled by notify).
// Plus a fig13-style multiqueue Metronome scenario on the new kernel only,
// reporting simulated-packets/sec and wall time.
#include <chrono>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "apps/experiment.hpp"
#include "common.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace legacy {

using metro::sim::Task;
using metro::sim::Time;

// Faithful copy of the pre-refactor kernel (see git history of
// src/sim/simulation.hpp): type-erased std::function events, stale timers
// fired-and-ignored via armed flags, one shared_ptr token per Signal wait.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    events_ = {};
    for (auto h : processes_) {
      if (h) h.destroy();
    }
  }

  Time now() const noexcept { return now_; }
  metro::sim::Rng& rng() noexcept { return rng_; }

  void schedule_at(Time t, std::function<void()> fn) {
    events_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
  }
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  void spawn(Task task) {
    auto handle = task.release();
    processes_.push_back(handle);
    schedule_after(0, [handle] {
      if (!handle.done()) handle.resume();
    });
  }

  Time run() {
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.at;
      ++processed_;
      ev.fn();
    }
    return now_;
  }

  std::uint64_t events_processed() const noexcept { return processed_; }

  auto sleep_for(Time d) {
    struct Awaiter {
      Simulation& sim;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(delay, [h] {
          if (!h.done()) h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::coroutine_handle<Task::promise_type>> processes_;
  metro::sim::Rng rng_;
};

class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}

  auto wait_for(Time timeout) { return WaitAwaiter{*this, timeout, nullptr}; }

  void notify_all() {
    if (waiters_.empty()) return;
    auto woken = std::move(waiters_);
    waiters_.clear();
    for (auto& t : woken) {
      if (!t->armed) continue;
      t->armed = false;
      t->notified = true;
      auto h = t->handle;
      sim_.schedule_after(0, [h] {
        if (!h.done()) h.resume();
      });
    }
  }

 private:
  struct Token {
    std::coroutine_handle<> handle;
    bool armed = true;
    bool notified = false;
  };

  struct WaitAwaiter {
    Signal& sig;
    Time timeout;
    std::shared_ptr<Token> token;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      token = std::make_shared<Token>();
      token->handle = h;
      sig.waiters_.push_back(token);
      if (timeout >= 0) {
        auto t = token;
        sig.sim_.schedule_after(timeout, [t] {
          if (!t->armed) return;
          t->armed = false;
          t->notified = false;
          if (!t->handle.done()) t->handle.resume();
        });
      }
    }
    bool await_resume() const noexcept { return token && token->notified; }
  };

  Simulation& sim_;
  std::vector<std::shared_ptr<Token>> waiters_;
};

}  // namespace legacy

namespace {

using metro::sim::Task;
using metro::sim::Time;

double wall_seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from).count();
}

// --- scenario bodies, templated over the kernel implementation -------------

template <typename Sim>
void timer_churn(Sim& sim, std::uint64_t chains, std::uint64_t events_per_chain) {
  // `chains` self-rescheduling callbacks, offset so timestamps interleave.
  struct Reschedule {
    Sim* sim;
    std::uint64_t left;
    Time period;
    void operator()() {
      if (left == 0) return;
      sim->schedule_after(period, Reschedule{sim, left - 1, period});
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    sim.schedule_after(static_cast<Time>(c), Reschedule{&sim, events_per_chain, 100 + static_cast<Time>(c % 7)});
  }
  sim.run();
}

template <typename Sim>
Task sleeper_proc(Sim& sim, std::uint64_t iters, Time period) {
  for (std::uint64_t i = 0; i < iters; ++i) co_await sim.sleep_for(period);
}

template <typename Sim>
void coroutine_sleep(Sim& sim, std::uint64_t procs, std::uint64_t iters) {
  for (std::uint64_t p = 0; p < procs; ++p) {
    sim.spawn(sleeper_proc(sim, iters, 50 + static_cast<Time>(p % 13)));
  }
  sim.run();
}

template <typename Sim, typename Sig>
Task signal_waiter(Sim& sim, Sig& sig, std::uint64_t iters, Time timeout) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    (void)co_await sig.wait_for(timeout);
  }
  (void)sim;
}

template <typename Sim, typename Sig>
Task signal_notifier(Sim& sim, Sig& sig, std::uint64_t iters, Time period) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    co_await sim.sleep_for(period);
    sig.notify_all();
  }
}

template <typename Sim, typename Sig>
void signal_timeout(Sim& sim, Sig& sig, std::uint64_t waiters, std::uint64_t iters) {
  // Notify every 1 us; each wait arms a 10 us timeout that the notify makes
  // stale (legacy) or cancels (new) — the polling-driver idle pattern.
  for (std::uint64_t w = 0; w < waiters; ++w) {
    sim.spawn(signal_waiter(sim, sig, iters, 10'000));
  }
  sim.spawn(signal_notifier(sim, sig, iters + 1, 1'000));
  sim.run();
}

struct Run {
  double wall = 0.0;           // seconds for the fixed workload
  std::uint64_t events = 0;    // events the kernel processed to do it
};

// Both kernels simulate the *identical* workload, so the honest comparison
// is wall time for equal work. Note the legacy kernel also executes stale
// timeout events as no-ops (they count towards its raw event number but do
// no useful work); events/sec is therefore normalised to the useful-event
// count (the new kernel's, which fires no stale events) on both sides.
struct ScenarioResult {
  Run base;
  Run next;
  double speedup() const { return next.wall > 0 ? base.wall / next.wall : 0.0; }
  double eps() const { return static_cast<double>(next.events) / next.wall; }
  double baseline_eps() const { return static_cast<double>(next.events) / base.wall; }
  double baseline_raw_eps() const { return static_cast<double>(base.events) / base.wall; }
};

template <typename Fn>
Run measure(Fn&& run_kernel) {
  Run r;
  const auto t0 = std::chrono::steady_clock::now();
  r.events = run_kernel();
  r.wall = wall_seconds(t0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = metro::bench::fast_mode(argc, argv);
  const std::uint64_t scale = fast ? 1 : 4;

  metro::bench::header("Kernel throughput — events/sec, new vs pre-refactor kernel",
                       "allocation-free POD-event kernel should clear 2x the legacy "
                       "std::function/shared_ptr kernel");

  ScenarioResult timer, sleep, signal;

  timer.base = measure([&] {
    legacy::Simulation sim;
    timer_churn(sim, 64, scale * 20'000);
    return sim.events_processed();
  });
  timer.next = measure([&] {
    metro::sim::Simulation sim;
    timer_churn(sim, 64, scale * 20'000);
    return sim.events_processed();
  });

  sleep.base = measure([&] {
    legacy::Simulation sim;
    coroutine_sleep(sim, 256, scale * 5'000);
    return sim.events_processed();
  });
  sleep.next = measure([&] {
    metro::sim::Simulation sim;
    coroutine_sleep(sim, 256, scale * 5'000);
    return sim.events_processed();
  });

  signal.base = measure([&] {
    legacy::Simulation sim;
    legacy::Signal sig(sim);
    signal_timeout(sim, sig, 64, scale * 10'000);
    return sim.events_processed();
  });
  signal.next = measure([&] {
    metro::sim::Simulation sim;
    metro::sim::Signal sig(sim);
    signal_timeout(sim, sig, 64, scale * 10'000);
    return sim.events_processed();
  });

  // Overall: geometric mean across scenarios.
  const double overall_base =
      std::cbrt(timer.baseline_eps() * sleep.baseline_eps() * signal.baseline_eps());
  const double overall_new = std::cbrt(timer.eps() * sleep.eps() * signal.eps());
  const double overall_speedup = overall_new / overall_base;

  // Fig. 13-style multiqueue Metronome scenario on the new kernel: XL710,
  // 2 queues, 4 threads, 37 Mpps offered — end-to-end simulated-packet rate.
  metro::apps::ExperimentConfig cfg;
  cfg.driver = metro::apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 2;
  cfg.n_cores = 4;
  cfg.met.n_threads = 4;
  cfg.met.target_vacation = 15 * metro::sim::kMicrosecond;
  cfg.workload.rate_mpps = 37.0;
  cfg.workload.n_flows = 4096;
  cfg.warmup = 50 * metro::sim::kMillisecond;
  cfg.measure = (fast ? 100 : 400) * metro::sim::kMillisecond;

  const auto t0 = std::chrono::steady_clock::now();
  metro::apps::Testbed bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  bed.begin_measurement();
  bed.run_until(cfg.warmup + cfg.measure);
  const auto result = bed.finish_measurement();
  const double fig13_wall = wall_seconds(t0);
  const double fig13_pkts = static_cast<double>(bed.packets_processed());
  const double fig13_eps = static_cast<double>(bed.sim().events_processed()) / fig13_wall;
  const double fig13_pps = fig13_pkts / fig13_wall;

  const auto row = [](const char* name, const ScenarioResult& r) {
    std::cout << "  " << name << ": " << metro::bench::num(r.baseline_eps() / 1e6) << " -> "
              << metro::bench::num(r.eps() / 1e6) << " M useful events/s  (x"
              << metro::bench::num(r.speedup()) << " wall; legacy raw rate "
              << metro::bench::num(r.baseline_raw_eps() / 1e6) << " incl. stale no-ops)\n";
  };
  row("timer_churn    ", timer);
  row("coroutine_sleep", sleep);
  row("signal_timeout ", signal);
  std::cout << "  overall (geomean): " << metro::bench::num(overall_base / 1e6) << " -> "
            << metro::bench::num(overall_new / 1e6) << " M events/s  (x"
            << metro::bench::num(overall_speedup) << ")\n\n";
  std::cout << "  fig13 multiqueue: " << metro::bench::num(fig13_pps / 1e6)
            << " M simulated packets/s, " << metro::bench::num(fig13_eps / 1e6)
            << " M events/s, wall " << metro::bench::num(fig13_wall) << " s, throughput "
            << metro::bench::num(result.throughput_mpps, 1) << " Mpps simulated\n";

  std::ofstream json("BENCH_kernel.json");
  json << "{\n"
       << "  \"bench\": \"kernel_throughput\",\n"
       << "  \"fast_mode\": " << (fast ? "true" : "false") << ",\n"
       << "  \"scenarios\": {\n";
  const auto emit = [&json](const char* name, const ScenarioResult& r, bool last) {
    json << "    \"" << name << "\": {\"baseline_events_per_sec\": " << r.baseline_eps()
         << ", \"events_per_sec\": " << r.eps() << ", \"speedup\": " << r.speedup()
         << ", \"baseline_raw_events_per_sec\": " << r.baseline_raw_eps()
         << ", \"baseline_wall_seconds\": " << r.base.wall
         << ", \"wall_seconds\": " << r.next.wall << "}" << (last ? "\n" : ",\n");
  };
  emit("timer_churn", timer, false);
  emit("coroutine_sleep", sleep, false);
  emit("signal_timeout", signal, true);
  json << "  },\n"
       << "  \"overall\": {\"baseline_events_per_sec\": " << overall_base
       << ", \"events_per_sec\": " << overall_new << ", \"speedup\": " << overall_speedup
       << "},\n"
       << "  \"fig13_multiqueue\": {\"simulated_packets_per_sec\": " << fig13_pps
       << ", \"events_per_sec\": " << fig13_eps << ", \"wall_seconds\": " << fig13_wall
       << ", \"simulated_throughput_mpps\": " << result.throughput_mpps << "}\n"
       << "}\n";
  std::cout << "\nwrote BENCH_kernel.json\n";
  return 0;
}
